#include "simulation/query_workload.h"

#include <algorithm>

#include "common/rng.h"
#include "similarity/value.h"

namespace alex::simulation {

FederatedWorkload MakeFederatedWorkload(const datagen::GeneratedPair& pair,
                                        size_t n, uint64_t seed) {
  FederatedWorkload workload;
  std::vector<feedback::PairKey> truth = pair.truth.AsVector();
  std::sort(truth.begin(), truth.end());
  Rng rng(seed);
  rng.Shuffle(&truth);
  if (truth.size() > n) truth.resize(n);

  for (feedback::PairKey key : truth) {
    const rdf::EntityId left = feedback::PairLeft(key);
    const rdf::EntityId right = feedback::PairRight(key);
    // Ask for the value of one right-side attribute of the left entity —
    // answerable only by crossing a sameAs link.
    const auto& attrs = pair.right.attributes(right);
    if (attrs.empty()) continue;
    const rdf::Attribute& attr =
        attrs[static_cast<size_t>(rng.UniformInt(attrs.size()))];
    const std::string pred_iri =
        pair.right.dict().term(attr.predicate).value;
    workload.queries.push_back("SELECT ?v WHERE { <" +
                               pair.left.entity_iri(left) + "> <" + pred_iri +
                               "> ?v . }");
    workload.subjects.push_back(key);
  }
  return workload;
}

WorkloadRunStats ExecuteFederatedWorkload(const fed::FederatedEngine& engine,
                                          const FederatedWorkload& workload,
                                          Clock* clock,
                                          double think_seconds) {
  WorkloadRunStats stats;
  stats.total = workload.queries.size();
  for (const std::string& query : workload.queries) {
    // Inter-query think time: without it, a burst of back-to-back queries
    // holds virtual time still whenever every probe fast-fails, so breaker
    // cooldowns can never elapse mid-workload.
    if (clock != nullptr && think_seconds > 0.0) {
      clock->SleepSeconds(think_seconds);
    }
    auto result = engine.ExecuteText(query);
    if (!result.ok()) {
      ++stats.failed;
      continue;
    }
    if (result->degraded) ++stats.degraded;
    if (result->NumRows() > 0) ++stats.answered;
    stats.rows += result->NumRows();
    for (const fed::ProvenancedRow& row : result->rows) {
      stats.links_observed.insert(stats.links_observed.end(),
                                  row.links_used.begin(),
                                  row.links_used.end());
    }
  }
  return stats;
}

fed::LinkIndex LinksFromPairs(
    const datagen::GeneratedPair& pair,
    const std::vector<feedback::PairKey>& pair_keys) {
  fed::LinkIndex index;
  for (feedback::PairKey key : pair_keys) {
    index.Add(pair.left.entity_iri(feedback::PairLeft(key)),
              pair.right.entity_iri(feedback::PairRight(key)));
  }
  return index;
}

}  // namespace alex::simulation
