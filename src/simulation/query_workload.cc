#include "simulation/query_workload.h"

#include <algorithm>
#include <optional>

#include "common/rng.h"
#include "obs/metrics.h"
#include "similarity/value.h"

namespace alex::simulation {

FederatedWorkload MakeFederatedWorkload(const datagen::GeneratedPair& pair,
                                        size_t n, uint64_t seed) {
  FederatedWorkload workload;
  std::vector<feedback::PairKey> truth = pair.truth.AsVector();
  std::sort(truth.begin(), truth.end());
  Rng rng(seed);
  rng.Shuffle(&truth);
  if (truth.size() > n) truth.resize(n);

  for (feedback::PairKey key : truth) {
    const rdf::EntityId left = feedback::PairLeft(key);
    const rdf::EntityId right = feedback::PairRight(key);
    // Ask for the value of one right-side attribute of the left entity —
    // answerable only by crossing a sameAs link.
    const auto& attrs = pair.right.attributes(right);
    if (attrs.empty()) continue;
    const rdf::Attribute& attr =
        attrs[static_cast<size_t>(rng.UniformInt(attrs.size()))];
    const std::string pred_iri =
        pair.right.dict().term(attr.predicate).value;
    workload.queries.push_back("SELECT ?v WHERE { <" +
                               pair.left.entity_iri(left) + "> <" + pred_iri +
                               "> ?v . }");
    workload.subjects.push_back(key);
  }
  return workload;
}

namespace {

/// Folds one query result into the running stats, in workload order.
void AccumulateResult(const Result<fed::FederatedResult>& result,
                      WorkloadRunStats* stats) {
  if (!result.ok()) {
    ++stats->failed;
    return;
  }
  if (result->degraded) ++stats->degraded;
  if (result->NumRows() > 0) ++stats->answered;
  stats->rows += result->NumRows();
  for (const fed::ProvenancedRow& row : result->rows) {
    stats->links_observed.insert(stats->links_observed.end(),
                                 row.links_used.begin(),
                                 row.links_used.end());
  }
}

}  // namespace

WorkloadRunStats ExecuteFederatedWorkload(const fed::FederatedEngine& engine,
                                          const FederatedWorkload& workload,
                                          const WorkloadExecOptions& options) {
  WorkloadRunStats stats;
  stats.total = workload.queries.size();

  // Parallel path: fan queries across the pool, merge in workload order so
  // the outcome is indistinguishable from a sequential run. Only taken
  // without a clock — simulated time must advance deterministically, which
  // per-query think time under concurrency cannot.
  if (options.pool != nullptr && options.clock == nullptr &&
      workload.queries.size() > 1) {
    static obs::Counter& parallel_queries =
        obs::MetricsRegistry::Global().counter("fed.parallel_queries");
    std::vector<std::optional<Result<fed::FederatedResult>>> results(
        workload.queries.size());
    ParallelFor(options.pool, workload.queries.size(), [&](size_t i) {
      results[i] = engine.ExecuteText(workload.queries[i]);
      // Counted per query actually executed on the pool path, not bulk
      // up front: if a worker throws mid-workload, the counter reflects
      // the queries that ran rather than the whole batch.
      parallel_queries.Add(1);
    });
    for (const auto& result : results) {
      if (!result.has_value()) {
        // Unreachable today (ParallelFor rethrows after filling or dying),
        // but a skipped slot must count as a failure, not crash the merge.
        ++stats.failed;
        continue;
      }
      AccumulateResult(*result, &stats);
    }
    if (options.hub != nullptr) options.hub->MaybeSample();
    return stats;
  }

  for (const std::string& query : workload.queries) {
    // Inter-query think time: without it, a burst of back-to-back queries
    // holds virtual time still whenever every probe fast-fails, so breaker
    // cooldowns can never elapse mid-workload.
    if (options.clock != nullptr && options.think_seconds > 0.0) {
      options.clock->SleepSeconds(options.think_seconds);
    }
    AccumulateResult(engine.ExecuteText(query), &stats);
    if (options.hub != nullptr) options.hub->MaybeSample();
  }
  return stats;
}

WorkloadRunStats ExecuteFederatedWorkload(const fed::FederatedEngine& engine,
                                          const FederatedWorkload& workload,
                                          Clock* clock,
                                          double think_seconds) {
  WorkloadExecOptions options;
  options.clock = clock;
  options.think_seconds = think_seconds;
  return ExecuteFederatedWorkload(engine, workload, options);
}

fed::LinkIndex LinksFromPairs(
    const datagen::GeneratedPair& pair,
    const std::vector<feedback::PairKey>& pair_keys) {
  fed::LinkIndex index;
  for (feedback::PairKey key : pair_keys) {
    index.Add(pair.left.entity_iri(feedback::PairLeft(key)),
              pair.right.entity_iri(feedback::PairRight(key)));
  }
  return index;
}

}  // namespace alex::simulation
