#include "simulation/query_workload.h"

#include <algorithm>

#include "common/rng.h"
#include "similarity/value.h"

namespace alex::simulation {

FederatedWorkload MakeFederatedWorkload(const datagen::GeneratedPair& pair,
                                        size_t n, uint64_t seed) {
  FederatedWorkload workload;
  std::vector<feedback::PairKey> truth = pair.truth.AsVector();
  std::sort(truth.begin(), truth.end());
  Rng rng(seed);
  rng.Shuffle(&truth);
  if (truth.size() > n) truth.resize(n);

  for (feedback::PairKey key : truth) {
    const rdf::EntityId left = feedback::PairLeft(key);
    const rdf::EntityId right = feedback::PairRight(key);
    // Ask for the value of one right-side attribute of the left entity —
    // answerable only by crossing a sameAs link.
    const auto& attrs = pair.right.attributes(right);
    if (attrs.empty()) continue;
    const rdf::Attribute& attr =
        attrs[static_cast<size_t>(rng.UniformInt(attrs.size()))];
    const std::string pred_iri =
        pair.right.dict().term(attr.predicate).value;
    workload.queries.push_back("SELECT ?v WHERE { <" +
                               pair.left.entity_iri(left) + "> <" + pred_iri +
                               "> ?v . }");
    workload.subjects.push_back(key);
  }
  return workload;
}

fed::LinkIndex LinksFromPairs(
    const datagen::GeneratedPair& pair,
    const std::vector<feedback::PairKey>& pair_keys) {
  fed::LinkIndex index;
  for (feedback::PairKey key : pair_keys) {
    index.Add(pair.left.entity_iri(feedback::PairLeft(key)),
              pair.right.entity_iri(feedback::PairRight(key)));
  }
  return index;
}

}  // namespace alex::simulation
