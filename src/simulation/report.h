#ifndef ALEX_SIMULATION_REPORT_H_
#define ALEX_SIMULATION_REPORT_H_

#include <ostream>

#include "simulation/simulation.h"

namespace alex::simulation {

/// Prints the per-episode precision/recall/F series of a run in the layout
/// of the paper's quality figures (episode on the x-axis), plus the
/// relaxed/strict convergence markers.
void PrintEpisodeSeries(const RunResult& result, std::ostream& os);

/// Prints the one-line run summary: convergence episodes, links discovered,
/// and timing (Section 7.3 style).
void PrintRunSummary(const RunResult& result, std::ostream& os);

}  // namespace alex::simulation

#endif  // ALEX_SIMULATION_REPORT_H_
