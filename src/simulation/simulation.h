#ifndef ALEX_SIMULATION_SIMULATION_H_
#define ALEX_SIMULATION_SIMULATION_H_

#include <functional>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "core/partitioned.h"
#include "datagen/generator.h"
#include "obs/telemetry.h"
#include "obs/telemetry_hub.h"
#include "paris/paris.h"
#include "paris/sigma.h"

namespace alex::simulation {

/// Full configuration of one experiment run: the synthetic scenario, the
/// PARIS settings producing the initial candidate links, the ALEX engine
/// settings, and the simulated user.
struct SimulationConfig {
  datagen::ScenarioConfig scenario;
  core::AlexConfig alex;
  paris::ParisConfig paris;
  /// Seed-linker selection: the type tag of the linker that produces the
  /// initial candidate links ("paris" or "sigma"; see paris/seed_linkers.h).
  /// An unknown tag falls back to "paris" with an error log. The tag of the
  /// linker actually used is recorded in simulation checkpoints, and a
  /// resume under a different linker fails loudly.
  std::string linker = "paris";
  /// Settings of the SiGMa-style linker (used when `linker == "sigma"`).
  paris::SigmaConfig sigma;
  /// Fraction of feedback items whose verdict is flipped (Appendix C).
  double feedback_error_rate = 0.0;
  uint64_t oracle_seed = 99;

  /// Durable checkpoint/resume (see core/checkpoint.h and DESIGN.md
  /// "Checkpoint & resume"). When `checkpoint_every_k_episodes` > 0 the run
  /// writes a crash-consistent snapshot of the full engine + oracle state
  /// into `checkpoint_dir` after every k-th episode, retaining the newest
  /// `checkpoint_keep` snapshots behind a manifest.
  size_t checkpoint_every_k_episodes = 0;
  std::string checkpoint_dir;
  size_t checkpoint_keep = 3;

  /// When non-empty, the run restores from this checkpoint (a file, a
  /// checkpoint directory, or a MANIFEST path — the newest retained
  /// snapshot is used) instead of starting at episode 1, and then continues
  /// bit-identically to the uninterrupted run at every episode boundary.
  /// The scenario/config must match the checkpointing run (enforced via
  /// the config fingerprint in the checkpoint header).
  std::string resume_from;

  /// Optional live telemetry: when set (not owned), the run gives the hub a
  /// sampling opportunity at every episode boundary, so a long run emits a
  /// timestamped metric/SLO series instead of only end-of-run telemetry.
  obs::TelemetryHub* telemetry_hub = nullptr;
};

/// Quality and activity after one episode. Record 0 is the initial (PARIS)
/// state, matching the figures' episode-0 points.
struct EpisodeRecord {
  size_t episode = 0;
  core::LinkSetMetrics metrics;
  size_t links_changed = 0;  // |candidates Δ previous candidates|.
  size_t positive_feedback = 0;
  size_t negative_feedback = 0;
  size_t links_added = 0;
  size_t links_removed = 0;
  size_t rollbacks = 0;
  double seconds = 0.0;  // Wall time of this episode.

  double NegativeFeedbackPercent() const {
    const size_t total = positive_feedback + negative_feedback;
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(negative_feedback) /
                            static_cast<double>(total);
  }
};

/// Outcome of a full policy-evaluation / policy-improvement run.
struct RunResult {
  std::string scenario_name;
  std::vector<EpisodeRecord> episodes;  // episodes[0] = initial state.
  /// First episode after which the candidate set did not change at all;
  /// 0 when the run hit max_episodes instead.
  size_t converged_episode = 0;
  /// First episode after which fewer than 5% of links changed (the paper's
  /// relaxed convergence, green vertical line in the figures).
  size_t relaxed_episode = 0;
  /// Correct links in the final candidate set that were not in the initial
  /// set ("new links discovered" in Section 7.2).
  size_t new_links_discovered = 0;
  size_t initial_links = 0;
  double build_seconds_max = 0.0;  // Slowest partition's space build.
  double build_seconds_avg = 0.0;
  /// One-time shared blocking-index/cache construction (amortized across
  /// all partitions; 0 when the legacy per-partition build is selected).
  double shared_index_seconds = 0.0;
  double total_seconds = 0.0;      // Whole run, including build and PARIS.
  core::LinkSpace::BuildStats space_stats;  // Aggregated across partitions.
  /// Where the run's time went: ordered, disjoint phase timings (generate,
  /// paris, blocking, build_space, explore, end_episode, evaluate) plus the
  /// metrics-registry delta observed during the run. Serialized by the
  /// benches as a *.telemetry.json sidecar.
  obs::RunTelemetry telemetry;
  /// Episode boundary this run resumed from (0 = fresh run). The episode
  /// series before this point was restored from the checkpoint.
  size_t resumed_from_episode = 0;
  /// Non-OK when `resume_from` was set but the checkpoint could not be
  /// restored (missing, corrupt, truncated, or config-mismatched). The run
  /// aborts after episode 0 rather than silently diverging from the
  /// checkpointing run.
  Status resume_error;

  /// Precondition: the run produced at least one episode record (Run()
  /// always records episode 0). Guard hand-built results before calling.
  const EpisodeRecord& final_episode() const { return episodes.back(); }
};

/// Experiment driver: generates the scenario, runs PARIS for the initial
/// candidate links, builds partitioned ALEX, then alternates feedback
/// episodes (policy evaluation) with policy improvement until convergence
/// (Section 3.2), recording the per-episode metric series every figure in
/// the paper plots.
class Simulation {
 public:
  /// Called after every episode with the live engine; used by benches that
  /// need per-partition traces (Figure 7b/7c).
  using EpisodeObserver =
      std::function<void(size_t episode, const core::PartitionedAlex& alex)>;

  explicit Simulation(SimulationConfig config);

  /// Runs to convergence and returns the full record.
  RunResult Run();

  void set_observer(EpisodeObserver observer) {
    observer_ = std::move(observer);
  }

  /// The generated data pair (valid after Run()).
  const datagen::GeneratedPair& data() const { return data_; }

  /// Ground truth restricted to one partition's left entities, for
  /// per-partition quality traces.
  static feedback::GroundTruth PartitionTruth(
      const feedback::GroundTruth& truth, const core::PartitionedAlex& alex,
      size_t partition);

 private:
  SimulationConfig config_;
  datagen::GeneratedPair data_;
  EpisodeObserver observer_;
};

}  // namespace alex::simulation

#endif  // ALEX_SIMULATION_SIMULATION_H_
