#ifndef ALEX_SIMULATION_QUERY_WORKLOAD_H_
#define ALEX_SIMULATION_QUERY_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/thread_pool.h"
#include "datagen/generator.h"
#include "federation/federated_engine.h"
#include "federation/link_index.h"
#include "obs/telemetry_hub.h"

namespace alex::simulation {

/// A FedBench-style workload of federated queries over a generated KB pair:
/// each query asks for right-side attributes of a left-side entity, so it
/// can only be answered through an owl:sameAs link — the query shape of the
/// paper's motivating example ("NYT articles about the NBA MVP").
struct FederatedWorkload {
  /// Query texts, one per ground-truth entity sampled.
  std::vector<std::string> queries;
  /// Parallel to `queries`: the ground-truth pair each query is about.
  std::vector<feedback::PairKey> subjects;
};

/// Samples `n` queries about distinct ground-truth entities (fewer if the
/// ground truth is smaller). Deterministic for a given seed.
FederatedWorkload MakeFederatedWorkload(const datagen::GeneratedPair& pair,
                                        size_t n, uint64_t seed);

/// Builds a LinkIndex (IRI-based) from a set of entity-pair keys.
fed::LinkIndex LinksFromPairs(
    const datagen::GeneratedPair& pair,
    const std::vector<feedback::PairKey>& pair_keys);

/// Fault-tolerant outcome of one workload execution. Degraded queries are
/// first-class: their rows (and the links those rows crossed) still count,
/// so the feedback loop keeps learning from partial answers instead of
/// stalling whenever an endpoint misbehaves.
struct WorkloadRunStats {
  size_t total = 0;
  size_t answered = 0;   // Queries that returned at least one row.
  size_t degraded = 0;   // Queries flagged degraded (partial answer).
  size_t failed = 0;     // Queries that returned an error outright.
  size_t rows = 0;
  /// Every sameAs link crossed by a returned row (with repeats): the
  /// provenance stream ALEX's feedback loop consumes (Section 3.2).
  std::vector<fed::SameAsLink> links_observed;
};

/// How to execute a workload.
struct WorkloadExecOptions {
  /// When set, `think_seconds` of client think time elapse before each
  /// query — the inter-arrival gap that lets circuit-breaker cooldowns run
  /// down between queries in simulated scenarios.
  Clock* clock = nullptr;
  double think_seconds = 0.0;
  /// When set (and `clock` is null — SimClock is not thread-safe), queries
  /// fan out across the pool and results merge back in workload order, so
  /// stats and `links_observed` are byte-identical to a sequential run.
  /// The endpoint stack must be thread-safe (plain Endpoints over stores
  /// with pre-built indexes are; call TripleStore::EnsureIndexes first).
  ThreadPool* pool = nullptr;
  /// When set, the executor gives the hub a sampling opportunity between
  /// queries (sequential path) or after the merge (parallel path), so long
  /// workloads emit a live time series instead of one end-of-run snapshot.
  obs::TelemetryHub* hub = nullptr;
};

/// Executes every query of the workload against `engine`, tolerating
/// per-query failures and collecting feedback provenance from whatever rows
/// arrived. Deterministic given a deterministic engine/endpoint stack —
/// including in parallel mode, whose merge is by query index.
/// Queries go through FederatedEngine::ExecuteText, so in compiled mode
/// each distinct query text is parsed and planned once per engine
/// (fed.plan_cache_hits counts the repeats) instead of once per call.
WorkloadRunStats ExecuteFederatedWorkload(
    const fed::FederatedEngine& engine, const FederatedWorkload& workload,
    const WorkloadExecOptions& options);

/// Back-compat sequential overload.
WorkloadRunStats ExecuteFederatedWorkload(const fed::FederatedEngine& engine,
                                          const FederatedWorkload& workload,
                                          Clock* clock = nullptr,
                                          double think_seconds = 0.0);

}  // namespace alex::simulation

#endif  // ALEX_SIMULATION_QUERY_WORKLOAD_H_
