#ifndef ALEX_SIMULATION_QUERY_WORKLOAD_H_
#define ALEX_SIMULATION_QUERY_WORKLOAD_H_

#include <string>
#include <vector>

#include "datagen/generator.h"
#include "federation/link_index.h"

namespace alex::simulation {

/// A FedBench-style workload of federated queries over a generated KB pair:
/// each query asks for right-side attributes of a left-side entity, so it
/// can only be answered through an owl:sameAs link — the query shape of the
/// paper's motivating example ("NYT articles about the NBA MVP").
struct FederatedWorkload {
  /// Query texts, one per ground-truth entity sampled.
  std::vector<std::string> queries;
  /// Parallel to `queries`: the ground-truth pair each query is about.
  std::vector<feedback::PairKey> subjects;
};

/// Samples `n` queries about distinct ground-truth entities (fewer if the
/// ground truth is smaller). Deterministic for a given seed.
FederatedWorkload MakeFederatedWorkload(const datagen::GeneratedPair& pair,
                                        size_t n, uint64_t seed);

/// Builds a LinkIndex (IRI-based) from a set of entity-pair keys.
fed::LinkIndex LinksFromPairs(
    const datagen::GeneratedPair& pair,
    const std::vector<feedback::PairKey>& pair_keys);

}  // namespace alex::simulation

#endif  // ALEX_SIMULATION_QUERY_WORKLOAD_H_
