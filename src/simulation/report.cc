#include "simulation/report.h"

#include <iomanip>

namespace alex::simulation {

void PrintEpisodeSeries(const RunResult& result, std::ostream& os) {
  os << "# scenario: " << result.scenario_name << "\n";
  os << std::setw(8) << "episode" << std::setw(11) << "precision"
     << std::setw(9) << "recall" << std::setw(10) << "f-measure"
     << std::setw(12) << "candidates" << std::setw(9) << "changed"
     << std::setw(8) << "neg%" << "\n";
  os << std::fixed << std::setprecision(3);
  for (const EpisodeRecord& r : result.episodes) {
    os << std::setw(8) << r.episode << std::setw(11) << r.metrics.precision
       << std::setw(9) << r.metrics.recall << std::setw(10)
       << r.metrics.f_measure << std::setw(12) << r.metrics.candidates
       << std::setw(9) << r.links_changed << std::setw(8)
       << r.NegativeFeedbackPercent() << "\n";
  }
  os.unsetf(std::ios::fixed);
}

void PrintRunSummary(const RunResult& result, std::ostream& os) {
  const EpisodeRecord& last = result.final_episode();
  os << "scenario=" << result.scenario_name
     << " episodes=" << result.episodes.size() - 1
     << " strict_convergence=" << result.converged_episode
     << " relaxed_convergence=" << result.relaxed_episode
     << " initial_links=" << result.initial_links
     << " new_links_discovered=" << result.new_links_discovered
     << " final_F=" << std::fixed << std::setprecision(3)
     << last.metrics.f_measure << " final_P=" << last.metrics.precision
     << " final_R=" << last.metrics.recall << std::setprecision(2)
     << " build_max_s=" << result.build_seconds_max
     << " total_s=" << result.total_seconds << "\n";
  os.unsetf(std::ios::fixed);
}

}  // namespace alex::simulation
