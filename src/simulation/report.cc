#include "simulation/report.h"

#include <iomanip>

namespace alex::simulation {

namespace {

/// Restores the stream's format flags and precision on scope exit; the
/// printers set std::fixed/precision and must not leak that to the caller.
class ScopedStreamFormat {
 public:
  explicit ScopedStreamFormat(std::ostream& os)
      : os_(os), flags_(os.flags()), precision_(os.precision()) {}
  ~ScopedStreamFormat() {
    os_.flags(flags_);
    os_.precision(precision_);
  }

 private:
  std::ostream& os_;
  std::ios::fmtflags flags_;
  std::streamsize precision_;
};

}  // namespace

void PrintEpisodeSeries(const RunResult& result, std::ostream& os) {
  const ScopedStreamFormat restore(os);
  os << "# scenario: " << result.scenario_name << "\n";
  os << std::setw(8) << "episode" << std::setw(11) << "precision"
     << std::setw(9) << "recall" << std::setw(10) << "f-measure"
     << std::setw(12) << "candidates" << std::setw(9) << "changed"
     << std::setw(8) << "neg%" << "\n";
  if (result.episodes.empty()) {
    os << "  (no episodes)\n";
    return;
  }
  os << std::fixed << std::setprecision(3);
  for (const EpisodeRecord& r : result.episodes) {
    os << std::setw(8) << r.episode << std::setw(11) << r.metrics.precision
       << std::setw(9) << r.metrics.recall << std::setw(10)
       << r.metrics.f_measure << std::setw(12) << r.metrics.candidates
       << std::setw(9) << r.links_changed << std::setw(8)
       << r.NegativeFeedbackPercent() << "\n";
  }
}

void PrintRunSummary(const RunResult& result, std::ostream& os) {
  const ScopedStreamFormat restore(os);
  if (result.episodes.empty()) {
    // final_episode() on a zero-episode run would dereference an empty
    // vector; emit an explicit no-episodes summary instead.
    os << "scenario=" << result.scenario_name << " episodes=0 (no episodes)"
       << std::fixed << std::setprecision(2)
       << " total_s=" << result.total_seconds << "\n";
    return;
  }
  const EpisodeRecord& last = result.final_episode();
  os << "scenario=" << result.scenario_name
     << " episodes=" << result.episodes.size() - 1
     << " strict_convergence=" << result.converged_episode
     << " relaxed_convergence=" << result.relaxed_episode
     << " initial_links=" << result.initial_links
     << " new_links_discovered=" << result.new_links_discovered
     << " final_F=" << std::fixed << std::setprecision(3)
     << last.metrics.f_measure << " final_P=" << last.metrics.precision
     << " final_R=" << last.metrics.recall << std::setprecision(2)
     << " build_max_s=" << result.build_seconds_max
     << " total_s=" << result.total_seconds << "\n";
}

}  // namespace alex::simulation
