#include "simulation/simulation.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "feedback/oracle.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace alex::simulation {
namespace {

using core::PartitionedAlex;
using feedback::PairKey;

size_t SymmetricDifferenceSize(const std::unordered_set<PairKey>& a,
                               const std::unordered_set<PairKey>& b) {
  size_t diff = 0;
  for (PairKey k : a) {
    if (!b.count(k)) ++diff;
  }
  for (PairKey k : b) {
    if (!a.count(k)) ++diff;
  }
  return diff;
}

}  // namespace

Simulation::Simulation(SimulationConfig config) : config_(std::move(config)) {}

feedback::GroundTruth Simulation::PartitionTruth(
    const feedback::GroundTruth& truth, const core::PartitionedAlex& alex,
    size_t partition) {
  feedback::GroundTruth out;
  for (PairKey key : truth.pairs()) {
    if (alex.PartitionOf(feedback::PairLeft(key)) == partition) {
      out.Add(feedback::PairLeft(key), feedback::PairRight(key));
    }
  }
  return out;
}

RunResult Simulation::Run() {
  ALEX_TRACE_SPAN("simulation", "Simulation::Run");
  RunResult result;
  result.scenario_name = config_.scenario.name;
  obs::RunTelemetry& telemetry = result.telemetry;
  const obs::MetricsSnapshot metrics_before =
      obs::MetricsRegistry::Global().Snapshot();
  Stopwatch total_watch;

  // 1. Data and ground truth.
  {
    obs::PhaseTimer phase(&telemetry, "generate");
    data_ = datagen::GenerateScenario(config_.scenario);
  }

  // 2. Initial candidate links from the automatic linker (PARIS).
  std::vector<paris::ScoredLink> initial;
  {
    ALEX_TRACE_SPAN("simulation", "ParisLinker::Run");
    obs::PhaseTimer phase(&telemetry, "paris");
    paris::ParisLinker linker(&data_.left, &data_.right, config_.paris);
    initial = linker.Run();
  }
  result.initial_links = initial.size();

  // 3. Partitioned ALEX over the pair. The build phase splits into the
  // shared blocking-index/cache construction ("blocking", amortized across
  // partitions) and the per-partition space builds ("build_space").
  PartitionedAlex alex(&data_.left, &data_.right, config_.alex);
  {
    obs::PhaseTimer phase(&telemetry, "build_space");
    const std::vector<double> build_seconds = alex.Build();
    for (double s : build_seconds) {
      result.build_seconds_max = std::max(result.build_seconds_max, s);
      result.build_seconds_avg += s;
    }
    if (!build_seconds.empty()) {
      result.build_seconds_avg /= static_cast<double>(build_seconds.size());
    }
  }
  result.shared_index_seconds = alex.shared_index_seconds();
  // Carve the blocking time out of the build phase so the two are disjoint.
  if (!telemetry.phases.empty() &&
      telemetry.phases.back().first == "build_space") {
    telemetry.phases.back().second = std::max(
        0.0, telemetry.phases.back().second - result.shared_index_seconds);
  }
  telemetry.AddPhase("blocking", result.shared_index_seconds);
  result.space_stats = alex.AggregatedSpaceStats();
  alex.InitializeCandidates(initial);

  std::unordered_set<PairKey> initial_set;
  for (const paris::ScoredLink& link : initial) {
    initial_set.insert(feedback::PackPair(link.left, link.right));
  }

  // Episode 0: the automatic linker's quality.
  std::unordered_set<PairKey> previous = alex.Candidates();
  EpisodeRecord first;
  first.episode = 0;
  first.metrics = core::ComputeMetrics(previous, data_.truth);
  result.episodes.push_back(first);

  feedback::Oracle oracle(&data_.truth, config_.feedback_error_rate,
                          config_.oracle_seed);

  // 4. Policy evaluation / policy improvement iterations.
  for (size_t episode = 1; episode <= config_.alex.max_episodes; ++episode) {
    ALEX_TRACE_SPAN("simulation", "Episode");
    Stopwatch episode_watch;
    {
      obs::PhaseTimer phase(&telemetry, "explore");
      for (size_t i = 0; i < config_.alex.episode_size; ++i) {
        // The candidate set evolves within the episode (actions add links,
        // negative feedback removes them), so re-sample from the live set:
        // newly discovered links can receive feedback in the same episode.
        const std::vector<PairKey> candidates = alex.CandidateVector();
        auto item = oracle.SampleAndJudge(candidates);
        if (!item.has_value()) break;
        alex.ProcessFeedback(*item);
      }
    }
    core::EngineEpisodeStats stats;
    {
      obs::PhaseTimer phase(&telemetry, "end_episode");
      stats = alex.EndEpisode();
    }

    obs::PhaseTimer evaluate_phase(&telemetry, "evaluate");
    const std::unordered_set<PairKey> current = alex.Candidates();
    EpisodeRecord record;
    record.episode = episode;
    record.metrics = core::ComputeMetrics(current, data_.truth);
    record.links_changed = SymmetricDifferenceSize(previous, current);
    record.positive_feedback = stats.positive_items;
    record.negative_feedback = stats.negative_items;
    record.links_added = stats.links_added;
    record.links_removed = stats.links_removed;
    record.rollbacks = stats.rollbacks;
    record.seconds = episode_watch.ElapsedSeconds();
    result.episodes.push_back(record);

    if (observer_) observer_(episode, alex);

    if (result.relaxed_episode == 0 && !previous.empty() &&
        static_cast<double>(record.links_changed) <
            config_.alex.relaxed_fraction *
                static_cast<double>(previous.size())) {
      result.relaxed_episode = episode;
    }
    if (record.links_changed == 0) {
      result.converged_episode = episode;
      previous = current;
      break;
    }
    previous = current;
  }

  // New correct links discovered: correct links in the final set that were
  // not produced by the automatic linker.
  for (PairKey key : previous) {
    if (data_.truth.Contains(key) && !initial_set.count(key)) {
      ++result.new_links_discovered;
    }
  }
  result.total_seconds = total_watch.ElapsedSeconds();
  telemetry.wall_seconds = result.total_seconds;
  telemetry.metrics =
      obs::MetricsRegistry::Global().Snapshot().DeltaSince(metrics_before);
  ALEX_LOG(kDebug) << "run '" << result.scenario_name << "' finished: "
                   << result.episodes.size() - 1 << " episodes, "
                   << telemetry.PhaseSecondsTotal() << "s in phases of "
                   << telemetry.wall_seconds << "s wall";
  return result;
}

}  // namespace alex::simulation
