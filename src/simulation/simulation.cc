#include "simulation/simulation.h"

#include <algorithm>

#include "common/binary_io.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/checkpoint.h"
#include "feedback/oracle.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "paris/seed_linkers.h"
#include "rl/adaptive_policy.h"

namespace alex::simulation {
namespace {

using core::PartitionedAlex;
using feedback::PairKey;

size_t SymmetricDifferenceSize(const std::unordered_set<PairKey>& a,
                               const std::unordered_set<PairKey>& b) {
  size_t diff = 0;
  for (PairKey k : a) {
    if (!b.count(k)) ++diff;
  }
  for (PairKey k : b) {
    if (!a.count(k)) ++diff;
  }
  return diff;
}

obs::Counter& ResumeCounter() {
  return obs::MetricsRegistry::Global().counter("ckpt.resumes");
}

std::string SanitizeFileComponent(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
    if (!keep) c = '_';
  }
  return out.empty() ? "dataset" : out;
}

/// Applies the configured storage backend to one dataset. Disk-tier
/// failures (unwritable dir, ...) degrade to in-memory compression so the
/// run proceeds with the same query semantics.
void ApplyStorageBackend(const core::AlexConfig& config, rdf::Dataset* ds) {
  rdf::CompressedStoreOptions opts;
  opts.block_size = config.storage_block_size;
  opts.cache_budget_bytes = config.storage_cache_budget_bytes;
  if (config.storage_backend == core::AlexConfig::StorageBackend::kCompressed) {
    ds->Compress(opts);
    return;
  }
  std::string path = config.storage_disk_dir;
  if (!path.empty() && path.back() != '/') path.push_back('/');
  path += SanitizeFileComponent(ds->name()) + ".blocks";
  const Status st = ds->CompressToDisk(path, opts);
  if (!st.ok()) {
    ALEX_LOG(kWarning) << "disk-backed storage for \"" << ds->name()
                       << "\" failed (" << st.ToString()
                       << "); falling back to in-memory compression";
    ds->Compress(opts);
  }
}

/// Simulation checkpoint payload (kind kSimulation): the seed-linker tag
/// (format v2+), the boundary episode, the oracle's RNG stream, the
/// per-episode series so far, and the embedded PartitionedAlex snapshot.
/// Everything else a resumed run needs (datasets, link spaces, seed links)
/// is deterministically regenerated — which is exactly why the linker tag
/// is persisted: the regenerated initial candidate set must come from the
/// same linker, or the resumed run silently diverges.
std::string SerializeSimulationState(std::string_view linker_tag,
                                     size_t boundary_episode,
                                     const feedback::Oracle& oracle,
                                     uint64_t oracle_seed,
                                     const RunResult& result,
                                     const PartitionedAlex& alex) {
  BinaryWriter w;
  w.WriteBytes(linker_tag);
  w.WriteU64(boundary_episode);
  for (uint64_t word : oracle.SaveRngState()) w.WriteU64(word);
  w.WriteDouble(oracle.error_rate());
  w.WriteU64(oracle_seed);
  w.WriteU64(result.relaxed_episode);
  w.WriteU64(result.episodes.size());
  for (const EpisodeRecord& rec : result.episodes) {
    w.WriteU64(rec.episode);
    w.WriteDouble(rec.metrics.precision);
    w.WriteDouble(rec.metrics.recall);
    w.WriteDouble(rec.metrics.f_measure);
    w.WriteU64(rec.metrics.correct);
    w.WriteU64(rec.metrics.candidates);
    w.WriteU64(rec.metrics.ground_truth);
    w.WriteU64(rec.links_changed);
    w.WriteU64(rec.positive_feedback);
    w.WriteU64(rec.negative_feedback);
    w.WriteU64(rec.links_added);
    w.WriteU64(rec.links_removed);
    w.WriteU64(rec.rollbacks);
    w.WriteDouble(rec.seconds);
  }
  BinaryWriter alex_payload;
  alex.SaveState(&alex_payload);
  w.WriteBytes(alex_payload.buffer());
  return w.Release();
}

/// Restores a kSimulation payload written at container `format_version`.
/// Fills `*boundary_episode`, the oracle RNG, `result->episodes` /
/// `relaxed_episode`, and the engines in `*alex`. `linker_tag` is the tag
/// of the linker this run actually used: version-2 payloads carry the
/// checkpointing run's tag and the two must agree; version-1 payloads
/// predate pluggable linkers and are implicitly "paris".
Status RestoreSimulationState(std::string_view payload, uint32_t format_version,
                              std::string_view linker_tag,
                              const SimulationConfig& config,
                              size_t* boundary_episode,
                              feedback::Oracle* oracle, RunResult* result,
                              PartitionedAlex* alex) {
  BinaryReader r(payload);
  if (format_version >= 2) {
    std::string_view saved_tag;
    ALEX_RETURN_NOT_OK(r.ReadBytesView(&saved_tag));
    if (saved_tag != linker_tag) {
      return Status::InvalidArgument(
          "checkpoint: linker section has type tag '" +
          std::string(saved_tag) + "', but this run uses linker '" +
          std::string(linker_tag) + "'");
    }
  } else if (linker_tag != paris::kParisLinkerTag) {
    return Status::InvalidArgument(
        "checkpoint: version-1 linker is implicitly 'paris', but this run "
        "uses linker '" +
        std::string(linker_tag) + "'");
  }
  uint64_t boundary = 0;
  ALEX_RETURN_NOT_OK(r.ReadU64(&boundary));
  Rng::State oracle_rng;
  for (uint64_t& word : oracle_rng) ALEX_RETURN_NOT_OK(r.ReadU64(&word));
  double error_rate = 0.0;
  uint64_t oracle_seed = 0;
  ALEX_RETURN_NOT_OK(r.ReadDouble(&error_rate));
  ALEX_RETURN_NOT_OK(r.ReadU64(&oracle_seed));
  if (error_rate != config.feedback_error_rate ||
      oracle_seed != config.oracle_seed) {
    return Status::InvalidArgument(
        "checkpoint oracle settings (error_rate/seed) differ from the "
        "resuming run's");
  }
  uint64_t relaxed = 0;
  ALEX_RETURN_NOT_OK(r.ReadU64(&relaxed));
  uint64_t num_records = 0;
  ALEX_RETURN_NOT_OK(r.ReadU64(&num_records));
  if (num_records != boundary + 1) {
    return Status::ParseError("checkpoint episode series length " +
                              std::to_string(num_records) +
                              " does not match boundary episode " +
                              std::to_string(boundary));
  }
  std::vector<EpisodeRecord> records;
  records.reserve(num_records);
  for (uint64_t i = 0; i < num_records; ++i) {
    EpisodeRecord rec;
    uint64_t v = 0;
    ALEX_RETURN_NOT_OK(r.ReadU64(&v));
    rec.episode = v;
    ALEX_RETURN_NOT_OK(r.ReadDouble(&rec.metrics.precision));
    ALEX_RETURN_NOT_OK(r.ReadDouble(&rec.metrics.recall));
    ALEX_RETURN_NOT_OK(r.ReadDouble(&rec.metrics.f_measure));
    ALEX_RETURN_NOT_OK(r.ReadU64(&v));
    rec.metrics.correct = v;
    ALEX_RETURN_NOT_OK(r.ReadU64(&v));
    rec.metrics.candidates = v;
    ALEX_RETURN_NOT_OK(r.ReadU64(&v));
    rec.metrics.ground_truth = v;
    ALEX_RETURN_NOT_OK(r.ReadU64(&v));
    rec.links_changed = v;
    ALEX_RETURN_NOT_OK(r.ReadU64(&v));
    rec.positive_feedback = v;
    ALEX_RETURN_NOT_OK(r.ReadU64(&v));
    rec.negative_feedback = v;
    ALEX_RETURN_NOT_OK(r.ReadU64(&v));
    rec.links_added = v;
    ALEX_RETURN_NOT_OK(r.ReadU64(&v));
    rec.links_removed = v;
    ALEX_RETURN_NOT_OK(r.ReadU64(&v));
    rec.rollbacks = v;
    ALEX_RETURN_NOT_OK(r.ReadDouble(&rec.seconds));
    records.push_back(rec);
  }
  std::string_view alex_payload;
  ALEX_RETURN_NOT_OK(r.ReadBytesView(&alex_payload));
  if (!r.AtEnd()) {
    return Status::ParseError("checkpoint has trailing bytes");
  }
  BinaryReader ar(alex_payload);
  ALEX_RETURN_NOT_OK(alex->LoadState(&ar, format_version));

  // Engines restored; commit the driver-level pieces.
  oracle->RestoreRngState(oracle_rng);
  result->episodes = std::move(records);
  result->relaxed_episode = static_cast<size_t>(relaxed);
  *boundary_episode = static_cast<size_t>(boundary);
  return Status::OK();
}

}  // namespace

Simulation::Simulation(SimulationConfig config) : config_(std::move(config)) {
  // The simulation layer links every built-in policy, so make them all
  // selectable by tag before any engine is constructed.
  rl::RegisterAdaptiveFeaturePolicy();
}

feedback::GroundTruth Simulation::PartitionTruth(
    const feedback::GroundTruth& truth, const core::PartitionedAlex& alex,
    size_t partition) {
  feedback::GroundTruth out;
  for (PairKey key : truth.pairs()) {
    if (alex.PartitionOf(feedback::PairLeft(key)) == partition) {
      out.Add(feedback::PairLeft(key), feedback::PairRight(key));
    }
  }
  return out;
}

RunResult Simulation::Run() {
  ALEX_TRACE_SPAN("simulation", "Simulation::Run");
  RunResult result;
  result.scenario_name = config_.scenario.name;
  obs::RunTelemetry& telemetry = result.telemetry;
  const obs::MetricsSnapshot metrics_before =
      obs::MetricsRegistry::Global().Snapshot();
  Stopwatch total_watch;

  // 1. Data and ground truth.
  {
    obs::PhaseTimer phase(&telemetry, "generate");
    data_ = datagen::GenerateScenario(config_.scenario);
  }

  // 1b. Optional storage backend swap: compress both datasets before any
  // query work so PARIS, blocking, and episodes all read through the
  // configured TripleSource.
  if (config_.alex.storage_backend !=
      core::AlexConfig::StorageBackend::kUncompressed) {
    obs::PhaseTimer phase(&telemetry, "compress");
    ApplyStorageBackend(config_.alex, &data_.left);
    ApplyStorageBackend(config_.alex, &data_.right);
  }

  // 2. Initial candidate links from the configured seed linker. The phase
  // keeps its historical name "paris" (sidecar schemas key on it) even when
  // another linker runs. An unknown tag degrades to the default linker with
  // an error log, mirroring the engine's unknown-policy fallback.
  std::vector<paris::ScoredLink> initial;
  std::string linker_tag;
  {
    obs::PhaseTimer phase(&telemetry, "paris");
    auto linker = paris::MakeSeedLinker(config_.linker, &data_.left,
                                        &data_.right, config_.paris,
                                        config_.sigma);
    if (!linker.ok()) {
      ALEX_LOG(kError) << "linker '" << config_.linker
                       << "' unavailable, falling back to '"
                       << paris::kParisLinkerTag
                       << "': " << linker.status();
      linker = paris::MakeSeedLinker(paris::kParisLinkerTag, &data_.left,
                                     &data_.right, config_.paris,
                                     config_.sigma);
    }
    ALEX_TRACE_SPAN("simulation", "SeedLinker::Run");
    linker_tag = std::string((*linker)->type_tag());
    initial = (*linker)->Run();
  }
  result.initial_links = initial.size();

  // 3. Partitioned ALEX over the pair. The build phase splits into the
  // shared blocking-index/cache construction ("blocking", amortized across
  // partitions) and the per-partition space builds ("build_space").
  PartitionedAlex alex(&data_.left, &data_.right, config_.alex);
  {
    obs::PhaseTimer phase(&telemetry, "build_space");
    const std::vector<double> build_seconds = alex.Build();
    for (double s : build_seconds) {
      result.build_seconds_max = std::max(result.build_seconds_max, s);
      result.build_seconds_avg += s;
    }
    if (!build_seconds.empty()) {
      result.build_seconds_avg /= static_cast<double>(build_seconds.size());
    }
  }
  result.shared_index_seconds = alex.shared_index_seconds();
  // Carve the blocking time out of the build phase so the two are disjoint.
  if (!telemetry.phases.empty() &&
      telemetry.phases.back().first == "build_space") {
    telemetry.phases.back().second = std::max(
        0.0, telemetry.phases.back().second - result.shared_index_seconds);
  }
  telemetry.AddPhase("blocking", result.shared_index_seconds);
  result.space_stats = alex.AggregatedSpaceStats();
  alex.InitializeCandidates(initial);

  std::unordered_set<PairKey> initial_set;
  for (const paris::ScoredLink& link : initial) {
    initial_set.insert(feedback::PackPair(link.left, link.right));
  }

  // Episode 0: the automatic linker's quality.
  std::unordered_set<PairKey> previous = alex.Candidates();
  EpisodeRecord first;
  first.episode = 0;
  first.metrics = core::ComputeMetrics(previous, data_.truth);
  result.episodes.push_back(first);

  feedback::Oracle oracle(&data_.truth, config_.feedback_error_rate,
                          config_.oracle_seed);

  const uint64_t fingerprint = core::ckpt::ConfigFingerprint(config_.alex);
  size_t start_episode = 1;

  // Resume: restore the engines, the oracle stream, and the episode series
  // from the newest (or named) checkpoint, then continue the loop exactly
  // where the checkpointing run left off. A failed restore aborts the run
  // with `resume_error` set — continuing fresh would silently diverge.
  if (!config_.resume_from.empty()) {
    Status st;
    auto path = core::ckpt::CheckpointManager::ResolveLatest(config_.resume_from);
    if (!path.ok()) st = path.status();
    if (st.ok()) {
      auto blob = core::ckpt::CheckpointManager::ReadBlob(*path);
      if (!blob.ok()) {
        st = blob.status();
      } else {
        uint32_t format_version = core::ckpt::kFormatVersion;
        auto payload = core::ckpt::UnwrapPayload(
            *blob, core::ckpt::PayloadKind::kSimulation, fingerprint,
            &format_version);
        if (!payload.ok()) {
          st = payload.status();
        } else {
          size_t boundary = 0;
          st = RestoreSimulationState(*payload, format_version, linker_tag,
                                      config_, &boundary, &oracle, &result,
                                      &alex);
          if (st.ok()) {
            start_episode = boundary + 1;
            result.resumed_from_episode = boundary;
            previous = alex.Candidates();
            ResumeCounter().Add(1);
            ALEX_LOG(kInfo) << "resumed '" << result.scenario_name
                            << "' from episode " << boundary << " ("
                            << *path << ")";
          }
        }
      }
    }
    if (!st.ok()) {
      ALEX_LOG(kError) << "resume from '" << config_.resume_from
                       << "' failed: " << st;
      result.resume_error = st;
      result.total_seconds = total_watch.ElapsedSeconds();
      telemetry.wall_seconds = result.total_seconds;
      telemetry.metrics =
          obs::MetricsRegistry::Global().Snapshot().DeltaSince(metrics_before);
      return result;
    }
  }

  std::unique_ptr<core::ckpt::CheckpointManager> ckpt_manager;
  if (config_.checkpoint_every_k_episodes > 0) {
    ckpt_manager = std::make_unique<core::ckpt::CheckpointManager>(
        config_.checkpoint_dir.empty() ? "alex-checkpoints"
                                       : config_.checkpoint_dir,
        config_.checkpoint_keep);
  }

  // 4. Policy evaluation / policy improvement iterations.
  for (size_t episode = start_episode; episode <= config_.alex.max_episodes;
       ++episode) {
    ALEX_TRACE_SPAN("simulation", "Episode");
    Stopwatch episode_watch;
    {
      obs::PhaseTimer phase(&telemetry, "explore");
      for (size_t i = 0; i < config_.alex.episode_size; ++i) {
        // The candidate set evolves within the episode (actions add links,
        // negative feedback removes them), so re-sample from the live set:
        // newly discovered links can receive feedback in the same episode.
        const std::vector<PairKey> candidates = alex.CandidateVector();
        auto item = oracle.SampleAndJudge(candidates);
        if (!item.has_value()) break;
        alex.ProcessFeedback(*item);
      }
    }
    core::EngineEpisodeStats stats;
    {
      obs::PhaseTimer phase(&telemetry, "end_episode");
      stats = alex.EndEpisode();
    }

    obs::PhaseTimer evaluate_phase(&telemetry, "evaluate");
    const std::unordered_set<PairKey> current = alex.Candidates();
    EpisodeRecord record;
    record.episode = episode;
    record.metrics = core::ComputeMetrics(current, data_.truth);
    record.links_changed = SymmetricDifferenceSize(previous, current);
    record.positive_feedback = stats.positive_items;
    record.negative_feedback = stats.negative_items;
    record.links_added = stats.links_added;
    record.links_removed = stats.links_removed;
    record.rollbacks = stats.rollbacks;
    record.seconds = episode_watch.ElapsedSeconds();
    result.episodes.push_back(record);

    if (observer_) observer_(episode, alex);
    // Phases are disjoint by contract; end "evaluate" before "checkpoint".
    evaluate_phase.Stop();

    if (result.relaxed_episode == 0 && !previous.empty() &&
        static_cast<double>(record.links_changed) <
            config_.alex.relaxed_fraction *
                static_cast<double>(previous.size())) {
      result.relaxed_episode = episode;
    }

    // Durable snapshot at the episode boundary: engine + oracle + series
    // (after the relaxed-convergence bookkeeping so the saved series is
    // exactly the uninterrupted run's view of this boundary). A write
    // failure is logged and the run continues — older retained checkpoints
    // stay valid behind the manifest.
    if (ckpt_manager && episode % config_.checkpoint_every_k_episodes == 0) {
      obs::PhaseTimer ckpt_phase(&telemetry, "checkpoint");
      const std::string blob = core::ckpt::WrapPayload(
          core::ckpt::PayloadKind::kSimulation, fingerprint,
          SerializeSimulationState(linker_tag, episode, oracle,
                                   config_.oracle_seed, result, alex));
      const Status st = ckpt_manager->Write(blob);
      if (!st.ok()) {
        ALEX_LOG(kWarning) << "checkpoint write at episode " << episode
                           << " failed: " << st;
      }
    }

    // Episode boundary: the hub samples if its interval has elapsed, so a
    // long run streams metric deltas and SLO evaluations as it goes.
    if (config_.telemetry_hub != nullptr) config_.telemetry_hub->MaybeSample();

    if (record.links_changed == 0) {
      result.converged_episode = episode;
      previous = current;
      break;
    }
    previous = current;
  }

  // New correct links discovered: correct links in the final set that were
  // not produced by the automatic linker.
  for (PairKey key : previous) {
    if (data_.truth.Contains(key) && !initial_set.count(key)) {
      ++result.new_links_discovered;
    }
  }
  result.total_seconds = total_watch.ElapsedSeconds();
  telemetry.wall_seconds = result.total_seconds;
  telemetry.metrics =
      obs::MetricsRegistry::Global().Snapshot().DeltaSince(metrics_before);
  ALEX_LOG(kDebug) << "run '" << result.scenario_name << "' finished: "
                   << result.episodes.size() - 1 << " episodes, "
                   << telemetry.PhaseSecondsTotal() << "s in phases of "
                   << telemetry.wall_seconds << "s wall";
  return result;
}

}  // namespace alex::simulation
