#ifndef ALEX_SPARQL_EVALUATOR_H_
#define ALEX_SPARQL_EVALUATOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "rdf/dataset.h"
#include "sparql/ast.h"

namespace alex::sparql {

/// A solution table: `variables` names the columns, each row holds one
/// concrete RDF term per column. Terms (not dictionary ids) are used so
/// results from stores with different dictionaries can be merged — the
/// federation layer depends on this.
struct QueryResult {
  std::vector<std::string> variables;
  std::vector<std::vector<rdf::Term>> rows;

  size_t NumRows() const { return rows.size(); }
};

/// Evaluates a parsed SELECT query against one triple source (either
/// storage backend: uncompressed TripleStore or CompressedTripleStore).
///
/// Join strategy: triple patterns are ordered greedily by how many of their
/// components are bound (constants or previously bound variables), then each
/// pattern is matched through the store's indexes and extends the partial
/// bindings (index nested-loop join). FILTERs are applied as soon as their
/// variable binds. DISTINCT and LIMIT are applied on output.
Result<QueryResult> Evaluate(const SelectQuery& query,
                             const rdf::Dictionary& dict,
                             const rdf::TripleSource& store);

/// Convenience overload for a Dataset.
Result<QueryResult> Evaluate(const SelectQuery& query,
                             const rdf::Dataset& dataset);

/// Parses and evaluates in one step.
Result<QueryResult> EvaluateQuery(std::string_view query_text,
                                  const rdf::Dataset& dataset);

/// Evaluates an ASK query (or any query treated existentially): true if at
/// least one solution exists. Stops at the first match.
Result<bool> Ask(const SelectQuery& query, const rdf::Dataset& dataset);

/// Parses and evaluates an ASK query in one step.
Result<bool> AskQuery(std::string_view query_text,
                      const rdf::Dataset& dataset);

/// Compares two terms under a FILTER operator. Numeric/date comparisons are
/// value-based; everything else is lexicographic over lexical forms.
bool CompareTerms(const rdf::Term& lhs, CompareOp op, const rdf::Term& rhs);

}  // namespace alex::sparql

#endif  // ALEX_SPARQL_EVALUATOR_H_
