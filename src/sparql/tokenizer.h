#ifndef ALEX_SPARQL_TOKENIZER_H_
#define ALEX_SPARQL_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace alex::sparql {

enum class TokenKind {
  kKeyword,     // SELECT, WHERE, FILTER, ... (uppercased in `text`)
  kVariable,    // ?x (text holds "x")
  kIri,         // <...> (text holds the IRI)
  kPrefixedName,// ns:local (text holds the raw form)
  kString,      // "..." (text holds the unescaped body; datatype/lang too)
  kNumber,      // 42 or 3.14 (text holds lexical form)
  kPunct,       // { } . ( ) , ;
  kOp,          // = != < <= > >=
  kA,           // the 'a' keyword (rdf:type)
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  std::string datatype;  // For kString with ^^<dt>.
  std::string language;  // For kString with @lang.
  size_t offset = 0;     // Byte offset in the input, for error messages.
};

/// Splits a SPARQL query string into tokens. Keywords are case-insensitive
/// and normalized to uppercase. The final token is always kEnd.
Result<std::vector<Token>> Tokenize(std::string_view query);

}  // namespace alex::sparql

#endif  // ALEX_SPARQL_TOKENIZER_H_
