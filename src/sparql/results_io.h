#ifndef ALEX_SPARQL_RESULTS_IO_H_
#define ALEX_SPARQL_RESULTS_IO_H_

#include <ostream>

#include "sparql/evaluator.h"

namespace alex::sparql {

/// Serializes a solution table in the W3C "SPARQL 1.1 Query Results JSON
/// Format": {"head": {"vars": [...]}, "results": {"bindings": [...]}}.
/// Unbound cells (empty-literal placeholders) are omitted from their row's
/// binding object, as the spec prescribes.
void WriteResultsJson(const QueryResult& result, std::ostream& os);

/// Serializes in the SPARQL TSV results format: a header row of
/// '?'-prefixed variable names, then one N-Triples-encoded term per cell.
void WriteResultsTsv(const QueryResult& result, std::ostream& os);

/// Renders an ASK verdict in the JSON results format.
void WriteAskJson(bool verdict, std::ostream& os);

/// Escapes a string for a JSON string literal (quotes not included).
std::string JsonEscape(std::string_view s);

}  // namespace alex::sparql

#endif  // ALEX_SPARQL_RESULTS_IO_H_
