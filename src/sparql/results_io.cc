#include "sparql/results_io.h"

#include <cstdio>

namespace alex::sparql {
namespace {

/// True for the empty plain literal this engine uses as the unbound marker.
bool IsUnbound(const rdf::Term& t) {
  return t.is_literal() && t.value.empty() && t.datatype.empty() &&
         t.language.empty();
}

void WriteTermJson(const rdf::Term& t, std::ostream& os) {
  switch (t.kind) {
    case rdf::TermKind::kIri:
      os << R"({"type": "uri", "value": ")" << JsonEscape(t.value) << "\"}";
      return;
    case rdf::TermKind::kBlank:
      os << R"({"type": "bnode", "value": ")" << JsonEscape(t.value) << "\"}";
      return;
    case rdf::TermKind::kLiteral:
      os << R"({"type": "literal", "value": ")" << JsonEscape(t.value)
         << '"';
      if (!t.language.empty()) {
        os << R"(, "xml:lang": ")" << JsonEscape(t.language) << '"';
      } else if (!t.datatype.empty()) {
        os << R"(, "datatype": ")" << JsonEscape(t.datatype) << '"';
      }
      os << '}';
      return;
  }
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteResultsJson(const QueryResult& result, std::ostream& os) {
  os << "{\"head\": {\"vars\": [";
  for (size_t i = 0; i < result.variables.size(); ++i) {
    if (i > 0) os << ", ";
    os << '"' << JsonEscape(result.variables[i]) << '"';
  }
  os << "]}, \"results\": {\"bindings\": [";
  for (size_t r = 0; r < result.rows.size(); ++r) {
    if (r > 0) os << ", ";
    os << '{';
    bool first = true;
    for (size_t c = 0; c < result.variables.size(); ++c) {
      const rdf::Term& t = result.rows[r][c];
      if (IsUnbound(t)) continue;  // Unbound vars are omitted per spec.
      if (!first) os << ", ";
      first = false;
      os << '"' << JsonEscape(result.variables[c]) << "\": ";
      WriteTermJson(t, os);
    }
    os << '}';
  }
  os << "]}}\n";
}

void WriteResultsTsv(const QueryResult& result, std::ostream& os) {
  for (size_t i = 0; i < result.variables.size(); ++i) {
    if (i > 0) os << '\t';
    os << '?' << result.variables[i];
  }
  os << '\n';
  for (const auto& row : result.rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << '\t';
      if (!IsUnbound(row[c])) os << row[c].ToNTriples();
    }
    os << '\n';
  }
}

void WriteAskJson(bool verdict, std::ostream& os) {
  os << "{\"head\": {}, \"boolean\": " << (verdict ? "true" : "false")
     << "}\n";
}

}  // namespace alex::sparql
