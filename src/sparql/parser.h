#ifndef ALEX_SPARQL_PARSER_H_
#define ALEX_SPARQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "sparql/ast.h"

namespace alex::sparql {

/// Parses the SPARQL subset used by this library:
///
///   [PREFIX ns: <iri>]*
///   SELECT [DISTINCT] (?v1 ?v2 ... | *)
///   WHERE { tp1 . tp2 . ... [FILTER(?v op const)]* }
///   [LIMIT n]
///
/// Triple-pattern components may be variables, IRIs, prefixed names,
/// literals (with datatype or language tag), numbers, or the keyword `a`
/// (rdf:type). Patterns are separated by '.'.
Result<SelectQuery> ParseQuery(std::string_view query);

}  // namespace alex::sparql

#endif  // ALEX_SPARQL_PARSER_H_
