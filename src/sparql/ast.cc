#include "sparql/ast.h"

#include <unordered_set>

namespace alex::sparql {

std::vector<std::string> SelectQuery::MentionedVariables() const {
  std::vector<std::string> out;
  std::unordered_set<std::string> seen;
  auto add = [&](const TermOrVar& tv) {
    if (IsVariable(tv)) {
      const std::string& name = std::get<Variable>(tv).name;
      if (seen.insert(name).second) out.push_back(name);
    }
  };
  auto add_pattern = [&](const TriplePatternAst& tp) {
    add(tp.subject);
    add(tp.predicate);
    add(tp.object);
  };
  for (const TriplePatternAst& tp : where) add_pattern(tp);
  for (const OptionalBlock& block : optionals) {
    for (const TriplePatternAst& tp : block.patterns) add_pattern(tp);
  }
  for (const auto& branch : union_branches) {
    for (const TriplePatternAst& tp : branch) add_pattern(tp);
  }
  return out;
}

}  // namespace alex::sparql
