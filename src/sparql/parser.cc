#include "sparql/parser.h"

#include <unordered_map>

#include "rdf/term.h"
#include "sparql/tokenizer.h"

namespace alex::sparql {
namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectQuery> Parse();

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  Status Fail(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " +
                              std::to_string(Peek().offset));
  }

  bool MatchKeyword(std::string_view kw) {
    if (Peek().kind == TokenKind::kKeyword && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool MatchPunct(std::string_view p) {
    if (Peek().kind == TokenKind::kPunct && Peek().text == p) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParsePrefixes();
  Result<rdf::Term> ResolvePrefixedName(const std::string& raw) const;
  Result<TermOrVar> ParseTermOrVar();
  Status ParseWhereBlock(SelectQuery* query);
  /// Parses triple patterns and FILTERs up to (and including) the closing
  /// '}' of an already-opened group.
  Status ParseBgpGroup(std::vector<TriplePatternAst>* patterns,
                       std::vector<FilterAst>* filters);
  Status ParseFilter(std::vector<FilterAst>* filters);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::unordered_map<std::string, std::string> prefixes_;
};

Status Parser::ParsePrefixes() {
  while (MatchKeyword("PREFIX")) {
    if (Peek().kind != TokenKind::kPrefixedName) {
      return Fail("expected prefix name after PREFIX");
    }
    std::string raw = Advance().text;
    // Raw form is "ns:" (local part empty).
    size_t colon = raw.find(':');
    std::string ns = raw.substr(0, colon);
    if (Peek().kind != TokenKind::kIri) {
      return Fail("expected IRI after prefix name");
    }
    prefixes_[ns] = Advance().text;
  }
  return Status::OK();
}

Result<rdf::Term> Parser::ResolvePrefixedName(const std::string& raw) const {
  size_t colon = raw.find(':');
  std::string ns = raw.substr(0, colon);
  std::string local = raw.substr(colon + 1);
  auto it = prefixes_.find(ns);
  if (it == prefixes_.end()) {
    return Status::ParseError("undeclared prefix '" + ns + ":'");
  }
  return rdf::Term::Iri(it->second + local);
}

Result<TermOrVar> Parser::ParseTermOrVar() {
  const Token& tok = Advance();
  switch (tok.kind) {
    case TokenKind::kVariable:
      return TermOrVar(Variable{tok.text});
    case TokenKind::kIri:
      return TermOrVar(rdf::Term::Iri(tok.text));
    case TokenKind::kPrefixedName: {
      ALEX_ASSIGN_OR_RETURN(rdf::Term t, ResolvePrefixedName(tok.text));
      return TermOrVar(std::move(t));
    }
    case TokenKind::kString: {
      rdf::Term t = rdf::Term::Literal(tok.text);
      t.datatype = tok.datatype;
      t.language = tok.language;
      return TermOrVar(std::move(t));
    }
    case TokenKind::kNumber: {
      const bool is_double = tok.text.find('.') != std::string::npos;
      rdf::Term t = rdf::Term::TypedLiteral(
          tok.text, std::string(is_double ? rdf::kXsdDouble
                                          : rdf::kXsdInteger));
      return TermOrVar(std::move(t));
    }
    case TokenKind::kA:
      return TermOrVar(rdf::Term::Iri(std::string(rdf::kRdfType)));
    default:
      --pos_;
      return Fail("expected term or variable");
  }
}

Status Parser::ParseFilter(std::vector<FilterAst>* filters) {
  if (!MatchPunct("(")) return Fail("expected '(' after FILTER");
  if (Peek().kind != TokenKind::kVariable) {
    return Fail("FILTER must start with a variable");
  }
  FilterAst filter;
  filter.var = Variable{Advance().text};
  if (Peek().kind != TokenKind::kOp) return Fail("expected comparison operator");
  const std::string op = Advance().text;
  if (op == "=") filter.op = CompareOp::kEq;
  else if (op == "!=") filter.op = CompareOp::kNe;
  else if (op == "<") filter.op = CompareOp::kLt;
  else if (op == "<=") filter.op = CompareOp::kLe;
  else if (op == ">") filter.op = CompareOp::kGt;
  else if (op == ">=") filter.op = CompareOp::kGe;
  else return Fail("unknown operator '" + op + "'");
  ALEX_ASSIGN_OR_RETURN(TermOrVar value, ParseTermOrVar());
  if (IsVariable(value)) {
    return Fail("FILTER comparisons against variables are not supported");
  }
  filter.value = std::get<rdf::Term>(std::move(value));
  if (!MatchPunct(")")) return Fail("expected ')' to close FILTER");
  filters->push_back(std::move(filter));
  return Status::OK();
}

Status Parser::ParseBgpGroup(std::vector<TriplePatternAst>* patterns,
                             std::vector<FilterAst>* filters) {
  while (!MatchPunct("}")) {
    if (AtEnd()) return Fail("unterminated group");
    if (MatchKeyword("FILTER")) {
      ALEX_RETURN_NOT_OK(ParseFilter(filters));
      MatchPunct(".");  // Optional separator after FILTER.
      continue;
    }
    TriplePatternAst tp;
    ALEX_ASSIGN_OR_RETURN(tp.subject, ParseTermOrVar());
    ALEX_ASSIGN_OR_RETURN(tp.predicate, ParseTermOrVar());
    ALEX_ASSIGN_OR_RETURN(tp.object, ParseTermOrVar());
    patterns->push_back(std::move(tp));
    if (!MatchPunct(".")) {
      // A pattern must be followed by '.', '}', FILTER, or OPTIONAL.
      if (Peek().kind == TokenKind::kPunct && Peek().text == "}") continue;
      if (Peek().kind == TokenKind::kKeyword &&
          (Peek().text == "FILTER" || Peek().text == "OPTIONAL")) {
        continue;
      }
      return Fail("expected '.' after triple pattern");
    }
  }
  return Status::OK();
}

Status Parser::ParseWhereBlock(SelectQuery* query) {
  if (!MatchPunct("{")) return Fail("expected '{' after WHERE");

  // UNION form: WHERE { { bgp } UNION { bgp } ... }.
  if (Peek().kind == TokenKind::kPunct && Peek().text == "{") {
    do {
      if (!MatchPunct("{")) return Fail("expected '{' to open UNION branch");
      std::vector<TriplePatternAst> branch;
      // Branch filters are hoisted to the query level; the evaluator only
      // applies a filter once its variable is bound, so filters on
      // variables absent from a branch are inert there.
      ALEX_RETURN_NOT_OK(ParseBgpGroup(&branch, &query->filters));
      if (branch.empty()) return Fail("empty UNION branch");
      query->union_branches.push_back(std::move(branch));
    } while (MatchKeyword("UNION"));
    if (query->union_branches.size() < 2) {
      return Fail("expected UNION after group");
    }
    if (!MatchPunct("}")) return Fail("expected '}' to close WHERE");
    return Status::OK();
  }

  // Join form: bgp + FILTERs + OPTIONAL blocks.
  while (!MatchPunct("}")) {
    if (AtEnd()) return Fail("unterminated WHERE block");
    if (MatchKeyword("FILTER")) {
      ALEX_RETURN_NOT_OK(ParseFilter(&query->filters));
      MatchPunct(".");
      continue;
    }
    if (MatchKeyword("OPTIONAL")) {
      if (!MatchPunct("{")) return Fail("expected '{' after OPTIONAL");
      OptionalBlock block;
      ALEX_RETURN_NOT_OK(ParseBgpGroup(&block.patterns, &block.filters));
      if (block.patterns.empty()) return Fail("empty OPTIONAL block");
      query->optionals.push_back(std::move(block));
      MatchPunct(".");
      continue;
    }
    TriplePatternAst tp;
    ALEX_ASSIGN_OR_RETURN(tp.subject, ParseTermOrVar());
    ALEX_ASSIGN_OR_RETURN(tp.predicate, ParseTermOrVar());
    ALEX_ASSIGN_OR_RETURN(tp.object, ParseTermOrVar());
    query->where.push_back(std::move(tp));
    if (!MatchPunct(".")) {
      if (Peek().kind == TokenKind::kPunct && Peek().text == "}") continue;
      if (Peek().kind == TokenKind::kKeyword &&
          (Peek().text == "FILTER" || Peek().text == "OPTIONAL")) {
        continue;
      }
      return Fail("expected '.' after triple pattern");
    }
  }
  return Status::OK();
}

Result<SelectQuery> Parser::Parse() {
  SelectQuery query;
  ALEX_RETURN_NOT_OK(ParsePrefixes());
  if (MatchKeyword("ASK")) {
    query.is_ask = true;
    MatchKeyword("WHERE");  // Optional before the block.
    ALEX_RETURN_NOT_OK(ParseWhereBlock(&query));
    if (!AtEnd()) return Fail("trailing tokens after ASK query");
    if (query.where.empty() && query.union_branches.empty()) {
      return Fail("empty WHERE block");
    }
    return query;
  }
  if (!MatchKeyword("SELECT")) return Fail("expected SELECT or ASK");
  query.distinct = MatchKeyword("DISTINCT");
  if (MatchPunct("*")) {
    // SELECT * — projection stays empty.
  } else {
    while (Peek().kind == TokenKind::kVariable) {
      query.projection.push_back(Advance().text);
    }
    // Aggregate clause: (COUNT(?x | *) AS ?alias).
    if (Peek().kind == TokenKind::kPunct && Peek().text == "(") {
      ++pos_;
      if (!MatchKeyword("COUNT")) return Fail("expected COUNT");
      if (!MatchPunct("(")) return Fail("expected '(' after COUNT");
      AggregateSpec agg;
      if (Peek().kind == TokenKind::kVariable) {
        agg.count_var = Advance().text;
      } else if (!MatchPunct("*")) {
        return Fail("expected variable or '*' inside COUNT");
      }
      if (!MatchPunct(")")) return Fail("expected ')' after COUNT argument");
      if (!MatchKeyword("AS")) return Fail("expected AS after COUNT(...)");
      if (Peek().kind != TokenKind::kVariable) {
        return Fail("expected alias variable after AS");
      }
      agg.alias = Advance().text;
      if (!MatchPunct(")")) return Fail("expected ')' to close aggregate");
      if (query.projection.size() > 1) {
        return Fail("at most one grouping variable is supported");
      }
      if (!query.projection.empty()) agg.group_var = query.projection[0];
      query.projection.push_back(agg.alias);
      query.aggregate = std::move(agg);
    }
    if (query.projection.empty()) {
      return Fail("expected projection variables or '*'");
    }
  }
  if (!MatchKeyword("WHERE")) return Fail("expected WHERE");
  ALEX_RETURN_NOT_OK(ParseWhereBlock(&query));
  if (MatchKeyword("GROUP")) {
    if (!MatchKeyword("BY")) return Fail("expected BY after GROUP");
    if (Peek().kind != TokenKind::kVariable) {
      return Fail("expected variable after GROUP BY");
    }
    const std::string var = Advance().text;
    if (!query.aggregate.has_value() || query.aggregate->group_var != var) {
      return Fail("GROUP BY must name the projected grouping variable");
    }
  } else if (query.aggregate.has_value() &&
             !query.aggregate->group_var.empty()) {
    return Fail("projected grouping variable requires GROUP BY");
  }
  if (MatchKeyword("ORDER")) {
    if (!MatchKeyword("BY")) return Fail("expected BY after ORDER");
    OrderSpec spec;
    if (MatchKeyword("DESC")) {
      spec.descending = true;
    } else {
      MatchKeyword("ASC");
    }
    if (Peek().kind != TokenKind::kVariable) {
      return Fail("expected variable after ORDER BY");
    }
    spec.var = Variable{Advance().text};
    query.order_by = spec;
  }
  if (MatchKeyword("LIMIT")) {
    if (Peek().kind != TokenKind::kNumber) {
      return Fail("expected number after LIMIT");
    }
    query.limit = static_cast<size_t>(std::stoull(Advance().text));
  }
  if (!AtEnd()) return Fail("trailing tokens after query");
  if (query.where.empty() && query.union_branches.empty()) {
    return Fail("empty WHERE block");
  }
  return query;
}

}  // namespace

Result<SelectQuery> ParseQuery(std::string_view query_text) {
  ALEX_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query_text));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace alex::sparql
