#include "sparql/evaluator.h"

#include <algorithm>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "similarity/value.h"
#include "sparql/parser.h"

namespace alex::sparql {
namespace {

using rdf::Term;
using rdf::TermId;

/// Partial solution: one optional term per variable index.
using Binding = std::vector<std::optional<Term>>;

struct EvalContext {
  const rdf::Dictionary* dict = nullptr;
  const rdf::TripleSource* store = nullptr;
  std::unordered_map<std::string, size_t> var_index;
};

/// Index of a component's variable, or nullopt for a constant.
std::optional<size_t> VarIndexOf(const EvalContext& ctx, const TermOrVar& tv) {
  if (!IsVariable(tv)) return std::nullopt;
  return ctx.var_index.at(std::get<Variable>(tv).name);
}

/// Number of bound components a pattern has under the current binding.
int BoundScore(const EvalContext& ctx, const TriplePatternAst& tp,
               const std::vector<bool>& bound_vars) {
  int score = 0;
  for (const TermOrVar* tv : {&tp.subject, &tp.predicate, &tp.object}) {
    auto vi = VarIndexOf(ctx, *tv);
    if (!vi.has_value() || bound_vars[*vi]) ++score;
  }
  return score;
}

/// Greedy join order: repeatedly take the pattern with the most bound
/// components given the variables bound so far. `initially_bound` marks
/// variables already bound by an outer (base) solution.
std::vector<const TriplePatternAst*> OrderPatterns(
    const EvalContext& ctx, const std::vector<TriplePatternAst>& patterns,
    std::vector<bool> bound) {
  std::vector<const TriplePatternAst*> remaining;
  for (const auto& tp : patterns) remaining.push_back(&tp);
  std::vector<const TriplePatternAst*> ordered;
  while (!remaining.empty()) {
    size_t best = 0;
    int best_score = -1;
    for (size_t i = 0; i < remaining.size(); ++i) {
      int score = BoundScore(ctx, *remaining[i], bound);
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    const TriplePatternAst* chosen = remaining[best];
    remaining.erase(remaining.begin() + best);
    ordered.push_back(chosen);
    for (const TermOrVar* tv :
         {&chosen->subject, &chosen->predicate, &chosen->object}) {
      auto vi = VarIndexOf(ctx, *tv);
      if (vi.has_value()) bound[*vi] = true;
    }
  }
  return ordered;
}

/// Filters indexed by the variable they guard: slot -> the filters to check
/// when that variable binds (query order preserved). Built once per filter
/// scope, so the per-binding check below touches only the relevant filters
/// instead of rescanning every FILTER of the query.
using FiltersBySlot = std::vector<std::vector<const FilterAst*>>;

FiltersBySlot GroupFiltersBySlot(const EvalContext& ctx,
                                 const std::vector<FilterAst>& filters,
                                 size_t num_vars) {
  FiltersBySlot by_slot(num_vars);
  for (const FilterAst& f : filters) {
    auto it = ctx.var_index.find(f.var.name);
    if (it == ctx.var_index.end()) continue;  // Filter on unused var: ignore.
    by_slot[it->second].push_back(&f);
  }
  return by_slot;
}

bool FiltersPassFor(const FiltersBySlot& filters, const Binding& binding,
                    size_t just_bound) {
  if (!binding[just_bound].has_value()) return true;
  const Term& value = *binding[just_bound];
  for (const FilterAst* f : filters[just_bound]) {
    if (!CompareTerms(value, f->op, f->value)) return false;
  }
  return true;
}

/// Recursively matches patterns[pi..] extending `binding`; calls `emit` for
/// each complete solution. Returns false to stop early (LIMIT reached).
bool MatchPatterns(const EvalContext& ctx, const FiltersBySlot& filters,
                   const std::vector<const TriplePatternAst*>& patterns,
                   size_t pi, Binding* binding,
                   const std::function<bool(const Binding&)>& emit) {
  if (pi == patterns.size()) return emit(*binding);
  const TriplePatternAst& tp = *patterns[pi];

  // Resolve each component to a concrete TermId (constant / bound var) or
  // a wildcard with the variable index to bind.
  rdf::TriplePattern probe;
  std::optional<size_t> unbound[3];
  const TermOrVar* comps[3] = {&tp.subject, &tp.predicate, &tp.object};
  TermId* slots[3] = {&probe.subject, &probe.predicate, &probe.object};
  for (int i = 0; i < 3; ++i) {
    auto vi = VarIndexOf(ctx, *comps[i]);
    const Term* constant = nullptr;
    if (!vi.has_value()) {
      constant = &std::get<Term>(*comps[i]);
    } else if ((*binding)[*vi].has_value()) {
      constant = &*(*binding)[*vi];
    } else {
      unbound[i] = vi;
      continue;
    }
    auto id = ctx.dict->Lookup(*constant);
    if (!id.has_value()) return true;  // Constant absent: no matches here.
    *slots[i] = *id;
  }

  bool keep_going = true;
  ctx.store->ForEachMatch(probe, [&](const rdf::Triple& t) {
    TermId ids[3] = {t.subject, t.predicate, t.object};
    // Bind unbound variables, honoring repeated variables in the pattern.
    std::vector<std::pair<size_t, Term>> newly_bound;
    bool consistent = true;
    for (int i = 0; i < 3 && consistent; ++i) {
      if (!unbound[i].has_value()) continue;
      const size_t vi = *unbound[i];
      const Term& value = ctx.dict->term(ids[i]);
      if ((*binding)[vi].has_value()) {
        consistent = (*binding)[vi] == value;
      } else {
        // A variable may repeat within this same pattern.
        bool already = false;
        for (auto& [pvi, pval] : newly_bound) {
          if (pvi == vi) {
            already = true;
            consistent = (pval == value);
          }
        }
        if (!already) newly_bound.emplace_back(vi, value);
      }
    }
    if (!consistent) return true;
    for (auto& [vi, value] : newly_bound) {
      (*binding)[vi] = value;
      if (!FiltersPassFor(filters, *binding, vi)) {
        for (auto& [uvi, uval] : newly_bound) (*binding)[uvi].reset();
        return true;
      }
    }
    keep_going = MatchPatterns(ctx, filters, patterns, pi + 1, binding, emit);
    for (auto& [vi, value] : newly_bound) (*binding)[vi].reset();
    return keep_going;
  });
  return keep_going;
}

std::string RowKey(const std::vector<Term>& row) {
  std::string key;
  for (const Term& t : row) {
    key += t.ToNTriples();
    key += '\x1e';
  }
  return key;
}

}  // namespace

bool CompareTerms(const Term& lhs, CompareOp op, const Term& rhs) {
  const sim::TypedValue a = sim::ParseValue(lhs);
  const sim::TypedValue b = sim::ParseValue(rhs);
  int cmp = 0;
  if (a.is_numeric() && b.is_numeric()) {
    cmp = (a.real < b.real) ? -1 : (a.real > b.real ? 1 : 0);
  } else if (a.kind == sim::ValueKind::kDate &&
             b.kind == sim::ValueKind::kDate) {
    cmp = (a.date_days < b.date_days) ? -1
                                      : (a.date_days > b.date_days ? 1 : 0);
  } else {
    cmp = a.text.compare(b.text);
    cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
  }
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

Result<QueryResult> Evaluate(const SelectQuery& query,
                             const rdf::Dictionary& dict,
                             const rdf::TripleSource& store) {
  EvalContext ctx;
  ctx.dict = &dict;
  ctx.store = &store;

  const std::vector<std::string> mentioned = query.MentionedVariables();
  for (size_t i = 0; i < mentioned.size(); ++i) {
    ctx.var_index.emplace(mentioned[i], i);
  }
  for (const std::string& v : query.projection) {
    // The aggregate alias is computed, not bound by the pattern.
    if (query.aggregate.has_value() && v == query.aggregate->alias) continue;
    if (!ctx.var_index.count(v)) {
      return Status::InvalidArgument("projected variable ?" + v +
                                     " not mentioned in WHERE");
    }
  }
  if (query.aggregate.has_value() && !query.aggregate->count_var.empty() &&
      !ctx.var_index.count(query.aggregate->count_var)) {
    return Status::InvalidArgument("counted variable ?" +
                                   query.aggregate->count_var +
                                   " not mentioned in WHERE");
  }

  QueryResult result;
  result.variables = query.projection.empty() ? mentioned : query.projection;
  std::vector<size_t> out_indices;
  if (!query.aggregate.has_value()) {
    for (const std::string& v : result.variables) {
      out_indices.push_back(ctx.var_index.at(v));
    }
  }

  const FiltersBySlot query_filters =
      GroupFiltersBySlot(ctx, query.filters, mentioned.size());

  // --- Phase 1: enumerate base solutions. ---
  std::vector<Binding> solutions;
  const bool simple = query.optionals.empty() && query.union_branches.empty();
  // Only a simple query without ORDER BY may stop at the limit while
  // enumerating; everything else post-processes.
  const bool early_limit =
      simple && query.limit.has_value() && !query.order_by && !query.distinct;

  auto collect = [&](const std::vector<TriplePatternAst>& patterns,
                     size_t cap) {
    const auto ordered =
        OrderPatterns(ctx, patterns, std::vector<bool>(mentioned.size()));
    Binding binding(mentioned.size());
    MatchPatterns(ctx, query_filters, ordered, 0, &binding,
                  [&](const Binding& b) {
                    solutions.push_back(b);
                    return solutions.size() < cap;
                  });
  };

  const size_t cap = early_limit ? *query.limit : SIZE_MAX;
  if (query.union_branches.empty()) {
    collect(query.where, cap);
  } else {
    for (const auto& branch : query.union_branches) {
      collect(branch, cap);
    }
  }

  // --- Phase 2: OPTIONAL blocks (left joins), in order. ---
  for (const OptionalBlock& block : query.optionals) {
    FiltersBySlot block_filters = query_filters;
    const FiltersBySlot extra =
        GroupFiltersBySlot(ctx, block.filters, mentioned.size());
    for (size_t i = 0; i < extra.size(); ++i) {
      block_filters[i].insert(block_filters[i].end(), extra[i].begin(),
                              extra[i].end());
    }
    std::vector<Binding> extended;
    for (Binding& base : solutions) {
      std::vector<bool> bound(mentioned.size(), false);
      for (size_t i = 0; i < base.size(); ++i) bound[i] = base[i].has_value();
      const auto ordered = OrderPatterns(ctx, block.patterns, bound);
      size_t before = extended.size();
      MatchPatterns(ctx, block_filters, ordered, 0, &base,
                    [&](const Binding& b) {
                      extended.push_back(b);
                      return true;
                    });
      if (extended.size() == before) {
        extended.push_back(base);  // Left join: keep the unextended row.
      }
    }
    solutions = std::move(extended);
  }

  // --- Phase 3a: aggregation (COUNT, optionally grouped). ---
  if (query.aggregate.has_value()) {
    const AggregateSpec& agg = *query.aggregate;
    const bool grouped = !agg.group_var.empty();
    const size_t group_idx =
        grouped ? ctx.var_index.at(agg.group_var) : 0;
    const bool count_all = agg.count_var.empty();
    const size_t count_idx =
        count_all ? 0 : ctx.var_index.at(agg.count_var);

    // Group key (serialized term, or one global group) -> (term, count).
    std::map<std::string, std::pair<Term, uint64_t>> groups;
    if (!grouped) groups[""] = {Term::Literal(""), 0};
    for (const Binding& b : solutions) {
      Term group_term = Term::Literal("");
      std::string key;
      if (grouped) {
        group_term = b[group_idx].value_or(Term::Literal(""));
        key = group_term.ToNTriples();
      }
      auto& slot = groups.emplace(key, std::make_pair(group_term, 0))
                       .first->second;
      if (count_all || b[count_idx].has_value()) ++slot.second;
    }
    for (const auto& [key, term_count] : groups) {
      std::vector<Term> row;
      if (grouped) row.push_back(term_count.first);
      row.push_back(Term::TypedLiteral(std::to_string(term_count.second),
                                       std::string(rdf::kXsdInteger)));
      result.rows.push_back(std::move(row));
    }
  } else {
    // --- Phase 3b: projection and DISTINCT. ---
    std::unordered_set<std::string> seen;
    for (const Binding& b : solutions) {
      std::vector<Term> row;
      row.reserve(out_indices.size());
      for (size_t vi : out_indices) {
        row.push_back(b[vi].value_or(Term::Literal("")));
      }
      if (query.distinct && !seen.insert(RowKey(row)).second) continue;
      result.rows.push_back(std::move(row));
    }
  }

  if (query.order_by.has_value()) {
    const auto& vars = result.variables;
    const auto it =
        std::find(vars.begin(), vars.end(), query.order_by->var.name);
    if (it == vars.end()) {
      return Status::InvalidArgument("ORDER BY variable ?" +
                                     query.order_by->var.name +
                                     " not in the result");
    }
    const size_t col = static_cast<size_t>(it - vars.begin());
    const bool desc = query.order_by->descending;
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [col, desc](const std::vector<Term>& a,
                                 const std::vector<Term>& b) {
                       return desc
                                  ? CompareTerms(a[col], CompareOp::kGt, b[col])
                                  : CompareTerms(a[col], CompareOp::kLt,
                                                 b[col]);
                     });
  }
  if (query.limit.has_value() && result.rows.size() > *query.limit) {
    result.rows.resize(*query.limit);
  }
  return result;
}

Result<QueryResult> Evaluate(const SelectQuery& query,
                             const rdf::Dataset& dataset) {
  return Evaluate(query, dataset.dict(), dataset.source());
}

Result<QueryResult> EvaluateQuery(std::string_view query_text,
                                  const rdf::Dataset& dataset) {
  ALEX_ASSIGN_OR_RETURN(SelectQuery query, ParseQuery(query_text));
  return Evaluate(query, dataset);
}

Result<bool> Ask(const SelectQuery& query, const rdf::Dataset& dataset) {
  SelectQuery existential = query;
  existential.is_ask = false;
  existential.projection.clear();
  existential.order_by.reset();
  existential.limit = 1;
  ALEX_ASSIGN_OR_RETURN(QueryResult result, Evaluate(existential, dataset));
  return result.NumRows() > 0;
}

Result<bool> AskQuery(std::string_view query_text,
                      const rdf::Dataset& dataset) {
  ALEX_ASSIGN_OR_RETURN(SelectQuery query, ParseQuery(query_text));
  return Ask(query, dataset);
}

}  // namespace alex::sparql
