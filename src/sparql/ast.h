#ifndef ALEX_SPARQL_AST_H_
#define ALEX_SPARQL_AST_H_

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "rdf/term.h"

namespace alex::sparql {

/// A SPARQL variable, stored without the leading '?'.
struct Variable {
  std::string name;

  friend bool operator==(const Variable& a, const Variable& b) {
    return a.name == b.name;
  }
};

/// A triple-pattern component: a concrete RDF term or a variable.
using TermOrVar = std::variant<rdf::Term, Variable>;

inline bool IsVariable(const TermOrVar& tv) {
  return std::holds_alternative<Variable>(tv);
}

/// One triple pattern inside a basic graph pattern.
struct TriplePatternAst {
  TermOrVar subject;
  TermOrVar predicate;
  TermOrVar object;
};

/// Comparison operators allowed inside FILTER expressions.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// FILTER(?var <op> <constant>) — the subset this engine supports.
struct FilterAst {
  Variable var;
  CompareOp op = CompareOp::kEq;
  rdf::Term value;
};

/// ORDER BY ?var [ASC|DESC] — single sort key.
struct OrderSpec {
  Variable var;
  bool descending = false;
};

/// SELECT [?group] (COUNT(?x | *) AS ?alias) ... GROUP BY ?group — the
/// aggregation subset. Without GROUP BY the whole solution set is one group.
struct AggregateSpec {
  /// Grouping variable; empty for a global aggregate.
  std::string group_var;
  /// Variable counted; empty means COUNT(*) (all rows). A row where the
  /// counted variable is unbound does not count.
  std::string count_var;
  /// Output column name (the AS alias).
  std::string alias;
};

/// OPTIONAL { <bgp> [FILTER...] } — a left join against the base pattern.
/// Filters inside the block apply to the optional extension only.
struct OptionalBlock {
  std::vector<TriplePatternAst> patterns;
  std::vector<FilterAst> filters;
};

/// A parsed SELECT or ASK query:
///   SELECT [DISTINCT] (?a ?b | *) WHERE { <group> }
///     [ORDER BY [ASC|DESC] ?v] [LIMIT n]
///   ASK [WHERE] { <group> }
/// where <group> is either
///   <bgp> [FILTER...]* [OPTIONAL { ... }]*        (join + left joins), or
///   { <bgp> } UNION { <bgp> } [UNION { <bgp> }]*  (alternation).
struct SelectQuery {
  /// True for ASK queries: the result is row existence, projection empty.
  bool is_ask = false;
  bool distinct = false;
  /// Projected variable names; empty means SELECT *.
  std::vector<std::string> projection;
  /// Base basic graph pattern. Empty when `union_branches` is used.
  std::vector<TriplePatternAst> where;
  std::vector<FilterAst> filters;
  /// Left-join blocks evaluated against the base pattern, in order.
  std::vector<OptionalBlock> optionals;
  /// Non-empty for a UNION query: each branch is an independent BGP and
  /// the result is the concatenation of all branches' solutions.
  std::vector<std::vector<TriplePatternAst>> union_branches;
  /// Set for COUNT queries; `projection` then holds [group_var,] alias.
  std::optional<AggregateSpec> aggregate;
  std::optional<OrderSpec> order_by;
  std::optional<size_t> limit;

  /// All variables mentioned anywhere in the WHERE clause (base pattern,
  /// OPTIONAL blocks, UNION branches), in first-seen order.
  std::vector<std::string> MentionedVariables() const;
};

}  // namespace alex::sparql

#endif  // ALEX_SPARQL_AST_H_
