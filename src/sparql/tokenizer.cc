#include "sparql/tokenizer.h"

#include <cctype>
#include <unordered_set>

#include "common/string_util.h"

namespace alex::sparql {
namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "WHERE", "FILTER", "DISTINCT", "LIMIT",    "PREFIX", "ASK",
      "ORDER",  "BY",    "ASC",    "DESC",     "OPTIONAL", "UNION",  "COUNT",
      "AS",     "GROUP",
  };
  return *kKeywords;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsNameChar(char c) {
  return IsIdentChar(c) || c == '-' || c == '.';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view q) {
  std::vector<Token> out;
  size_t i = 0;
  auto fail = [&](const std::string& msg) {
    return Status::ParseError(msg + " at offset " + std::to_string(i));
  };
  while (i < q.size()) {
    char c = q[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // Comment to end of line.
      while (i < q.size() && q[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (c == '?' || c == '$') {
      size_t start = ++i;
      while (i < q.size() && IsIdentChar(q[i])) ++i;
      if (i == start) return fail("empty variable name");
      tok.kind = TokenKind::kVariable;
      tok.text = std::string(q.substr(start, i - start));
    } else if (c == '<') {
      // '<' opens an IRI only when a '>' appears before any whitespace;
      // otherwise it is the less-than operator (e.g. FILTER(?x < 5)).
      size_t end = std::string_view::npos;
      for (size_t j = i + 1; j < q.size(); ++j) {
        if (q[j] == '>') {
          end = j;
          break;
        }
        if (std::isspace(static_cast<unsigned char>(q[j]))) break;
      }
      if (end == std::string_view::npos) {
        tok.kind = TokenKind::kOp;
        tok.text = "<";
        ++i;
        if (i < q.size() && q[i] == '=') {
          tok.text += '=';
          ++i;
        }
      } else {
        tok.kind = TokenKind::kIri;
        tok.text = std::string(q.substr(i + 1, end - i - 1));
        i = end + 1;
      }
    } else if (c == '"') {
      std::string body;
      ++i;
      bool closed = false;
      while (i < q.size()) {
        if (q[i] == '"') {
          closed = true;
          ++i;
          break;
        }
        if (q[i] == '\\' && i + 1 < q.size()) {
          char e = q[i + 1];
          if (e == 'n') body += '\n';
          else if (e == 't') body += '\t';
          else if (e == 'r') body += '\r';
          else if (e == '"') body += '"';
          else if (e == '\\') body += '\\';
          else return fail("unknown escape");
          i += 2;
          continue;
        }
        body += q[i++];
      }
      if (!closed) return fail("unterminated string");
      tok.kind = TokenKind::kString;
      tok.text = std::move(body);
      if (i < q.size() && q[i] == '@') {
        size_t start = ++i;
        while (i < q.size() && (std::isalnum(static_cast<unsigned char>(q[i])) ||
                                q[i] == '-')) {
          ++i;
        }
        tok.language = std::string(q.substr(start, i - start));
      } else if (i + 1 < q.size() && q[i] == '^' && q[i + 1] == '^') {
        i += 2;
        if (i >= q.size() || q[i] != '<') return fail("datatype must be IRI");
        size_t end = q.find('>', i + 1);
        if (end == std::string_view::npos) {
          return fail("unterminated datatype IRI");
        }
        tok.datatype = std::string(q.substr(i + 1, end - i - 1));
        i = end + 1;
      }
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               ((c == '-' || c == '+') && i + 1 < q.size() &&
                std::isdigit(static_cast<unsigned char>(q[i + 1])))) {
      size_t start = i;
      if (c == '-' || c == '+') ++i;
      bool dot = false;
      while (i < q.size() &&
             (std::isdigit(static_cast<unsigned char>(q[i])) ||
              (q[i] == '.' && !dot && i + 1 < q.size() &&
               std::isdigit(static_cast<unsigned char>(q[i + 1]))))) {
        if (q[i] == '.') dot = true;
        ++i;
      }
      tok.kind = TokenKind::kNumber;
      tok.text = std::string(q.substr(start, i - start));
    } else if (c == '{' || c == '}' || c == '.' || c == '(' || c == ')' ||
               c == ',' || c == ';' || c == '*') {
      tok.kind = TokenKind::kPunct;
      tok.text = std::string(1, c);
      ++i;
    } else if (c == '=' ) {
      tok.kind = TokenKind::kOp;
      tok.text = "=";
      ++i;
    } else if (c == '!' && i + 1 < q.size() && q[i + 1] == '=') {
      tok.kind = TokenKind::kOp;
      tok.text = "!=";
      i += 2;
    } else if (c == '<' || c == '>') {
      // '<' as operator is handled above via IRI; only '>' reaches here.
      tok.kind = TokenKind::kOp;
      tok.text = std::string(1, c);
      ++i;
      if (i < q.size() && q[i] == '=') {
        tok.text += '=';
        ++i;
      }
    } else if (std::isalpha(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < q.size() && IsNameChar(q[i])) ++i;
      // Trailing dots belong to triple terminators, not the name.
      size_t len = i - start;
      while (len > 0 && q[start + len - 1] == '.') {
        --len;
        --i;
      }
      std::string word(q.substr(start, len));
      // Prefixed name? (contains ':').
      if (i < q.size() && q[i] == ':') {
        ++i;
        size_t lstart = i;
        while (i < q.size() && IsNameChar(q[i])) ++i;
        size_t llen = i - lstart;
        while (llen > 0 && q[lstart + llen - 1] == '.') {
          --llen;
          --i;
        }
        tok.kind = TokenKind::kPrefixedName;
        tok.text = word + ":" + std::string(q.substr(lstart, llen));
      } else if (word == "a") {
        tok.kind = TokenKind::kA;
        tok.text = "a";
      } else {
        std::string upper = ToLowerAscii(word);
        for (char& ch : upper) ch = static_cast<char>(std::toupper(
            static_cast<unsigned char>(ch)));
        if (!Keywords().count(upper)) {
          return fail("unknown keyword '" + word + "'");
        }
        tok.kind = TokenKind::kKeyword;
        tok.text = upper;
      }
    } else if (c == ':') {
      // Prefixed name with empty prefix, e.g. ":local".
      ++i;
      size_t lstart = i;
      while (i < q.size() && IsNameChar(q[i])) ++i;
      size_t llen = i - lstart;
      while (llen > 0 && q[lstart + llen - 1] == '.') {
        --llen;
        --i;
      }
      tok.kind = TokenKind::kPrefixedName;
      tok.text = ":" + std::string(q.substr(lstart, llen));
    } else {
      return fail(std::string("unexpected character '") + c + "'");
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = q.size();
  out.push_back(std::move(end));
  return out;
}

}  // namespace alex::sparql
