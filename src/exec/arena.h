#ifndef ALEX_EXEC_ARENA_H_
#define ALEX_EXEC_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace alex::exec {

/// Chunked bump (region) allocator for phase-scoped temporaries: the
/// link-space build and dictionary interning allocate millions of small
/// nodes that all die together, so individual free() calls — and the
/// global allocator's locks and size-class bookkeeping — are pure
/// overhead. Allocation is a pointer bump within the current chunk; a full
/// chunk moves on to the next (reusing retained chunks before asking the
/// OS for more); deallocation is a no-op; Reset() makes every chunk's
/// bytes reusable at once.
///
/// Lifetime rule: memory returned by Allocate() is valid until Reset() or
/// destruction, whichever comes first — never hand arena-backed containers
/// to anything that outlives the arena. Requests larger than the chunk
/// size get a dedicated chunk of exactly the requested size (also retained
/// across Reset). Not thread-safe: one arena per worker/build, by design —
/// cross-thread sharing would reintroduce the synchronization this class
/// exists to remove.
///
/// Growth caveat for geometric containers (vectors, hash tables): the old
/// buffer's bytes are not reclaimed until Reset, so peak arena footprint
/// is bounded by ~2x the final container size. That is the deliberate
/// trade — bytes for zero free()s — and why arenas are scoped to a build
/// phase instead of living forever.
class ArenaAllocator {
 public:
  static constexpr size_t kDefaultChunkBytes = 256 * 1024;

  explicit ArenaAllocator(size_t chunk_bytes = kDefaultChunkBytes);
  ~ArenaAllocator();

  ArenaAllocator(const ArenaAllocator&) = delete;
  ArenaAllocator& operator=(const ArenaAllocator&) = delete;

  /// Returns `bytes` bytes aligned to `align` (a power of two). Never
  /// returns nullptr; throws std::bad_alloc only if the OS refuses a new
  /// chunk. Zero-byte requests return a valid unique-ish pointer.
  void* Allocate(size_t bytes, size_t align);

  /// Rewinds every chunk to empty. All previously returned pointers become
  /// invalid; chunk memory is retained for reuse (an arena that built one
  /// partition rebuilds the next without touching the OS allocator).
  void Reset();

  /// Bytes handed out since construction/Reset (including alignment pad).
  size_t bytes_allocated() const { return bytes_allocated_; }

  /// Bytes held in chunks (the arena's resident footprint).
  size_t bytes_reserved() const { return bytes_reserved_; }

  size_t num_chunks() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  /// Ensures chunks_[active_] has room for (bytes, align); advances through
  /// retained chunks and appends a new one if none fits.
  void* AllocateSlow(size_t bytes, size_t align);

  std::vector<Chunk> chunks_;
  size_t active_ = 0;  ///< Index of the chunk currently bumping.
  size_t chunk_bytes_;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

/// std-compatible allocator over an ArenaAllocator, so standard containers
/// can hold build-phase scratch in the arena. A default-constructed (or
/// null-arena) ArenaStl falls back to the global allocator — containers
/// are declared with one allocator type and the arena-vs-heap choice stays
/// a runtime decision, keeping the arena and legacy code paths literally
/// the same code.
///
/// Allocators compare equal iff they use the same arena (or are both
/// heap-backed); deallocate() is a no-op for arena-backed instances.
template <typename T>
class ArenaStl {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  ArenaStl() noexcept = default;
  explicit ArenaStl(ArenaAllocator* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaStl(const ArenaStl<U>& other) noexcept : arena_(other.arena()) {}

  T* allocate(size_t n) {
    if (n > SIZE_MAX / sizeof(T)) throw std::bad_alloc();
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
  }

  ArenaAllocator* arena() const { return arena_; }

  friend bool operator==(const ArenaStl& a, const ArenaStl& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaStl& a, const ArenaStl& b) {
    return !(a == b);
  }

 private:
  template <typename U>
  friend class ArenaStl;

  ArenaAllocator* arena_ = nullptr;
};

}  // namespace alex::exec

#endif  // ALEX_EXEC_ARENA_H_
