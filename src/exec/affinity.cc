#include "exec/affinity.h"

#ifdef __linux__
#include <pthread.h>
#include <sched.h>

#include <cstring>
#endif

namespace alex::exec {

bool PinCurrentThreadToCpu(int cpu) {
#ifdef __linux__
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

void SetCurrentThreadName(const char* name) {
#ifdef __linux__
  char truncated[16];
  std::strncpy(truncated, name, sizeof(truncated) - 1);
  truncated[sizeof(truncated) - 1] = '\0';
  pthread_setname_np(pthread_self(), truncated);
#else
  (void)name;
#endif
}

int CurrentCpu() {
#ifdef __linux__
  return sched_getcpu();
#else
  return -1;
#endif
}

}  // namespace alex::exec
