#include "exec/topology.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>
#include <thread>
#include <unordered_map>

#ifdef __linux__
#include <sched.h>
#endif

namespace alex::exec {
namespace {

/// Reads one small sysfs file; empty string when absent/unreadable.
std::string ReadFileToString(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

/// cpu id -> NUMA node, from <root>/devices/system/node/node<N>/cpulist.
/// Empty map when the node directory is absent (no NUMA info).
std::unordered_map<int, int> ReadNodeMap(const std::string& sysfs_root) {
  std::unordered_map<int, int> node_of;
  // Nodes are dense in practice; scan until the first gap with a generous
  // cap so a fabricated test tree can still use a handful of nodes.
  int misses = 0;
  for (int node = 0; node < 4096 && misses < 2; ++node) {
    const std::string text = ReadFileToString(
        sysfs_root + "/devices/system/node/node" + std::to_string(node) +
        "/cpulist");
    if (text.empty()) {
      ++misses;
      continue;
    }
    misses = 0;
    for (int cpu : ParseCpuList(text)) node_of.emplace(cpu, node);
  }
  return node_of;
}

/// Kernel cpu ids this process may run on, via the affinity mask. Empty
/// (with *supported = false) when the syscall is unavailable or denied.
std::vector<int> ReadAllowedCpus(bool* supported) {
  *supported = false;
#ifdef __linux__
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    *supported = true;
    std::vector<int> cpus;
    for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
      if (CPU_ISSET(cpu, &set)) cpus.push_back(cpu);
    }
    return cpus;
  }
#endif
  return {};
}

size_t CountNodes(const std::vector<CpuInfo>& cpus) {
  std::set<int> nodes;
  for (const CpuInfo& c : cpus) nodes.insert(c.node);
  return nodes.empty() ? 1 : nodes.size();
}

}  // namespace

std::vector<int> ParseCpuList(std::string_view text) {
  std::vector<int> cpus;
  size_t i = 0;
  auto parse_int = [&](int* out) {
    size_t start = i;
    long value = 0;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      value = value * 10 + (text[i] - '0');
      if (value > 1 << 22) return false;  // Absurd cpu id: malformed.
      ++i;
    }
    if (i == start) return false;
    *out = static_cast<int>(value);
    return true;
  };
  while (i < text.size()) {
    if (text[i] == ' ' || text[i] == '\n' || text[i] == '\t' ||
        text[i] == '\r' || text[i] == ',') {
      ++i;
      continue;
    }
    int lo = 0;
    if (!parse_int(&lo)) break;
    int hi = lo;
    if (i < text.size() && text[i] == '-') {
      ++i;
      if (!parse_int(&hi) || hi < lo) break;
    }
    for (int cpu = lo; cpu <= hi; ++cpu) cpus.push_back(cpu);
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

CpuTopology CpuTopology::ProbeAt(const std::string& sysfs_root) {
  CpuTopology topo;
  std::vector<int> allowed = ReadAllowedCpus(&topo.affinity_supported_);
  if (allowed.empty()) {
    // No affinity information: fall back to hardware_concurrency() dense
    // ids. hardware_concurrency() may itself report 0; never go below 1.
    const unsigned hw = std::thread::hardware_concurrency();
    for (int cpu = 0; cpu < static_cast<int>(hw == 0 ? 1 : hw); ++cpu) {
      allowed.push_back(cpu);
    }
  }
  const std::unordered_map<int, int> node_of = ReadNodeMap(sysfs_root);
  topo.cpus_.reserve(allowed.size());
  for (int cpu : allowed) {
    auto it = node_of.find(cpu);
    topo.cpus_.push_back(CpuInfo{cpu, it == node_of.end() ? 0 : it->second});
  }
  topo.num_nodes_ = CountNodes(topo.cpus_);
  return topo;
}

CpuTopology CpuTopology::Probe() { return ProbeAt("/sys"); }

const CpuTopology& CpuTopology::Detect() {
  static const CpuTopology* topo = new CpuTopology(Probe());
  return *topo;
}

CpuTopology CpuTopology::ForTesting(std::vector<CpuInfo> cpus,
                                    bool affinity_supported) {
  CpuTopology topo;
  topo.cpus_ = std::move(cpus);
  if (topo.cpus_.empty()) topo.cpus_.push_back(CpuInfo{0, 0});
  std::sort(topo.cpus_.begin(), topo.cpus_.end(),
            [](const CpuInfo& a, const CpuInfo& b) { return a.cpu < b.cpu; });
  topo.num_nodes_ = CountNodes(topo.cpus_);
  topo.affinity_supported_ = affinity_supported;
  return topo;
}

int CpuTopology::NodeOfCpu(int cpu) const {
  for (const CpuInfo& c : cpus_) {
    if (c.cpu == cpu) return c.node;
  }
  return 0;
}

std::vector<int> CpuTopology::CpusOnNode(int node) const {
  std::vector<int> out;
  for (const CpuInfo& c : cpus_) {
    if (c.node == node) out.push_back(c.cpu);
  }
  return out;
}

}  // namespace alex::exec
