#ifndef ALEX_EXEC_AFFINITY_H_
#define ALEX_EXEC_AFFINITY_H_

namespace alex::exec {

/// Pins the calling thread to one kernel cpu id. Returns true on success,
/// false when the platform has no affinity syscalls, the id is invalid, or
/// the call is denied (containers, seccomp). Failure leaves the thread's
/// affinity untouched — callers must treat false as "run unpinned", never
/// as fatal.
bool PinCurrentThreadToCpu(int cpu);

/// Best-effort thread naming (shows up in /proc, gdb, perf). Names longer
/// than the platform limit (15 chars on Linux) are truncated. No-op where
/// unsupported.
void SetCurrentThreadName(const char* name);

/// Kernel cpu id the calling thread is currently running on, or -1 when
/// the platform cannot say.
int CurrentCpu();

}  // namespace alex::exec

#endif  // ALEX_EXEC_AFFINITY_H_
