#ifndef ALEX_EXEC_TOPOLOGY_H_
#define ALEX_EXEC_TOPOLOGY_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace alex::exec {

/// One logical CPU this process may run on.
struct CpuInfo {
  int cpu = 0;   ///< Kernel CPU id (the id affinity masks use).
  int node = 0;  ///< NUMA node the CPU belongs to (0 when unknown).
};

/// Hardware topology as visible to this process: the CPUs the scheduler
/// will actually give us (the affinity mask, not the machine total — in a
/// container with a 4-CPU quota on a 64-CPU host the answer is 4) and the
/// NUMA node of each, read from /sys/devices/system/node.
///
/// Probing never fails. Every degraded environment — no /sys, affinity
/// syscalls denied by seccomp, non-Linux build — collapses to a single-node
/// topology over hardware_concurrency() CPUs with affinity_supported()
/// false, and everything built on top (pinning, locality-ordered stealing)
/// degrades to the topology-blind behavior instead of aborting.
class CpuTopology {
 public:
  /// Probes the live system.
  static CpuTopology Probe();

  /// Probe against an alternate sysfs root (tests fabricate node dirs).
  /// `sysfs_root` replaces "/sys" — node lists are read from
  /// `<sysfs_root>/devices/system/node/node<N>/cpulist`.
  static CpuTopology ProbeAt(const std::string& sysfs_root);

  /// Process-wide probe, performed once and cached.
  static const CpuTopology& Detect();

  /// Builds an explicit topology (tests; also lets callers simulate a
  /// machine). `affinity_supported` controls whether pinning is attempted.
  static CpuTopology ForTesting(std::vector<CpuInfo> cpus,
                                bool affinity_supported);

  /// CPUs available to this process, ascending by cpu id. Never empty.
  const std::vector<CpuInfo>& cpus() const { return cpus_; }
  size_t num_cpus() const { return cpus_.size(); }

  /// Distinct NUMA nodes across cpus(). At least 1.
  size_t num_nodes() const { return num_nodes_; }

  /// Node of a kernel cpu id, or 0 if the id is not in cpus().
  int NodeOfCpu(int cpu) const;

  /// CPUs of `node`, ascending (empty for unknown nodes).
  std::vector<int> CpusOnNode(int node) const;

  /// True when affinity syscalls worked during the probe, i.e. pinning has
  /// a chance of succeeding. False is a promise of graceful degradation,
  /// not an error.
  bool affinity_supported() const { return affinity_supported_; }

  /// The one place pool sizes come from: the number of CPUs the process is
  /// actually allowed to use (at least 1). Replaces the ad-hoc
  /// hardware_concurrency() calls that ignored container CPU restrictions.
  size_t RecommendedWorkers() const { return cpus_.empty() ? 1 : cpus_.size(); }

 private:
  CpuTopology() = default;

  std::vector<CpuInfo> cpus_;
  size_t num_nodes_ = 1;
  bool affinity_supported_ = false;
};

/// Parses a kernel cpulist ("0-3,8,10-11") into ascending cpu ids.
/// Tolerates surrounding whitespace/newlines; malformed input yields the
/// ids parsed up to the malformation (never throws).
std::vector<int> ParseCpuList(std::string_view text);

}  // namespace alex::exec

#endif  // ALEX_EXEC_TOPOLOGY_H_
