#include "exec/arena.h"

#include <algorithm>

#include "obs/metrics.h"

namespace alex::exec {
namespace {

/// Chunk-granular metrics only: per-Allocate counters would put atomics on
/// the bump path the arena exists to keep allocation-free.
struct ArenaMetrics {
  obs::Counter& arena_bytes =
      obs::MetricsRegistry::Global().counter("alloc.arena_bytes");
  obs::Counter& arena_chunks =
      obs::MetricsRegistry::Global().counter("alloc.arena_chunks");

  static ArenaMetrics& Get() {
    static ArenaMetrics* metrics = new ArenaMetrics();
    return *metrics;
  }
};

constexpr size_t AlignUp(size_t value, size_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

ArenaAllocator::ArenaAllocator(size_t chunk_bytes)
    : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}

ArenaAllocator::~ArenaAllocator() = default;

void* ArenaAllocator::Allocate(size_t bytes, size_t align) {
  if (align == 0) align = 1;
  if (!chunks_.empty()) {
    Chunk& chunk = chunks_[active_];
    const uintptr_t base = reinterpret_cast<uintptr_t>(chunk.data.get());
    const uintptr_t cursor = AlignUp(base + chunk.used, align);
    if (cursor + bytes <= base + chunk.size) {
      bytes_allocated_ += (cursor + bytes) - (base + chunk.used);
      chunk.used = (cursor + bytes) - base;
      return reinterpret_cast<void*>(cursor);
    }
  }
  return AllocateSlow(bytes, align);
}

void* ArenaAllocator::AllocateSlow(size_t bytes, size_t align) {
  // Try the retained chunks after the active one (refilled by Reset).
  // `bytes + align` guarantees room for any alignment skew of the chunk
  // base; new[] returns max_align_t-aligned memory, so the skew is only
  // real for over-aligned (e.g. cache-line) requests.
  const size_t needed = bytes + align;
  for (size_t i = chunks_.empty() ? 0 : active_ + 1; i < chunks_.size(); ++i) {
    if (chunks_[i].size >= needed) {
      std::swap(chunks_[active_ + 1], chunks_[i]);
      ++active_;
      return Allocate(bytes, align);
    }
  }
  Chunk chunk;
  chunk.size = std::max(chunk_bytes_, needed);
  chunk.data = std::make_unique<std::byte[]>(chunk.size);
  bytes_reserved_ += chunk.size;
  ArenaMetrics& metrics = ArenaMetrics::Get();
  metrics.arena_bytes.Add(chunk.size);
  metrics.arena_chunks.Add(1);
  if (chunks_.empty()) {
    chunks_.push_back(std::move(chunk));
    active_ = 0;
  } else {
    chunks_.insert(chunks_.begin() + static_cast<ptrdiff_t>(active_) + 1,
                   std::move(chunk));
    ++active_;
  }
  return Allocate(bytes, align);
}

void ArenaAllocator::Reset() {
  for (Chunk& chunk : chunks_) chunk.used = 0;
  active_ = 0;
  bytes_allocated_ = 0;
}

}  // namespace alex::exec
