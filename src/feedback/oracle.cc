#include "feedback/oracle.h"

namespace alex::feedback {

FeedbackItem Oracle::Judge(rdf::EntityId left, rdf::EntityId right) {
  FeedbackItem item;
  item.left = left;
  item.right = right;
  item.positive = truth_->Contains(left, right);
  if (error_rate_ > 0.0 && rng_.Bernoulli(error_rate_)) {
    item.positive = !item.positive;
  }
  return item;
}

std::optional<FeedbackItem> Oracle::SampleAndJudge(
    const std::vector<PairKey>& candidates) {
  if (candidates.empty()) return std::nullopt;
  const PairKey key =
      candidates[static_cast<size_t>(rng_.UniformInt(candidates.size()))];
  return Judge(PairLeft(key), PairRight(key));
}

}  // namespace alex::feedback
