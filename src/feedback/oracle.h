#ifndef ALEX_FEEDBACK_ORACLE_H_
#define ALEX_FEEDBACK_ORACLE_H_

#include <optional>
#include <vector>

#include "common/rng.h"
#include "feedback/ground_truth.h"

namespace alex::feedback {

/// One user feedback item over a candidate link: approval or rejection of
/// the query answer that the link produced (paper Section 3.2).
struct FeedbackItem {
  rdf::EntityId left = rdf::kInvalidEntityId;
  rdf::EntityId right = rdf::kInvalidEntityId;
  bool positive = false;

  PairKey key() const { return PackPair(left, right); }
};

/// Simulated user, matching the paper's feedback methodology (Section 7.1):
/// a randomly chosen candidate link is compared against the ground truth;
/// membership yields positive feedback, absence yields negative feedback.
/// With probability `error_rate` the verdict is flipped (Appendix C studies
/// 10% incorrect feedback).
class Oracle {
 public:
  /// `truth` is borrowed and must outlive the oracle.
  Oracle(const GroundTruth* truth, double error_rate, uint64_t seed)
      : truth_(truth), error_rate_(error_rate), rng_(seed) {}

  /// Judges one candidate link.
  FeedbackItem Judge(rdf::EntityId left, rdf::EntityId right);

  /// Samples one link uniformly from `candidates` and judges it.
  /// Returns nullopt if `candidates` is empty.
  std::optional<FeedbackItem> SampleAndJudge(
      const std::vector<PairKey>& candidates);

  double error_rate() const { return error_rate_; }

  /// The oracle's RNG stream, for checkpoint/resume: a restored oracle
  /// samples and mis-judges exactly as the saved one would have.
  Rng::State SaveRngState() const { return rng_.SaveState(); }
  void RestoreRngState(const Rng::State& state) { rng_.RestoreState(state); }

 private:
  const GroundTruth* truth_;
  double error_rate_;
  Rng rng_;
};

}  // namespace alex::feedback

#endif  // ALEX_FEEDBACK_ORACLE_H_
