#ifndef ALEX_FEEDBACK_GROUND_TRUTH_H_
#define ALEX_FEEDBACK_GROUND_TRUTH_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "rdf/dataset.h"

namespace alex::feedback {

/// An entity pair across two datasets, packed into one 64-bit key
/// (left EntityId in the high half, right in the low half).
using PairKey = uint64_t;

inline PairKey PackPair(rdf::EntityId left, rdf::EntityId right) {
  return (static_cast<uint64_t>(left) << 32) | static_cast<uint64_t>(right);
}
inline rdf::EntityId PairLeft(PairKey key) {
  return static_cast<rdf::EntityId>(key >> 32);
}
inline rdf::EntityId PairRight(PairKey key) {
  return static_cast<rdf::EntityId>(key & 0xffffffffULL);
}

/// The reference set of correct owl:sameAs links between a dataset pair.
///
/// In the paper this is the (manually curated) set of pre-existing LOD-cloud
/// links (Section 7.1 "Ground Truth"); here it is produced by the synthetic
/// generator, which knows exactly which entities co-refer.
class GroundTruth {
 public:
  GroundTruth() = default;

  void Add(rdf::EntityId left, rdf::EntityId right) {
    pairs_.insert(PackPair(left, right));
  }

  bool Contains(rdf::EntityId left, rdf::EntityId right) const {
    return pairs_.count(PackPair(left, right)) > 0;
  }
  bool Contains(PairKey key) const { return pairs_.count(key) > 0; }

  size_t size() const { return pairs_.size(); }
  bool empty() const { return pairs_.empty(); }

  const std::unordered_set<PairKey>& pairs() const { return pairs_; }

  std::vector<PairKey> AsVector() const {
    return std::vector<PairKey>(pairs_.begin(), pairs_.end());
  }

 private:
  std::unordered_set<PairKey> pairs_;
};

}  // namespace alex::feedback

#endif  // ALEX_FEEDBACK_GROUND_TRUTH_H_
