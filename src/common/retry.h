#ifndef ALEX_COMMON_RETRY_H_
#define ALEX_COMMON_RETRY_H_

#include <limits>

#include "common/rng.h"

namespace alex {

/// "No limit" sentinel for timeouts and deadlines (virtual seconds).
inline constexpr double kNoTimeout = std::numeric_limits<double>::infinity();

/// Retry discipline for calls against unreliable remote endpoints: capped
/// exponential backoff with multiplicative jitter, a per-attempt timeout,
/// and a per-query deadline that bounds the total time spent (attempts plus
/// backoff waits). All durations are in (virtual) seconds; the jitter draw
/// comes from an explicit Rng so schedules are reproducible.
struct RetryPolicy {
  /// Total tries including the first; values < 1 behave like 1.
  int max_attempts = 3;
  double initial_backoff_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 2.0;
  /// Backoff is scaled by a uniform draw from [1 - j, 1 + j]; 0 disables
  /// jitter. Values outside [0, 1] are clamped.
  double jitter_fraction = 0.2;
  /// Budget for one attempt; an attempt exceeding it counts as a timeout
  /// failure (kDeadlineExceeded) and is retried like a transient error.
  double attempt_timeout_seconds = kNoTimeout;
  /// Budget for a whole query across all endpoints, attempts, and backoff
  /// waits, measured from query start.
  double deadline_seconds = kNoTimeout;

  /// Backoff to wait after the `failures`-th failed attempt (1-based):
  /// initial * multiplier^(failures-1), capped, then jittered via `rng`.
  /// `rng` advances exactly once when jitter is enabled.
  double BackoffSeconds(int failures, Rng* rng) const;
};

}  // namespace alex

#endif  // ALEX_COMMON_RETRY_H_
