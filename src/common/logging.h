#ifndef ALEX_COMMON_LOGGING_H_
#define ALEX_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace alex {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level below which messages are dropped.
/// Thread-safe. Default is kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Applies the ALEX_LOG_LEVEL environment variable (one of debug, info,
/// warning, error; case-insensitive) to the global log level, so binaries
/// are verbosity-controllable without recompiling. Unset or unrecognized
/// values leave the level unchanged. Call once at the top of main().
void InitLoggingFromEnv();

namespace internal_logging {

/// Stream-style single-message emitter; flushes one line to stderr on
/// destruction. Use via the ALEX_LOG macro, not directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace alex

/// Usage: ALEX_LOG(kInfo) << "built " << n << " links";
#define ALEX_LOG(severity)                                      \
  ::alex::internal_logging::LogMessage(::alex::LogLevel::severity, \
                                       __FILE__, __LINE__)

#endif  // ALEX_COMMON_LOGGING_H_
