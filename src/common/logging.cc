#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace alex {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void InitLoggingFromEnv() {
  const char* raw = std::getenv("ALEX_LOG_LEVEL");
  if (raw == nullptr) return;
  std::string value(raw);
  for (char& c : value) c = static_cast<char>(std::tolower(c));
  if (value == "debug") {
    SetLogLevel(LogLevel::kDebug);
  } else if (value == "info") {
    SetLogLevel(LogLevel::kInfo);
  } else if (value == "warning" || value == "warn") {
    SetLogLevel(LogLevel::kWarning);
  } else if (value == "error") {
    SetLogLevel(LogLevel::kError);
  } else {
    ALEX_LOG(kWarning) << "unrecognized ALEX_LOG_LEVEL '" << raw
                       << "' (expected debug|info|warning|error); keeping "
                       << "current level";
  }
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelTag(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  stream_ << "\n";
  const std::string line = stream_.str();
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fputs(line.c_str(), stderr);
}

}  // namespace internal_logging
}  // namespace alex
