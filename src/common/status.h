#ifndef ALEX_COMMON_STATUS_H_
#define ALEX_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace alex {

/// Error categories used throughout the library. Mirrors the
/// Arrow/RocksDB-style status idiom: no exceptions cross public API
/// boundaries; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kParseError,
  kIOError,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
};

/// Returns a human-readable name for a status code, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// Cheap to copy in the OK case (empty message). Construct error statuses
/// through the named factories, e.g. `Status::InvalidArgument("bad θ")`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "Code: message" (or "OK").
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status to the caller.
#define ALEX_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::alex::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (false)

}  // namespace alex

#endif  // ALEX_COMMON_STATUS_H_
