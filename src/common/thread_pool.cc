#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "exec/affinity.h"
#include "obs/metrics.h"

namespace alex {
namespace {

/// Pool metrics: queue depth (with high-water mark), time tasks spend
/// queued before a worker picks them up, task run time, and work steals.
/// Handles are cached once; updates are relaxed atomics, invisible to task
/// latency.
struct PoolMetrics {
  obs::Counter& tasks = obs::MetricsRegistry::Global().counter(
      "threadpool.tasks");
  obs::Gauge& queue_depth = obs::MetricsRegistry::Global().gauge(
      "threadpool.queue_depth");
  obs::Histogram& wait_seconds = obs::MetricsRegistry::Global().histogram(
      "threadpool.task_wait_seconds");
  obs::Histogram& run_seconds = obs::MetricsRegistry::Global().histogram(
      "threadpool.task_run_seconds");
  obs::Counter& task_exceptions = obs::MetricsRegistry::Global().counter(
      "threadpool.task_exceptions");
  obs::Counter& steals = obs::MetricsRegistry::Global().counter(
      "threadpool.steals");
  obs::Counter& pinned_workers = obs::MetricsRegistry::Global().counter(
      "threadpool.pinned_workers");

  static PoolMetrics& Get() {
    static PoolMetrics* metrics = new PoolMetrics();
    return *metrics;
  }
};

/// Identity of the current pool worker, so Submit from inside a task lands
/// on the submitting worker's own queue (the recursion-friendly fast path)
/// instead of bouncing through the round-robin counter.
thread_local ThreadPool* tls_pool = nullptr;
thread_local size_t tls_worker = 0;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads)
    : ThreadPool(num_threads, Options{}) {}

ThreadPool::ThreadPool(size_t num_threads, const Options& options)
    : options_(options),
      topology_(options.topology != nullptr ? *options.topology
                                            : exec::CpuTopology::Detect()) {
  Start(num_threads == 0 ? 1 : num_threads);
}

void ThreadPool::Start(size_t num_threads) {
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }

  // Steal order: same-node victims first (stolen tasks touch memory that is
  // at least node-local), then the rest; both groups start at self+1 and
  // wrap, so concurrent thieves spread over distinct victims.
  const auto node_of_worker = [this](size_t w) {
    const std::vector<exec::CpuInfo>& cpus = topology_.cpus();
    return cpus.empty() ? 0 : cpus[w % cpus.size()].node;
  };
  steal_order_.resize(num_threads);
  for (size_t w = 0; w < num_threads; ++w) {
    const int home_node = node_of_worker(w);
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t k = 1; k < num_threads; ++k) {
        const size_t victim = (w + k) % num_threads;
        const bool same_node = node_of_worker(victim) == home_node;
        if (same_node == (pass == 0)) steal_order_[w].push_back(victim);
      }
    }
  }

  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    shutting_down_.store(true, std::memory_order_release);
  }
  task_available_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t target;
  if (tls_pool == this) {
    target = tls_worker;
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  Enqueue(std::move(task), target);
}

void ThreadPool::Submit(std::function<void()> task, size_t affinity_hint) {
  Enqueue(std::move(task), affinity_hint % queues_.size());
}

void ThreadPool::Enqueue(std::function<void()> task, size_t target) {
  PoolMetrics& metrics = PoolMetrics::Get();
  metrics.tasks.Add(1);
  unfinished_.fetch_add(1, std::memory_order_relaxed);
  // pending_ is bumped BEFORE the push: a worker that wins the race and
  // pops the task immediately never underflows the counter. The window
  // where pending_ over-reports by one only costs a sleeper a spurious
  // recheck.
  const size_t depth = pending_.fetch_add(1, std::memory_order_seq_cst) + 1;
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    queues_[target]->tasks.push_back(
        QueuedTask{std::move(task), std::chrono::steady_clock::now()});
  }
  metrics.queue_depth.Set(static_cast<int64_t>(depth));
  metrics.queue_depth.UpdateMax(static_cast<int64_t>(depth));
  // Dekker handshake with WorkerLoop: the worker publishes sleepers_ then
  // reads pending_ (under sleep_mu_); we publish pending_ then read
  // sleepers_. Both seq_cst, so at least one side observes the other —
  // either the worker's wait predicate sees the new task, or we see the
  // sleeper and run the notify rendezvous. The empty lock_guard closes the
  // remaining window where the sleeper has passed its predicate check but
  // not yet released sleep_mu_ into the wait: we cannot take the lock
  // until it is actually blocked, so the notify is never lost.
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    { std::lock_guard<std::mutex> lock(sleep_mu_); }
    task_available_.notify_one();
  }
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(wait_mu_);
    all_done_.wait(lock, [this] {
      return unfinished_.load(std::memory_order_acquire) == 0;
    });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

bool ThreadPool::TryAcquire(size_t self, QueuedTask* task) {
  {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *task = std::move(own.tasks.front());
      own.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  for (size_t victim : steal_order_[self]) {
    WorkerQueue& queue = *queues_[victim];
    std::lock_guard<std::mutex> lock(queue.mu);
    if (!queue.tasks.empty()) {
      // Steal from the back — the owner pops the front, so thief and owner
      // only collide on a one-element queue.
      *task = std::move(queue.tasks.back());
      queue.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      PoolMetrics::Get().steals.Add(1);
      return true;
    }
  }
  return false;
}

void ThreadPool::RunTask(QueuedTask* task) {
  PoolMetrics& metrics = PoolMetrics::Get();
  const auto start = std::chrono::steady_clock::now();
  metrics.wait_seconds.Observe(
      std::chrono::duration<double>(start - task->enqueued).count());
  std::exception_ptr error;
  try {
    task->fn();
  } catch (...) {
    error = std::current_exception();
    metrics.task_exceptions.Add(1);
  }
  metrics.run_seconds.Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  if (error) {
    std::lock_guard<std::mutex> lock(wait_mu_);
    if (!first_error_) first_error_ = error;
  }
  // Completion counts down only after the error is recorded, so a Wait()
  // woken by the final task always sees its exception. The notify takes
  // wait_mu_: a waiter between its predicate check and the block cannot
  // miss the wakeup, because we cannot acquire the mutex until it waits.
  if (unfinished_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    { std::lock_guard<std::mutex> lock(wait_mu_); }
    all_done_.notify_all();
  }
}

void ThreadPool::WorkerLoop(size_t self) {
  tls_pool = this;
  tls_worker = self;
  exec::SetCurrentThreadName(
      (options_.name_prefix + std::to_string(self)).c_str());
  if (options_.pin_threads && topology_.affinity_supported() &&
      !topology_.cpus().empty()) {
    const int cpu = topology_.cpus()[self % topology_.cpus().size()].cpu;
    // Best effort by contract: a denied affinity call (container, seccomp)
    // leaves this worker unpinned and the pool fully functional.
    if (exec::PinCurrentThreadToCpu(cpu)) {
      pinned_count_.fetch_add(1, std::memory_order_relaxed);
      PoolMetrics::Get().pinned_workers.Add(1);
    }
  }

  for (;;) {
    QueuedTask task;
    if (TryAcquire(self, &task)) {
      RunTask(&task);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mu_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    task_available_.wait(lock, [this] {
      return shutting_down_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_seq_cst) > 0;
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    if (shutting_down_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_seq_cst) == 0) {
      return;  // Drained: remaining tasks ran before shutdown completes.
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  ParallelFor(pool, n, fn, ParallelForOptions{});
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn,
                 const ParallelForOptions& options) {
  if (n == 0) {
    pool->Wait();
    return;
  }
  size_t grain = options.grain;
  if (grain == 0) {
    // ~8 chunks per worker: dispatch cost amortizes over the grain while
    // surplus chunks let stealing even out slow ones. Loops with n at or
    // below 8*workers (e.g. one index per partition) keep grain 1, and the
    // chunk-index affinity hint below then pins index i to home worker
    // i % workers on every call.
    const size_t target_tasks = pool->num_threads() * 8;
    grain = (n + target_tasks - 1) / target_tasks;
    if (grain == 0) grain = 1;
  }
  const size_t chunks = (n + grain - 1) / grain;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t lo = c * grain;
    const size_t hi = std::min(n, lo + grain);
    pool->Submit([lo, hi, &fn] {
      for (size_t i = lo; i < hi; ++i) fn(i);
    }, /*affinity_hint=*/c);
  }
  pool->Wait();
}

}  // namespace alex
