#include "common/thread_pool.h"

#include <chrono>
#include <utility>

#include "obs/metrics.h"

namespace alex {
namespace {

/// Pool metrics: queue depth (with high-water mark), time tasks spend
/// queued before a worker picks them up, and task run time. Handles are
/// cached once; updates are relaxed atomics, invisible to task latency.
struct PoolMetrics {
  obs::Counter& tasks = obs::MetricsRegistry::Global().counter(
      "threadpool.tasks");
  obs::Gauge& queue_depth = obs::MetricsRegistry::Global().gauge(
      "threadpool.queue_depth");
  obs::Histogram& wait_seconds = obs::MetricsRegistry::Global().histogram(
      "threadpool.task_wait_seconds");
  obs::Histogram& run_seconds = obs::MetricsRegistry::Global().histogram(
      "threadpool.task_run_seconds");
  obs::Counter& task_exceptions = obs::MetricsRegistry::Global().counter(
      "threadpool.task_exceptions");

  static PoolMetrics& Get() {
    static PoolMetrics* metrics = new PoolMetrics();
    return *metrics;
  }
};

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  PoolMetrics& metrics = PoolMetrics::Get();
  metrics.tasks.Add(1);
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(
        QueuedTask{std::move(task), std::chrono::steady_clock::now()});
    depth = queue_.size();
  }
  metrics.queue_depth.Set(static_cast<int64_t>(depth));
  metrics.queue_depth.UpdateMax(static_cast<int64_t>(depth));
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::WorkerLoop() {
  PoolMetrics& metrics = PoolMetrics::Get();
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      metrics.queue_depth.Set(static_cast<int64_t>(queue_.size()));
      ++in_flight_;
    }
    const auto start = std::chrono::steady_clock::now();
    metrics.wait_seconds.Observe(
        std::chrono::duration<double>(start - task.enqueued).count());
    std::exception_ptr error;
    try {
      task.fn();
    } catch (...) {
      error = std::current_exception();
      metrics.task_exceptions.Add(1);
    }
    metrics.run_seconds.Observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error && !first_error_) first_error_ = error;
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  for (size_t i = 0; i < n; ++i) {
    pool->Submit([i, &fn] { fn(i); });
  }
  pool->Wait();
}

}  // namespace alex
