#ifndef ALEX_COMMON_STRING_UTIL_H_
#define ALEX_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace alex {

/// Returns a lowercase (ASCII) copy of `s`.
std::string ToLowerAscii(std::string_view s);

/// Strips ASCII whitespace from both ends.
std::string_view TrimAscii(std::string_view s);

/// Splits on a single character; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace; empty tokens are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lowercased alphanumeric word tokens, for token-based similarity.
std::vector<std::string> WordTokens(std::string_view s);

/// Escapes `s` for use inside a JSON string: backslash, double quote, and
/// control characters (\b \f \n \r \t, \u00XX otherwise). Every JSON writer
/// in the repo must route externally influenced strings (metric names,
/// scenario labels, bench names) through this. Header-inline so alex_obs
/// can use it without a link dependency back onto alex_common.
inline std::string EscapeJson(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Strict full-token double parse: the entire token must be a finite
/// decimal number (no trailing garbage, no overflow). Returns nullopt
/// otherwise — callers turn that into a ParseError naming the token.
std::optional<double> ParseDouble(std::string_view token);

/// Strict full-token unsigned decimal parse (no sign, no trailing garbage,
/// no overflow).
std::optional<uint64_t> ParseUint64(std::string_view token);

}  // namespace alex

#endif  // ALEX_COMMON_STRING_UTIL_H_
