#ifndef ALEX_COMMON_STRING_UTIL_H_
#define ALEX_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace alex {

/// Returns a lowercase (ASCII) copy of `s`.
std::string ToLowerAscii(std::string_view s);

/// Strips ASCII whitespace from both ends.
std::string_view TrimAscii(std::string_view s);

/// Splits on a single character; empty fields are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace; empty tokens are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lowercased alphanumeric word tokens, for token-based similarity.
std::vector<std::string> WordTokens(std::string_view s);

}  // namespace alex

#endif  // ALEX_COMMON_STRING_UTIL_H_
