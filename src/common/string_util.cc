#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace alex {

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view TrimAscii(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t pos = 0;
  for (;;) {
    size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out += s.substr(pos);
      return out;
    }
    out += s.substr(pos, hit - pos);
    out += to;
    pos = hit + from.size();
  }
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::vector<std::string> WordTokens(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

std::optional<double> ParseDouble(std::string_view token) {
  if (token.empty()) return std::nullopt;
  // strtod silently skips leading whitespace; a strict full-token parse
  // must not.
  if (std::isspace(static_cast<unsigned char>(token.front()))) {
    return std::nullopt;
  }
  // strtod needs NUL termination; tokens are short, so copy.
  const std::string buf(token);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  if (errno == ERANGE || !std::isfinite(value)) return std::nullopt;
  return value;
}

std::optional<uint64_t> ParseUint64(std::string_view token) {
  if (token.empty()) return std::nullopt;
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return std::nullopt;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;  // Overflow.
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace alex
