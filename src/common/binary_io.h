#ifndef ALEX_COMMON_BINARY_IO_H_
#define ALEX_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace alex {

/// Little-endian binary encoder appending to an owned byte buffer.
///
/// Used by the checkpoint subsystem: every multi-byte integer is written
/// byte-by-byte so snapshots are byte-identical across platforms regardless
/// of host endianness. Doubles travel as their IEEE-754 bit pattern.
class BinaryWriter {
 public:
  void WriteU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }

  void WriteU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void WriteU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void WriteDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    WriteU64(bits);
  }

  /// Length-prefixed (u64) byte string.
  void WriteBytes(std::string_view bytes) {
    WriteU64(bytes.size());
    buffer_.append(bytes.data(), bytes.size());
  }

  /// Raw bytes, no length prefix (for magics and pre-framed payloads).
  void WriteRaw(std::string_view bytes) {
    buffer_.append(bytes.data(), bytes.size());
  }

  const std::string& buffer() const { return buffer_; }
  std::string Release() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Bounds-checked reader over a borrowed byte buffer.
///
/// Every read validates the remaining length first and fails with a
/// ParseError Status on truncation — a corrupt or cut-short checkpoint must
/// surface as a clean error, never as out-of-bounds access. The buffer is
/// borrowed and must outlive the reader.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Status ReadU8(uint8_t* out) {
    ALEX_RETURN_NOT_OK(Require(1));
    *out = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }

  Status ReadU32(uint32_t* out) {
    ALEX_RETURN_NOT_OK(Require(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }

  Status ReadU64(uint64_t* out) {
    ALEX_RETURN_NOT_OK(Require(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return Status::OK();
  }

  Status ReadDouble(double* out) {
    uint64_t bits = 0;
    ALEX_RETURN_NOT_OK(ReadU64(&bits));
    std::memcpy(out, &bits, sizeof(*out));
    return Status::OK();
  }

  /// Reads a length-prefixed byte string. The declared length is validated
  /// against the remaining bytes before any allocation, so a corrupted
  /// length field cannot trigger a huge allocation or an overread.
  Status ReadBytes(std::string* out) {
    uint64_t len = 0;
    ALEX_RETURN_NOT_OK(ReadU64(&len));
    ALEX_RETURN_NOT_OK(Require(len));
    out->assign(data_.data() + pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return Status::OK();
  }

  /// Borrows a length-prefixed byte string without copying; the view is
  /// valid as long as the underlying buffer is.
  Status ReadBytesView(std::string_view* out) {
    uint64_t len = 0;
    ALEX_RETURN_NOT_OK(ReadU64(&len));
    ALEX_RETURN_NOT_OK(Require(len));
    *out = data_.substr(pos_, static_cast<size_t>(len));
    pos_ += static_cast<size_t>(len);
    return Status::OK();
  }

  /// Reads `n` raw bytes (no length prefix).
  Status ReadRaw(size_t n, std::string_view* out) {
    ALEX_RETURN_NOT_OK(Require(n));
    *out = data_.substr(pos_, n);
    pos_ += n;
    return Status::OK();
  }

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Require(uint64_t n) {
    if (n > data_.size() - pos_) {
      return Status::ParseError(
          "truncated input: need " + std::to_string(n) + " bytes at offset " +
          std::to_string(pos_) + ", have " +
          std::to_string(data_.size() - pos_));
    }
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace alex

#endif  // ALEX_COMMON_BINARY_IO_H_
