#ifndef ALEX_COMMON_STOPWATCH_H_
#define ALEX_COMMON_STOPWATCH_H_

#include <chrono>

namespace alex {

/// Monotonic wall-clock timer used by the experiment harness to report
/// per-episode and total execution times (paper Section 7.3).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace alex

#endif  // ALEX_COMMON_STOPWATCH_H_
