#ifndef ALEX_COMMON_CLOCK_H_
#define ALEX_COMMON_CLOCK_H_

#include <chrono>
#include <thread>

namespace alex {

/// Injectable time source for everything that waits or measures deadlines
/// (retry backoff, per-query deadlines, circuit-breaker cool-downs).
///
/// Production code uses SteadyClock; tests and the fault-injection benches
/// use SimClock, where "sleeping" advances virtual time instantly — so a
/// scenario with seconds of simulated latency and backoff runs in
/// microseconds of wall time and is bit-for-bit reproducible.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic time in seconds since an arbitrary epoch.
  virtual double NowSeconds() const = 0;

  /// Blocks (or simulates blocking) for `seconds`; no-op when <= 0.
  virtual void SleepSeconds(double seconds) = 0;
};

/// Real monotonic clock; SleepSeconds actually blocks the calling thread.
class SteadyClock : public Clock {
 public:
  double NowSeconds() const override {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void SleepSeconds(double seconds) override {
    if (seconds <= 0.0) return;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
};

/// Deterministic manual clock starting at 0. SleepSeconds advances virtual
/// time without blocking. Not thread-safe; share only with external
/// synchronization (the federation layer drives it from one query thread).
class SimClock : public Clock {
 public:
  double NowSeconds() const override { return now_; }

  void SleepSeconds(double seconds) override {
    if (seconds > 0.0) now_ += seconds;
  }

  /// Test hook: moves time forward directly.
  void AdvanceSeconds(double seconds) { SleepSeconds(seconds); }

 private:
  double now_ = 0.0;
};

}  // namespace alex

#endif  // ALEX_COMMON_CLOCK_H_
