#ifndef ALEX_COMMON_RNG_H_
#define ALEX_COMMON_RNG_H_

#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace alex {

/// Deterministic, seedable pseudo-random number generator
/// (xoshiro256** seeded via splitmix64).
///
/// Every stochastic component in the library (data generation, the feedback
/// oracle, the ε-greedy policy) takes an explicit Rng so experiments are
/// reproducible bit-for-bit across runs. Not thread-safe; give each thread
/// or partition its own instance (see Fork()).
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed);

  /// Returns the next raw 64-bit output.
  uint64_t Next();

  /// Returns a uniformly distributed double in [0, 1).
  double UniformDouble();

  /// Returns a uniformly distributed double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Returns a uniformly distributed integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to the weights.
  /// Weights must be non-negative; if they sum to zero the draw is uniform.
  size_t SampleWeighted(const std::vector<double>& weights);

  /// Approximately normal draw (sum of uniforms), mean 0, stddev 1.
  double Gaussian();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent child generator; the parent advances once.
  /// Used to hand one deterministic stream to each partition/thread.
  Rng Fork() { return Rng(Next()); }

  /// The raw generator state, for checkpointing. A generator restored with
  /// RestoreState() produces the exact output sequence the saved one would
  /// have produced next.
  using State = std::array<uint64_t, 4>;
  State SaveState() const { return {state_[0], state_[1], state_[2], state_[3]}; }
  void RestoreState(const State& state) {
    for (size_t i = 0; i < state.size(); ++i) state_[i] = state[i];
  }

 private:
  uint64_t state_[4];
};

}  // namespace alex

#endif  // ALEX_COMMON_RNG_H_
