#ifndef ALEX_COMMON_RESULT_H_
#define ALEX_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace alex {

/// Holds either a value of type T or an error Status.
///
/// The value accessors assert in debug builds; callers must check `ok()`
/// first (or use `ValueOr`). An OK Status cannot be stored — constructing a
/// Result from an OK Status is a programming error and is normalized to an
/// Internal error so the invariant "has_value() XOR !status().ok()" holds.
template <typename T>
class Result {
 public:
  /// Implicit so `return value;` works in functions returning Result<T>.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit so `return Status::NotFound(...)` works.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }
  bool has_value() const { return ok(); }

  /// Returns the error status, or OK if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value, or `fallback` on error.
  T ValueOr(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> repr_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its error
/// status to the caller.
#define ALEX_ASSIGN_OR_RETURN(lhs, rexpr)             \
  auto ALEX_CONCAT_(_res_, __LINE__) = (rexpr);       \
  if (!ALEX_CONCAT_(_res_, __LINE__).ok())            \
    return ALEX_CONCAT_(_res_, __LINE__).status();    \
  lhs = std::move(ALEX_CONCAT_(_res_, __LINE__)).value()

#define ALEX_CONCAT_INNER_(a, b) a##b
#define ALEX_CONCAT_(a, b) ALEX_CONCAT_INNER_(a, b)

}  // namespace alex

#endif  // ALEX_COMMON_RESULT_H_
