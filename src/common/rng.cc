#include "common/rng.h"

#include <cmath>

namespace alex {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::Seed(uint64_t seed) {
  uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::UniformDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

size_t Rng::SampleWeighted(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return static_cast<size_t>(UniformInt(weights.size()));
  double target = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += (weights[i] > 0.0 ? weights[i] : 0.0);
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

double Rng::Gaussian() {
  // Irwin-Hall approximation: sum of 12 uniforms minus 6.
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) sum += UniformDouble();
  return sum - 6.0;
}

}  // namespace alex
