#include "common/retry.h"

#include <algorithm>
#include <cmath>

namespace alex {

double RetryPolicy::BackoffSeconds(int failures, Rng* rng) const {
  if (failures < 1) failures = 1;
  double base = initial_backoff_seconds *
                std::pow(backoff_multiplier, static_cast<double>(failures - 1));
  base = std::min(base, max_backoff_seconds);
  const double j = std::clamp(jitter_fraction, 0.0, 1.0);
  if (j > 0.0 && rng != nullptr) {
    base *= rng->UniformDouble(1.0 - j, 1.0 + j);
  }
  return std::max(base, 0.0);
}

}  // namespace alex
