#ifndef ALEX_COMMON_THREAD_POOL_H_
#define ALEX_COMMON_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/topology.h"

namespace alex {

/// Fixed-size worker pool used to run ALEX partitions in parallel
/// (Section 6.2 of the paper: equal-size partitions explored independently).
///
/// Hardware-conscious since the exec layer landed: each worker owns its own
/// task queue (no single-mutex convoy on the dispatch path), idle workers
/// steal from siblings — same-NUMA-node victims first, so stolen work stays
/// close to its data — and workers can be pinned 1:1 to the CPUs of the
/// probed CpuTopology (best effort: a denied affinity syscall degrades to
/// an unpinned worker, never an error). Submit takes an optional affinity
/// hint naming the worker whose queue the task should land on; combined
/// with stealing this is soft locality, not a correctness contract — any
/// worker may ultimately run any task.
///
/// Tasks are void() callables. `Wait()` blocks until every submitted task
/// (including tasks submitted by tasks) has finished; the destructor drains
/// remaining tasks and joins all workers.
///
/// A throwing task never takes down the process: the worker catches the
/// exception at the task boundary (otherwise the unwind would hit the worker
/// loop and std::terminate, skipping the in-flight bookkeeping and wedging
/// Wait()). The first captured exception is rethrown from the next Wait();
/// later ones are counted in `threadpool.task_exceptions` and dropped.
/// Remaining tasks still run either way.
class ThreadPool {
 public:
  struct Options {
    /// Pin worker i to the i-th CPU (mod #CPUs) of the topology. Best
    /// effort: failures (containers, seccomp, non-Linux) leave the worker
    /// unpinned and are only visible through pinned_workers().
    bool pin_threads = false;
    /// Worker thread names: "<name_prefix><worker index>". Keep it short —
    /// Linux truncates thread names to 15 characters.
    std::string name_prefix = "alexw";
    /// Topology to pin against and to derive the steal order from; null
    /// uses the process-wide exec::CpuTopology::Detect().
    const exec::CpuTopology* topology = nullptr;
  };

  /// Creates a pool with `num_threads` workers (at least 1), unpinned.
  explicit ThreadPool(size_t num_threads);
  ThreadPool(size_t num_threads, const Options& options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Safe to call from any thread, including workers — a
  /// worker submits to its own queue (the recursive task is warm there and
  /// runs next unless stolen), external threads round-robin across queues.
  void Submit(std::function<void()> task);

  /// Enqueues a task onto worker `affinity_hint % num_threads()`'s queue.
  /// A locality hint, not placement: an idle sibling may still steal the
  /// task. Use a stable hint per logical owner (e.g. the partition index)
  /// so the same worker keeps touching the same partition's memory.
  void Submit(std::function<void()> task, size_t affinity_hint);

  /// Blocks until all submitted tasks have completed. If any task threw
  /// since the last Wait(), rethrows the first such exception (after the
  /// drain, so the pool is quiescent and reusable when the caller catches).
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  /// Workers that were actually pinned (0 when pinning was off or every
  /// affinity call failed — the degraded-but-running case).
  size_t pinned_workers() const {
    return pinned_count_.load(std::memory_order_relaxed);
  }

 private:
  /// A task plus its enqueue time, so the queue-wait latency each task
  /// experienced lands in the `threadpool.task_wait_seconds` histogram.
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  /// One worker's queue behind its own mutex; unique_ptr keeps addresses
  /// stable and the mutexes on separate allocations (no false sharing of
  /// two hot locks in one cache line).
  struct WorkerQueue {
    std::mutex mu;
    std::deque<QueuedTask> tasks;
  };

  void Start(size_t num_threads);
  void WorkerLoop(size_t self);
  /// Pops from own queue, else steals (same-node victims first). Decrements
  /// pending_ on success.
  bool TryAcquire(size_t self, QueuedTask* task);
  void Enqueue(std::function<void()> task, size_t target);
  void RunTask(QueuedTask* task);

  Options options_;
  exec::CpuTopology topology_;

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  /// Per worker: every other worker index, same-node victims first, each
  /// group rotated by the worker's own index so thieves fan out instead of
  /// all hammering worker 0's lock.
  std::vector<std::vector<size_t>> steal_order_;

  /// Tasks sitting in queues (not yet picked up). Drives worker sleep.
  std::atomic<size_t> pending_{0};
  /// Tasks submitted but not yet finished (queued + running). Drives Wait.
  std::atomic<size_t> unfinished_{0};
  /// Workers blocked in task_available_; lets Enqueue skip the notify
  /// rendezvous entirely when everyone is busy. seq_cst store/load pairs
  /// with pending_ (a Dekker-style flag handshake, see Enqueue).
  std::atomic<size_t> sleepers_{0};
  std::atomic<size_t> next_queue_{0};
  std::atomic<size_t> pinned_count_{0};
  std::atomic<bool> shutting_down_{false};

  std::mutex sleep_mu_;
  std::condition_variable task_available_;
  std::mutex wait_mu_;
  std::condition_variable all_done_;
  /// First exception thrown by a task since the last Wait() (guarded by
  /// wait_mu_).
  std::exception_ptr first_error_;

  std::vector<std::thread> workers_;
};

/// Chunking control for ParallelFor.
struct ParallelForOptions {
  /// Indices per submitted task. 0 = automatic: ceil(n / (8 * workers)),
  /// so a 100k-index loop costs hundreds of task dispatches instead of
  /// 100k std::function allocations and queue round-trips, while leaving
  /// enough surplus tasks for stealing to balance uneven chunks.
  size_t grain = 0;
};

/// Runs fn(i) for i in [0, n) across the pool and waits for completion.
/// Indices are chunked per ParallelForOptions; chunk c carries affinity
/// hint c, so when n is small (e.g. one chunk per partition) index i lands
/// on the same home worker every call. Exceptions keep task granularity:
/// a throw abandons the remaining indices of its own chunk only, other
/// chunks still run, and Wait() rethrows the first error.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn,
                 const ParallelForOptions& options);

}  // namespace alex

#endif  // ALEX_COMMON_THREAD_POOL_H_
