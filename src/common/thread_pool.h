#ifndef ALEX_COMMON_THREAD_POOL_H_
#define ALEX_COMMON_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace alex {

/// Fixed-size worker pool used to run ALEX partitions in parallel
/// (Section 6.2 of the paper: equal-size partitions explored independently).
///
/// Tasks are void() callables. `Wait()` blocks until the queue drains and all
/// in-flight tasks finish; the destructor joins all workers.
///
/// A throwing task never takes down the process: the worker catches the
/// exception at the task boundary (otherwise the unwind would hit the worker
/// loop and std::terminate, skipping the in-flight bookkeeping and wedging
/// Wait()). The first captured exception is rethrown from the next Wait();
/// later ones are counted in `threadpool.task_exceptions` and dropped.
/// Remaining tasks still run either way.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Safe to call from any thread, including workers.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed. If any task threw
  /// since the last Wait(), rethrows the first such exception (after the
  /// drain, so the pool is quiescent and reusable when the caller catches).
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  /// A task plus its enqueue time, so the queue-wait latency each task
  /// experienced lands in the `threadpool.task_wait_seconds` histogram.
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<QueuedTask> queue_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
  /// First exception thrown by a task since the last Wait() (guarded by mu_).
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

/// Runs fn(i) for i in [0, n) across the pool and waits for completion.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

}  // namespace alex

#endif  // ALEX_COMMON_THREAD_POOL_H_
