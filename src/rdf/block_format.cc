#include "rdf/block_format.h"

namespace alex::rdf::blockfmt {
namespace {

// Tag byte layout: mode << 6 | value6. value6 == 63 escapes to a varint
// holding (value - 63).
constexpr uint8_t kModeSameAB = 0;  // delta on c; b, a unchanged.
constexpr uint8_t kModeSameA = 1;   // delta on b; absolute c.
constexpr uint8_t kModeNewA = 2;    // delta on a; absolute b, c.
constexpr uint8_t kTagEscape = 63;

void EmitTag(std::string* out, uint8_t mode, uint64_t value) {
  if (value < kTagEscape) {
    out->push_back(static_cast<char>((mode << 6) | static_cast<uint8_t>(value)));
  } else {
    out->push_back(static_cast<char>((mode << 6) | kTagEscape));
    AppendVarint(out, value - kTagEscape);
  }
}

const char* ReadTag(const char* p, const char* end, uint8_t* mode,
                    uint64_t* value) {
  if (p == end) return nullptr;
  const uint8_t tag = static_cast<uint8_t>(*p++);
  *mode = tag >> 6;
  *value = tag & 0x3f;
  if (*value == kTagEscape) {
    uint64_t extra = 0;
    p = DecodeVarint(p, end, &extra);
    if (p == nullptr) return nullptr;
    *value = kTagEscape + extra;
  }
  return p;
}

}  // namespace

void AppendVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

const char* DecodeVarint(const char* p, const char* end, uint64_t* v) {
  uint64_t result = 0;
  int shift = 0;
  while (p != end && shift < 64) {
    const uint8_t byte = static_cast<uint8_t>(*p++);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return p;
    }
    shift += 7;
  }
  return nullptr;  // Truncated or longer than 64 bits.
}

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string EncodeBlock(const Key3* keys, size_t n) {
  std::string out;
  if (n == 0) return out;
  out.reserve(n * 4);
  AppendVarint(&out, keys[0].a);
  AppendVarint(&out, keys[0].b);
  AppendVarint(&out, keys[0].c);
  for (size_t i = 1; i < n; ++i) {
    const Key3& prev = keys[i - 1];
    const Key3& cur = keys[i];
    if (cur.a == prev.a && cur.b == prev.b) {
      // Strictly increasing keys make every delta >= 1; bias by one so the
      // common +1 step fits the tag byte.
      EmitTag(&out, kModeSameAB, static_cast<uint64_t>(cur.c - prev.c) - 1);
    } else if (cur.a == prev.a) {
      EmitTag(&out, kModeSameA, static_cast<uint64_t>(cur.b - prev.b) - 1);
      AppendVarint(&out, cur.c);
    } else {
      EmitTag(&out, kModeNewA, static_cast<uint64_t>(cur.a - prev.a) - 1);
      AppendVarint(&out, cur.b);
      AppendVarint(&out, cur.c);
    }
  }
  return out;
}

Status DecodeBlock(std::string_view bytes, uint32_t count,
                   std::vector<Key3>* rows) {
  rows->clear();
  if (count == 0) {
    return bytes.empty()
               ? Status::OK()
               : Status::ParseError("empty block carries payload bytes");
  }
  rows->reserve(count);
  const char* p = bytes.data();
  const char* end = bytes.data() + bytes.size();
  uint64_t a = 0, b = 0, c = 0;
  p = DecodeVarint(p, end, &a);
  if (p != nullptr) p = DecodeVarint(p, end, &b);
  if (p != nullptr) p = DecodeVarint(p, end, &c);
  if (p == nullptr || a > UINT32_MAX || b > UINT32_MAX || c > UINT32_MAX) {
    return Status::ParseError("corrupt block header triple");
  }
  rows->push_back(Key3{static_cast<TermId>(a), static_cast<TermId>(b),
                       static_cast<TermId>(c)});
  for (uint32_t i = 1; i < count; ++i) {
    uint8_t mode = 0;
    uint64_t delta = 0;
    p = ReadTag(p, end, &mode, &delta);
    if (p == nullptr) return Status::ParseError("truncated block tag");
    const Key3& prev = rows->back();
    Key3 cur = prev;
    uint64_t value = 0;
    switch (mode) {
      case kModeSameAB:
        value = static_cast<uint64_t>(prev.c) + delta + 1;
        if (value > UINT32_MAX) return Status::ParseError("c delta overflow");
        cur.c = static_cast<TermId>(value);
        break;
      case kModeSameA: {
        value = static_cast<uint64_t>(prev.b) + delta + 1;
        if (value > UINT32_MAX) return Status::ParseError("b delta overflow");
        cur.b = static_cast<TermId>(value);
        uint64_t abs_c = 0;
        p = DecodeVarint(p, end, &abs_c);
        if (p == nullptr || abs_c > UINT32_MAX) {
          return Status::ParseError("corrupt absolute c");
        }
        cur.c = static_cast<TermId>(abs_c);
        break;
      }
      case kModeNewA: {
        value = static_cast<uint64_t>(prev.a) + delta + 1;
        if (value > UINT32_MAX) return Status::ParseError("a delta overflow");
        cur.a = static_cast<TermId>(value);
        uint64_t abs_b = 0, abs_c = 0;
        p = DecodeVarint(p, end, &abs_b);
        if (p != nullptr) p = DecodeVarint(p, end, &abs_c);
        if (p == nullptr || abs_b > UINT32_MAX || abs_c > UINT32_MAX) {
          return Status::ParseError("corrupt absolute b/c");
        }
        cur.b = static_cast<TermId>(abs_b);
        cur.c = static_cast<TermId>(abs_c);
        break;
      }
      default:
        return Status::ParseError("unknown block tag mode");
    }
    if (!(prev < cur)) {
      return Status::ParseError("block keys not strictly increasing");
    }
    rows->push_back(cur);
  }
  if (p != end) return Status::ParseError("trailing bytes after block rows");
  return Status::OK();
}

}  // namespace alex::rdf::blockfmt
