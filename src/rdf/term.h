#ifndef ALEX_RDF_TERM_H_
#define ALEX_RDF_TERM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace alex::rdf {

/// Kind of an RDF term.
enum class TermKind : uint8_t { kIri = 0, kLiteral = 1, kBlank = 2 };

/// An RDF term: an IRI, a literal (with optional datatype IRI or language
/// tag), or a blank node. Value type; cheap to move.
struct Term {
  TermKind kind = TermKind::kIri;
  /// IRI string, literal lexical form, or blank node label (without "_:").
  std::string value;
  /// Datatype IRI for typed literals; empty otherwise.
  std::string datatype;
  /// Language tag for language-tagged literals; empty otherwise.
  std::string language;

  static Term Iri(std::string iri);
  static Term Literal(std::string lexical);
  static Term TypedLiteral(std::string lexical, std::string datatype_iri);
  static Term LangLiteral(std::string lexical, std::string lang);
  static Term Blank(std::string label);

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_literal() const { return kind == TermKind::kLiteral; }
  bool is_blank() const { return kind == TermKind::kBlank; }

  /// Serializes in N-Triples syntax, e.g. `<http://x>` or `"v"^^<dt>`.
  std::string ToNTriples() const;

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind == b.kind && a.value == b.value &&
           a.datatype == b.datatype && a.language == b.language;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
  friend bool operator<(const Term& a, const Term& b);
};

/// Stable hash over all term components, for dictionary lookups.
struct TermHash {
  size_t operator()(const Term& t) const;
};

/// Escapes `\`, `"`, newline, CR, and tab per N-Triples literal rules.
std::string EscapeNTriplesString(std::string_view s);

/// Well-known vocabulary IRIs used throughout the library.
inline constexpr std::string_view kOwlSameAs =
    "http://www.w3.org/2002/07/owl#sameAs";
inline constexpr std::string_view kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr std::string_view kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr std::string_view kXsdDouble =
    "http://www.w3.org/2001/XMLSchema#double";
inline constexpr std::string_view kXsdDate =
    "http://www.w3.org/2001/XMLSchema#date";
inline constexpr std::string_view kXsdString =
    "http://www.w3.org/2001/XMLSchema#string";

}  // namespace alex::rdf

#endif  // ALEX_RDF_TERM_H_
