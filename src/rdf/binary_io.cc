#include "rdf/binary_io.h"

#include <cstdint>
#include <cstring>
#include <string>

namespace alex::rdf {
namespace {

constexpr char kMagic[8] = {'A', 'L', 'E', 'X', 'R', 'D', 'F', '1'};
constexpr uint32_t kMaxStringLength = 1u << 28;  // 256 MiB sanity bound.

void WriteU32(std::ostream& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.write(buf, 4);
}

void WriteU64(std::ostream& out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.write(buf, 8);
}

void WriteString(std::ostream& out, const std::string& s) {
  WriteU32(out, static_cast<uint32_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool ReadU32(std::istream& in, uint32_t* v) {
  char buf[4];
  in.read(buf, 4);
  if (in.gcount() != 4) return false;
  std::memcpy(v, buf, 4);
  return true;
}

bool ReadU64(std::istream& in, uint64_t* v) {
  char buf[8];
  in.read(buf, 8);
  if (in.gcount() != 8) return false;
  std::memcpy(v, buf, 8);
  return true;
}

bool ReadString(std::istream& in, std::string* s) {
  uint32_t len = 0;
  if (!ReadU32(in, &len) || len > kMaxStringLength) return false;
  s->resize(len);
  in.read(s->data(), static_cast<std::streamsize>(len));
  return static_cast<uint32_t>(in.gcount()) == len;
}

}  // namespace

Status WriteBinaryDataset(const Dictionary& dict, const TripleStore& store,
                          std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  WriteU64(out, dict.size());
  for (TermId id = 0; id < dict.size(); ++id) {
    const Term& t = dict.term(id);
    out.put(static_cast<char>(t.kind));
    WriteString(out, t.value);
    WriteString(out, t.datatype);
    WriteString(out, t.language);
  }
  WriteU64(out, store.size());
  Status status = Status::OK();
  store.ForEachMatch(TriplePattern{}, [&](const Triple& t) {
    WriteU32(out, t.subject);
    WriteU32(out, t.predicate);
    WriteU32(out, t.object);
    return static_cast<bool>(out);
  });
  if (!out) status = Status::IOError("binary dataset write failed");
  return status;
}

Status ReadBinaryDataset(std::istream& in, Dictionary* dict,
                         TripleStore* store) {
  if (dict->size() != 0 || store->size() != 0) {
    return Status::InvalidArgument(
        "binary datasets must be read into empty containers");
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("not an ALEXRDF1 binary dataset");
  }
  uint64_t term_count = 0;
  if (!ReadU64(in, &term_count)) {
    return Status::ParseError("truncated term count");
  }
  if (term_count > UINT32_MAX) {
    return Status::ParseError("term count exceeds TermId range");
  }
  for (uint64_t i = 0; i < term_count; ++i) {
    const int kind_byte = in.get();
    if (kind_byte < 0 || kind_byte > 2) {
      return Status::ParseError("bad term kind at index " +
                                std::to_string(i));
    }
    Term t;
    t.kind = static_cast<TermKind>(kind_byte);
    if (!ReadString(in, &t.value) || !ReadString(in, &t.datatype) ||
        !ReadString(in, &t.language)) {
      return Status::ParseError("truncated term at index " +
                                std::to_string(i));
    }
    // Interning into an empty dictionary preserves ids because they were
    // written in id order; a duplicate would break that invariant.
    const TermId assigned = dict->Intern(t);
    if (assigned != static_cast<TermId>(i)) {
      return Status::ParseError("duplicate term breaks id assignment");
    }
  }
  uint64_t triple_count = 0;
  if (!ReadU64(in, &triple_count)) {
    return Status::ParseError("truncated triple count");
  }
  for (uint64_t i = 0; i < triple_count; ++i) {
    uint32_t s = 0, p = 0, o = 0;
    if (!ReadU32(in, &s) || !ReadU32(in, &p) || !ReadU32(in, &o)) {
      return Status::ParseError("truncated triple at index " +
                                std::to_string(i));
    }
    if (s >= term_count || p >= term_count || o >= term_count) {
      return Status::ParseError("triple term id out of range at index " +
                                std::to_string(i));
    }
    store->Add(s, p, o);
  }
  return Status::OK();
}

}  // namespace alex::rdf
