#ifndef ALEX_RDF_BINARY_IO_H_
#define ALEX_RDF_BINARY_IO_H_

#include <istream>
#include <ostream>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"

namespace alex::rdf {

/// Compact binary serialization of a dictionary-encoded store — the fast
/// load path for large dumps (parse the N-Triples/Turtle text once, then
/// reload in milliseconds).
///
/// Format (little-endian):
///   magic "ALEXRDF1" (8 bytes)
///   u64 term_count
///     per term: u8 kind; then value, datatype, language as
///     (u32 length, bytes)
///   u64 triple_count
///     per triple: u32 subject, u32 predicate, u32 object (term ids)
Status WriteBinaryDataset(const Dictionary& dict, const TripleStore& store,
                          std::ostream& out);

/// Reads a binary dataset written by WriteBinaryDataset into an *empty*
/// dictionary and store. Fails with ParseError on a bad magic, truncated
/// input, or out-of-range term ids.
Status ReadBinaryDataset(std::istream& in, Dictionary* dict,
                         TripleStore* store);

}  // namespace alex::rdf

#endif  // ALEX_RDF_BINARY_IO_H_
