#include "rdf/compact_dictionary.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "exec/arena.h"
#include "rdf/block_format.h"

namespace alex::rdf {
namespace {

const std::string kEmpty;

size_t CommonPrefix(const std::string& a, const std::string& b) {
  const size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

}  // namespace

CompactDictionary CompactDictionary::Build(const Dictionary& dict) {
  CompactDictionary out;
  const size_t n = dict.size();
  out.sorted_ids_.resize(n);
  std::iota(out.sorted_ids_.begin(), out.sorted_ids_.end(), TermId{0});
  std::sort(out.sorted_ids_.begin(), out.sorted_ids_.end(),
            [&dict](TermId a, TermId b) { return dict.term(a) < dict.term(b); });
  out.pos_of_id_.resize(n);
  for (size_t pos = 0; pos < n; ++pos) {
    out.pos_of_id_[out.sorted_ids_[pos]] = static_cast<uint32_t>(pos);
  }

  // Build-phase scratch: the side-string dedup map dies with this call, so
  // its nodes bump-allocate from a local arena (key strings still own their
  // heap storage; only the map nodes and bucket arrays land in the arena).
  exec::ArenaAllocator scratch_arena;
  using SideAlloc = exec::ArenaStl<std::pair<const std::string, uint32_t>>;
  std::unordered_map<std::string, uint32_t, std::hash<std::string>,
                     std::equal_to<std::string>, SideAlloc>
      side(/*bucket_count=*/0, std::hash<std::string>(),
           std::equal_to<std::string>(), SideAlloc(&scratch_arena));
  auto side_index = [&out, &side](const std::string& s) -> uint64_t {
    if (s.empty()) return 0;
    auto it = side.find(s);
    if (it != side.end()) return it->second;
    out.side_strings_.push_back(s);
    const uint32_t idx = static_cast<uint32_t>(out.side_strings_.size());
    side.emplace(s, idx);
    return idx;
  };

  std::string prev;
  for (size_t pos = 0; pos < n; ++pos) {
    const Term& t = dict.term(out.sorted_ids_[pos]);
    if (pos % kBucket == 0) {
      out.restarts_.push_back(out.blob_.size());
      prev.clear();
    }
    const size_t prefix = CommonPrefix(prev, t.value);
    out.blob_.push_back(static_cast<char>(t.kind));
    blockfmt::AppendVarint(&out.blob_, prefix);
    blockfmt::AppendVarint(&out.blob_, t.value.size() - prefix);
    out.blob_.append(t.value, prefix, std::string::npos);
    blockfmt::AppendVarint(&out.blob_, side_index(t.datatype));
    blockfmt::AppendVarint(&out.blob_, side_index(t.language));
    prev = t.value;
  }
  out.blob_.shrink_to_fit();
  return out;
}

template <typename Fn>
void CompactDictionary::DecodeBucket(size_t bucket, Fn&& fn) const {
  const char* p = blob_.data() + restarts_[bucket];
  const char* end = blob_.data() + (bucket + 1 < restarts_.size()
                                        ? restarts_[bucket + 1]
                                        : blob_.size());
  std::string value;
  size_t pos = bucket * kBucket;
  while (p < end) {
    DecodedEntry entry;
    entry.sorted_pos = pos++;
    entry.kind = static_cast<TermKind>(static_cast<uint8_t>(*p++));
    uint64_t prefix = 0, suffix = 0, dt = 0, lang = 0;
    p = blockfmt::DecodeVarint(p, end, &prefix);
    if (p == nullptr) return;
    p = blockfmt::DecodeVarint(p, end, &suffix);
    if (p == nullptr || suffix > static_cast<uint64_t>(end - p)) return;
    value.resize(static_cast<size_t>(prefix));
    value.append(p, static_cast<size_t>(suffix));
    p += suffix;
    p = blockfmt::DecodeVarint(p, end, &dt);
    if (p == nullptr) return;
    p = blockfmt::DecodeVarint(p, end, &lang);
    if (p == nullptr) return;
    entry.datatype_index = static_cast<uint32_t>(dt);
    entry.language_index = static_cast<uint32_t>(lang);
    if (!fn(entry, value)) return;
  }
}

int CompactDictionary::CompareDecoded(const DecodedEntry& entry,
                                      const std::string& value,
                                      const Term& target) const {
  if (entry.kind != target.kind) {
    return static_cast<uint8_t>(entry.kind) < static_cast<uint8_t>(target.kind)
               ? -1
               : 1;
  }
  if (int c = value.compare(target.value); c != 0) return c < 0 ? -1 : 1;
  const std::string& dt =
      entry.datatype_index ? side_strings_[entry.datatype_index - 1] : kEmpty;
  if (int c = dt.compare(target.datatype); c != 0) return c < 0 ? -1 : 1;
  const std::string& lang =
      entry.language_index ? side_strings_[entry.language_index - 1] : kEmpty;
  if (int c = lang.compare(target.language); c != 0) return c < 0 ? -1 : 1;
  return 0;
}

Term CompactDictionary::term(TermId id) const {
  const size_t pos = pos_of_id_[id];
  const size_t bucket = pos / kBucket;
  Term out;
  DecodeBucket(bucket, [this, pos, &out](const DecodedEntry& entry,
                                         const std::string& value) {
    if (entry.sorted_pos != pos) return true;
    out.kind = entry.kind;
    out.value = value;
    if (entry.datatype_index) out.datatype = side_strings_[entry.datatype_index - 1];
    if (entry.language_index) out.language = side_strings_[entry.language_index - 1];
    return false;
  });
  return out;
}

std::optional<TermId> CompactDictionary::Lookup(const Term& target) const {
  if (restarts_.empty()) return std::nullopt;
  // Binary search for the last bucket whose head term is <= target.
  size_t lo = 0, hi = restarts_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    int cmp = 1;
    DecodeBucket(mid, [this, &cmp, &target](const DecodedEntry& entry,
                                            const std::string& value) {
      cmp = CompareDecoded(entry, value, target);
      return false;  // Head entry only.
    });
    if (cmp <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return std::nullopt;  // Every bucket head is > target.
  std::optional<TermId> found;
  DecodeBucket(lo - 1, [this, &found, &target](const DecodedEntry& entry,
                                               const std::string& value) {
    const int cmp = CompareDecoded(entry, value, target);
    if (cmp == 0) {
      found = sorted_ids_[entry.sorted_pos];
      return false;
    }
    return cmp < 0;  // Keep scanning while below target; stop once past it.
  });
  return found;
}

size_t CompactDictionary::ApproxMemoryBytes() const {
  size_t total = sizeof(CompactDictionary);
  total += blob_.capacity();
  total += restarts_.capacity() * sizeof(uint64_t);
  total += sorted_ids_.capacity() * sizeof(TermId);
  total += pos_of_id_.capacity() * sizeof(uint32_t);
  for (const std::string& s : side_strings_) {
    total += sizeof(std::string) + s.capacity();
  }
  return total;
}

}  // namespace alex::rdf
