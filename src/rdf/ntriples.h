#ifndef ALEX_RDF_NTRIPLES_H_
#define ALEX_RDF_NTRIPLES_H_

#include <istream>
#include <ostream>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/triple.h"
#include "rdf/triple_store.h"

namespace alex::rdf {

/// Parses a single N-Triples term starting at `*pos` in `line`, advancing
/// `*pos` past the term and any trailing whitespace. Handles IRIs, blank
/// nodes, and literals with escapes, language tags, and datatypes.
Result<Term> ParseNTriplesTerm(std::string_view line, size_t* pos);

/// Parses one N-Triples line ("<s> <p> <o> .") into a Term triple.
/// Blank lines and '#' comment lines yield Status::NotFound (skip marker).
struct ParsedTriple {
  Term subject;
  Term predicate;
  Term object;
};
Result<ParsedTriple> ParseNTriplesLine(std::string_view line);

/// Reads an N-Triples document from `in`, interning terms into `dict` and
/// adding triples to `store`. Stops at the first malformed line.
Status ReadNTriples(std::istream& in, Dictionary* dict, TripleStore* store);

/// Writes all triples of `store` to `out` in N-Triples syntax.
Status WriteNTriples(const TripleStore& store, const Dictionary& dict,
                     std::ostream& out);

}  // namespace alex::rdf

#endif  // ALEX_RDF_NTRIPLES_H_
