#ifndef ALEX_RDF_DICTIONARY_H_
#define ALEX_RDF_DICTIONARY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "exec/arena.h"
#include "rdf/term.h"

namespace alex::rdf {

/// Dense identifier assigned to each distinct Term in a Dictionary.
using TermId = uint32_t;

inline constexpr TermId kInvalidTermId = UINT32_MAX;

/// Bidirectional Term <-> TermId mapping (dictionary encoding).
///
/// TermIds are dense and start at 0, so they index directly into arrays.
/// Each term is stored once: the lookup index holds TermIds hashed/compared
/// through the term vector (heterogeneous lookup), not a second copy of
/// every term. Not thread-safe for concurrent mutation; concurrent lookups
/// are safe once loading is complete.
class Dictionary {
 public:
  Dictionary();
  Dictionary(const Dictionary& other);
  Dictionary& operator=(const Dictionary& other);
  // Moving the unique_ptr keeps the term vector's address stable, so the
  // index functors' pointer stays valid.
  Dictionary(Dictionary&&) noexcept = default;
  // Not defaulted: member-wise assignment would replace index_arena_ (and
  // destroy the arena the current index_ lives in) before index_ itself is
  // assigned. The definition empties index_ first.
  Dictionary& operator=(Dictionary&&) noexcept;

  /// Returns the id for `term`, interning it if new.
  TermId Intern(const Term& term);

  /// Returns the id for `term` if already interned.
  std::optional<TermId> Lookup(const Term& term) const;

  /// Convenience: intern an IRI / plain literal by string.
  TermId InternIri(std::string iri) { return Intern(Term::Iri(std::move(iri))); }
  TermId InternLiteral(std::string lex) {
    return Intern(Term::Literal(std::move(lex)));
  }

  /// Returns the term for a valid id. Id must be < size().
  const Term& term(TermId id) const { return (*terms_)[id]; }

  size_t size() const { return terms_->size(); }

  /// Approximate resident bytes (terms, their strings, and the id index).
  size_t ApproxMemoryBytes() const;

 private:
  struct IdHash {
    using is_transparent = void;
    const std::vector<Term>* terms = nullptr;
    size_t operator()(TermId id) const { return TermHash{}((*terms)[id]); }
    size_t operator()(const Term& t) const { return TermHash{}(t); }
  };
  struct IdEq {
    using is_transparent = void;
    const std::vector<Term>* terms = nullptr;
    bool operator()(TermId a, TermId b) const {
      return a == b || (*terms)[a] == (*terms)[b];
    }
    bool operator()(TermId a, const Term& t) const { return (*terms)[a] == t; }
    bool operator()(const Term& t, TermId a) const { return (*terms)[a] == t; }
  };

  /// Behind a unique_ptr so the functors' pointer survives moves.
  std::unique_ptr<std::vector<Term>> terms_;
  /// Backs the id index: interning a large dataset makes one node allocation
  /// per distinct term, which the arena turns into pointer bumps (and frees
  /// all at once with the dictionary). Behind a unique_ptr so moves keep the
  /// index's allocations valid. Declared before index_ (destroyed after it).
  std::unique_ptr<exec::ArenaAllocator> index_arena_;
  /// Rehashing abandons the old bucket array inside the arena; that waste is
  /// geometric in the final size, the same bound std::vector growth accepts.
  std::unordered_set<TermId, IdHash, IdEq, exec::ArenaStl<TermId>> index_;
};

}  // namespace alex::rdf

#endif  // ALEX_RDF_DICTIONARY_H_
