#ifndef ALEX_RDF_DICTIONARY_H_
#define ALEX_RDF_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace alex::rdf {

/// Dense identifier assigned to each distinct Term in a Dictionary.
using TermId = uint32_t;

inline constexpr TermId kInvalidTermId = UINT32_MAX;

/// Bidirectional Term <-> TermId mapping (dictionary encoding).
///
/// TermIds are dense and start at 0, so they index directly into arrays.
/// Not thread-safe for concurrent mutation; concurrent lookups are safe
/// once loading is complete.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the id for `term`, interning it if new.
  TermId Intern(const Term& term);

  /// Returns the id for `term` if already interned.
  std::optional<TermId> Lookup(const Term& term) const;

  /// Convenience: intern an IRI / plain literal by string.
  TermId InternIri(std::string iri) { return Intern(Term::Iri(std::move(iri))); }
  TermId InternLiteral(std::string lex) {
    return Intern(Term::Literal(std::move(lex)));
  }

  /// Returns the term for a valid id. Id must be < size().
  const Term& term(TermId id) const { return terms_[id]; }

  size_t size() const { return terms_.size(); }

 private:
  std::vector<Term> terms_;
  std::unordered_map<Term, TermId, TermHash> index_;
};

}  // namespace alex::rdf

#endif  // ALEX_RDF_DICTIONARY_H_
