#ifndef ALEX_RDF_TRIPLE_H_
#define ALEX_RDF_TRIPLE_H_

#include <tuple>

#include "rdf/dictionary.h"

namespace alex::rdf {

/// A dictionary-encoded RDF triple.
struct Triple {
  TermId subject = kInvalidTermId;
  TermId predicate = kInvalidTermId;
  TermId object = kInvalidTermId;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.subject == b.subject && a.predicate == b.predicate &&
           a.object == b.object;
  }
  friend bool operator<(const Triple& a, const Triple& b) {
    return std::tie(a.subject, a.predicate, a.object) <
           std::tie(b.subject, b.predicate, b.object);
  }
};

/// A triple pattern: any component may be a wildcard (kInvalidTermId).
struct TriplePattern {
  TermId subject = kInvalidTermId;    // kInvalidTermId means "any".
  TermId predicate = kInvalidTermId;  // kInvalidTermId means "any".
  TermId object = kInvalidTermId;     // kInvalidTermId means "any".

  bool Matches(const Triple& t) const {
    return (subject == kInvalidTermId || subject == t.subject) &&
           (predicate == kInvalidTermId || predicate == t.predicate) &&
           (object == kInvalidTermId || object == t.object);
  }
};

}  // namespace alex::rdf

#endif  // ALEX_RDF_TRIPLE_H_
