#include "rdf/dictionary.h"

namespace alex::rdf {

Dictionary::Dictionary()
    : terms_(std::make_unique<std::vector<Term>>()),
      index_(0, IdHash{terms_.get()}, IdEq{terms_.get()}) {}

Dictionary::Dictionary(const Dictionary& other)
    : terms_(std::make_unique<std::vector<Term>>(*other.terms_)),
      index_(other.index_.begin(), other.index_.end(),
             other.index_.bucket_count(), IdHash{terms_.get()},
             IdEq{terms_.get()}) {}

Dictionary& Dictionary::operator=(const Dictionary& other) {
  if (this == &other) return *this;
  Dictionary copy(other);
  *this = std::move(copy);
  return *this;
}

TermId Dictionary::Intern(const Term& term) {
  auto it = index_.find(term);
  if (it != index_.end()) return *it;
  TermId id = static_cast<TermId>(terms_->size());
  terms_->push_back(term);
  index_.insert(id);
  return id;
}

std::optional<TermId> Dictionary::Lookup(const Term& term) const {
  auto it = index_.find(term);
  if (it == index_.end()) return std::nullopt;
  return *it;
}

size_t Dictionary::ApproxMemoryBytes() const {
  size_t total = sizeof(Dictionary);
  total += terms_->capacity() * sizeof(Term);
  for (const Term& t : *terms_) {
    total += t.value.capacity() + t.datatype.capacity() + t.language.capacity();
  }
  // Node-based set: per entry one node (value + next pointer), plus the
  // bucket array.
  total += index_.size() * (sizeof(TermId) + 2 * sizeof(void*));
  total += index_.bucket_count() * sizeof(void*);
  return total;
}

}  // namespace alex::rdf
