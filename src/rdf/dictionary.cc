#include "rdf/dictionary.h"

namespace alex::rdf {

Dictionary::Dictionary()
    : terms_(std::make_unique<std::vector<Term>>()),
      index_arena_(std::make_unique<exec::ArenaAllocator>()),
      index_(0, IdHash{terms_.get()}, IdEq{terms_.get()},
             exec::ArenaStl<TermId>(index_arena_.get())) {}

Dictionary::Dictionary(const Dictionary& other)
    : terms_(std::make_unique<std::vector<Term>>(*other.terms_)),
      index_arena_(std::make_unique<exec::ArenaAllocator>()),
      index_(other.index_.begin(), other.index_.end(),
             other.index_.bucket_count(), IdHash{terms_.get()},
             IdEq{terms_.get()}, exec::ArenaStl<TermId>(index_arena_.get())) {}

Dictionary& Dictionary::operator=(Dictionary&& other) noexcept {
  if (this == &other) return *this;
  // Release our nodes while our arena is still alive (the set's allocator
  // propagates on move assignment, so this also adopts other's allocator),
  // and only then let our old arena die with the unique_ptr assignment.
  index_ = std::move(other.index_);
  terms_ = std::move(other.terms_);
  index_arena_ = std::move(other.index_arena_);
  return *this;
}

Dictionary& Dictionary::operator=(const Dictionary& other) {
  if (this == &other) return *this;
  Dictionary copy(other);
  *this = std::move(copy);
  return *this;
}

TermId Dictionary::Intern(const Term& term) {
  auto it = index_.find(term);
  if (it != index_.end()) return *it;
  TermId id = static_cast<TermId>(terms_->size());
  terms_->push_back(term);
  index_.insert(id);
  return id;
}

std::optional<TermId> Dictionary::Lookup(const Term& term) const {
  auto it = index_.find(term);
  if (it == index_.end()) return std::nullopt;
  return *it;
}

size_t Dictionary::ApproxMemoryBytes() const {
  size_t total = sizeof(Dictionary);
  total += terms_->capacity() * sizeof(Term);
  for (const Term& t : *terms_) {
    total += t.value.capacity() + t.datatype.capacity() + t.language.capacity();
  }
  // The index's nodes and bucket arrays (including arrays abandoned by
  // rehashes) all live in the arena, so its reservation is the exact
  // resident footprint of the id index.
  total += index_arena_->bytes_reserved();
  return total;
}

}  // namespace alex::rdf
