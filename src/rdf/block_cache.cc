#include "rdf/block_cache.h"

#include "obs/metrics.h"
#include "obs/query_stats.h"
#include "obs/trace.h"

namespace alex::rdf {
namespace {

obs::Counter& CacheHits() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("rdf.block_cache_hits");
  return c;
}
obs::Counter& CacheMisses() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("rdf.block_cache_misses");
  return c;
}
obs::Counter& CacheEvictions() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("rdf.block_cache_evictions");
  return c;
}

}  // namespace

BlockCache::BlockCache(size_t budget_bytes) : budget_bytes_(budget_bytes) {}

BlockCache::BlockPtr BlockCache::GetOrLoad(uint64_t key,
                                           const Loader& loader) {
  // When a federated query is driving this read, the span joins its trace
  // (via the ambient context) and the hit/miss lands in its QueryStats —
  // block decompression is often where a "cold storage" query spends its
  // time.
  ALEX_TRACE_SPAN_VAR(block_span, "rdf", "BlockCache::GetOrLoad");
  obs::ActiveQueryStats* query_stats = obs::CurrentQueryStats();
  uint64_t epoch_at_miss = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      CacheHits().Add();
      if (query_stats != nullptr) ++query_stats->block_cache_hits;
      block_span.AddArg("hit", true);
      return it->second->block;
    }
    epoch_at_miss = epoch_;
  }
  CacheMisses().Add();
  if (query_stats != nullptr) ++query_stats->block_cache_misses;
  block_span.AddArg("hit", false);
  BlockPtr block = loader();
  if (block == nullptr) return nullptr;
  const size_t block_bytes = block->ApproxBytes();
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch_ != epoch_at_miss) {
    // Invalidated while loading: serve the caller its (still-consistent at
    // load time) block, but never publish it into the new epoch.
    return block;
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    // A racing loader for the same key landed first; reuse its entry.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->block;
  }
  lru_.push_front(Entry{key, block, block_bytes});
  index_.emplace(key, lru_.begin());
  bytes_ += block_bytes;
  EvictToBudgetLocked();
  return block;
}

void BlockCache::EvictToBudgetLocked() {
  while (bytes_ > budget_bytes_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    CacheEvictions().Add();
  }
}

void BlockCache::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  ++epoch_;
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

uint64_t BlockCache::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

size_t BlockCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

size_t BlockCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace alex::rdf
