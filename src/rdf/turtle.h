#ifndef ALEX_RDF_TURTLE_H_
#define ALEX_RDF_TURTLE_H_

#include <istream>
#include <string_view>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"

namespace alex::rdf {

/// Parser for the Turtle subset that covers the bulk of published LOD
/// dumps:
///
///   - `@prefix ns: <iri> .` and SPARQL-style `PREFIX ns: <iri>`
///   - `@base <iri> .` (relative IRIs are resolved by concatenation)
///   - prefixed names (`ns:local`) and the `a` keyword (rdf:type)
///   - predicate lists (`;`) and object lists (`,`)
///   - literals with escapes, language tags, `^^` datatypes, and the
///     numeric (`42`, `3.14`) and boolean (`true`, `false`) shorthands
///   - blank node labels (`_:b`)
///   - `#` comments
///
/// Not supported (rejected with ParseError): anonymous blank nodes `[...]`,
/// collections `(...)`, and multiline `"""` literals.
Status ReadTurtle(std::istream& in, Dictionary* dict, TripleStore* store);

/// Parses a complete Turtle document held in memory.
Status ParseTurtle(std::string_view document, Dictionary* dict,
                   TripleStore* store);

}  // namespace alex::rdf

#endif  // ALEX_RDF_TURTLE_H_
