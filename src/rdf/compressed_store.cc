#include "rdf/compressed_store.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/binary_io.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace alex::rdf {
namespace {

using blockfmt::BlockMeta;
using blockfmt::DecodedBlock;
using blockfmt::Key3;

constexpr char kBlockMagic[8] = {'A', 'L', 'E', 'X', 'B', 'L', 'K', '1'};
constexpr uint32_t kBlockFormatVersion = 1;
constexpr size_t kMaxBlockSize = 1u << 20;

obs::Histogram& DecodeHistogram() {
  static obs::Histogram& h =
      obs::MetricsRegistry::Global().histogram("rdf.block_decode_seconds");
  return h;
}
obs::Counter& DecodeErrors() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("rdf.block_decode_errors");
  return c;
}

void PublishBytesPerTriple(double value) {
  obs::MetricsRegistry::Global()
      .gauge("rdf.bytes_per_triple")
      .Set(static_cast<int64_t>(value + 0.5));
}

uint64_t CacheKey(TripleOrder order, size_t index) {
  return (static_cast<uint64_t>(order) << 32) | static_cast<uint64_t>(index);
}

}  // namespace

void CompressedTripleStore::EncodeOrdering(
    const std::vector<Triple>& spo_sorted, TripleOrder order,
    size_t block_size, Ordering* out) {
  std::vector<Key3> keys;
  keys.reserve(spo_sorted.size());
  for (const Triple& t : spo_sorted) keys.push_back(blockfmt::Rotate(t, order));
  if (order != TripleOrder::kSpo) std::sort(keys.begin(), keys.end());

  out->blocks.clear();
  out->payload.clear();
  for (size_t begin = 0; begin < keys.size(); begin += block_size) {
    const size_t n = std::min(block_size, keys.size() - begin);
    std::string bytes = blockfmt::EncodeBlock(keys.data() + begin, n);
    BlockMeta meta;
    meta.first = keys[begin];
    meta.last = keys[begin + n - 1];
    meta.count = static_cast<uint32_t>(n);
    meta.offset = out->payload.size();
    meta.length = static_cast<uint32_t>(bytes.size());
    meta.checksum = blockfmt::Fnv1a64(bytes);
    out->payload.append(bytes);
    out->blocks.push_back(meta);
  }
  out->payload.shrink_to_fit();
}

CompressedTripleStore CompressedTripleStore::FromTriples(
    std::vector<Triple> triples, const CompressedStoreOptions& options) {
  std::sort(triples.begin(), triples.end());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());

  CompressedTripleStore store;
  store.options_ = options;
  store.options_.block_size = std::max<size_t>(1, options.block_size);
  store.num_triples_ = triples.size();
  for (size_t i = 0; i < kNumTripleOrders; ++i) {
    EncodeOrdering(triples, static_cast<TripleOrder>(i),
                   store.options_.block_size, &store.orderings_[i]);
  }
  if (store.num_triples_ > 0) {
    PublishBytesPerTriple(store.BytesPerTriple());
  }
  return store;
}

CompressedTripleStore CompressedTripleStore::Build(
    const TripleSource& source, const CompressedStoreOptions& options) {
  std::vector<Triple> triples;
  triples.reserve(source.size());
  source.ForEachMatch(TriplePattern{}, [&triples](const Triple& t) {
    triples.push_back(t);
    return true;
  });
  return FromTriples(std::move(triples), options);
}

size_t CompressedTripleStore::PayloadBytes() const {
  size_t total = 0;
  for (const Ordering& ord : orderings_) {
    if (!ord.payload.empty()) {
      total += ord.payload.size();
    } else {
      for (const BlockMeta& m : ord.blocks) total += m.length;
    }
  }
  return total;
}

size_t CompressedTripleStore::MemoryBytes() const {
  size_t total = 0;
  for (const Ordering& ord : orderings_) {
    total += ord.blocks.capacity() * sizeof(BlockMeta);
    total += ord.payload.capacity();
  }
  if (disk_ != nullptr) total += disk_->cache.bytes();
  return total;
}

double CompressedTripleStore::BytesPerTriple() const {
  if (num_triples_ == 0) return 0.0;
  size_t fences = 0;
  for (const Ordering& ord : orderings_) {
    fences += ord.blocks.size() * sizeof(BlockMeta);
  }
  return static_cast<double>(fences + PayloadBytes()) /
         static_cast<double>(num_triples_);
}

void CompressedTripleStore::InvalidateCache() {
  if (disk_ != nullptr) disk_->cache.Invalidate();
}

BlockCache::BlockPtr CompressedTripleStore::LoadBlock(TripleOrder order,
                                                      size_t index) const {
  const Ordering& ord = orderings_[static_cast<size_t>(order)];
  const BlockMeta& meta = ord.blocks[index];
  std::string bytes;
  if (disk_ == nullptr) {
    bytes = ord.payload.substr(static_cast<size_t>(meta.offset), meta.length);
  } else {
    bytes.resize(meta.length);
    std::lock_guard<std::mutex> lock(disk_->io_mu);
    disk_->file.clear();
    disk_->file.seekg(
        static_cast<std::streamoff>(disk_->payload_start + meta.offset));
    disk_->file.read(bytes.data(), static_cast<std::streamsize>(meta.length));
    if (disk_->file.gcount() != static_cast<std::streamsize>(meta.length)) {
      DecodeErrors().Add();
      ALEX_LOG(kError) << "block file read failed at offset "
                       << (disk_->payload_start + meta.offset) << " ("
                       << disk_->path << ")";
      return nullptr;
    }
  }
  if (blockfmt::Fnv1a64(bytes) != meta.checksum) {
    DecodeErrors().Add();
    ALEX_LOG(kError) << "block checksum mismatch (order "
                     << static_cast<int>(order) << ", block " << index << ")";
    return nullptr;
  }
  auto block = std::make_shared<DecodedBlock>();
  {
    obs::ScopedTimer timer(DecodeHistogram());
    const Status status = blockfmt::DecodeBlock(bytes, meta.count, &block->rows);
    if (!status.ok() || block->rows.front() != meta.first ||
        block->rows.back() != meta.last) {
      DecodeErrors().Add();
      ALEX_LOG(kError) << "block decode failed (order "
                       << static_cast<int>(order) << ", block " << index
                       << "): " << status.message();
      return nullptr;
    }
  }
  return block;
}

BlockCache::BlockPtr CompressedTripleStore::GetBlock(TripleOrder order,
                                                     size_t index) const {
  if (disk_ == nullptr) return LoadBlock(order, index);
  return disk_->cache.GetOrLoad(
      CacheKey(order, index), [this, order, index] { return LoadBlock(order, index); });
}

bool CompressedTripleStore::ScanRange(
    TripleOrder order, const Key3& lo, const Key3& hi,
    const TriplePattern& pattern,
    const std::function<bool(const Triple&)>& fn) const {
  const Ordering& ord = orderings_[static_cast<size_t>(order)];
  auto it = std::lower_bound(
      ord.blocks.begin(), ord.blocks.end(), lo,
      [](const BlockMeta& m, const Key3& key) { return m.last < key; });
  for (; it != ord.blocks.end() && !(hi < it->first); ++it) {
    const size_t index = static_cast<size_t>(it - ord.blocks.begin());
    BlockCache::BlockPtr block = GetBlock(order, index);
    if (block == nullptr) continue;  // Logged + counted in LoadBlock.
    auto row = std::lower_bound(block->rows.begin(), block->rows.end(), lo);
    for (; row != block->rows.end() && !(hi < *row); ++row) {
      const Triple t = blockfmt::Unrotate(*row, order);
      if (pattern.Matches(t) && !fn(t)) return false;
    }
  }
  return true;
}

void CompressedTripleStore::ForEachMatch(
    const TriplePattern& pattern,
    const std::function<bool(const Triple&)>& fn) const {
  const TermId kAny = kInvalidTermId;
  const TermId kMax = kInvalidTermId;  // UINT32_MAX also serves as +inf.
  const bool s = pattern.subject != kAny;
  const bool p = pattern.predicate != kAny;
  const bool o = pattern.object != kAny;

  // Same index routing as TripleStore, over rotated fence keys.
  if (s) {
    if (!p && o) {
      ScanRange(TripleOrder::kOsp, Key3{pattern.object, pattern.subject, 0},
                Key3{pattern.object, pattern.subject, kMax}, pattern, fn);
      return;
    }
    ScanRange(TripleOrder::kSpo,
              Key3{pattern.subject, p ? pattern.predicate : 0,
                   (p && o) ? pattern.object : 0},
              Key3{pattern.subject, p ? pattern.predicate : kMax,
                   (p && o) ? pattern.object : kMax},
              pattern, fn);
    return;
  }
  if (p) {
    ScanRange(TripleOrder::kPos,
              Key3{pattern.predicate, o ? pattern.object : 0, 0},
              Key3{pattern.predicate, o ? pattern.object : kMax, kMax},
              pattern, fn);
    return;
  }
  if (o) {
    ScanRange(TripleOrder::kOsp, Key3{pattern.object, 0, 0},
              Key3{pattern.object, kMax, kMax}, pattern, fn);
    return;
  }
  ScanRange(TripleOrder::kSpo, Key3{0, 0, 0}, Key3{kMax, kMax, kMax}, pattern,
            fn);
}

std::vector<TermId> CompressedTripleStore::DistinctLeading(
    TripleOrder order) const {
  const Ordering& ord = orderings_[static_cast<size_t>(order)];
  std::vector<TermId> out;
  for (size_t i = 0; i < ord.blocks.size(); ++i) {
    const BlockMeta& meta = ord.blocks[i];
    // A block entirely inside one leading value contributes nothing new.
    if (!out.empty() && meta.first.a == out.back() &&
        meta.last.a == out.back()) {
      continue;
    }
    BlockCache::BlockPtr block = GetBlock(order, i);
    if (block == nullptr) continue;
    for (const Key3& row : block->rows) {
      if (out.empty() || row.a != out.back()) out.push_back(row.a);
    }
  }
  return out;
}

std::vector<TermId> CompressedTripleStore::DistinctPredicates() const {
  return DistinctLeading(TripleOrder::kPos);
}

std::vector<TermId> CompressedTripleStore::DistinctSubjects() const {
  return DistinctLeading(TripleOrder::kSpo);
}

Status CompressedTripleStore::WriteFile(const std::string& path) const {
  if (disk_ != nullptr) {
    return Status::InvalidArgument(
        "cannot re-serialize a disk-backed store (copy the block file)");
  }
  BinaryWriter header;
  header.WriteRaw(std::string_view(kBlockMagic, sizeof(kBlockMagic)));
  header.WriteU32(kBlockFormatVersion);
  header.WriteU32(static_cast<uint32_t>(options_.block_size));
  header.WriteU64(num_triples_);
  uint64_t region_base = 0;
  uint64_t total_payload = 0;
  for (const Ordering& ord : orderings_) {
    header.WriteU64(ord.blocks.size());
    for (const BlockMeta& m : ord.blocks) {
      header.WriteU32(m.first.a);
      header.WriteU32(m.first.b);
      header.WriteU32(m.first.c);
      header.WriteU32(m.last.a);
      header.WriteU32(m.last.b);
      header.WriteU32(m.last.c);
      header.WriteU32(m.count);
      // Offsets are region-relative in memory, absolute in the file's
      // payload section.
      header.WriteU64(region_base + m.offset);
      header.WriteU32(m.length);
      header.WriteU64(m.checksum);
    }
    region_base += ord.payload.size();
    total_payload += ord.payload.size();
  }
  header.WriteU64(total_payload);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open block file for write: " + path);
  const std::string& head = header.buffer();
  out.write(head.data(), static_cast<std::streamsize>(head.size()));
  for (const Ordering& ord : orderings_) {
    out.write(ord.payload.data(),
              static_cast<std::streamsize>(ord.payload.size()));
  }
  out.flush();
  if (!out) return Status::IOError("block file write failed: " + path);
  return Status::OK();
}

Result<CompressedTripleStore> CompressedTripleStore::OpenFile(
    const std::string& path, const CompressedStoreOptions& options) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::IOError("cannot open block file: " + path);
  file.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(file.tellg());
  file.seekg(0);

  // The header is tiny next to payloads; read it bounds-checked in memory.
  // Fixed prefix: magic + version + block_size + triple count.
  constexpr size_t kFixedPrefix = 8 + 4 + 4 + 8;
  std::string prefix(kFixedPrefix, '\0');
  file.read(prefix.data(), kFixedPrefix);
  if (file.gcount() != static_cast<std::streamsize>(kFixedPrefix)) {
    return Status::ParseError("truncated block file header");
  }
  BinaryReader reader(prefix);
  std::string_view magic;
  ALEX_RETURN_NOT_OK(reader.ReadRaw(sizeof(kBlockMagic), &magic));
  if (std::memcmp(magic.data(), kBlockMagic, sizeof(kBlockMagic)) != 0) {
    return Status::ParseError("not an ALEXBLK1 block file");
  }
  uint32_t version = 0, block_size = 0;
  uint64_t num_triples = 0;
  ALEX_RETURN_NOT_OK(reader.ReadU32(&version));
  ALEX_RETURN_NOT_OK(reader.ReadU32(&block_size));
  ALEX_RETURN_NOT_OK(reader.ReadU64(&num_triples));
  if (version != kBlockFormatVersion) {
    return Status::ParseError("unsupported block file version " +
                              std::to_string(version));
  }
  if (block_size == 0 || block_size > kMaxBlockSize) {
    return Status::ParseError("block size out of range: " +
                              std::to_string(block_size));
  }

  CompressedTripleStore store;
  store.options_ = options;
  store.options_.block_size = block_size;
  store.num_triples_ = num_triples;

  const uint64_t expected_blocks =
      (num_triples + block_size - 1) / block_size;
  constexpr size_t kMetaBytes = 6 * 4 + 4 + 8 + 4 + 8;
  for (size_t oi = 0; oi < kNumTripleOrders; ++oi) {
    std::string count_buf(8, '\0');
    file.read(count_buf.data(), 8);
    if (file.gcount() != 8) {
      return Status::ParseError("truncated block count for ordering " +
                                std::to_string(oi));
    }
    BinaryReader count_reader(count_buf);
    uint64_t num_blocks = 0;
    ALEX_RETURN_NOT_OK(count_reader.ReadU64(&num_blocks));
    if (num_blocks != expected_blocks) {
      return Status::ParseError(
          "block count mismatch for ordering " + std::to_string(oi) +
          ": have " + std::to_string(num_blocks) + ", expect " +
          std::to_string(expected_blocks));
    }
    std::string table(static_cast<size_t>(num_blocks) * kMetaBytes, '\0');
    file.read(table.data(), static_cast<std::streamsize>(table.size()));
    if (file.gcount() != static_cast<std::streamsize>(table.size())) {
      return Status::ParseError("truncated fence table for ordering " +
                                std::to_string(oi));
    }
    BinaryReader table_reader(table);
    Ordering& ord = store.orderings_[oi];
    ord.blocks.reserve(static_cast<size_t>(num_blocks));
    uint64_t counted = 0;
    for (uint64_t bi = 0; bi < num_blocks; ++bi) {
      BlockMeta m;
      ALEX_RETURN_NOT_OK(table_reader.ReadU32(&m.first.a));
      ALEX_RETURN_NOT_OK(table_reader.ReadU32(&m.first.b));
      ALEX_RETURN_NOT_OK(table_reader.ReadU32(&m.first.c));
      ALEX_RETURN_NOT_OK(table_reader.ReadU32(&m.last.a));
      ALEX_RETURN_NOT_OK(table_reader.ReadU32(&m.last.b));
      ALEX_RETURN_NOT_OK(table_reader.ReadU32(&m.last.c));
      ALEX_RETURN_NOT_OK(table_reader.ReadU32(&m.count));
      ALEX_RETURN_NOT_OK(table_reader.ReadU64(&m.offset));
      ALEX_RETURN_NOT_OK(table_reader.ReadU32(&m.length));
      ALEX_RETURN_NOT_OK(table_reader.ReadU64(&m.checksum));
      if (m.count == 0 || m.count > block_size) {
        return Status::ParseError("fence count out of range at block " +
                                  std::to_string(bi));
      }
      if (m.length == 0 || (m.last < m.first)) {
        return Status::ParseError("corrupt fence at block " +
                                  std::to_string(bi));
      }
      if (!ord.blocks.empty() && !(ord.blocks.back().last < m.first)) {
        return Status::ParseError("fences not strictly ordered at block " +
                                  std::to_string(bi));
      }
      counted += m.count;
      ord.blocks.push_back(m);
    }
    if (counted != num_triples) {
      return Status::ParseError("fence counts sum to " +
                                std::to_string(counted) + ", expect " +
                                std::to_string(num_triples));
    }
  }

  std::string payload_buf(8, '\0');
  file.read(payload_buf.data(), 8);
  if (file.gcount() != 8) {
    return Status::ParseError("truncated payload length");
  }
  BinaryReader payload_reader(payload_buf);
  uint64_t total_payload = 0;
  ALEX_RETURN_NOT_OK(payload_reader.ReadU64(&total_payload));
  const uint64_t payload_start = static_cast<uint64_t>(file.tellg());
  if (payload_start + total_payload != file_size) {
    return Status::ParseError(
        "payload section length mismatch: declared " +
        std::to_string(total_payload) + " bytes, file holds " +
        std::to_string(file_size - payload_start));
  }
  for (const Ordering& ord : store.orderings_) {
    for (const BlockMeta& m : ord.blocks) {
      if (m.offset + m.length > total_payload) {
        return Status::ParseError("block extent past payload section end");
      }
    }
  }

  store.disk_ = std::make_unique<DiskState>(options.cache_budget_bytes);
  store.disk_->path = path;
  store.disk_->payload_start = payload_start;
  store.disk_->file = std::move(file);
  if (store.num_triples_ > 0) PublishBytesPerTriple(store.BytesPerTriple());
  return store;
}

}  // namespace alex::rdf
