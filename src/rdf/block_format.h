#ifndef ALEX_RDF_BLOCK_FORMAT_H_
#define ALEX_RDF_BLOCK_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "common/status.h"
#include "rdf/triple.h"

namespace alex::rdf {

/// The three sort orders the storage layer materializes; every triple
/// pattern shape is answered from the ordering whose sort prefix covers the
/// bound components (same routing as TripleStore's three indexes).
enum class TripleOrder : uint8_t { kSpo = 0, kPos = 1, kOsp = 2 };

inline constexpr size_t kNumTripleOrders = 3;

namespace blockfmt {

/// A triple's components permuted into one ordering's comparison order:
/// `a` is the most-significant sort component. Rotated keys compare with
/// plain lexicographic order regardless of which ordering produced them.
struct Key3 {
  TermId a = 0;
  TermId b = 0;
  TermId c = 0;

  friend bool operator==(const Key3&, const Key3&) = default;
  friend bool operator<(const Key3& x, const Key3& y) {
    return std::tie(x.a, x.b, x.c) < std::tie(y.a, y.b, y.c);
  }
  friend bool operator<=(const Key3& x, const Key3& y) { return !(y < x); }
};

inline Key3 Rotate(const Triple& t, TripleOrder order) {
  switch (order) {
    case TripleOrder::kSpo:
      return Key3{t.subject, t.predicate, t.object};
    case TripleOrder::kPos:
      return Key3{t.predicate, t.object, t.subject};
    case TripleOrder::kOsp:
      return Key3{t.object, t.subject, t.predicate};
  }
  return Key3{};
}

inline Triple Unrotate(const Key3& k, TripleOrder order) {
  switch (order) {
    case TripleOrder::kSpo:
      return Triple{k.a, k.b, k.c};
    case TripleOrder::kPos:
      return Triple{k.c, k.a, k.b};
    case TripleOrder::kOsp:
      return Triple{k.b, k.c, k.a};
  }
  return Triple{};
}

/// One decoded block: its rotated keys, strictly increasing. Cached by the
/// disk tier's BlockCache; decoded on demand by the in-memory tier.
struct DecodedBlock {
  std::vector<Key3> rows;

  size_t ApproxBytes() const { return sizeof(*this) + rows.size() * sizeof(Key3); }
};

/// Per-block catalog entry ("fence"): the first/last key bound the block so
/// pattern lookups binary-search the fences and decode only touched blocks.
/// `offset`/`length` locate the payload inside the ordering's byte region;
/// `checksum` (FNV-1a 64 of the payload bytes) rejects silent corruption.
struct BlockMeta {
  Key3 first;
  Key3 last;
  uint32_t count = 0;
  uint64_t offset = 0;
  uint32_t length = 0;
  uint64_t checksum = 0;
};

/// Appends `v` LEB128-encoded (7 bits per byte, high bit = continuation).
void AppendVarint(std::string* out, uint64_t v);

/// Decodes one varint from [p, end). Returns the next position, or nullptr
/// on truncation/overlong input.
const char* DecodeVarint(const char* p, const char* end, uint64_t* v);

uint64_t Fnv1a64(std::string_view bytes);

/// Encodes `n` strictly increasing rotated keys as one block:
/// the first key as three absolute varints, then per key a tag byte
/// (mode in the top 2 bits, a small delta in the low 6, 63 escaping to a
/// varint) choosing between same-(a,b) `c`-delta, same-`a` `b`-delta +
/// absolute `c`, and `a`-delta + absolute `b`, `c`.
std::string EncodeBlock(const Key3* keys, size_t n);

/// Decodes a block of `count` keys, validating bounds, strict ordering, and
/// that the payload is fully consumed. On error `rows` is unspecified.
Status DecodeBlock(std::string_view bytes, uint32_t count,
                   std::vector<Key3>* rows);

}  // namespace blockfmt
}  // namespace alex::rdf

#endif  // ALEX_RDF_BLOCK_FORMAT_H_
