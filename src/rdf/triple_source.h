#ifndef ALEX_RDF_TRIPLE_SOURCE_H_
#define ALEX_RDF_TRIPLE_SOURCE_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "rdf/triple.h"

namespace alex::rdf {

/// Read interface over a set of dictionary-encoded triples.
///
/// Both storage backends implement it — the uncompressed TripleStore (three
/// sorted vectors, the executable equivalence reference) and the
/// block-compressed CompressedTripleStore (optionally disk-backed) — so the
/// SPARQL evaluator, federation endpoint probes, and the entity index run
/// unchanged against either. Implementations must answer every method with
/// identical results for identical content; the storage tests and
/// bench_storage enforce that bit-for-bit.
///
/// Thread-compatibility contract: all methods are safe to call concurrently
/// once the underlying store is no longer being mutated.
class TripleSource {
 public:
  virtual ~TripleSource() = default;

  /// Number of distinct triples.
  virtual size_t size() const = 0;
  bool empty() const { return size() == 0; }

  /// Calls fn for every triple matching the pattern (wildcards =
  /// kInvalidTermId) in SPO order within the chosen index; stops early if fn
  /// returns false.
  virtual void ForEachMatch(
      const TriplePattern& pattern,
      const std::function<bool(const Triple&)>& fn) const = 0;

  /// Returns true if the exact triple is present.
  virtual bool Contains(const Triple& t) const;

  /// Number of triples matching the pattern.
  virtual size_t CountMatches(const TriplePattern& pattern) const;

  /// Returns all triples matching the pattern.
  std::vector<Triple> Match(const TriplePattern& pattern) const;

  /// Distinct predicate ids present, sorted ascending.
  virtual std::vector<TermId> DistinctPredicates() const = 0;

  /// Distinct subject ids present, sorted ascending.
  virtual std::vector<TermId> DistinctSubjects() const = 0;
};

}  // namespace alex::rdf

#endif  // ALEX_RDF_TRIPLE_SOURCE_H_
