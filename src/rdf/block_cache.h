#ifndef ALEX_RDF_BLOCK_CACHE_H_
#define ALEX_RDF_BLOCK_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "rdf/block_format.h"

namespace alex::rdf {

/// LRU cache of decoded blocks for the disk-backed storage tier, bounded by
/// an approximate decoded-bytes budget.
///
/// Epoch-safe invalidation: `Invalidate()` bumps the epoch and drops every
/// entry; a load that was already in flight against the old epoch returns
/// its block to that caller but is NOT inserted, so a stale decode can never
/// be served to readers that observed the invalidation.
///
/// Thread-safe. The loader runs outside the cache lock (decode and disk I/O
/// must not serialize unrelated lookups); two threads racing on the same
/// missing key may both load, and the second insert wins harmlessly.
///
/// Instrumented through the global metrics registry:
/// `rdf.block_cache_hits` / `rdf.block_cache_misses` /
/// `rdf.block_cache_evictions`.
class BlockCache {
 public:
  using BlockPtr = std::shared_ptr<const blockfmt::DecodedBlock>;
  using Loader = std::function<BlockPtr()>;

  explicit BlockCache(size_t budget_bytes);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Returns the cached block for `key`, or runs `loader` and caches the
  /// result. A loader returning nullptr (I/O or decode failure) is passed
  /// through uncached so a transient failure is retried next time.
  BlockPtr GetOrLoad(uint64_t key, const Loader& loader);

  /// Drops every entry and starts a new epoch.
  void Invalidate();

  uint64_t epoch() const;
  size_t bytes() const;
  size_t entries() const;
  size_t budget_bytes() const { return budget_bytes_; }

 private:
  struct Entry {
    uint64_t key = 0;
    BlockPtr block;
    size_t bytes = 0;
  };

  void EvictToBudgetLocked();

  const size_t budget_bytes_;
  mutable std::mutex mu_;
  uint64_t epoch_ = 0;
  size_t bytes_ = 0;
  std::list<Entry> lru_;  // Front = most recently used.
  std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
};

}  // namespace alex::rdf

#endif  // ALEX_RDF_BLOCK_CACHE_H_
