#include "rdf/ntriples.h"

#include <cctype>
#include <string>

#include "common/string_util.h"

namespace alex::rdf {
namespace {

void SkipSpace(std::string_view s, size_t* pos) {
  while (*pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[*pos]))) {
    ++*pos;
  }
}

Result<std::string> ParseQuoted(std::string_view line, size_t* pos) {
  // *pos points at the opening quote.
  std::string out;
  size_t i = *pos + 1;
  while (i < line.size()) {
    char c = line[i];
    if (c == '"') {
      *pos = i + 1;
      return out;
    }
    if (c == '\\') {
      if (i + 1 >= line.size()) break;
      char e = line[i + 1];
      switch (e) {
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        default:
          return Status::ParseError("unknown escape \\" + std::string(1, e));
      }
      i += 2;
      continue;
    }
    out += c;
    ++i;
  }
  return Status::ParseError("unterminated string literal");
}

}  // namespace

Result<Term> ParseNTriplesTerm(std::string_view line, size_t* pos) {
  SkipSpace(line, pos);
  if (*pos >= line.size()) return Status::ParseError("unexpected end of line");
  char c = line[*pos];
  if (c == '<') {
    size_t end = line.find('>', *pos + 1);
    if (end == std::string_view::npos) {
      return Status::ParseError("unterminated IRI");
    }
    Term t = Term::Iri(std::string(line.substr(*pos + 1, end - *pos - 1)));
    *pos = end + 1;
    SkipSpace(line, pos);
    return t;
  }
  if (c == '_') {
    if (*pos + 1 >= line.size() || line[*pos + 1] != ':') {
      return Status::ParseError("malformed blank node");
    }
    size_t start = *pos + 2;
    size_t i = start;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i])) &&
           line[i] != '.') {
      ++i;
    }
    if (i == start) return Status::ParseError("empty blank node label");
    Term t = Term::Blank(std::string(line.substr(start, i - start)));
    *pos = i;
    SkipSpace(line, pos);
    return t;
  }
  if (c == '"') {
    ALEX_ASSIGN_OR_RETURN(std::string lexical, ParseQuoted(line, pos));
    Term t = Term::Literal(std::move(lexical));
    if (*pos < line.size() && line[*pos] == '@') {
      size_t start = *pos + 1;
      size_t i = start;
      while (i < line.size() &&
             (std::isalnum(static_cast<unsigned char>(line[i])) ||
              line[i] == '-')) {
        ++i;
      }
      if (i == start) return Status::ParseError("empty language tag");
      t.language = std::string(line.substr(start, i - start));
      *pos = i;
    } else if (*pos + 1 < line.size() && line[*pos] == '^' &&
               line[*pos + 1] == '^') {
      *pos += 2;
      if (*pos >= line.size() || line[*pos] != '<') {
        return Status::ParseError("datatype must be an IRI");
      }
      size_t end = line.find('>', *pos + 1);
      if (end == std::string_view::npos) {
        return Status::ParseError("unterminated datatype IRI");
      }
      t.datatype = std::string(line.substr(*pos + 1, end - *pos - 1));
      *pos = end + 1;
    }
    SkipSpace(line, pos);
    return t;
  }
  return Status::ParseError("unexpected character '" + std::string(1, c) +
                            "'");
}

Result<ParsedTriple> ParseNTriplesLine(std::string_view line) {
  std::string_view trimmed = TrimAscii(line);
  if (trimmed.empty() || trimmed[0] == '#') {
    return Status::NotFound("blank or comment line");
  }
  size_t pos = 0;
  ParsedTriple out;
  ALEX_ASSIGN_OR_RETURN(out.subject, ParseNTriplesTerm(trimmed, &pos));
  ALEX_ASSIGN_OR_RETURN(out.predicate, ParseNTriplesTerm(trimmed, &pos));
  if (!out.predicate.is_iri()) {
    return Status::ParseError("predicate must be an IRI");
  }
  ALEX_ASSIGN_OR_RETURN(out.object, ParseNTriplesTerm(trimmed, &pos));
  if (pos >= trimmed.size() || trimmed[pos] != '.') {
    return Status::ParseError("missing terminating '.'");
  }
  return out;
}

Status ReadNTriples(std::istream& in, Dictionary* dict, TripleStore* store) {
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    Result<ParsedTriple> parsed = ParseNTriplesLine(line);
    if (!parsed.ok()) {
      if (parsed.status().code() == StatusCode::kNotFound) continue;  // skip
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                parsed.status().message());
    }
    store->Add(dict->Intern(parsed->subject), dict->Intern(parsed->predicate),
               dict->Intern(parsed->object));
  }
  return Status::OK();
}

Status WriteNTriples(const TripleStore& store, const Dictionary& dict,
                     std::ostream& out) {
  Status status = Status::OK();
  store.ForEachMatch(TriplePattern{}, [&](const Triple& t) {
    out << dict.term(t.subject).ToNTriples() << " "
        << dict.term(t.predicate).ToNTriples() << " "
        << dict.term(t.object).ToNTriples() << " .\n";
    return static_cast<bool>(out);
  });
  if (!out) status = Status::IOError("write failed");
  return status;
}

}  // namespace alex::rdf
