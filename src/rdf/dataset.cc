#include "rdf/dataset.h"

#include <cassert>

namespace alex::rdf {

void Dataset::AddLiteralTriple(const std::string& subject_iri,
                               const std::string& predicate_iri,
                               const Term& object) {
  EnsureMutable();
  store_.Add(dict_.InternIri(subject_iri), dict_.InternIri(predicate_iri),
             dict_.Intern(object));
  entity_index_built_ = false;
}

void Dataset::AddIriTriple(const std::string& subject_iri,
                           const std::string& predicate_iri,
                           const std::string& object_iri) {
  EnsureMutable();
  store_.Add(dict_.InternIri(subject_iri), dict_.InternIri(predicate_iri),
             dict_.InternIri(object_iri));
  entity_index_built_ = false;
}

void Dataset::Compress(const CompressedStoreOptions& options) {
  if (compressed_ != nullptr) return;
  compressed_ = std::make_unique<CompressedTripleStore>(
      CompressedTripleStore::Build(store_, options));
  store_.Clear();
}

Status Dataset::CompressToDisk(const std::string& path,
                               const CompressedStoreOptions& options) {
  if (compressed_ != nullptr && compressed_->disk_backed()) {
    return Status::InvalidArgument("dataset \"" + name_ +
                                   "\" is already disk-backed");
  }
  if (compressed_ != nullptr) {
    ALEX_RETURN_NOT_OK(compressed_->WriteFile(path));
  } else {
    ALEX_RETURN_NOT_OK(
        CompressedTripleStore::Build(store_, options).WriteFile(path));
  }
  auto opened = CompressedTripleStore::OpenFile(path, options);
  if (!opened.ok()) return opened.status();
  compressed_ =
      std::make_unique<CompressedTripleStore>(std::move(opened).value());
  store_.Clear();
  return Status::OK();
}

void Dataset::EnsureMutable() {
  if (compressed_ == nullptr) return;
  std::unique_ptr<CompressedTripleStore> frozen = std::move(compressed_);
  frozen->ForEachMatch(TriplePattern{}, [this](const Triple& t) {
    store_.Add(t);
    return true;
  });
}

void Dataset::BuildEntityIndex() {
  entity_index_built_ = false;
  EnsureEntityIndex();
}

void Dataset::EnsureEntityIndex() const {
  if (entity_index_built_) return;
  entity_terms_.clear();
  entity_attributes_.clear();
  term_to_entity_.clear();

  const TripleSource& src = source();
  for (TermId subject : src.DistinctSubjects()) {
    if (!dict_.term(subject).is_iri()) continue;
    EntityId e = static_cast<EntityId>(entity_terms_.size());
    entity_terms_.push_back(subject);
    term_to_entity_.emplace(subject, e);
    std::vector<Attribute> attrs;
    src.ForEachMatch(
        TriplePattern{subject, kInvalidTermId, kInvalidTermId},
        [&attrs](const Triple& t) {
          attrs.push_back(Attribute{t.predicate, t.object});
          return true;
        });
    entity_attributes_.push_back(std::move(attrs));
  }
  entity_index_built_ = true;
}

size_t Dataset::num_entities() const {
  EnsureEntityIndex();
  return entity_terms_.size();
}

TermId Dataset::entity_term(EntityId e) const {
  EnsureEntityIndex();
  assert(e < entity_terms_.size());
  return entity_terms_[e];
}

const std::string& Dataset::entity_iri(EntityId e) const {
  return dict_.term(entity_term(e)).value;
}

std::optional<EntityId> Dataset::FindEntity(TermId subject) const {
  EnsureEntityIndex();
  auto it = term_to_entity_.find(subject);
  if (it == term_to_entity_.end()) return std::nullopt;
  return it->second;
}

std::optional<EntityId> Dataset::FindEntityByIri(const std::string& iri) const {
  auto id = dict_.Lookup(Term::Iri(iri));
  if (!id) return std::nullopt;
  return FindEntity(*id);
}

const std::vector<Attribute>& Dataset::attributes(EntityId e) const {
  EnsureEntityIndex();
  assert(e < entity_attributes_.size());
  return entity_attributes_[e];
}

}  // namespace alex::rdf
