#include "rdf/triple_source.h"

namespace alex::rdf {

bool TripleSource::Contains(const Triple& t) const {
  bool found = false;
  ForEachMatch(TriplePattern{t.subject, t.predicate, t.object},
               [&found](const Triple&) {
                 found = true;
                 return false;
               });
  return found;
}

size_t TripleSource::CountMatches(const TriplePattern& pattern) const {
  size_t n = 0;
  ForEachMatch(pattern, [&n](const Triple&) {
    ++n;
    return true;
  });
  return n;
}

std::vector<Triple> TripleSource::Match(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  ForEachMatch(pattern, [&out](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

}  // namespace alex::rdf
