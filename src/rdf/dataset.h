#ifndef ALEX_RDF_DATASET_H_
#define ALEX_RDF_DATASET_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdf/compressed_store.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"

namespace alex::rdf {

/// Dense entity identifier, local to one Dataset.
using EntityId = uint32_t;

inline constexpr EntityId kInvalidEntityId = UINT32_MAX;

/// One attribute of an entity: an RDF (predicate, object) pair.
/// In the paper's terminology (Section 4.1), the predicate label is the
/// attribute name and the object is the attribute value.
struct Attribute {
  TermId predicate = kInvalidTermId;
  TermId object = kInvalidTermId;

  friend bool operator==(const Attribute& a, const Attribute& b) {
    return a.predicate == b.predicate && a.object == b.object;
  }
};

/// A named RDF knowledge base: a dictionary, a triple store, and an
/// entity-centric view over it.
///
/// Entities are the distinct IRI subjects of the store. After loading
/// triples, call `BuildEntityIndex()` (or any entity accessor, which builds
/// lazily) to assign dense EntityIds and materialize per-entity attribute
/// lists — the representation ALEX's feature construction consumes.
class Dataset {
 public:
  explicit Dataset(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  /// The mutable uncompressed store. Mutating through it decompresses the
  /// dataset first, so the write lands in the active backend.
  TripleStore& store() {
    EnsureMutable();
    return store_;
  }
  /// The uncompressed store; only meaningful while !is_compressed() (it is
  /// emptied on Compress). Readers should prefer source().
  const TripleStore& store() const { return store_; }

  /// The active read backend: the compressed store when present, else the
  /// uncompressed TripleStore. All query paths (SPARQL evaluation,
  /// federation probes, the entity index) go through this.
  const TripleSource& source() const {
    if (compressed_ != nullptr) return *compressed_;
    return store_;
  }

  /// Swaps the storage backend to an in-memory CompressedTripleStore built
  /// from the current triples, then releases the uncompressed indexes.
  /// Queries are unaffected (same results through source()); subsequent
  /// mutation transparently decompresses.
  void Compress(const CompressedStoreOptions& options = {});

  /// Like Compress, but serializes the blocks to `path` and reopens them as
  /// the disk-backed tier (payloads on disk, pulled through the LRU cache).
  Status CompressToDisk(const std::string& path,
                        const CompressedStoreOptions& options = {});

  bool is_compressed() const { return compressed_ != nullptr; }
  const CompressedTripleStore* compressed() const { return compressed_.get(); }

  /// Convenience: intern and add one triple with a literal object.
  void AddLiteralTriple(const std::string& subject_iri,
                        const std::string& predicate_iri, const Term& object);

  /// Convenience: intern and add one triple with an IRI object.
  void AddIriTriple(const std::string& subject_iri,
                    const std::string& predicate_iri,
                    const std::string& object_iri);

  /// Rebuilds the entity index from the current store contents.
  void BuildEntityIndex();

  /// Number of entities (IRI subjects).
  size_t num_entities() const;

  /// Term id of an entity's IRI.
  TermId entity_term(EntityId e) const;

  /// IRI string of an entity.
  const std::string& entity_iri(EntityId e) const;

  /// Finds the entity whose IRI has the given term id.
  std::optional<EntityId> FindEntity(TermId subject) const;

  /// Finds the entity with the given IRI string.
  std::optional<EntityId> FindEntityByIri(const std::string& iri) const;

  /// Attributes (predicate, object) of an entity.
  const std::vector<Attribute>& attributes(EntityId e) const;

  /// Total triple count.
  size_t num_triples() const { return source().size(); }

 private:
  void EnsureEntityIndex() const;
  void EnsureMutable();

  std::string name_;
  Dictionary dict_;
  TripleStore store_;
  std::unique_ptr<CompressedTripleStore> compressed_;

  mutable bool entity_index_built_ = false;
  mutable std::vector<TermId> entity_terms_;
  mutable std::vector<std::vector<Attribute>> entity_attributes_;
  mutable std::unordered_map<TermId, EntityId> term_to_entity_;
};

}  // namespace alex::rdf

#endif  // ALEX_RDF_DATASET_H_
