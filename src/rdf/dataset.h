#ifndef ALEX_RDF_DATASET_H_
#define ALEX_RDF_DATASET_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple_store.h"

namespace alex::rdf {

/// Dense entity identifier, local to one Dataset.
using EntityId = uint32_t;

inline constexpr EntityId kInvalidEntityId = UINT32_MAX;

/// One attribute of an entity: an RDF (predicate, object) pair.
/// In the paper's terminology (Section 4.1), the predicate label is the
/// attribute name and the object is the attribute value.
struct Attribute {
  TermId predicate = kInvalidTermId;
  TermId object = kInvalidTermId;

  friend bool operator==(const Attribute& a, const Attribute& b) {
    return a.predicate == b.predicate && a.object == b.object;
  }
};

/// A named RDF knowledge base: a dictionary, a triple store, and an
/// entity-centric view over it.
///
/// Entities are the distinct IRI subjects of the store. After loading
/// triples, call `BuildEntityIndex()` (or any entity accessor, which builds
/// lazily) to assign dense EntityIds and materialize per-entity attribute
/// lists — the representation ALEX's feature construction consumes.
class Dataset {
 public:
  explicit Dataset(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }
  TripleStore& store() { return store_; }
  const TripleStore& store() const { return store_; }

  /// Convenience: intern and add one triple with a literal object.
  void AddLiteralTriple(const std::string& subject_iri,
                        const std::string& predicate_iri, const Term& object);

  /// Convenience: intern and add one triple with an IRI object.
  void AddIriTriple(const std::string& subject_iri,
                    const std::string& predicate_iri,
                    const std::string& object_iri);

  /// Rebuilds the entity index from the current store contents.
  void BuildEntityIndex();

  /// Number of entities (IRI subjects).
  size_t num_entities() const;

  /// Term id of an entity's IRI.
  TermId entity_term(EntityId e) const;

  /// IRI string of an entity.
  const std::string& entity_iri(EntityId e) const;

  /// Finds the entity whose IRI has the given term id.
  std::optional<EntityId> FindEntity(TermId subject) const;

  /// Finds the entity with the given IRI string.
  std::optional<EntityId> FindEntityByIri(const std::string& iri) const;

  /// Attributes (predicate, object) of an entity.
  const std::vector<Attribute>& attributes(EntityId e) const;

  /// Total triple count.
  size_t num_triples() const { return store_.size(); }

 private:
  void EnsureEntityIndex() const;

  std::string name_;
  Dictionary dict_;
  TripleStore store_;

  mutable bool entity_index_built_ = false;
  mutable std::vector<TermId> entity_terms_;
  mutable std::vector<std::vector<Attribute>> entity_attributes_;
  mutable std::unordered_map<TermId, EntityId> term_to_entity_;
};

}  // namespace alex::rdf

#endif  // ALEX_RDF_DATASET_H_
