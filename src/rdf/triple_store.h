#ifndef ALEX_RDF_TRIPLE_STORE_H_
#define ALEX_RDF_TRIPLE_STORE_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "rdf/triple.h"

namespace alex::rdf {

/// In-memory triple store with SPO, POS, and OSP sorted indexes.
///
/// Triples are dictionary-encoded (TermId components). Insertion appends;
/// indexes are (re)built lazily on first lookup after a mutation, with
/// duplicates removed. Every pattern shape is answered from the index whose
/// sort order makes the bound components a prefix, so lookups are two binary
/// searches plus a scan of the matching range.
///
/// Thread-compatible: concurrent reads are safe once indexes are built (call
/// `EnsureIndexes()` or perform any read before sharing across threads);
/// mutation requires external synchronization.
class TripleStore {
 public:
  TripleStore() = default;

  /// Appends a triple; duplicates are tolerated and removed at index build.
  void Add(const Triple& t);
  void Add(TermId s, TermId p, TermId o) { Add(Triple{s, p, o}); }

  /// Number of distinct triples.
  size_t size() const;
  bool empty() const { return size() == 0; }

  /// Returns true if the exact triple is present.
  bool Contains(const Triple& t) const;

  /// Returns all triples matching the pattern (wildcards = kInvalidTermId).
  std::vector<Triple> Match(const TriplePattern& pattern) const;

  /// Calls fn for every matching triple; stops early if fn returns false.
  void ForEachMatch(const TriplePattern& pattern,
                    const std::function<bool(const Triple&)>& fn) const;

  /// Number of triples matching the pattern.
  size_t CountMatches(const TriplePattern& pattern) const;

  /// Distinct predicate ids present in the store, sorted ascending.
  std::vector<TermId> DistinctPredicates() const;

  /// Distinct subject ids present in the store, sorted ascending.
  std::vector<TermId> DistinctSubjects() const;

  /// Builds indexes now (idempotent). Useful before sharing across threads.
  void EnsureIndexes() const;

 private:
  // Index orderings.
  struct LessSpo;
  struct LessPos;
  struct LessOsp;

  // Appended triples; canonical deduplicated copy lives in spo_.
  mutable std::vector<Triple> pending_;
  mutable std::vector<Triple> spo_;
  mutable std::vector<Triple> pos_;
  mutable std::vector<Triple> osp_;
  mutable bool dirty_ = false;
};

}  // namespace alex::rdf

#endif  // ALEX_RDF_TRIPLE_STORE_H_
