#ifndef ALEX_RDF_TRIPLE_STORE_H_
#define ALEX_RDF_TRIPLE_STORE_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <mutex>
#include <vector>

#include "rdf/triple.h"
#include "rdf/triple_source.h"

namespace alex::rdf {

/// In-memory triple store with SPO, POS, and OSP sorted indexes — the
/// uncompressed TripleSource backend and the equivalence reference for
/// CompressedTripleStore.
///
/// Triples are dictionary-encoded (TermId components). Insertion appends;
/// indexes are (re)built lazily on first lookup after a mutation, with
/// duplicates removed. Every pattern shape is answered from the index whose
/// sort order makes the bound components a prefix, so lookups are two binary
/// searches plus a scan of the matching range.
///
/// Thread-compatible: concurrent reads are safe, including a cold first read
/// — the lazy index build is guarded by a dirty flag + mutex double-check,
/// so concurrent Match/ForEachMatch calls racing on an unbuilt index
/// serialize the build instead of mutating shared state unsynchronized.
/// Mutation (Add) still requires external synchronization against both
/// readers and other writers.
class TripleStore final : public TripleSource {
 public:
  TripleStore() = default;

  // The build guard (mutex + atomic) is not copyable/movable, so spell out
  // value semantics over the index vectors. Copying or moving a store that
  // is concurrently mutated requires external synchronization, same as Add.
  TripleStore(const TripleStore& other);
  TripleStore& operator=(const TripleStore& other);
  TripleStore(TripleStore&& other) noexcept;
  TripleStore& operator=(TripleStore&& other) noexcept;

  /// Appends a triple; duplicates are tolerated and removed at index build.
  void Add(const Triple& t);
  void Add(TermId s, TermId p, TermId o) { Add(Triple{s, p, o}); }

  /// Removes all triples and releases index memory.
  void Clear();

  /// Number of distinct triples.
  size_t size() const override;

  /// Returns true if the exact triple is present.
  bool Contains(const Triple& t) const override;

  /// Calls fn for every matching triple; stops early if fn returns false.
  void ForEachMatch(const TriplePattern& pattern,
                    const std::function<bool(const Triple&)>& fn) const override;

  /// Distinct predicate ids present in the store, sorted ascending.
  std::vector<TermId> DistinctPredicates() const override;

  /// Distinct subject ids present in the store, sorted ascending.
  std::vector<TermId> DistinctSubjects() const override;

  /// Builds indexes now (idempotent, thread-safe). Still useful before
  /// sharing across threads: it front-loads the one-time sort cost.
  void EnsureIndexes() const;

  /// Resident bytes of the three indexes plus pending appends (capacity,
  /// not size: what the allocator actually holds). The uncompressed
  /// baseline for the storage bench's bytes/triple comparison.
  size_t MemoryBytes() const;

 private:
  // Index orderings.
  struct LessSpo;
  struct LessPos;
  struct LessOsp;

  // Appended triples; canonical deduplicated copy lives in spo_.
  mutable std::vector<Triple> pending_;
  mutable std::vector<Triple> spo_;
  mutable std::vector<Triple> pos_;
  mutable std::vector<Triple> osp_;
  // Lazy-build guard: acquire-load fast path, mutex-serialized build.
  mutable std::atomic<bool> dirty_{false};
  mutable std::mutex build_mu_;
};

}  // namespace alex::rdf

#endif  // ALEX_RDF_TRIPLE_STORE_H_
