#include "rdf/term.h"

#include <tuple>

namespace alex::rdf {

Term Term::Iri(std::string iri) {
  Term t;
  t.kind = TermKind::kIri;
  t.value = std::move(iri);
  return t;
}

Term Term::Literal(std::string lexical) {
  Term t;
  t.kind = TermKind::kLiteral;
  t.value = std::move(lexical);
  return t;
}

Term Term::TypedLiteral(std::string lexical, std::string datatype_iri) {
  Term t;
  t.kind = TermKind::kLiteral;
  t.value = std::move(lexical);
  t.datatype = std::move(datatype_iri);
  return t;
}

Term Term::LangLiteral(std::string lexical, std::string lang) {
  Term t;
  t.kind = TermKind::kLiteral;
  t.value = std::move(lexical);
  t.language = std::move(lang);
  return t;
}

Term Term::Blank(std::string label) {
  Term t;
  t.kind = TermKind::kBlank;
  t.value = std::move(label);
  return t;
}

bool operator<(const Term& a, const Term& b) {
  return std::tie(a.kind, a.value, a.datatype, a.language) <
         std::tie(b.kind, b.value, b.datatype, b.language);
}

std::string EscapeNTriplesString(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string Term::ToNTriples() const {
  switch (kind) {
    case TermKind::kIri:
      return "<" + value + ">";
    case TermKind::kBlank:
      return "_:" + value;
    case TermKind::kLiteral: {
      std::string out = "\"" + EscapeNTriplesString(value) + "\"";
      if (!language.empty()) {
        out += "@" + language;
      } else if (!datatype.empty()) {
        out += "^^<" + datatype + ">";
      }
      return out;
    }
  }
  return "";
}

size_t TermHash::operator()(const Term& t) const {
  // FNV-1a over kind byte and all string components with separators.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](const char* data, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(data[i]);
      h *= 1099511628211ULL;
    }
  };
  char kind_byte = static_cast<char>(t.kind);
  mix(&kind_byte, 1);
  mix(t.value.data(), t.value.size());
  char sep = '\x1f';
  mix(&sep, 1);
  mix(t.datatype.data(), t.datatype.size());
  mix(&sep, 1);
  mix(t.language.data(), t.language.size());
  return static_cast<size_t>(h);
}

}  // namespace alex::rdf
