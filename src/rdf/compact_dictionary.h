#ifndef ALEX_RDF_COMPACT_DICTIONARY_H_
#define ALEX_RDF_COMPACT_DICTIONARY_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace alex::rdf {

/// Read-only, front-coded term pool: the dictionary counterpart of the
/// block-compressed triple store.
///
/// Terms are sorted (Term::operator<: kind, value, datatype, language) and
/// their values front-coded — each entry stores only the suffix after the
/// longest common prefix with its predecessor, with an uncompressed restart
/// every kBucket entries so random access decodes at most one bucket.
/// Datatype/language strings are deduplicated into a side table. TermIds are
/// PRESERVED from the source Dictionary, so encoded triples remain valid
/// against either dictionary.
///
/// term(id) materializes a Term by value (the pool holds no whole Term to
/// reference); Lookup binary-searches bucket heads then decodes forward.
/// Immutable once built; reads are thread-safe.
class CompactDictionary {
 public:
  /// Entries per front-coding bucket (uncompressed restart interval).
  static constexpr size_t kBucket = 16;

  CompactDictionary() = default;

  /// Builds the pool from `dict`, preserving every TermId.
  static CompactDictionary Build(const Dictionary& dict);

  /// Materializes the term for a valid id. Id must be < size().
  Term term(TermId id) const;

  /// Returns the id for `term` if present.
  std::optional<TermId> Lookup(const Term& term) const;

  size_t size() const { return pos_of_id_.size(); }

  /// Approximate resident bytes (blob, side tables, id maps).
  size_t ApproxMemoryBytes() const;

 private:
  struct DecodedEntry {
    size_t sorted_pos = 0;
    TermKind kind = TermKind::kIri;
    uint32_t datatype_index = 0;  // 0 = none, else side_strings_[idx - 1].
    uint32_t language_index = 0;
  };

  /// Decodes bucket `bucket`, invoking fn(entry, value) per term in sorted
  /// order until fn returns false. `value` is reused storage.
  template <typename Fn>
  void DecodeBucket(size_t bucket, Fn&& fn) const;

  /// Three-way comparison of a decoded entry against `target`, following
  /// Term::operator< component order.
  int CompareDecoded(const DecodedEntry& entry, const std::string& value,
                     const Term& target) const;

  std::string blob_;                       // Front-coded entry stream.
  std::vector<uint64_t> restarts_;         // Blob offset of each bucket head.
  std::vector<std::string> side_strings_;  // Unique datatype/language values.
  std::vector<TermId> sorted_ids_;         // Sorted position -> TermId.
  std::vector<uint32_t> pos_of_id_;        // TermId -> sorted position.
};

}  // namespace alex::rdf

#endif  // ALEX_RDF_COMPACT_DICTIONARY_H_
