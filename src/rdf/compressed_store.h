#ifndef ALEX_RDF_COMPRESSED_STORE_H_
#define ALEX_RDF_COMPRESSED_STORE_H_

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "rdf/block_cache.h"
#include "rdf/block_format.h"
#include "rdf/triple_source.h"

namespace alex::rdf {

struct CompressedStoreOptions {
  /// Triples per block. Larger blocks compress better (fences amortize, the
  /// absolute-value header amortizes) but decode more per touched pattern.
  size_t block_size = 1024;

  /// Decoded-block budget of the disk tier's LRU cache (OpenFile only).
  size_t cache_budget_bytes = 64ull << 20;
};

/// Columnar, block-compressed triple storage: the large-KB backend behind
/// TripleSource.
///
/// Triples are kept in all three orderings (SPO, POS, OSP), each as a
/// sequence of fixed-size blocks, delta + LEB128(varint) encoded with
/// per-block (first,last) fences. A pattern lookup binary-searches the
/// fences of the ordering whose sort prefix covers the bound components and
/// decodes only the touched blocks — the same index routing as TripleStore,
/// at a fraction of the resident bytes (see `rdf.bytes_per_triple`).
///
/// Two tiers share the layout:
///  - in-memory: payloads live in RAM; touched blocks are decoded on demand
///    (per access — the CPU cost traded for the smaller footprint);
///  - disk-backed (WriteFile/OpenFile): payloads stay in one block file and
///    are pulled through a bounded LRU BlockCache with epoch-safe
///    invalidation, so working sets far larger than RAM stay queryable.
///
/// Immutable once built; reads are thread-safe. Decode time lands in the
/// `rdf.block_decode_seconds` histogram, disk-tier cache traffic in
/// `rdf.block_cache_{hits,misses,evictions}`.
class CompressedTripleStore final : public TripleSource {
 public:
  CompressedTripleStore() = default;

  CompressedTripleStore(CompressedTripleStore&&) = default;
  CompressedTripleStore& operator=(CompressedTripleStore&&) = default;

  /// Builds the in-memory tier from any source's full contents.
  static CompressedTripleStore Build(const TripleSource& source,
                                     const CompressedStoreOptions& options = {});

  /// Builds the in-memory tier from raw triples (sorted + deduplicated
  /// internally). Triples must not contain kInvalidTermId components.
  static CompressedTripleStore FromTriples(
      std::vector<Triple> triples, const CompressedStoreOptions& options = {});

  /// Serializes the block layout to one file (see block_format.h for the
  /// per-block encoding; the container header/fence tables go through the
  /// bounds-checked common/binary_io writers).
  Status WriteFile(const std::string& path) const;

  /// Opens a block file as a disk-backed store: fences resident, payloads
  /// read lazily through the LRU cache. Rejects bad magic, truncated files,
  /// corrupt fence tables, and out-of-range block extents with ParseError.
  static Result<CompressedTripleStore> OpenFile(
      const std::string& path, const CompressedStoreOptions& options = {});

  // TripleSource interface.
  size_t size() const override { return static_cast<size_t>(num_triples_); }
  void ForEachMatch(const TriplePattern& pattern,
                    const std::function<bool(const Triple&)>& fn) const override;
  std::vector<TermId> DistinctPredicates() const override;
  std::vector<TermId> DistinctSubjects() const override;

  /// Resident bytes: fences + (in-memory tier) payloads, or (disk tier)
  /// fences + the cache's current decoded bytes.
  size_t MemoryBytes() const;

  /// Compressed payload bytes across the three orderings (identical for
  /// both tiers; excludes fences).
  size_t PayloadBytes() const;

  /// Resident storage bytes per triple (fences + payload for the in-memory
  /// tier). The headline figure vs TripleStore::MemoryBytes()/size().
  double BytesPerTriple() const;

  size_t block_size() const { return options_.block_size; }
  size_t NumBlocks(TripleOrder order) const {
    return orderings_[static_cast<size_t>(order)].blocks.size();
  }
  bool disk_backed() const { return disk_ != nullptr; }

  /// Disk tier only: drops every cached block and starts a new cache epoch
  /// (no-op for the in-memory tier). Readers in flight keep their decoded
  /// blocks; nothing stale is re-served.
  void InvalidateCache();

  /// Disk tier only: the block cache, for tests and bench introspection.
  const BlockCache* cache() const { return disk_ ? &disk_->cache : nullptr; }

 private:
  struct Ordering {
    std::vector<blockfmt::BlockMeta> blocks;
    /// In-memory tier payload; empty for the disk tier.
    std::string payload;
    /// Disk tier: this ordering's payload region offset within the file's
    /// payload section.
    uint64_t region_offset = 0;
  };

  struct DiskState {
    explicit DiskState(size_t budget) : cache(budget) {}
    std::string path;
    uint64_t payload_start = 0;  // File offset of the payload section.
    mutable std::mutex io_mu;
    mutable std::ifstream file;
    mutable BlockCache cache;
  };

  static void EncodeOrdering(const std::vector<Triple>& spo_sorted,
                             TripleOrder order, size_t block_size,
                             Ordering* out);

  BlockCache::BlockPtr GetBlock(TripleOrder order, size_t index) const;
  BlockCache::BlockPtr LoadBlock(TripleOrder order, size_t index) const;

  /// Scans [lo, hi] of one ordering; returns false if fn stopped early.
  bool ScanRange(TripleOrder order, const blockfmt::Key3& lo,
                 const blockfmt::Key3& hi, const TriplePattern& pattern,
                 const std::function<bool(const Triple&)>& fn) const;

  std::vector<TermId> DistinctLeading(TripleOrder order) const;

  CompressedStoreOptions options_;
  uint64_t num_triples_ = 0;
  Ordering orderings_[kNumTripleOrders];
  std::unique_ptr<DiskState> disk_;
};

}  // namespace alex::rdf

#endif  // ALEX_RDF_COMPRESSED_STORE_H_
