#include "rdf/turtle.h"

#include <cctype>
#include <sstream>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "common/string_util.h"

namespace alex::rdf {
namespace {

constexpr std::string_view kXsdBoolean =
    "http://www.w3.org/2001/XMLSchema#boolean";

/// Character-level recursive-descent parser over the whole document.
class TurtleParser {
 public:
  TurtleParser(std::string_view doc, Dictionary* dict, TripleStore* store)
      : doc_(doc), dict_(dict), store_(store) {}

  Status Parse();

 private:
  bool AtEnd() const { return pos_ >= doc_.size(); }
  char Peek() const { return doc_[pos_]; }

  Status Fail(const std::string& msg) const {
    // Compute 1-based line number for the error message.
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < doc_.size(); ++i) {
      if (doc_[i] == '\n') ++line;
    }
    return Status::ParseError("turtle line " + std::to_string(line) + ": " +
                              msg);
  }

  void SkipWhitespaceAndComments();
  bool Consume(char c);
  bool ConsumeWord(std::string_view word);

  Result<std::string> ParseIriRef();         // <...>, returns resolved IRI.
  Result<std::string> ParsePrefixedName();   // ns:local -> full IRI.
  Result<Term> ParseLiteral();
  Result<Term> ParseTerm(bool subject_position);
  Status ParseDirective();
  Status ParseStatement();

  std::string_view doc_;
  size_t pos_ = 0;
  Dictionary* dict_;
  TripleStore* store_;
  std::string base_;
  std::unordered_map<std::string, std::string> prefixes_;
};

void TurtleParser::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    if (std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    } else if (Peek() == '#') {
      while (!AtEnd() && Peek() != '\n') ++pos_;
    } else {
      return;
    }
  }
}

bool TurtleParser::Consume(char c) {
  SkipWhitespaceAndComments();
  if (!AtEnd() && Peek() == c) {
    ++pos_;
    return true;
  }
  return false;
}

bool TurtleParser::ConsumeWord(std::string_view word) {
  SkipWhitespaceAndComments();
  if (doc_.substr(pos_, word.size()) != word) return false;
  const size_t after = pos_ + word.size();
  if (after < doc_.size()) {
    const char c = doc_[after];
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
      return false;  // Longer token; not this word.
    }
  }
  pos_ = after;
  return true;
}

Result<std::string> TurtleParser::ParseIriRef() {
  // Caller guarantees Peek() == '<'.
  size_t end = doc_.find('>', pos_ + 1);
  if (end == std::string_view::npos) return Fail("unterminated IRI");
  std::string iri(doc_.substr(pos_ + 1, end - pos_ - 1));
  pos_ = end + 1;
  // Resolve relative IRIs against @base by concatenation (covers the
  // common dump style of absolute IRIs plus simple relative references).
  if (!base_.empty() && iri.find("://") == std::string::npos) {
    iri = base_ + iri;
  }
  return iri;
}

Result<std::string> TurtleParser::ParsePrefixedName() {
  size_t start = pos_;
  while (pos_ < doc_.size() &&
         (std::isalnum(static_cast<unsigned char>(doc_[pos_])) ||
          doc_[pos_] == '_' || doc_[pos_] == '-' || doc_[pos_] == '.')) {
    ++pos_;
  }
  // The namespace part must not end with '.' (statement terminator).
  while (pos_ > start && doc_[pos_ - 1] == '.') --pos_;
  std::string ns(doc_.substr(start, pos_ - start));
  if (AtEnd() || Peek() != ':') return Fail("expected ':' in prefixed name");
  ++pos_;
  start = pos_;
  while (pos_ < doc_.size() &&
         (std::isalnum(static_cast<unsigned char>(doc_[pos_])) ||
          doc_[pos_] == '_' || doc_[pos_] == '-' || doc_[pos_] == '.')) {
    ++pos_;
  }
  while (pos_ > start && doc_[pos_ - 1] == '.') --pos_;
  std::string local(doc_.substr(start, pos_ - start));
  auto it = prefixes_.find(ns);
  if (it == prefixes_.end()) {
    return Fail("undeclared prefix '" + ns + ":'");
  }
  return it->second + local;
}

Result<Term> TurtleParser::ParseLiteral() {
  // Caller guarantees Peek() == '"'.
  if (doc_.substr(pos_, 3) == "\"\"\"") {
    return Fail("multiline string literals are not supported");
  }
  ++pos_;
  std::string body;
  while (!AtEnd()) {
    char c = Peek();
    if (c == '"') {
      ++pos_;
      Term t = Term::Literal(std::move(body));
      if (!AtEnd() && Peek() == '@') {
        ++pos_;
        size_t start = pos_;
        while (pos_ < doc_.size() &&
               (std::isalnum(static_cast<unsigned char>(doc_[pos_])) ||
                doc_[pos_] == '-')) {
          ++pos_;
        }
        if (pos_ == start) return Fail("empty language tag");
        t.language = std::string(doc_.substr(start, pos_ - start));
      } else if (doc_.substr(pos_, 2) == "^^") {
        pos_ += 2;
        SkipWhitespaceAndComments();
        if (!AtEnd() && Peek() == '<') {
          ALEX_ASSIGN_OR_RETURN(t.datatype, ParseIriRef());
        } else {
          ALEX_ASSIGN_OR_RETURN(t.datatype, ParsePrefixedName());
        }
      }
      return t;
    }
    if (c == '\\') {
      if (pos_ + 1 >= doc_.size()) break;
      char e = doc_[pos_ + 1];
      switch (e) {
        case 'n': body += '\n'; break;
        case 't': body += '\t'; break;
        case 'r': body += '\r'; break;
        case '"': body += '"'; break;
        case '\\': body += '\\'; break;
        default:
          return Fail(std::string("unknown escape \\") + e);
      }
      pos_ += 2;
      continue;
    }
    body += c;
    ++pos_;
  }
  return Fail("unterminated string literal");
}

Result<Term> TurtleParser::ParseTerm(bool subject_position) {
  SkipWhitespaceAndComments();
  if (AtEnd()) return Fail("unexpected end of document");
  const char c = Peek();
  if (c == '<') {
    ALEX_ASSIGN_OR_RETURN(std::string iri, ParseIriRef());
    return Term::Iri(std::move(iri));
  }
  if (c == '_') {
    if (doc_.substr(pos_, 2) != "_:") return Fail("malformed blank node");
    pos_ += 2;
    size_t start = pos_;
    while (pos_ < doc_.size() &&
           (std::isalnum(static_cast<unsigned char>(doc_[pos_])) ||
            doc_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("empty blank node label");
    return Term::Blank(std::string(doc_.substr(start, pos_ - start)));
  }
  if (c == '[') return Fail("anonymous blank nodes are not supported");
  if (c == '(') return Fail("collections are not supported");
  if (subject_position) {
    // Subjects may only be IRIs/prefixed names/blank nodes.
    ALEX_ASSIGN_OR_RETURN(std::string iri, ParsePrefixedName());
    return Term::Iri(std::move(iri));
  }
  if (c == '"') return ParseLiteral();
  if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+') {
    size_t start = pos_;
    if (c == '-' || c == '+') ++pos_;
    bool dot = false;
    while (pos_ < doc_.size() &&
           (std::isdigit(static_cast<unsigned char>(doc_[pos_])) ||
            (doc_[pos_] == '.' && !dot && pos_ + 1 < doc_.size() &&
             std::isdigit(static_cast<unsigned char>(doc_[pos_ + 1]))))) {
      if (doc_[pos_] == '.') dot = true;
      ++pos_;
    }
    std::string lex(doc_.substr(start, pos_ - start));
    return Term::TypedLiteral(
        std::move(lex),
        std::string(dot ? kXsdDouble : kXsdInteger));
  }
  if (ConsumeWord("true")) {
    return Term::TypedLiteral("true", std::string(kXsdBoolean));
  }
  if (ConsumeWord("false")) {
    return Term::TypedLiteral("false", std::string(kXsdBoolean));
  }
  ALEX_ASSIGN_OR_RETURN(std::string iri, ParsePrefixedName());
  return Term::Iri(std::move(iri));
}

Status TurtleParser::ParseDirective() {
  // "@prefix"/"PREFIX" already consumed by the caller's dispatch; here we
  // handle the remainder: `ns: <iri> [.]`.
  SkipWhitespaceAndComments();
  size_t start = pos_;
  while (pos_ < doc_.size() && doc_[pos_] != ':' &&
         !std::isspace(static_cast<unsigned char>(doc_[pos_]))) {
    ++pos_;
  }
  std::string ns(doc_.substr(start, pos_ - start));
  if (AtEnd() || Peek() != ':') return Fail("expected ':' after prefix name");
  ++pos_;
  SkipWhitespaceAndComments();
  if (AtEnd() || Peek() != '<') return Fail("expected IRI after prefix");
  ALEX_ASSIGN_OR_RETURN(std::string iri, ParseIriRef());
  prefixes_[ns] = iri;
  Consume('.');  // @prefix requires it; SPARQL PREFIX omits it.
  return Status::OK();
}

Status TurtleParser::ParseStatement() {
  ALEX_ASSIGN_OR_RETURN(Term subject, ParseTerm(/*subject_position=*/true));
  const TermId s = dict_->Intern(subject);
  for (;;) {  // Predicate list.
    SkipWhitespaceAndComments();
    Term predicate;
    if (ConsumeWord("a")) {
      predicate = Term::Iri(std::string(kRdfType));
    } else {
      ALEX_ASSIGN_OR_RETURN(predicate, ParseTerm(/*subject_position=*/true));
    }
    if (!predicate.is_iri()) return Fail("predicate must be an IRI");
    const TermId p = dict_->Intern(predicate);
    for (;;) {  // Object list.
      ALEX_ASSIGN_OR_RETURN(Term object, ParseTerm(/*subject_position=*/false));
      store_->Add(s, p, dict_->Intern(object));
      if (!Consume(',')) break;
    }
    if (!Consume(';')) break;
    SkipWhitespaceAndComments();
    // A trailing ';' before '.' is legal Turtle.
    if (!AtEnd() && Peek() == '.') break;
  }
  if (!Consume('.')) return Fail("expected '.' at end of statement");
  return Status::OK();
}

Status TurtleParser::Parse() {
  for (;;) {
    SkipWhitespaceAndComments();
    if (AtEnd()) return Status::OK();
    if (ConsumeWord("@prefix") || ConsumeWord("PREFIX")) {
      ALEX_RETURN_NOT_OK(ParseDirective());
      continue;
    }
    if (ConsumeWord("@base") || ConsumeWord("BASE")) {
      SkipWhitespaceAndComments();
      if (AtEnd() || Peek() != '<') return Fail("expected IRI after @base");
      ALEX_ASSIGN_OR_RETURN(base_, ParseIriRef());
      Consume('.');
      continue;
    }
    ALEX_RETURN_NOT_OK(ParseStatement());
  }
}

}  // namespace

Status ParseTurtle(std::string_view document, Dictionary* dict,
                   TripleStore* store) {
  TurtleParser parser(document, dict, store);
  return parser.Parse();
}

Status ReadTurtle(std::istream& in, Dictionary* dict, TripleStore* store) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in && !in.eof()) return Status::IOError("failed reading stream");
  return ParseTurtle(buffer.str(), dict, store);
}

}  // namespace alex::rdf
