#include "rdf/triple_store.h"

#include <algorithm>
#include <tuple>

namespace alex::rdf {

struct TripleStore::LessSpo {
  bool operator()(const Triple& a, const Triple& b) const {
    return std::tie(a.subject, a.predicate, a.object) <
           std::tie(b.subject, b.predicate, b.object);
  }
};
struct TripleStore::LessPos {
  bool operator()(const Triple& a, const Triple& b) const {
    return std::tie(a.predicate, a.object, a.subject) <
           std::tie(b.predicate, b.object, b.subject);
  }
};
struct TripleStore::LessOsp {
  bool operator()(const Triple& a, const Triple& b) const {
    return std::tie(a.object, a.subject, a.predicate) <
           std::tie(b.object, b.subject, b.predicate);
  }
};

TripleStore::TripleStore(const TripleStore& other)
    : pending_(other.pending_),
      spo_(other.spo_),
      pos_(other.pos_),
      osp_(other.osp_) {
  dirty_.store(other.dirty_.load(std::memory_order_acquire),
               std::memory_order_release);
}

TripleStore& TripleStore::operator=(const TripleStore& other) {
  if (this == &other) return *this;
  pending_ = other.pending_;
  spo_ = other.spo_;
  pos_ = other.pos_;
  osp_ = other.osp_;
  dirty_.store(other.dirty_.load(std::memory_order_acquire),
               std::memory_order_release);
  return *this;
}

TripleStore::TripleStore(TripleStore&& other) noexcept
    : pending_(std::move(other.pending_)),
      spo_(std::move(other.spo_)),
      pos_(std::move(other.pos_)),
      osp_(std::move(other.osp_)) {
  dirty_.store(other.dirty_.load(std::memory_order_acquire),
               std::memory_order_release);
  other.dirty_.store(false, std::memory_order_release);
}

TripleStore& TripleStore::operator=(TripleStore&& other) noexcept {
  if (this == &other) return *this;
  pending_ = std::move(other.pending_);
  spo_ = std::move(other.spo_);
  pos_ = std::move(other.pos_);
  osp_ = std::move(other.osp_);
  dirty_.store(other.dirty_.load(std::memory_order_acquire),
               std::memory_order_release);
  other.dirty_.store(false, std::memory_order_release);
  return *this;
}

void TripleStore::Add(const Triple& t) {
  pending_.push_back(t);
  dirty_.store(true, std::memory_order_release);
}

void TripleStore::Clear() {
  std::vector<Triple>().swap(pending_);
  std::vector<Triple>().swap(spo_);
  std::vector<Triple>().swap(pos_);
  std::vector<Triple>().swap(osp_);
  dirty_.store(false, std::memory_order_release);
}

void TripleStore::EnsureIndexes() const {
  // Double-checked build: the fast path is one acquire load; a cold
  // concurrent first read serializes on the mutex and rechecks, so exactly
  // one thread sorts while the rest wait instead of racing on the mutable
  // index vectors.
  if (!dirty_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(build_mu_);
  if (!dirty_.load(std::memory_order_relaxed)) return;
  spo_.insert(spo_.end(), pending_.begin(), pending_.end());
  pending_.clear();
  std::sort(spo_.begin(), spo_.end(), LessSpo{});
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  pos_ = spo_;
  std::sort(pos_.begin(), pos_.end(), LessPos{});
  osp_ = spo_;
  std::sort(osp_.begin(), osp_.end(), LessOsp{});
  dirty_.store(false, std::memory_order_release);
}

size_t TripleStore::size() const {
  EnsureIndexes();
  return spo_.size();
}

bool TripleStore::Contains(const Triple& t) const {
  EnsureIndexes();
  return std::binary_search(spo_.begin(), spo_.end(), t, LessSpo{});
}

size_t TripleStore::MemoryBytes() const {
  EnsureIndexes();
  return (pending_.capacity() + spo_.capacity() + pos_.capacity() +
          osp_.capacity()) *
         sizeof(Triple);
}

namespace {

// Iterates over the index range whose sort prefix matches the pattern's
// bound components, post-filtering any remaining bound component.
template <typename Less>
void ScanRange(const std::vector<Triple>& index, const Triple& lo,
               const Triple& hi, const TriplePattern& pattern,
               const std::function<bool(const Triple&)>& fn) {
  auto begin = std::lower_bound(index.begin(), index.end(), lo, Less{});
  auto end = std::upper_bound(index.begin(), index.end(), hi, Less{});
  for (auto it = begin; it != end; ++it) {
    if (pattern.Matches(*it)) {
      if (!fn(*it)) return;
    }
  }
}

}  // namespace

void TripleStore::ForEachMatch(
    const TriplePattern& pattern,
    const std::function<bool(const Triple&)>& fn) const {
  EnsureIndexes();
  const TermId kAny = kInvalidTermId;
  const TermId kMax = kInvalidTermId;  // UINT32_MAX also serves as +inf.
  const bool s = pattern.subject != kAny;
  const bool p = pattern.predicate != kAny;
  const bool o = pattern.object != kAny;

  if (s) {
    // SPO: prefix (s) or (s, p). For (s, ?, o) the OSP index has the longer
    // prefix (o, s).
    if (!p && o) {
      ScanRange<LessOsp>(osp_, Triple{pattern.subject, 0, pattern.object},
                         Triple{pattern.subject, kMax, pattern.object},
                         pattern, fn);
      return;
    }
    Triple lo{pattern.subject, p ? pattern.predicate : 0,
              (p && o) ? pattern.object : 0};
    Triple hi{pattern.subject, p ? pattern.predicate : kMax,
              (p && o) ? pattern.object : kMax};
    ScanRange<LessSpo>(spo_, lo, hi, pattern, fn);
    return;
  }
  if (p) {
    // POS: prefix (p) or (p, o).
    Triple lo{0, pattern.predicate, o ? pattern.object : 0};
    Triple hi{kMax, pattern.predicate, o ? pattern.object : kMax};
    ScanRange<LessPos>(pos_, lo, hi, pattern, fn);
    return;
  }
  if (o) {
    // OSP: prefix (o).
    ScanRange<LessOsp>(osp_, Triple{0, 0, pattern.object},
                       Triple{kMax, kMax, pattern.object}, pattern, fn);
    return;
  }
  for (const Triple& t : spo_) {
    if (!fn(t)) return;
  }
}

std::vector<TermId> TripleStore::DistinctPredicates() const {
  EnsureIndexes();
  std::vector<TermId> out;
  for (const Triple& t : pos_) {
    if (out.empty() || out.back() != t.predicate) out.push_back(t.predicate);
  }
  return out;
}

std::vector<TermId> TripleStore::DistinctSubjects() const {
  EnsureIndexes();
  std::vector<TermId> out;
  for (const Triple& t : spo_) {
    if (out.empty() || out.back() != t.subject) out.push_back(t.subject);
  }
  return out;
}

}  // namespace alex::rdf
