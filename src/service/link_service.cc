#include "service/link_service.h"

#include <algorithm>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/result.h"
#include "feedback/ground_truth.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace alex::svc {
namespace {

struct ServiceMetrics {
  obs::Counter& ops = obs::MetricsRegistry::Global().counter("svc.ops");
  obs::Counter& queries =
      obs::MetricsRegistry::Global().counter("svc.queries");
  obs::Counter& shed = obs::MetricsRegistry::Global().counter("svc.shed");
  obs::Counter& answered =
      obs::MetricsRegistry::Global().counter("svc.answered");
  obs::Counter& feedback_items =
      obs::MetricsRegistry::Global().counter("svc.feedback_items");
  obs::Counter& commits =
      obs::MetricsRegistry::Global().counter("svc.commits");
  obs::Counter& checkpoints =
      obs::MetricsRegistry::Global().counter("svc.checkpoints");
  obs::Histogram& query_seconds =
      obs::MetricsRegistry::Global().histogram("svc.query_seconds");
  obs::Gauge& in_flight =
      obs::MetricsRegistry::Global().gauge("svc.in_flight");

  static ServiceMetrics& Get() {
    static ServiceMetrics* metrics = new ServiceMetrics();
    return *metrics;
  }
};

LatencySummary SummarizeLatencies(std::vector<double> samples) {
  LatencySummary out;
  out.count = samples.size();
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (double s : samples) sum += s;
  out.mean_seconds = sum / static_cast<double>(samples.size());
  auto at_quantile = [&](double q) {
    const size_t idx = std::min(
        samples.size() - 1,
        static_cast<size_t>(q * static_cast<double>(samples.size())));
    return samples[idx];
  };
  out.p50_seconds = at_quantile(0.50);
  out.p99_seconds = at_quantile(0.99);
  out.max_seconds = samples.back();
  return out;
}

}  // namespace

LinkService::LinkService(datagen::GeneratedPair* pair,
                         core::PartitionedAlex* alex,
                         const core::AlexConfig& alex_config,
                         ServiceConfig config)
    : pair_(pair),
      alex_(alex),
      config_(std::move(config)),
      fingerprint_(core::ckpt::ConfigFingerprint(alex_config)),
      links_(simulation::LinksFromPairs(*pair, alex->CandidateVector())),
      left_base_(&pair->left),
      right_base_(&pair->right),
      admission_(config_.max_in_flight > 0
                     ? config_.max_in_flight
                     : 2 * std::max<size_t>(1, config_.num_clients)) {
  // Pre-build every lazily-constructed index the query and feedback paths
  // touch, so concurrent clients only ever read them.
  pair_->left.store().EnsureIndexes();
  pair_->right.store().EnsureIndexes();
  pair_->left.BuildEntityIndex();
  pair_->right.BuildEntityIndex();

  if (config_.use_probe_cache) {
    // Caches key on the PUBLISHED link epoch: it moves only when an episode
    // commit lands, so a whole episode of queries shares cache entries and
    // the flush happens exactly once per commit.
    fed::CachingEndpoint::EpochFn epoch = [this] {
      return links_.published_epoch();
    };
    left_cached_ = std::make_unique<fed::CachingEndpoint>(
        &left_base_, fed::ProbeCacheConfig(), epoch);
    right_cached_ = std::make_unique<fed::CachingEndpoint>(
        &right_base_, fed::ProbeCacheConfig(), epoch);
  }

  workload_ = simulation::MakeFederatedWorkload(
      *pair_, std::max<size_t>(1, config_.workload_queries),
      config_.seed ^ 0x9e3779b97f4a7c15ULL);

  clock_ = config_.deterministic ? static_cast<Clock*>(&sim_clock_)
                                 : static_cast<Clock*>(&steady_clock_);

  if (!config_.checkpoint_dir.empty()) {
    ckpt_ = std::make_unique<core::ckpt::CheckpointManager>(
        config_.checkpoint_dir, std::max<size_t>(1, config_.checkpoint_keep));
  }
}

const fed::QueryEndpoint* LinkService::left_stack() const {
  return left_cached_ ? static_cast<const fed::QueryEndpoint*>(
                            left_cached_.get())
                      : &left_base_;
}

const fed::QueryEndpoint* LinkService::right_stack() const {
  return right_cached_ ? static_cast<const fed::QueryEndpoint*>(
                             right_cached_.get())
                       : &right_base_;
}

void LinkService::RunOneOp(Session* s) {
  ServiceMetrics& metrics = ServiceMetrics::Get();
  ++s->ops;
  metrics.ops.Add(1);

  const size_t qi =
      static_cast<size_t>(s->rng.UniformInt(workload_.queries.size()));

  if (!admission_.TryEnter()) {
    ++s->shed;
    metrics.shed.Add(1);
    return;
  }
  metrics.in_flight.Set(static_cast<int64_t>(admission_.in_flight()));
  metrics.in_flight.UpdateMax(static_cast<int64_t>(admission_.in_flight()));

  // The snapshot pins this query's view of the link set: a commit landing
  // mid-query publishes a NEW index while this shared_ptr keeps the old one
  // alive, so the query sees one consistent epoch end to end.
  std::shared_ptr<const fed::LinkIndex> snapshot = links_.Acquire();
  fed::FederatedEngine engine(left_stack(), right_stack(), snapshot.get());

  const double start = clock_->NowSeconds();
  Result<fed::FederatedResult> result = [&]() -> Result<fed::FederatedResult> {
    auto plan = plan_cache_.GetOrCompile(workload_.queries[qi]);
    if (!plan.ok()) return plan.status();
    return engine.Execute(**plan);
  }();
  const double latency = clock_->NowSeconds() - start;
  admission_.Exit();

  ++s->queries;
  metrics.queries.Add(1);
  s->latencies_seconds.push_back(latency);
  metrics.query_seconds.Observe(latency);

  if (!result.ok()) {
    ++s->failed;
    return;
  }
  if (result->degraded) ++s->degraded;
  s->rows += result->NumRows();
  if (result->NumRows() == 0) return;
  ++s->answered;
  metrics.answered.Add(1);

  if (config_.feedback_fraction <= 0.0 ||
      !s->rng.Bernoulli(config_.feedback_fraction)) {
    return;
  }

  // Judge every DISTINCT link this answer crossed (a row's provenance names
  // the links to praise or blame, paper Section 3.2).
  std::unordered_set<feedback::PairKey> judged;
  std::vector<feedback::FeedbackItem> items;
  for (const fed::ProvenancedRow& row : result->rows) {
    for (const fed::SameAsLink& link : row.links_used) {
      auto l = pair_->left.FindEntityByIri(link.left_iri);
      auto r = pair_->right.FindEntityByIri(link.right_iri);
      if (!l || !r) continue;
      if (!judged.insert(feedback::PackPair(*l, *r)).second) continue;
      items.push_back(s->oracle->Judge(*l, *r));
    }
  }
  if (items.empty()) return;
  s->feedback_items += items.size();
  total_feedback_items_.fetch_add(items.size(), std::memory_order_relaxed);
  metrics.feedback_items.Add(items.size());

  bool batch_ready = false;
  {
    std::lock_guard<std::mutex> lock(feedback_mu_);
    pending_feedback_.insert(pending_feedback_.end(), items.begin(),
                             items.end());
    batch_ready = pending_feedback_.size() >= config_.feedback_batch;
  }
  if (batch_ready) MaybeCommit(/*force=*/false);
}

bool LinkService::MaybeCommit(bool force) {
  // One committer at a time; non-forced callers that lose the race just go
  // back to serving queries (on the still-current snapshot) — the winner
  // will drain their items too.
  std::unique_lock<std::mutex> commit_lock(commit_mu_, std::defer_lock);
  if (force) {
    commit_lock.lock();
  } else if (!commit_lock.try_lock()) {
    return false;
  }

  ServiceMetrics& metrics = ServiceMetrics::Get();
  const size_t batch_size = std::max<size_t>(1, config_.feedback_batch);
  bool committed_any = false;

  // Drain in batch-sized episodes rather than one megabatch: under load the
  // backlog grows while a commit is in flight, and folding it all into a
  // single episode would starve the policy of improvement steps (epsilon
  // decays per episode). Forced drains take the final partial batch too.
  while (true) {
    std::vector<feedback::FeedbackItem> batch;
    {
      std::lock_guard<std::mutex> lock(feedback_mu_);
      size_t take = 0;
      if (pending_feedback_.size() >= batch_size) {
        take = batch_size;
      } else if (force) {
        take = pending_feedback_.size();
      }
      if (take == 0) break;  // Drained (or another committer beat us to it).
      batch.assign(pending_feedback_.begin(), pending_feedback_.begin() + take);
      pending_feedback_.erase(pending_feedback_.begin(),
                              pending_feedback_.begin() + take);
    }

    ALEX_TRACE_SPAN("service", "LinkService::Commit");
    // Readers keep executing against the published snapshot through all of
    // this: feedback routing, policy improvement, and staging only touch the
    // engine and the versioned index's master copy. The new link set becomes
    // visible atomically at Commit().
    core::PartitionedAlex::EpisodeCommit episode =
        alex_->CommitFeedbackBatch(batch);
    for (feedback::PairKey key : episode.added) {
      links_.StageAdd(pair_->left.entity_iri(feedback::PairLeft(key)),
                      pair_->right.entity_iri(feedback::PairRight(key)));
    }
    for (feedback::PairKey key : episode.removed) {
      links_.StageRemove(pair_->left.entity_iri(feedback::PairLeft(key)),
                         pair_->right.entity_iri(feedback::PairRight(key)));
    }
    links_.Commit();

    committed_episodes_.fetch_add(1, std::memory_order_relaxed);
    total_links_added_.fetch_add(episode.added.size(),
                                 std::memory_order_relaxed);
    total_links_removed_.fetch_add(episode.removed.size(),
                                   std::memory_order_relaxed);
    metrics.commits.Add(1);
    committed_any = true;
    if (!force) break;  // Serve again; commit the next batch when it fills.
  }

  if (!committed_any) return false;
  MaybeCheckpoint();
  if (config_.hub != nullptr) config_.hub->MaybeSample();
  return true;
}

void LinkService::MaybeCheckpoint() {
  if (!ckpt_) return;
  const size_t every = std::max<size_t>(1, config_.checkpoint_every);
  if (committed_episodes_.load(std::memory_order_relaxed) % every != 0) {
    return;
  }
  const std::string blob = SerializeState();
  if (ckpt_->Write(blob).ok()) {
    ++checkpoints_written_;
    ServiceMetrics::Get().checkpoints.Add(1);
  }
}

std::string LinkService::SerializeState() const {
  BinaryWriter w;
  w.WriteU64(committed_episodes_.load(std::memory_order_relaxed));
  w.WriteU64(total_feedback_items_.load(std::memory_order_relaxed));
  w.WriteU64(total_links_added_.load(std::memory_order_relaxed));
  w.WriteU64(total_links_removed_.load(std::memory_order_relaxed));
  // Links first: restore parses them into a scratch index before touching
  // anything live (see RestoreState).
  BinaryWriter links_w;
  links_.SaveState(&links_w);
  w.WriteBytes(links_w.buffer());
  BinaryWriter alex_w;
  alex_->SaveState(&alex_w);
  w.WriteBytes(alex_w.buffer());
  return core::ckpt::WrapPayload(core::ckpt::PayloadKind::kService,
                                 fingerprint_, w.buffer());
}

Status LinkService::RestoreState(std::string_view blob) {
  uint32_t format_version = core::ckpt::kFormatVersion;
  ALEX_ASSIGN_OR_RETURN(
      std::string payload,
      core::ckpt::UnwrapPayload(blob, core::ckpt::PayloadKind::kService,
                                fingerprint_, &format_version));
  BinaryReader r(payload);
  uint64_t episodes = 0, feedback = 0, added = 0, removed = 0;
  ALEX_RETURN_NOT_OK(r.ReadU64(&episodes));
  ALEX_RETURN_NOT_OK(r.ReadU64(&feedback));
  ALEX_RETURN_NOT_OK(r.ReadU64(&added));
  ALEX_RETURN_NOT_OK(r.ReadU64(&removed));
  std::string_view links_bytes, alex_bytes;
  ALEX_RETURN_NOT_OK(r.ReadBytesView(&links_bytes));
  ALEX_RETURN_NOT_OK(r.ReadBytesView(&alex_bytes));

  // All-or-nothing: the link index parses into a scratch copy first, and
  // PartitionedAlex::LoadState is itself all-or-nothing across partitions,
  // so a corrupt blob leaves every piece of live state untouched.
  fed::LinkIndex loaded_links;
  BinaryReader links_r(links_bytes);
  ALEX_RETURN_NOT_OK(loaded_links.LoadState(&links_r));
  BinaryReader alex_r(alex_bytes);
  ALEX_RETURN_NOT_OK(alex_->LoadState(&alex_r, format_version));

  links_.Reset(std::move(loaded_links));
  committed_episodes_.store(static_cast<size_t>(episodes),
                            std::memory_order_relaxed);
  total_feedback_items_.store(static_cast<size_t>(feedback),
                              std::memory_order_relaxed);
  total_links_added_.store(static_cast<size_t>(added),
                           std::memory_order_relaxed);
  total_links_removed_.store(static_cast<size_t>(removed),
                             std::memory_order_relaxed);
  return Status::OK();
}

void LinkService::ClientLoop(Session* s) {
  for (size_t op = 0; op < config_.ops_per_client; ++op) {
    if (config_.think_seconds > 0.0) {
      clock_->SleepSeconds(config_.think_seconds);
    }
    RunOneOp(s);
    if (config_.hub != nullptr) config_.hub->MaybeSample();
  }
}

ServiceReport LinkService::Run() {
  ServiceReport report;
  report.clients = config_.num_clients;

  if (!config_.resume_from.empty()) {
    auto restore = [&]() -> Status {
      ALEX_ASSIGN_OR_RETURN(
          std::string path,
          core::ckpt::CheckpointManager::ResolveLatest(config_.resume_from));
      ALEX_ASSIGN_OR_RETURN(std::string blob,
                            core::ckpt::CheckpointManager::ReadBlob(path));
      return RestoreState(blob);
    }();
    if (!restore.ok()) report.resume_error = restore.ToString();
  }

  sessions_.clear();
  sessions_.resize(config_.num_clients);
  Rng root(config_.seed);
  for (size_t i = 0; i < sessions_.size(); ++i) {
    Session& s = sessions_[i];
    s.id = i;
    s.rng = root.Fork();
    // Each client is its own simulated user: a private oracle stream keeps
    // feedback deterministic per client regardless of interleaving.
    s.oracle = std::make_unique<feedback::Oracle>(
        &pair_->truth, config_.oracle_error_rate, root.Fork().SaveState()[0]);
  }

  const double start = clock_->NowSeconds();
  if (config_.deterministic || config_.num_clients <= 1) {
    // Round-robin op interleaving on the calling thread: client order is
    // fixed, the SimClock advances only through think time, and two runs
    // with the same config produce identical reports and link sets.
    for (size_t op = 0; op < config_.ops_per_client; ++op) {
      for (Session& s : sessions_) {
        if (config_.think_seconds > 0.0) {
          clock_->SleepSeconds(config_.think_seconds);
        }
        RunOneOp(&s);
        if (config_.hub != nullptr) config_.hub->MaybeSample();
      }
    }
  } else {
    std::vector<std::thread> clients;
    clients.reserve(sessions_.size());
    for (Session& s : sessions_) {
      clients.emplace_back([this, &s] { ClientLoop(&s); });
    }
    for (std::thread& t : clients) t.join();
  }

  // Drain whatever feedback is still pending into one final commit, so the
  // report's quality numbers reflect every item the clients produced.
  MaybeCommit(/*force=*/true);
  if (ckpt_) {
    std::lock_guard<std::mutex> lock(commit_mu_);
    const std::string blob = SerializeState();
    if (ckpt_->Write(blob).ok()) {
      ++checkpoints_written_;
      ServiceMetrics::Get().checkpoints.Add(1);
    }
  }
  report.duration_seconds = clock_->NowSeconds() - start;

  std::vector<double> all_latencies;
  for (const Session& s : sessions_) {
    report.ops += s.ops;
    report.queries += s.queries;
    report.shed += s.shed;
    report.answered += s.answered;
    report.degraded += s.degraded;
    report.failed += s.failed;
    report.rows += s.rows;
    all_latencies.insert(all_latencies.end(), s.latencies_seconds.begin(),
                         s.latencies_seconds.end());
  }
  report.latency = SummarizeLatencies(std::move(all_latencies));
  // From the atomic, not the per-session sums: a resumed run restores this
  // counter from the checkpoint, and its sessions start at zero.
  report.feedback_items =
      total_feedback_items_.load(std::memory_order_relaxed);
  report.committed_episodes =
      committed_episodes_.load(std::memory_order_relaxed);
  report.epochs_published = links_.commit_sequence();
  report.links_added = total_links_added_.load(std::memory_order_relaxed);
  report.links_removed = total_links_removed_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    report.checkpoints_written = checkpoints_written_;
  }
  report.quality = core::ComputeMetrics(alex_->Candidates(), pair_->truth);
  if (config_.hub != nullptr) config_.hub->ForceSample();
  return report;
}

}  // namespace alex::svc
