#ifndef ALEX_SERVICE_LINK_SERVICE_H_
#define ALEX_SERVICE_LINK_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/checkpoint.h"
#include "core/config.h"
#include "core/metrics.h"
#include "core/partitioned.h"
#include "datagen/generator.h"
#include "federation/compiled_query.h"
#include "federation/endpoint.h"
#include "federation/probe_cache.h"
#include "federation/versioned_link_index.h"
#include "feedback/oracle.h"
#include "obs/telemetry_hub.h"
#include "simulation/query_workload.h"

namespace alex::svc {

/// Counting admission gate: at most `max_in_flight` queries execute at
/// once; excess arrivals are shed (rejected instantly and counted) instead
/// of queued, so a burst degrades to fast local rejections rather than an
/// unbounded latency tail. Lock-free — one fetch_add per admission.
class AdmissionController {
 public:
  explicit AdmissionController(size_t max_in_flight)
      : max_in_flight_(max_in_flight) {}

  /// True = admitted (caller MUST call Exit() when the query finishes);
  /// false = shed (counted; caller must NOT call Exit()).
  bool TryEnter() {
    if (in_flight_.fetch_add(1, std::memory_order_acq_rel) >= max_in_flight_) {
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      shed_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  }
  void Exit() { in_flight_.fetch_sub(1, std::memory_order_acq_rel); }

  size_t in_flight() const {
    return in_flight_.load(std::memory_order_acquire);
  }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  size_t max_in_flight() const { return max_in_flight_; }

 private:
  const size_t max_in_flight_;
  std::atomic<size_t> in_flight_{0};
  std::atomic<uint64_t> shed_{0};
};

/// Tuning of one LinkService run.
struct ServiceConfig {
  /// Closed-loop simulated clients. Concurrent mode runs one std::thread
  /// per client; deterministic mode interleaves them round-robin on the
  /// calling thread over a SimClock.
  size_t num_clients = 8;
  /// Operations each client issues before retiring (an op is one query
  /// attempt; shed ops count).
  size_t ops_per_client = 100;
  /// Client think time between ops, in clock seconds.
  double think_seconds = 0.0;
  /// Probability an answered query produces feedback on the links its rows
  /// crossed (the paper's query-driven feedback channel, Section 3.2).
  double feedback_fraction = 0.5;
  /// Pending feedback items that trigger an episode commit.
  size_t feedback_batch = 32;
  /// Admission bound on concurrently executing queries; 0 = 2x clients.
  size_t max_in_flight = 0;
  /// Single-threaded SimClock mode: bit-for-bit repeatable runs (tests,
  /// checkpoint equivalence). Concurrent mode uses a SteadyClock.
  bool deterministic = false;
  /// Oracle noise (Appendix C studies 10%).
  double oracle_error_rate = 0.0;
  uint64_t seed = 1;
  /// Distinct query texts sampled from the ground truth.
  size_t workload_queries = 64;
  /// Front both endpoints with a shared probe cache keyed to the link
  /// epoch, so caches flush exactly when an episode commit publishes.
  bool use_probe_cache = true;
  /// Optional live telemetry; sampled between ops and at every commit.
  obs::TelemetryHub* hub = nullptr;

  /// Checkpointing: empty dir = off. `checkpoint_every` is in commits.
  std::string checkpoint_dir;
  size_t checkpoint_every = 1;
  size_t checkpoint_keep = 3;
  /// Checkpoint file or directory to resume from; empty = fresh start.
  std::string resume_from;
};

/// Latency accounting over the merged per-client samples (exact
/// quantiles — the service records every op, it does not sketch).
struct LatencySummary {
  size_t count = 0;
  double mean_seconds = 0.0;
  double p50_seconds = 0.0;
  double p99_seconds = 0.0;
  double max_seconds = 0.0;
};

/// Outcome of one LinkService::Run.
struct ServiceReport {
  size_t clients = 0;
  size_t ops = 0;         // All client operations, shed included.
  size_t queries = 0;     // Ops admitted and executed (= ops - shed).
  size_t shed = 0;
  size_t answered = 0;    // Queries with at least one row.
  size_t degraded = 0;
  size_t failed = 0;
  uint64_t rows = 0;
  size_t feedback_items = 0;
  size_t committed_episodes = 0;
  /// Monotone commit sequence of the versioned index (== epochs published).
  uint64_t epochs_published = 0;
  size_t links_added = 0;
  size_t links_removed = 0;
  LatencySummary latency;
  double duration_seconds = 0.0;
  /// Quality of the candidate set against ground truth after the run.
  core::LinkSetMetrics quality;
  size_t checkpoints_written = 0;
  /// Non-empty when --resume was requested but the checkpoint could not be
  /// used (the run then started fresh).
  std::string resume_error;
};

/// Long-running concurrent link service: N closed-loop clients share ONE
/// PartitionedAlex and one endpoint stack, issuing federated queries and
/// feeding provenance-driven feedback back into the RL loop.
///
/// Concurrency protocol (the tentpole design):
///   - Queries never touch the engine or a mutable link set. Each op
///     Acquire()s the current immutable LinkIndex snapshot from a
///     VersionedLinkIndex and runs a throwaway FederatedEngine over it
///     (plans come from one shared thread-safe PlanCache, so per-op engine
///     construction is pointer wiring, not re-planning).
///   - Feedback enqueues under a mutex. When a batch accumulates, ONE
///     client becomes the committer (commit_mu_ try_lock; others keep
///     serving queries on the old snapshot): it drains the queue, routes
///     the batch through PartitionedAlex, ends the episode, stages the
///     exact candidate delta into the versioned index, and Commit()s —
///     publishing a new epoch atomically. Probe caches key on that epoch,
///     so they flush once per commit, not once per mutation.
///   - Admission control bounds in-flight queries; overflow is shed and
///     counted (svc.shed) rather than queued.
///
/// Metrics: svc.ops, svc.queries, svc.shed, svc.answered, svc.feedback_items,
/// svc.commits, svc.checkpoints, the svc.query_seconds histogram, and the
/// svc.in_flight gauge. Wire a TelemetryHub with SLOs on svc.query_seconds
/// for p50/p99 tracking.
class LinkService {
 public:
  /// `pair`, `alex`, and everything referenced by `config` are borrowed and
  /// must outlive the service. `alex` must be Build()-initialized and its
  /// candidate set seeded; the service's link index starts from that
  /// candidate set. `alex_config` must be the config `alex` was built with
  /// (its fingerprint gates checkpoint resume).
  LinkService(datagen::GeneratedPair* pair, core::PartitionedAlex* alex,
              const core::AlexConfig& alex_config, ServiceConfig config);

  /// Executes the full closed-loop run. Call at most once per instance.
  ServiceReport Run();

  /// Read access to the versioned link set (tests; post-run inspection).
  const fed::VersionedLinkIndex& links() const { return links_; }
  const AdmissionController& admission() const { return admission_; }

  /// Serializes the full service state (committed episodes + link index +
  /// every partition engine) as a framed kService checkpoint blob.
  /// Callers must ensure no commit is concurrently mutating state.
  std::string SerializeState() const;
  /// All-or-nothing restore of a SerializeState() blob: nothing is touched
  /// until the whole payload parsed and the engine snapshot applied.
  Status RestoreState(std::string_view blob);

 private:
  /// Per-client state. Each client owns its Rng and Oracle (forked from the
  /// service seed) and its latency samples, so clients never contend on a
  /// shared random stream and merge is trivial.
  struct Session {
    size_t id = 0;
    Rng rng{0};
    std::unique_ptr<feedback::Oracle> oracle;
    std::vector<double> latencies_seconds;
    size_t ops = 0;
    size_t queries = 0;
    size_t shed = 0;
    size_t answered = 0;
    size_t degraded = 0;
    size_t failed = 0;
    uint64_t rows = 0;
    size_t feedback_items = 0;
  };

  void RunOneOp(Session* s);
  void ClientLoop(Session* s);
  /// Drains pending feedback into one episode commit when a full batch is
  /// waiting (or `force`, for the end-of-run flush). Returns true when a
  /// commit happened.
  bool MaybeCommit(bool force);
  void MaybeCheckpoint();
  const fed::QueryEndpoint* left_stack() const;
  const fed::QueryEndpoint* right_stack() const;

  datagen::GeneratedPair* pair_;
  core::PartitionedAlex* alex_;
  ServiceConfig config_;
  uint64_t fingerprint_ = 0;

  fed::VersionedLinkIndex links_;
  fed::Endpoint left_base_;
  fed::Endpoint right_base_;
  std::unique_ptr<fed::CachingEndpoint> left_cached_;
  std::unique_ptr<fed::CachingEndpoint> right_cached_;
  mutable fed::PlanCache plan_cache_;
  simulation::FederatedWorkload workload_;

  SteadyClock steady_clock_;
  SimClock sim_clock_;
  Clock* clock_ = nullptr;

  AdmissionController admission_;

  std::mutex feedback_mu_;
  std::vector<feedback::FeedbackItem> pending_feedback_;
  /// Serializes episode commits (and checkpoint writes); never held while
  /// serving a query.
  std::mutex commit_mu_;
  std::atomic<size_t> committed_episodes_{0};
  std::atomic<size_t> total_links_added_{0};
  std::atomic<size_t> total_links_removed_{0};
  std::atomic<size_t> total_feedback_items_{0};
  size_t checkpoints_written_ = 0;  // Guarded by commit_mu_.
  std::unique_ptr<core::ckpt::CheckpointManager> ckpt_;

  std::vector<Session> sessions_;
};

}  // namespace alex::svc

#endif  // ALEX_SERVICE_LINK_SERVICE_H_
