#include "paris/paris.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "feedback/ground_truth.h"
#include "similarity/similarity.h"
#include "similarity/value.h"

namespace alex::paris {
namespace {

using feedback::PackPair;
using feedback::PairKey;
using rdf::Dataset;
using rdf::EntityId;
using rdf::TermId;

/// Normalized comparison key for a literal/IRI object.
std::string ValueKey(const Dataset& ds, TermId object) {
  const rdf::Term& t = ds.dict().term(object);
  if (t.is_iri()) {
    return ToLowerAscii(sim::IriLocalName(t.value));
  }
  return ToLowerAscii(t.value);
}

/// Per-dataset relation statistics: inverse functionality per predicate,
/// i.e. #distinct object values / #triples. A predicate whose values are
/// (nearly) unique per entity — a name, an id — has invfun near 1 and is
/// highly identifying; rdf:type has invfun near 0.
std::unordered_map<TermId, double> InverseFunctionality(const Dataset& ds) {
  std::unordered_map<TermId, size_t> triples;
  std::unordered_map<TermId, std::unordered_set<std::string>> values;
  const size_t n = ds.num_entities();
  for (EntityId e = 0; e < n; ++e) {
    for (const rdf::Attribute& a : ds.attributes(e)) {
      ++triples[a.predicate];
      values[a.predicate].insert(ValueKey(ds, a.object));
    }
  }
  std::unordered_map<TermId, double> invfun;
  for (const auto& [p, count] : triples) {
    invfun[p] = static_cast<double>(values[p].size()) /
                static_cast<double>(count);
  }
  return invfun;
}

/// Key for a relation pair (left predicate, right predicate).
uint64_t RelPairKey(TermId p, TermId q) {
  return (static_cast<uint64_t>(p) << 32) | static_cast<uint64_t>(q);
}

}  // namespace

ParisLinker::ParisLinker(const Dataset* left, const Dataset* right,
                         ParisConfig config)
    : left_(left), right_(right), config_(config) {}

std::vector<ScoredLink> ParisLinker::Run() {
  const Dataset& dl = *left_;
  const Dataset& dr = *right_;

  // --- Step 1: blocking via a shared-value inverted index. ---
  std::unordered_map<std::string, std::vector<EntityId>> left_by_value;
  std::unordered_map<std::string, std::vector<EntityId>> right_by_value;
  for (EntityId e = 0; e < dl.num_entities(); ++e) {
    for (const rdf::Attribute& a : dl.attributes(e)) {
      left_by_value[ValueKey(dl, a.object)].push_back(e);
    }
  }
  for (EntityId e = 0; e < dr.num_entities(); ++e) {
    for (const rdf::Attribute& a : dr.attributes(e)) {
      right_by_value[ValueKey(dr, a.object)].push_back(e);
    }
  }
  std::unordered_set<PairKey> candidate_set;
  for (const auto& [value, lefts] : left_by_value) {
    auto it = right_by_value.find(value);
    if (it == right_by_value.end()) continue;
    const auto& rights = it->second;
    if (lefts.size() * rights.size() > config_.max_pairs_per_value) continue;
    for (EntityId l : lefts) {
      for (EntityId r : rights) candidate_set.insert(PackPair(l, r));
    }
  }
  std::vector<PairKey> candidates(candidate_set.begin(), candidate_set.end());
  std::sort(candidates.begin(), candidates.end());

  // --- Step 2: relation statistics. ---
  const auto invfun_left = InverseFunctionality(dl);
  const auto invfun_right = InverseFunctionality(dr);

  // Relation alignment scores, refined each round. Initialized to 1 so the
  // first round relies purely on inverse functionality and value similarity.
  std::unordered_map<uint64_t, double> align;
  auto alignment = [&align](TermId p, TermId q) {
    auto it = align.find(RelPairKey(p, q));
    return it == align.end() ? 1.0 : it->second;
  };

  // Per-candidate evidence list: (p, q, sim) triples above the literal
  // threshold. Computed once; probabilities and alignments iterate over it.
  struct Evidence {
    TermId p;
    TermId q;
    double sim;
  };
  std::vector<std::vector<Evidence>> evidence(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    const EntityId l = feedback::PairLeft(candidates[i]);
    const EntityId r = feedback::PairRight(candidates[i]);
    for (const rdf::Attribute& al : dl.attributes(l)) {
      const sim::TypedValue vl = sim::ParseValue(dl.dict().term(al.object));
      for (const rdf::Attribute& ar : dr.attributes(r)) {
        const sim::TypedValue vr = sim::ParseValue(dr.dict().term(ar.object));
        const double s = sim::ValueSimilarity(vl, vr);
        if (s >= config_.literal_sim_threshold) {
          evidence[i].push_back(Evidence{al.predicate, ar.predicate, s});
        }
      }
    }
  }

  std::vector<double> prob(candidates.size(), 0.0);
  for (int round = 0; round < config_.iterations; ++round) {
    // --- Step 3: entity-equivalence probabilities (noisy-OR). ---
    for (size_t i = 0; i < candidates.size(); ++i) {
      double survive = 1.0;
      for (const Evidence& ev : evidence[i]) {
        // Geometric mean of the two relations' inverse functionalities:
        // PARIS's evidence term uses a single relation's functionality; a
        // plain product double-counts the penalty and caps scores far below
        // 1 even for perfectly matching multi-evidence pairs.
        const double identifying =
            std::sqrt(invfun_left.at(ev.p) * invfun_right.at(ev.q));
        const double w = identifying * alignment(ev.p, ev.q) * ev.sim;
        survive *= (1.0 - std::min(0.999999, w));
      }
      prob[i] = 1.0 - survive;
    }

    // --- Step 4: re-estimate relation alignment from probabilities. ---
    // align(p,q) = Σ prob over pairs where (p,q) values match
    //            / Σ prob over pairs where the left entity has p at all,
    // counting only pairs currently believed equivalent (prob ≥ 0.5):
    // letting every low-probability blocking candidate vote would drown
    // the alignment of genuinely aligned relations in junk-pair mass.
    constexpr double kAlignmentVoteThreshold = 0.5;
    std::unordered_map<uint64_t, double> num;
    std::unordered_map<TermId, double> den;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (prob[i] < kAlignmentVoteThreshold) continue;
      const EntityId l = feedback::PairLeft(candidates[i]);
      std::unordered_set<TermId> left_preds;
      for (const rdf::Attribute& al : dl.attributes(l)) {
        left_preds.insert(al.predicate);
      }
      for (TermId p : left_preds) den[p] += prob[i];
      std::unordered_set<uint64_t> matched_here;
      for (const Evidence& ev : evidence[i]) {
        matched_here.insert(RelPairKey(ev.p, ev.q));
      }
      for (uint64_t key : matched_here) num[key] += prob[i];
    }
    align.clear();
    for (const auto& [key, n] : num) {
      const TermId p = static_cast<TermId>(key >> 32);
      const double d = den.count(p) ? den.at(p) : 0.0;
      align[key] = d > 0.0 ? std::min(1.0, n / d) : 0.0;
    }
  }

  relation_alignments_.clear();
  for (const auto& [key, score] : align) {
    relation_alignments_.push_back(
        RelationAlignment{static_cast<TermId>(key >> 32),
                          static_cast<TermId>(key & 0xffffffffULL), score});
  }
  std::sort(relation_alignments_.begin(), relation_alignments_.end(),
            [](const RelationAlignment& a, const RelationAlignment& b) {
              return a.score > b.score;
            });

  std::vector<ScoredLink> out;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (prob[i] >= config_.link_threshold) {
      out.push_back(ScoredLink{feedback::PairLeft(candidates[i]),
                               feedback::PairRight(candidates[i]), prob[i]});
    }
  }
  return out;
}

std::vector<ScoredLink> NaiveLabelLinker(const Dataset& left,
                                         const Dataset& right,
                                         double threshold) {
  std::unordered_map<std::string, std::vector<EntityId>> right_by_value;
  for (EntityId e = 0; e < right.num_entities(); ++e) {
    for (const rdf::Attribute& a : right.attributes(e)) {
      right_by_value[ValueKey(right, a.object)].push_back(e);
    }
  }
  std::unordered_map<PairKey, size_t> shared;
  for (EntityId e = 0; e < left.num_entities(); ++e) {
    for (const rdf::Attribute& a : left.attributes(e)) {
      auto it = right_by_value.find(ValueKey(left, a.object));
      if (it == right_by_value.end()) continue;
      for (EntityId r : it->second) ++shared[PackPair(e, r)];
    }
  }
  std::vector<ScoredLink> out;
  for (const auto& [key, count] : shared) {
    const EntityId l = feedback::PairLeft(key);
    const size_t nl = left.attributes(l).size();
    const double score =
        nl == 0 ? 0.0 : static_cast<double>(count) / static_cast<double>(nl);
    if (score >= threshold) {
      out.push_back(ScoredLink{l, feedback::PairRight(key), score});
    }
  }
  std::sort(out.begin(), out.end(), [](const ScoredLink& a, const ScoredLink& b) {
    return std::tie(a.left, a.right) < std::tie(b.left, b.right);
  });
  return out;
}

}  // namespace alex::paris
