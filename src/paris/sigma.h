#ifndef ALEX_PARIS_SIGMA_H_
#define ALEX_PARIS_SIGMA_H_

#include <cstddef>
#include <vector>

#include "rdf/dataset.h"
#include "paris/paris.h"

namespace alex::paris {

/// Configuration for the SiGMa-style greedy linker.
struct SigmaConfig {
  /// Minimum string-evidence (blocking-key Jaccard) score for a pair to
  /// enter the seed queue on its own. Pairs below this can still surface
  /// later through neighborhood propagation.
  double seed_threshold = 0.15;
  /// Minimum combined (string + propagation) score for a pair to be
  /// accepted as a match. The greedy loop stops once the best remaining
  /// pair falls below this.
  double accept_threshold = 0.25;
  /// Weight of the matched-neighbor fraction in the combined score
  /// (SiGMa's graph term). 0 disables propagation entirely.
  double propagation_weight = 0.4;
  /// Blocking guard: blocks with more right entities than this are treated
  /// as stop-values and propose no seed candidates.
  size_t max_block_entities = 64;
  /// Per left entity, only the best this-many seed candidates (by string
  /// score) enter the queue.
  size_t max_candidates_per_entity = 32;
};

/// SiGMa-style greedy instance matcher (Lacoste-Julien et al., KDD 2013),
/// reimplemented as an alternative seed linker for ALEX's feedback loop.
///
/// Where PARIS computes soft equivalence probabilities over a fixpoint,
/// SiGMa commits greedily: it keeps a priority queue of candidate pairs
/// scored by string evidence plus a graph term, repeatedly pops the best
/// pair, fixes it as a (1-to-1) match, and propagates — every accepted
/// match raises the score of its neighbors' candidate pairs (entities
/// related to matched entities are themselves likely matches) and can
/// introduce brand-new candidates the blocking step never proposed.
///
/// Scores:
///  - string evidence: Jaccard similarity of the two entities' blocking-key
///    sets (full normalized values, word tokens, and token prefixes — the
///    same keys core::BlockingIndex blocks on, reused here as a cheap
///    set-of-words representation);
///  - combined: string + propagation_weight * fraction of this pair's
///    neighbor pairs already matched to each other (capped at 1), over the
///    entity neighborhood graph induced by IRI-object attributes that
///    resolve to entities of the same dataset.
///
/// The queue uses lazy deletion: scores only ever increase, so an entry is
/// acted on only if it still carries the pair's current score. Ties break
/// on (left, right) ascending; the result is fully deterministic.
class SigmaLinker {
 public:
  /// Datasets are borrowed and must outlive the linker.
  SigmaLinker(const rdf::Dataset* left, const rdf::Dataset* right,
              SigmaConfig config = {});

  /// Runs greedy matching and returns the accepted links with their final
  /// combined scores, sorted by (left, right).
  std::vector<ScoredLink> Run();

 private:
  const rdf::Dataset* left_;
  const rdf::Dataset* right_;
  SigmaConfig config_;
};

}  // namespace alex::paris

#endif  // ALEX_PARIS_SIGMA_H_
