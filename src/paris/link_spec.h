#ifndef ALEX_PARIS_LINK_SPEC_H_
#define ALEX_PARIS_LINK_SPEC_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "paris/paris.h"
#include "rdf/dataset.h"

namespace alex::paris {

/// Similarity metric a link-spec comparison can use.
enum class Metric {
  kExact,            // 1.0 on normalized equality, else 0.
  kLevenshtein,      // Normalized edit similarity.
  kJaroWinkler,      // Jaro-Winkler.
  kTokenJaccard,     // Word-token set overlap.
  kTrigramDice,      // Character trigram Dice.
  kNumericProximity, // Steep relative-difference proximity.
  kDateProximity,    // Day-distance proximity.
};

/// One attribute comparison of a link specification.
struct Comparison {
  std::string left_predicate;   // Predicate IRI in the left dataset.
  std::string right_predicate;  // Predicate IRI in the right dataset.
  Metric metric = Metric::kJaroWinkler;
  double weight = 1.0;
};

/// How per-comparison scores combine into the link score.
enum class Aggregation { kAverage, kMin, kMax };

/// A declarative link specification in the spirit of the SILK framework
/// (Volz et al., LDOW'09) — the manually-authored-rules approach the
/// paper's related work contrasts with PARIS and ALEX. A specification
/// names attribute pairs, metrics, and weights; entities whose aggregate
/// score clears the threshold are linked.
struct LinkSpec {
  std::vector<Comparison> comparisons;
  Aggregation aggregation = Aggregation::kAverage;
  double threshold = 0.85;
  /// Blocking guard, as in ParisConfig.
  size_t max_block_pairs = 20000;
};

/// Parses the textual rule format, one directive per line:
///
///   compare <left-pred-iri> <right-pred-iri> using <metric> [weight w]
///   aggregate average|min|max
///   threshold 0.85
///   # comments and blank lines are ignored
///
/// Metrics: exact, levenshtein, jaro_winkler, token_jaccard, trigram_dice,
/// numeric, date.
Result<LinkSpec> ParseLinkSpec(std::string_view text);

/// Runs a link specification over a dataset pair. Candidate pairs come
/// from value blocking over the compared attributes; each candidate is
/// scored by the spec and emitted if it clears the threshold. A missing
/// attribute contributes 0 to its comparison.
std::vector<ScoredLink> RunLinkSpec(const rdf::Dataset& left,
                                    const rdf::Dataset& right,
                                    const LinkSpec& spec);

}  // namespace alex::paris

#endif  // ALEX_PARIS_LINK_SPEC_H_
