#include "paris/link_spec.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "feedback/ground_truth.h"
#include "similarity/similarity.h"
#include "similarity/string_metrics.h"
#include "similarity/value.h"

namespace alex::paris {
namespace {

using feedback::PackPair;
using feedback::PairKey;
using rdf::Dataset;
using rdf::EntityId;
using rdf::TermId;

Result<Metric> ParseMetric(const std::string& name) {
  if (name == "exact") return Metric::kExact;
  if (name == "levenshtein") return Metric::kLevenshtein;
  if (name == "jaro_winkler") return Metric::kJaroWinkler;
  if (name == "token_jaccard") return Metric::kTokenJaccard;
  if (name == "trigram_dice") return Metric::kTrigramDice;
  if (name == "numeric") return Metric::kNumericProximity;
  if (name == "date") return Metric::kDateProximity;
  return Status::ParseError("unknown metric '" + name + "'");
}

double ApplyMetric(Metric metric, const rdf::Term& a, const rdf::Term& b) {
  const sim::TypedValue va = sim::ParseValue(a);
  const sim::TypedValue vb = sim::ParseValue(b);
  const std::string la = ToLowerAscii(va.text);
  const std::string lb = ToLowerAscii(vb.text);
  switch (metric) {
    case Metric::kExact:
      return la == lb ? 1.0 : 0.0;
    case Metric::kLevenshtein:
      return sim::LevenshteinSimilarity(la, lb);
    case Metric::kJaroWinkler:
      return sim::JaroWinklerSimilarity(la, lb);
    case Metric::kTokenJaccard:
      return sim::TokenJaccardSimilarity(la, lb);
    case Metric::kTrigramDice:
      return sim::TrigramDiceSimilarity(la, lb);
    case Metric::kNumericProximity:
      if (!va.is_numeric() || !vb.is_numeric()) return 0.0;
      return sim::NumericSimilarity(va.real, vb.real);
    case Metric::kDateProximity:
      if (va.kind != sim::ValueKind::kDate || vb.kind != sim::ValueKind::kDate)
        return 0.0;
      return sim::DateSimilarity(va.date_days, vb.date_days);
  }
  return 0.0;
}

/// Values of an entity under one predicate id.
std::vector<const rdf::Term*> ValuesOf(const Dataset& ds, EntityId e,
                                       TermId pred) {
  std::vector<const rdf::Term*> out;
  for (const rdf::Attribute& a : ds.attributes(e)) {
    if (a.predicate == pred) out.push_back(&ds.dict().term(a.object));
  }
  return out;
}

}  // namespace

Result<LinkSpec> ParseLinkSpec(std::string_view text) {
  LinkSpec spec;
  size_t line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    const std::string line(TrimAscii(raw));
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> tokens = SplitWhitespace(line);
    auto fail = [&](const std::string& msg) {
      return Status::ParseError("link spec line " + std::to_string(line_no) +
                                ": " + msg);
    };
    // Numbers are validated strictly: strtod with a discarded end pointer
    // would silently read "0.9x" (or pure garbage) as a number, turning a
    // typo in a spec file into a 0.0 weight/threshold.
    auto parse_number = [&](const std::string& token, const char* what,
                            double* out) -> Status {
      std::optional<double> value = ParseDouble(token);
      if (!value.has_value()) {
        return fail(std::string("invalid ") + what + " '" + token + "'");
      }
      *out = *value;
      return Status::OK();
    };
    if (tokens[0] == "compare") {
      if (tokens.size() < 5 || tokens[3] != "using") {
        return fail("expected: compare <left> <right> using <metric>");
      }
      Comparison cmp;
      cmp.left_predicate = tokens[1];
      cmp.right_predicate = tokens[2];
      ALEX_ASSIGN_OR_RETURN(cmp.metric, ParseMetric(tokens[4]));
      if (tokens.size() == 7 && tokens[5] == "weight") {
        ALEX_RETURN_NOT_OK(parse_number(tokens[6], "weight", &cmp.weight));
        if (cmp.weight <= 0.0) return fail("weight must be positive");
      } else if (tokens.size() != 5) {
        return fail("trailing tokens after metric");
      }
      spec.comparisons.push_back(std::move(cmp));
    } else if (tokens[0] == "aggregate") {
      if (tokens.size() != 2) return fail("expected: aggregate <fn>");
      if (tokens[1] == "average") spec.aggregation = Aggregation::kAverage;
      else if (tokens[1] == "min") spec.aggregation = Aggregation::kMin;
      else if (tokens[1] == "max") spec.aggregation = Aggregation::kMax;
      else return fail("unknown aggregation '" + tokens[1] + "'");
    } else if (tokens[0] == "threshold") {
      if (tokens.size() != 2) return fail("expected: threshold <value>");
      ALEX_RETURN_NOT_OK(
          parse_number(tokens[1], "threshold", &spec.threshold));
      if (spec.threshold <= 0.0 || spec.threshold > 1.0) {
        return fail("threshold must be in (0, 1]");
      }
    } else {
      return fail("unknown directive '" + tokens[0] + "'");
    }
  }
  if (spec.comparisons.empty()) {
    return Status::ParseError("link spec has no comparisons");
  }
  return spec;
}

std::vector<ScoredLink> RunLinkSpec(const Dataset& left, const Dataset& right,
                                    const LinkSpec& spec) {
  // Resolve predicate IRIs to ids; comparisons over unknown predicates
  // contribute 0 everywhere.
  struct ResolvedComparison {
    TermId left_pred = rdf::kInvalidTermId;
    TermId right_pred = rdf::kInvalidTermId;
    Metric metric;
    double weight;
  };
  std::vector<ResolvedComparison> comparisons;
  for (const Comparison& cmp : spec.comparisons) {
    ResolvedComparison rc;
    rc.metric = cmp.metric;
    rc.weight = cmp.weight;
    auto lp = left.dict().Lookup(rdf::Term::Iri(cmp.left_predicate));
    auto rp = right.dict().Lookup(rdf::Term::Iri(cmp.right_predicate));
    if (lp) rc.left_pred = *lp;
    if (rp) rc.right_pred = *rp;
    comparisons.push_back(rc);
  }

  // Blocking: index right-side values of the compared predicates by
  // normalized value and token.
  std::unordered_map<std::string, std::vector<EntityId>> right_blocks;
  auto keys_of = [](const rdf::Term& t) {
    std::vector<std::string> keys;
    const std::string norm = ToLowerAscii(
        t.is_iri() ? std::string(sim::IriLocalName(t.value)) : t.value);
    if (norm.empty()) return keys;
    keys.push_back("v:" + norm);
    for (const std::string& tok : WordTokens(norm)) {
      if (tok.size() >= 2) keys.push_back("t:" + tok);
    }
    return keys;
  };
  for (EntityId r = 0; r < right.num_entities(); ++r) {
    std::unordered_set<std::string> seen;
    for (const ResolvedComparison& rc : comparisons) {
      if (rc.right_pred == rdf::kInvalidTermId) continue;
      for (const rdf::Term* value : ValuesOf(right, r, rc.right_pred)) {
        for (std::string& key : keys_of(*value)) {
          if (seen.insert(key).second) right_blocks[key].push_back(r);
        }
      }
    }
  }

  std::unordered_set<PairKey> candidates;
  for (EntityId l = 0; l < left.num_entities(); ++l) {
    std::unordered_set<std::string> seen;
    for (const ResolvedComparison& rc : comparisons) {
      if (rc.left_pred == rdf::kInvalidTermId) continue;
      for (const rdf::Term* value : ValuesOf(left, l, rc.left_pred)) {
        for (std::string& key : keys_of(*value)) {
          if (!seen.insert(key).second) continue;
          auto it = right_blocks.find(key);
          if (it == right_blocks.end()) continue;
          if (it->second.size() > spec.max_block_pairs) continue;
          for (EntityId r : it->second) candidates.insert(PackPair(l, r));
        }
      }
    }
  }

  // Score every candidate against the specification.
  std::vector<ScoredLink> out;
  for (PairKey key : candidates) {
    const EntityId l = feedback::PairLeft(key);
    const EntityId r = feedback::PairRight(key);
    double acc = spec.aggregation == Aggregation::kMin ? 1.0 : 0.0;
    double weight_sum = 0.0;
    for (const ResolvedComparison& rc : comparisons) {
      double best = 0.0;
      if (rc.left_pred != rdf::kInvalidTermId &&
          rc.right_pred != rdf::kInvalidTermId) {
        for (const rdf::Term* lv : ValuesOf(left, l, rc.left_pred)) {
          for (const rdf::Term* rv : ValuesOf(right, r, rc.right_pred)) {
            best = std::max(best, ApplyMetric(rc.metric, *lv, *rv));
          }
        }
      }
      switch (spec.aggregation) {
        case Aggregation::kAverage:
          acc += best * rc.weight;
          weight_sum += rc.weight;
          break;
        case Aggregation::kMin:
          acc = std::min(acc, best);
          break;
        case Aggregation::kMax:
          acc = std::max(acc, best);
          break;
      }
    }
    const double score =
        spec.aggregation == Aggregation::kAverage
            ? (weight_sum > 0.0 ? acc / weight_sum : 0.0)
            : acc;
    if (score >= spec.threshold) {
      out.push_back(ScoredLink{l, r, score});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ScoredLink& a, const ScoredLink& b) {
              return std::tie(a.left, a.right) < std::tie(b.left, b.right);
            });
  return out;
}

}  // namespace alex::paris
