#ifndef ALEX_PARIS_SEED_LINKERS_H_
#define ALEX_PARIS_SEED_LINKERS_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/seed_linker.h"
#include "paris/paris.h"
#include "paris/sigma.h"
#include "rdf/dataset.h"

namespace alex::paris {

/// Stable type tags of the built-in seed linkers.
inline constexpr std::string_view kParisLinkerTag = "paris";
inline constexpr std::string_view kSigmaLinkerTag = "sigma";

/// core::SeedLinker adapter over the PARIS probabilistic linker.
class ParisSeedLinker final : public core::SeedLinker {
 public:
  ParisSeedLinker(const rdf::Dataset* left, const rdf::Dataset* right,
                  ParisConfig config = {})
      : linker_(left, right, config) {}

  std::string_view type_tag() const override { return kParisLinkerTag; }
  std::vector<ScoredLink> Run() override { return linker_.Run(); }

 private:
  ParisLinker linker_;
};

/// core::SeedLinker adapter over the SiGMa-style greedy linker.
class SigmaSeedLinker final : public core::SeedLinker {
 public:
  SigmaSeedLinker(const rdf::Dataset* left, const rdf::Dataset* right,
                  SigmaConfig config = {})
      : linker_(left, right, config) {}

  std::string_view type_tag() const override { return kSigmaLinkerTag; }
  std::vector<ScoredLink> Run() override { return linker_.Run(); }

 private:
  SigmaLinker linker_;
};

/// Sorted tags of the linkers MakeSeedLinker knows how to build.
std::vector<std::string> KnownLinkerTags();

/// Constructs the seed linker named by `tag` ("paris" or "sigma") over the
/// borrowed dataset pair. Unknown tags yield NotFound naming the tag and
/// the known set — callers validate linker selection up front through this
/// one function instead of each growing their own switch.
Result<std::unique_ptr<core::SeedLinker>> MakeSeedLinker(
    std::string_view tag, const rdf::Dataset* left, const rdf::Dataset* right,
    const ParisConfig& paris_config = {}, const SigmaConfig& sigma_config = {});

}  // namespace alex::paris

#endif  // ALEX_PARIS_SEED_LINKERS_H_
