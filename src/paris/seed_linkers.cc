#include "paris/seed_linkers.h"

#include <sstream>
#include <utility>

namespace alex::paris {

std::vector<std::string> KnownLinkerTags() {
  return {std::string(kParisLinkerTag), std::string(kSigmaLinkerTag)};
}

Result<std::unique_ptr<core::SeedLinker>> MakeSeedLinker(
    std::string_view tag, const rdf::Dataset* left, const rdf::Dataset* right,
    const ParisConfig& paris_config, const SigmaConfig& sigma_config) {
  if (tag == kParisLinkerTag) {
    return std::unique_ptr<core::SeedLinker>(
        std::make_unique<ParisSeedLinker>(left, right, paris_config));
  }
  if (tag == kSigmaLinkerTag) {
    return std::unique_ptr<core::SeedLinker>(
        std::make_unique<SigmaSeedLinker>(left, right, sigma_config));
  }
  std::ostringstream msg;
  msg << "unknown seed linker '" << tag << "' (known:";
  for (const std::string& known : KnownLinkerTags()) msg << " " << known;
  msg << ")";
  return Status::NotFound(msg.str());
}

}  // namespace alex::paris
