#ifndef ALEX_PARIS_PARIS_H_
#define ALEX_PARIS_PARIS_H_

#include <cstdint>
#include <vector>

#include "rdf/dataset.h"

namespace alex::paris {

/// A candidate owl:sameAs link with the linker's confidence score.
struct ScoredLink {
  rdf::EntityId left = rdf::kInvalidEntityId;
  rdf::EntityId right = rdf::kInvalidEntityId;
  double score = 0.0;

  friend bool operator==(const ScoredLink& a, const ScoredLink& b) {
    return a.left == b.left && a.right == b.right;
  }
};

/// Configuration for the PARIS-style linker.
struct ParisConfig {
  /// Fixpoint iterations of the entity-probability / relation-alignment
  /// alternation.
  int iterations = 3;
  /// Minimum value similarity for an attribute pair to contribute evidence.
  double literal_sim_threshold = 0.9;
  /// Links with final probability >= this are emitted. The paper thresholds
  /// PARIS scores at 0.95 (Section 7.1 "Initial Set of Links"); this
  /// reimplementation's score scale is slightly softer, and 0.9 reproduces
  /// the paper's initial precision/recall profiles on the built-in
  /// scenarios.
  double link_threshold = 0.9;
  /// Blocking guard: a shared value matching more than this many pairs is
  /// considered a stop-value and generates no candidates.
  size_t max_pairs_per_value = 1000;
};

/// From-scratch implementation of the PARIS probabilistic alignment scheme
/// (Suchanek, Abiteboul, Senellart; PVLDB 5(3)), specialized to instance
/// matching over literal evidence — the role it plays in the ALEX paper:
/// producing the imperfect initial candidate link set.
///
/// Algorithm:
///  1. Blocking: an inverted index from normalized literal values to
///     entities on each side proposes candidate pairs that share at least
///     one value.
///  2. Evidence weights combine the relations' inverse functionality (how
///     identifying a shared value is), a learned relation alignment score,
///     and the value similarity.
///  3. The entity-equivalence probability is the noisy-OR of its evidence:
///     Pr(x≡y) = 1 − Π (1 − invfun₁(p)·invfun₂(q)·align(p,q)·sim(v,w)).
///  4. Relation alignment is re-estimated from the current probabilities,
///     and steps 3–4 repeat for `iterations` rounds.
///
/// All pairs with probability ≥ link_threshold are emitted (one entity may
/// receive several links — exactly the imperfection ALEX's feedback loop is
/// designed to repair).
class ParisLinker {
 public:
  /// One aligned relation pair with its final alignment score — PARIS's
  /// schema-level output (how often the two predicates carry matching
  /// values among equivalent entities).
  struct RelationAlignment {
    rdf::TermId left_pred = rdf::kInvalidTermId;
    rdf::TermId right_pred = rdf::kInvalidTermId;
    double score = 0.0;
  };

  /// Datasets are borrowed and must outlive the linker.
  ParisLinker(const rdf::Dataset* left, const rdf::Dataset* right,
              ParisConfig config = {});

  /// Runs the fixpoint and returns the scored candidate links, sorted by
  /// (left, right).
  std::vector<ScoredLink> Run();

  /// The relation alignments learned by the last Run(), sorted by score
  /// descending. Empty before the first Run().
  const std::vector<RelationAlignment>& relation_alignments() const {
    return relation_alignments_;
  }

 private:
  const rdf::Dataset* left_;
  const rdf::Dataset* right_;
  ParisConfig config_;
  std::vector<RelationAlignment> relation_alignments_;
};

/// Naive baseline linker: links entity pairs whose normalized value on any
/// attribute matches exactly, scoring by the fraction of exactly shared
/// values. Used by benches as the quality floor.
std::vector<ScoredLink> NaiveLabelLinker(const rdf::Dataset& left,
                                         const rdf::Dataset& right,
                                         double threshold);

}  // namespace alex::paris

#endif  // ALEX_PARIS_PARIS_H_
