#include "paris/sigma.h"

#include <algorithm>
#include <cstdint>
#include <queue>
#include <unordered_map>
#include <utility>

#include "core/blocking.h"
#include "obs/trace.h"

namespace alex::paris {
namespace {

uint64_t PackPair(rdf::EntityId l, rdf::EntityId r) {
  return (static_cast<uint64_t>(l) << 32) | r;
}

/// Intersection size of two sorted, deduplicated key vectors.
size_t IntersectCount(const std::vector<core::BlockKey>& a,
                      const std::vector<core::BlockKey>& b) {
  size_t i = 0, j = 0, n = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

double Jaccard(const std::vector<core::BlockKey>& a,
               const std::vector<core::BlockKey>& b) {
  size_t inter = IntersectCount(a, b);
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

/// Entity neighborhood graph induced by IRI-object attributes whose object
/// resolves to an entity of the same dataset (class IRIs and other
/// non-subject objects drop out naturally). Edges are symmetric; each
/// adjacency list is sorted and deduplicated.
std::vector<std::vector<rdf::EntityId>> BuildNeighbors(
    const rdf::Dataset& ds) {
  std::vector<std::vector<rdf::EntityId>> nbrs(ds.num_entities());
  for (rdf::EntityId e = 0; e < ds.num_entities(); ++e) {
    for (const rdf::Attribute& attr : ds.attributes(e)) {
      if (!ds.dict().term(attr.object).is_iri()) continue;
      auto other = ds.FindEntity(attr.object);
      if (!other.has_value() || *other == e) continue;
      nbrs[e].push_back(*other);
      nbrs[*other].push_back(e);
    }
  }
  for (auto& list : nbrs) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return nbrs;
}

/// Current scoring state of one candidate pair.
struct PairState {
  double base = 0.0;     // string evidence (blocking-key Jaccard), fixed
  double current = 0.0;  // base + propagation bonus, only ever increases
  uint32_t support = 0;  // accepted matches among this pair's neighbors
};

struct QueueEntry {
  double score;
  rdf::EntityId left;
  rdf::EntityId right;
};

/// Max-heap order: highest score first; ties prefer the smallest
/// (left, right) so the greedy commit order is deterministic.
struct QueueLess {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    if (a.score != b.score) return a.score < b.score;
    if (a.left != b.left) return a.left > b.left;
    return a.right > b.right;
  }
};

}  // namespace

SigmaLinker::SigmaLinker(const rdf::Dataset* left, const rdf::Dataset* right,
                         SigmaConfig config)
    : left_(left), right_(right), config_(config) {}

std::vector<ScoredLink> SigmaLinker::Run() {
  ALEX_TRACE_SPAN("linker", "sigma.run");
  size_t num_left = left_->num_entities();
  size_t num_right = right_->num_entities();
  if (num_left == 0 || num_right == 0) return {};

  core::BlockingIndex right_index(*right_);
  core::TermKeyCache left_keys(*left_);

  std::vector<std::vector<core::BlockKey>> left_sets(num_left);
  for (rdf::EntityId e = 0; e < num_left; ++e) {
    left_keys.EntityKeys(e, &left_sets[e]);
  }
  std::vector<std::vector<core::BlockKey>> right_sets(num_right);
  for (rdf::EntityId e = 0; e < num_right; ++e) {
    right_index.term_keys().EntityKeys(e, &right_sets[e]);
  }

  std::vector<std::vector<rdf::EntityId>> left_nbrs = BuildNeighbors(*left_);
  std::vector<std::vector<rdf::EntityId>> right_nbrs = BuildNeighbors(*right_);

  std::unordered_map<uint64_t, PairState> pairs;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, QueueLess> queue;

  // Seed phase: blocking proposes right candidates per left entity; the
  // best string-evidence pairs enter the queue.
  std::vector<uint32_t> shared(num_right, 0);
  std::vector<rdf::EntityId> touched;
  std::vector<std::pair<double, rdf::EntityId>> scored;  // (base, right)
  for (rdf::EntityId l = 0; l < num_left; ++l) {
    touched.clear();
    for (core::BlockKey key : left_sets[l]) {
      const std::vector<rdf::EntityId>* block = right_index.block(key);
      if (block == nullptr || block->size() > config_.max_block_entities) {
        continue;
      }
      for (rdf::EntityId r : *block) {
        if (shared[r]++ == 0) touched.push_back(r);
      }
    }
    scored.clear();
    for (rdf::EntityId r : touched) {
      size_t inter = shared[r];
      shared[r] = 0;
      size_t uni = left_sets[l].size() + right_sets[r].size() - inter;
      double base =
          uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
      if (base >= config_.seed_threshold) scored.emplace_back(base, r);
    }
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    if (scored.size() > config_.max_candidates_per_entity) {
      scored.resize(config_.max_candidates_per_entity);
    }
    for (const auto& [base, r] : scored) {
      pairs.emplace(PackPair(l, r), PairState{base, base, 0});
      queue.push(QueueEntry{base, l, r});
    }
  }

  // Greedy phase: commit the best pair, propagate its score to neighbor
  // pairs, repeat. Lazy deletion — an entry counts only if it carries the
  // pair's current score (scores only increase, so the heap max bounds the
  // best live pair and the loop can stop at accept_threshold).
  constexpr rdf::EntityId kUnmatched = rdf::kInvalidEntityId;
  std::vector<rdf::EntityId> matched_left(num_left, kUnmatched);
  std::vector<rdf::EntityId> matched_right(num_right, kUnmatched);
  std::vector<ScoredLink> links;
  while (!queue.empty()) {
    QueueEntry top = queue.top();
    queue.pop();
    if (top.score < config_.accept_threshold) break;
    if (matched_left[top.left] != kUnmatched ||
        matched_right[top.right] != kUnmatched) {
      continue;
    }
    PairState& state = pairs[PackPair(top.left, top.right)];
    if (top.score != state.current) continue;  // stale entry

    matched_left[top.left] = top.right;
    matched_right[top.right] = top.left;
    links.push_back(ScoredLink{top.left, top.right, state.current});

    if (config_.propagation_weight <= 0.0) continue;
    for (rdf::EntityId ln : left_nbrs[top.left]) {
      if (matched_left[ln] != kUnmatched) continue;
      for (rdf::EntityId rn : right_nbrs[top.right]) {
        if (matched_right[rn] != kUnmatched) continue;
        uint64_t pk = PackPair(ln, rn);
        auto [it, inserted] = pairs.try_emplace(pk);
        PairState& ps = it->second;
        if (inserted) {
          // Propagation-born candidate: blocking never proposed it, so its
          // string evidence is computed here on first sight.
          ps.base = Jaccard(left_sets[ln], right_sets[rn]);
          ps.current = ps.base;
        }
        ps.support++;
        size_t denom = std::max<size_t>(
            1, std::max(left_nbrs[ln].size(), right_nbrs[rn].size()));
        double frac = std::min(
            1.0, static_cast<double>(ps.support) / static_cast<double>(denom));
        double combined = ps.base + config_.propagation_weight * frac;
        if (combined > ps.current) {
          ps.current = combined;
          queue.push(QueueEntry{combined, ln, rn});
        }
      }
    }
  }

  std::sort(links.begin(), links.end(),
            [](const ScoredLink& a, const ScoredLink& b) {
              if (a.left != b.left) return a.left < b.left;
              return a.right < b.right;
            });
  return links;
}

}  // namespace alex::paris
