#ifndef ALEX_FEDERATION_VERSIONED_LINK_INDEX_H_
#define ALEX_FEDERATION_VERSIONED_LINK_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "federation/link_index.h"

namespace alex::fed {

/// Outcome of one Commit().
struct CommitResult {
  /// Staged operations that took effect (a duplicate Add or an absent
  /// Remove is a no-op and does not count).
  size_t added = 0;
  size_t removed = 0;
  /// published_epoch() after the commit.
  uint64_t epoch = 0;
  /// 1-based commit ordinal (equals commit_sequence() after the call).
  uint64_t sequence = 0;
};

/// Read-mostly, epoch-versioned snapshot view over a LinkIndex — the
/// concurrency substrate of the link service (DESIGN.md "Link service").
///
/// The plain LinkIndex mutates in place and bumps its epoch on every
/// Add/Remove, which is the right granularity for the single-threaded
/// episode loop but not for a service where N client threads query while
/// feedback arrives: readers would race mutations, and probe caches keyed
/// on the epoch would flush once per link instead of once per episode.
///
/// This wrapper splits the two roles:
///  - Readers call Acquire() and get a shared_ptr to an immutable published
///    snapshot. A query executes entirely against that snapshot, unaffected
///    by concurrent staging or commits; the snapshot stays alive (shared
///    ownership) until the last in-flight query drops it.
///  - Writers stage mutations (StageAdd/StageRemove); nothing is visible to
///    readers until Commit() applies the staged batch to the master index,
///    copies it into a fresh immutable snapshot, and publishes it. Only
///    then does published_epoch() move, so a probe cache watching it (the
///    CachingEndpoint EpochFn) is invalidated exactly once per commit — at
///    the episode boundary, matching the paper's feedback model.
///
/// Thread-safe. Acquire()/published_epoch() are cheap (one short mutex hold
/// / one atomic load) and never block behind a commit's O(links) snapshot
/// copy, which happens outside the publish lock.
class VersionedLinkIndex {
 public:
  VersionedLinkIndex();
  /// Seeds the master index (and the first published snapshot, epoch
  /// included) from an existing LinkIndex.
  explicit VersionedLinkIndex(LinkIndex initial);

  VersionedLinkIndex(const VersionedLinkIndex&) = delete;
  VersionedLinkIndex& operator=(const VersionedLinkIndex&) = delete;

  /// The current published snapshot. Never null. The caller may query it
  /// for as long as it holds the pointer; later commits do not mutate it.
  std::shared_ptr<const LinkIndex> Acquire() const;

  /// Epoch of the published snapshot — moves only at Commit()/Reset(), not
  /// per staged mutation. This is what probe-cache EpochFns should watch.
  uint64_t published_epoch() const {
    return published_epoch_.load(std::memory_order_acquire);
  }

  /// Commits performed so far.
  uint64_t commit_sequence() const {
    return commit_sequence_.load(std::memory_order_acquire);
  }

  /// Link count of the published snapshot.
  size_t size() const { return Acquire()->size(); }

  /// Stages one mutation for the next Commit(). Cheap; never blocks
  /// readers.
  void StageAdd(std::string left_iri, std::string right_iri);
  void StageRemove(std::string left_iri, std::string right_iri);

  /// Staged operations not yet committed.
  size_t staged_ops() const;

  /// Applies every staged operation to the master index and publishes a new
  /// immutable snapshot. Queries already running on the previous snapshot
  /// are unaffected and keep their view; queries that Acquire() after the
  /// publish see the new one. A commit with no effective mutations still
  /// publishes (sequence bumps) but keeps the epoch, so probe caches are
  /// not flushed for a no-op episode.
  CommitResult Commit();

  /// Replaces the whole index (master + published snapshot + epoch) and
  /// drops any staged operations. Used by checkpoint restore.
  void Reset(LinkIndex state);

  /// Serializes the master index (bit-identical restore via LoadState,
  /// epoch included). Staged, uncommitted operations are NOT part of a
  /// snapshot — they correspond to feedback whose episode has not been
  /// committed; checkpoint at commit boundaries (as LinkService does) and
  /// nothing is pending.
  void SaveState(BinaryWriter* w) const;

  /// Restores a SaveState() snapshot, replacing this index. All-or-nothing:
  /// on a corrupt payload the index is left untouched.
  Status LoadState(BinaryReader* r);

 private:
  struct StagedOp {
    bool add = true;
    std::string left_iri;
    std::string right_iri;
  };

  /// Swaps `snapshot` in as the published view. Callers hold write_mu_.
  void Publish(std::shared_ptr<const LinkIndex> snapshot);

  /// Serializes stagers and committers; guards master_ and staged_.
  /// Ordering: write_mu_ may be held when taking publish_mu_, never the
  /// reverse.
  mutable std::mutex write_mu_;
  LinkIndex master_;
  std::vector<StagedOp> staged_;

  /// Guards only the published_ pointer swap/copy — held for a few
  /// instructions, so readers never wait behind a commit.
  mutable std::mutex publish_mu_;
  std::shared_ptr<const LinkIndex> published_;

  std::atomic<uint64_t> published_epoch_{0};
  std::atomic<uint64_t> commit_sequence_{0};
};

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_VERSIONED_LINK_INDEX_H_
