#include "federation/endpoint.h"

namespace alex::fed {

Endpoint::Endpoint(const rdf::Dataset* dataset) : dataset_(dataset) {
  for (rdf::TermId p : dataset_->source().DistinctPredicates()) {
    predicates_.insert(dataset_->dict().term(p).value);
  }
}

bool Endpoint::HasPredicate(const std::string& predicate_iri) const {
  return predicates_.count(predicate_iri) > 0;
}

bool Endpoint::CanAnswer(const sparql::TriplePatternAst& pattern) const {
  if (sparql::IsVariable(pattern.predicate)) return true;
  const rdf::Term& p = std::get<rdf::Term>(pattern.predicate);
  return p.is_iri() && HasPredicate(p.value);
}

Status Endpoint::Probe(const PatternProbe& probe, const CallOptions& /*opts*/,
                       const ProbeRowFn& fn) const {
  const rdf::Term* const comps[3] = {probe.subject, probe.predicate,
                                     probe.object};
  rdf::TriplePattern pattern;
  rdf::TermId* slots[3] = {&pattern.subject, &pattern.predicate,
                           &pattern.object};
  for (int i = 0; i < 3; ++i) {
    if (comps[i] == nullptr) continue;
    auto id = dataset_->dict().Lookup(*comps[i]);
    if (!id.has_value()) return Status::OK();  // Unknown term: no matches.
    *slots[i] = *id;
  }
  const rdf::Dictionary& dict = dataset_->dict();
  dataset_->source().ForEachMatch(pattern, [&](const rdf::Triple& t) {
    const rdf::Term* s = probe.subject ? nullptr : &dict.term(t.subject);
    const rdf::Term* p = probe.predicate ? nullptr : &dict.term(t.predicate);
    const rdf::Term* o = probe.object ? nullptr : &dict.term(t.object);
    return fn(s, p, o);
  });
  return Status::OK();
}

Result<sparql::QueryResult> Endpoint::Select(
    const sparql::SelectQuery& query) const {
  return sparql::Evaluate(query, *dataset_);
}

Result<bool> Endpoint::Ask(const sparql::SelectQuery& query) const {
  return sparql::Ask(query, *dataset_);
}

}  // namespace alex::fed
