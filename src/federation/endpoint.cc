#include "federation/endpoint.h"

namespace alex::fed {

Endpoint::Endpoint(const rdf::Dataset* dataset) : dataset_(dataset) {
  for (rdf::TermId p : dataset_->store().DistinctPredicates()) {
    predicates_.insert(dataset_->dict().term(p).value);
  }
}

bool Endpoint::HasPredicate(const std::string& predicate_iri) const {
  return predicates_.count(predicate_iri) > 0;
}

bool Endpoint::CanAnswer(const sparql::TriplePatternAst& pattern) const {
  if (sparql::IsVariable(pattern.predicate)) return true;
  const rdf::Term& p = std::get<rdf::Term>(pattern.predicate);
  return p.is_iri() && HasPredicate(p.value);
}

Result<sparql::QueryResult> Endpoint::Select(
    const sparql::SelectQuery& query) const {
  return sparql::Evaluate(query, *dataset_);
}

Result<bool> Endpoint::Ask(const sparql::SelectQuery& query) const {
  return sparql::Ask(query, *dataset_);
}

}  // namespace alex::fed
