#include "federation/link_index.h"

#include <algorithm>

namespace alex::fed {
namespace {

const std::vector<std::string>& EmptyVec() {
  static const auto* kEmpty = new std::vector<std::string>();
  return *kEmpty;
}

bool EraseValue(std::vector<std::string>* v, const std::string& value) {
  auto it = std::find(v->begin(), v->end(), value);
  if (it == v->end()) return false;
  v->erase(it);
  return true;
}

}  // namespace

bool LinkIndex::Add(const std::string& left_iri, const std::string& right_iri) {
  if (Contains(left_iri, right_iri)) return false;
  left_to_right_[left_iri].push_back(right_iri);
  right_to_left_[right_iri].push_back(left_iri);
  ++size_;
  return true;
}

bool LinkIndex::Remove(const std::string& left_iri,
                       const std::string& right_iri) {
  auto it = left_to_right_.find(left_iri);
  if (it == left_to_right_.end()) return false;
  if (!EraseValue(&it->second, right_iri)) return false;
  if (it->second.empty()) left_to_right_.erase(it);
  auto rit = right_to_left_.find(right_iri);
  if (rit != right_to_left_.end()) {
    EraseValue(&rit->second, left_iri);
    if (rit->second.empty()) right_to_left_.erase(rit);
  }
  --size_;
  return true;
}

bool LinkIndex::Contains(const std::string& left_iri,
                         const std::string& right_iri) const {
  auto it = left_to_right_.find(left_iri);
  if (it == left_to_right_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), right_iri) !=
         it->second.end();
}

const std::vector<std::string>& LinkIndex::RightsFor(
    const std::string& left_iri) const {
  auto it = left_to_right_.find(left_iri);
  return it == left_to_right_.end() ? EmptyVec() : it->second;
}

const std::vector<std::string>& LinkIndex::LeftsFor(
    const std::string& right_iri) const {
  auto it = right_to_left_.find(right_iri);
  return it == right_to_left_.end() ? EmptyVec() : it->second;
}

std::vector<SameAsLink> LinkIndex::AllLinks() const {
  std::vector<SameAsLink> out;
  out.reserve(size_);
  for (const auto& [left, rights] : left_to_right_) {
    for (const std::string& right : rights) {
      out.push_back(SameAsLink{left, right});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SameAsLink& a, const SameAsLink& b) {
              return std::tie(a.left_iri, a.right_iri) <
                     std::tie(b.left_iri, b.right_iri);
            });
  return out;
}

}  // namespace alex::fed
