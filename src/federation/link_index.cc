#include "federation/link_index.h"

#include <algorithm>

namespace alex::fed {
namespace {

const std::vector<std::string>& EmptyVec() {
  static const auto* kEmpty = new std::vector<std::string>();
  return *kEmpty;
}

const std::vector<LinkIndex::IriId>& EmptyIdVec() {
  static const auto* kEmpty = new std::vector<LinkIndex::IriId>();
  return *kEmpty;
}

template <typename T>
bool EraseValue(std::vector<T>* v, const T& value) {
  auto it = std::find(v->begin(), v->end(), value);
  if (it == v->end()) return false;
  v->erase(it);
  return true;
}

}  // namespace

LinkIndex::IriId LinkIndex::InternIri(const std::string& iri) {
  auto it = iri_ids_.find(iri);
  if (it != iri_ids_.end()) return it->second;
  const IriId id = static_cast<IriId>(iri_terms_.size());
  iri_terms_.push_back(rdf::Term::Iri(iri));
  iri_ids_.emplace(iri, id);
  return id;
}

bool LinkIndex::Add(const std::string& left_iri, const std::string& right_iri) {
  if (Contains(left_iri, right_iri)) return false;
  left_to_right_[left_iri].push_back(right_iri);
  right_to_left_[right_iri].push_back(left_iri);
  const IriId lid = InternIri(left_iri);
  const IriId rid = InternIri(right_iri);
  left_ids_[lid].push_back(rid);
  right_ids_[rid].push_back(lid);
  ++size_;
  ++epoch_;
  return true;
}

bool LinkIndex::Remove(const std::string& left_iri,
                       const std::string& right_iri) {
  auto it = left_to_right_.find(left_iri);
  if (it == left_to_right_.end()) return false;
  if (!EraseValue(&it->second, right_iri)) return false;
  if (it->second.empty()) left_to_right_.erase(it);
  auto rit = right_to_left_.find(right_iri);
  if (rit != right_to_left_.end()) {
    EraseValue(&rit->second, left_iri);
    if (rit->second.empty()) right_to_left_.erase(rit);
  }
  // Mirror in the id view (ids themselves are never retired).
  const IriId lid = IdOf(left_iri);
  const IriId rid = IdOf(right_iri);
  auto lit = left_ids_.find(lid);
  if (lit != left_ids_.end()) {
    EraseValue(&lit->second, rid);
    if (lit->second.empty()) left_ids_.erase(lit);
  }
  auto ridit = right_ids_.find(rid);
  if (ridit != right_ids_.end()) {
    EraseValue(&ridit->second, lid);
    if (ridit->second.empty()) right_ids_.erase(ridit);
  }
  --size_;
  ++epoch_;
  return true;
}

bool LinkIndex::Contains(const std::string& left_iri,
                         const std::string& right_iri) const {
  auto it = left_to_right_.find(left_iri);
  if (it == left_to_right_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), right_iri) !=
         it->second.end();
}

const std::vector<std::string>& LinkIndex::RightsFor(
    const std::string& left_iri) const {
  auto it = left_to_right_.find(left_iri);
  return it == left_to_right_.end() ? EmptyVec() : it->second;
}

const std::vector<std::string>& LinkIndex::LeftsFor(
    const std::string& right_iri) const {
  auto it = right_to_left_.find(right_iri);
  return it == right_to_left_.end() ? EmptyVec() : it->second;
}

LinkIndex::IriId LinkIndex::IdOf(const std::string& iri) const {
  auto it = iri_ids_.find(iri);
  return it == iri_ids_.end() ? kInvalidIriId : it->second;
}

const std::vector<LinkIndex::IriId>& LinkIndex::RightIdsFor(IriId left) const {
  auto it = left_ids_.find(left);
  return it == left_ids_.end() ? EmptyIdVec() : it->second;
}

const std::vector<LinkIndex::IriId>& LinkIndex::LeftIdsFor(IriId right) const {
  auto it = right_ids_.find(right);
  return it == right_ids_.end() ? EmptyIdVec() : it->second;
}

void LinkIndex::SaveState(BinaryWriter* w) const {
  // IRI table in id order fixes the interning; adjacency is then pure ids.
  w->WriteU64(iri_terms_.size());
  for (const rdf::Term& term : iri_terms_) w->WriteBytes(term.value);

  // Adjacency lists keyed by id, sorted by key for canonical bytes; the
  // vectors' element order is the co-referent enumeration order and is
  // preserved verbatim.
  auto write_adjacency =
      [w](const std::unordered_map<IriId, std::vector<IriId>>& adj) {
        std::vector<IriId> keys;
        keys.reserve(adj.size());
        for (const auto& [id, targets] : adj) keys.push_back(id);
        std::sort(keys.begin(), keys.end());
        w->WriteU64(keys.size());
        for (IriId id : keys) {
          const std::vector<IriId>& targets = adj.at(id);
          w->WriteU32(id);
          w->WriteU64(targets.size());
          for (IriId t : targets) w->WriteU32(t);
        }
      };
  write_adjacency(left_ids_);
  write_adjacency(right_ids_);
  w->WriteU64(epoch_);
  w->WriteU64(size_);
}

Status LinkIndex::LoadState(BinaryReader* r) {
  uint64_t num_iris = 0;
  ALEX_RETURN_NOT_OK(r->ReadU64(&num_iris));
  std::deque<rdf::Term> terms;
  std::unordered_map<std::string, IriId> ids;
  ids.reserve(num_iris);
  for (uint64_t i = 0; i < num_iris; ++i) {
    std::string iri;
    ALEX_RETURN_NOT_OK(r->ReadBytes(&iri));
    ids.emplace(iri, static_cast<IriId>(i));
    terms.push_back(rdf::Term::Iri(std::move(iri)));
  }

  auto read_adjacency =
      [r, num_iris](std::unordered_map<IriId, std::vector<IriId>>* adj,
                    uint64_t* edge_total) -> Status {
    uint64_t keys = 0;
    ALEX_RETURN_NOT_OK(r->ReadU64(&keys));
    adj->clear();
    adj->reserve(keys);
    for (uint64_t i = 0; i < keys; ++i) {
      uint32_t id = 0;
      ALEX_RETURN_NOT_OK(r->ReadU32(&id));
      if (id >= num_iris) {
        return Status::ParseError("link index: adjacency key id " +
                                  std::to_string(id) + " out of range");
      }
      uint64_t len = 0;
      ALEX_RETURN_NOT_OK(r->ReadU64(&len));
      std::vector<IriId>& targets = (*adj)[id];
      targets.resize(len);
      for (uint64_t j = 0; j < len; ++j) {
        ALEX_RETURN_NOT_OK(r->ReadU32(&targets[j]));
        if (targets[j] >= num_iris) {
          return Status::ParseError("link index: adjacency target id " +
                                    std::to_string(targets[j]) +
                                    " out of range");
        }
      }
      *edge_total += len;
    }
    return Status::OK();
  };
  std::unordered_map<IriId, std::vector<IriId>> left_ids, right_ids;
  uint64_t left_edges = 0, right_edges = 0;
  ALEX_RETURN_NOT_OK(read_adjacency(&left_ids, &left_edges));
  ALEX_RETURN_NOT_OK(read_adjacency(&right_ids, &right_edges));

  uint64_t epoch = 0, size = 0;
  ALEX_RETURN_NOT_OK(r->ReadU64(&epoch));
  ALEX_RETURN_NOT_OK(r->ReadU64(&size));
  if (left_edges != size || right_edges != size) {
    return Status::ParseError(
        "link index: edge counts disagree with recorded size");
  }

  // Rebuild the string views from the id views so the two stay mirrored.
  std::unordered_map<std::string, std::vector<std::string>> l2r, r2l;
  l2r.reserve(left_ids.size());
  r2l.reserve(right_ids.size());
  for (const auto& [lid, rights] : left_ids) {
    std::vector<std::string>& out = l2r[terms[lid].value];
    out.reserve(rights.size());
    for (IriId rid : rights) out.push_back(terms[rid].value);
  }
  for (const auto& [rid, lefts] : right_ids) {
    std::vector<std::string>& out = r2l[terms[rid].value];
    out.reserve(lefts.size());
    for (IriId lid : lefts) out.push_back(terms[lid].value);
  }

  left_to_right_ = std::move(l2r);
  right_to_left_ = std::move(r2l);
  iri_ids_ = std::move(ids);
  iri_terms_ = std::move(terms);
  left_ids_ = std::move(left_ids);
  right_ids_ = std::move(right_ids);
  epoch_ = epoch;
  size_ = static_cast<size_t>(size);
  return Status::OK();
}

std::vector<SameAsLink> LinkIndex::AllLinks() const {
  std::vector<SameAsLink> out;
  out.reserve(size_);
  for (const auto& [left, rights] : left_to_right_) {
    for (const std::string& right : rights) {
      out.push_back(SameAsLink{left, right});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SameAsLink& a, const SameAsLink& b) {
              return std::tie(a.left_iri, a.right_iri) <
                     std::tie(b.left_iri, b.right_iri);
            });
  return out;
}

}  // namespace alex::fed
