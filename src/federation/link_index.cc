#include "federation/link_index.h"

#include <algorithm>

namespace alex::fed {
namespace {

const std::vector<std::string>& EmptyVec() {
  static const auto* kEmpty = new std::vector<std::string>();
  return *kEmpty;
}

const std::vector<LinkIndex::IriId>& EmptyIdVec() {
  static const auto* kEmpty = new std::vector<LinkIndex::IriId>();
  return *kEmpty;
}

template <typename T>
bool EraseValue(std::vector<T>* v, const T& value) {
  auto it = std::find(v->begin(), v->end(), value);
  if (it == v->end()) return false;
  v->erase(it);
  return true;
}

}  // namespace

LinkIndex::IriId LinkIndex::InternIri(const std::string& iri) {
  auto it = iri_ids_.find(iri);
  if (it != iri_ids_.end()) return it->second;
  const IriId id = static_cast<IriId>(iri_terms_.size());
  iri_terms_.push_back(rdf::Term::Iri(iri));
  iri_ids_.emplace(iri, id);
  return id;
}

bool LinkIndex::Add(const std::string& left_iri, const std::string& right_iri) {
  if (Contains(left_iri, right_iri)) return false;
  left_to_right_[left_iri].push_back(right_iri);
  right_to_left_[right_iri].push_back(left_iri);
  const IriId lid = InternIri(left_iri);
  const IriId rid = InternIri(right_iri);
  left_ids_[lid].push_back(rid);
  right_ids_[rid].push_back(lid);
  ++size_;
  ++epoch_;
  return true;
}

bool LinkIndex::Remove(const std::string& left_iri,
                       const std::string& right_iri) {
  auto it = left_to_right_.find(left_iri);
  if (it == left_to_right_.end()) return false;
  if (!EraseValue(&it->second, right_iri)) return false;
  if (it->second.empty()) left_to_right_.erase(it);
  auto rit = right_to_left_.find(right_iri);
  if (rit != right_to_left_.end()) {
    EraseValue(&rit->second, left_iri);
    if (rit->second.empty()) right_to_left_.erase(rit);
  }
  // Mirror in the id view (ids themselves are never retired).
  const IriId lid = IdOf(left_iri);
  const IriId rid = IdOf(right_iri);
  auto lit = left_ids_.find(lid);
  if (lit != left_ids_.end()) {
    EraseValue(&lit->second, rid);
    if (lit->second.empty()) left_ids_.erase(lit);
  }
  auto ridit = right_ids_.find(rid);
  if (ridit != right_ids_.end()) {
    EraseValue(&ridit->second, lid);
    if (ridit->second.empty()) right_ids_.erase(ridit);
  }
  --size_;
  ++epoch_;
  return true;
}

bool LinkIndex::Contains(const std::string& left_iri,
                         const std::string& right_iri) const {
  auto it = left_to_right_.find(left_iri);
  if (it == left_to_right_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), right_iri) !=
         it->second.end();
}

const std::vector<std::string>& LinkIndex::RightsFor(
    const std::string& left_iri) const {
  auto it = left_to_right_.find(left_iri);
  return it == left_to_right_.end() ? EmptyVec() : it->second;
}

const std::vector<std::string>& LinkIndex::LeftsFor(
    const std::string& right_iri) const {
  auto it = right_to_left_.find(right_iri);
  return it == right_to_left_.end() ? EmptyVec() : it->second;
}

LinkIndex::IriId LinkIndex::IdOf(const std::string& iri) const {
  auto it = iri_ids_.find(iri);
  return it == iri_ids_.end() ? kInvalidIriId : it->second;
}

const std::vector<LinkIndex::IriId>& LinkIndex::RightIdsFor(IriId left) const {
  auto it = left_ids_.find(left);
  return it == left_ids_.end() ? EmptyIdVec() : it->second;
}

const std::vector<LinkIndex::IriId>& LinkIndex::LeftIdsFor(IriId right) const {
  auto it = right_ids_.find(right);
  return it == right_ids_.end() ? EmptyIdVec() : it->second;
}

std::vector<SameAsLink> LinkIndex::AllLinks() const {
  std::vector<SameAsLink> out;
  out.reserve(size_);
  for (const auto& [left, rights] : left_to_right_) {
    for (const std::string& right : rights) {
      out.push_back(SameAsLink{left, right});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SameAsLink& a, const SameAsLink& b) {
              return std::tie(a.left_iri, a.right_iri) <
                     std::tie(b.left_iri, b.right_iri);
            });
  return out;
}

}  // namespace alex::fed
