#include "federation/resilient_endpoint.h"

#include <algorithm>
#include <string_view>

#include "obs/metrics.h"
#include "obs/query_stats.h"
#include "obs/trace.h"

namespace alex::fed {
namespace {

struct ResilienceMetrics {
  obs::Counter& retries =
      obs::MetricsRegistry::Global().counter("fed.retries");
  obs::Counter& timeouts =
      obs::MetricsRegistry::Global().counter("fed.timeouts");
  obs::Counter& breaker_open =
      obs::MetricsRegistry::Global().counter("fed.breaker_open");
  obs::Counter& breaker_trips =
      obs::MetricsRegistry::Global().counter("fed.breaker_trips");
  obs::Histogram& attempt_seconds =
      obs::MetricsRegistry::Global().histogram("fed.attempt_seconds");

  static ResilienceMetrics& Get() {
    static ResilienceMetrics* metrics = new ResilienceMetrics();
    return *metrics;
  }
};

}  // namespace

ResilientEndpoint::ResilientEndpoint(const QueryEndpoint* inner,
                                     RetryPolicy retry,
                                     CircuitBreakerConfig breaker,
                                     uint64_t seed, Clock* clock)
    : inner_(inner),
      retry_(retry),
      breaker_(breaker, clock),
      rng_(seed),
      clock_(clock) {}

Status ResilientEndpoint::Probe(const PatternProbe& probe,
                                const CallOptions& opts,
                                const ProbeRowFn& fn) const {
  ResilienceMetrics& metrics = ResilienceMetrics::Get();
  const int max_attempts = std::max(retry_.max_attempts, 1);
  Status last = Status::Unavailable(name() + ": no attempt made");
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    const double now = clock_->NowSeconds();
    if (now >= opts.deadline_seconds) {
      return Status::DeadlineExceeded(name() + ": query deadline exhausted");
    }
    if (!breaker_.AllowCall()) {
      metrics.breaker_open.Add(1);
      if (obs::ActiveQueryStats* stats = obs::CurrentQueryStats()) {
        ++stats->breaker_rejections;
      }
      // Zero-duration span: in the trace a breaker rejection shows up as an
      // instant child of the probe, with no attempt underneath it.
      ALEX_TRACE_SPAN_VAR(reject_span, "federation", "breaker_reject");
      reject_span.AddArg("endpoint", std::string_view(name()));
      reject_span.AddArg("attempt", attempt);
      return Status::Unavailable(name() + ": circuit breaker open");
    }
    CallOptions attempt_opts = opts;
    attempt_opts.timeout_seconds = std::min(
        retry_.attempt_timeout_seconds, opts.deadline_seconds - now);

    size_t rows_streamed = 0;
    auto counting_fn = [&](const rdf::Term* s, const rdf::Term* p,
                           const rdf::Term* o) {
      ++rows_streamed;
      return fn(s, p, o);
    };
    Status st;
    {
      // Each attempt is its own child span, so a retried probe shows its
      // attempts side by side under the pattern_probe span.
      ALEX_TRACE_SPAN_VAR(attempt_span, "federation", "probe_attempt");
      attempt_span.AddArg("endpoint", std::string_view(name()));
      attempt_span.AddArg("attempt", attempt);
      st = inner_->Probe(probe, attempt_opts, counting_fn);
      attempt_span.AddArg("ok", st.ok());
    }
    metrics.attempt_seconds.Observe(clock_->NowSeconds() - now);

    if (st.ok()) {
      breaker_.RecordSuccess();
      return st;
    }
    // RecordFailure reports whether THIS failure tripped the breaker; under
    // concurrency a before/after times_opened() diff could attribute one
    // trip to several threads (or another thread's trip to this one).
    if (breaker_.RecordFailure()) metrics.breaker_trips.Add(1);
    if (st.code() == StatusCode::kDeadlineExceeded) metrics.timeouts.Add(1);
    last = st;
    if (rows_streamed > 0) return st;  // Mid-stream failure: never replay.
    if (attempt == max_attempts) return st;
    double backoff = 0.0;
    {
      // Draw jitter under the Rng lock; the (possibly long) backoff sleep
      // happens after release, so concurrent probes never serialize on it.
      std::lock_guard<std::mutex> lock(rng_mu_);
      backoff = retry_.BackoffSeconds(attempt, &rng_);
    }
    if (clock_->NowSeconds() + backoff >= opts.deadline_seconds) return st;
    clock_->SleepSeconds(backoff);
    metrics.retries.Add(1);
    if (obs::ActiveQueryStats* stats = obs::CurrentQueryStats()) {
      ++stats->retries;
    }
  }
  return last;
}

}  // namespace alex::fed
