#ifndef ALEX_FEDERATION_CIRCUIT_BREAKER_H_
#define ALEX_FEDERATION_CIRCUIT_BREAKER_H_

#include <cstddef>
#include <deque>

#include "common/clock.h"

namespace alex::fed {

/// Tuning of one per-endpoint circuit breaker.
struct CircuitBreakerConfig {
  /// Rolling window of recent call outcomes the failure rate is computed
  /// over (oldest outcomes fall off).
  size_t window = 16;
  /// Outcomes required in the window before the breaker may trip, so a
  /// single early failure is not a 100% failure rate.
  size_t min_calls = 4;
  /// Trip open when failures/window >= this.
  double failure_rate_threshold = 0.5;
  /// Time spent open before one half-open probe is admitted.
  double cooldown_seconds = 2.0;
};

/// Classic closed / open / half-open circuit breaker over a rolling outcome
/// window (the Nygard "Release It!" state machine):
///
///   closed ──(failure rate over window >= threshold)──> open
///   open ──(cooldown elapsed; admit ONE probe)──> half-open
///   half-open ──(probe succeeds)──> closed (window cleared)
///   half-open ──(probe fails)──> open (cooldown restarts)
///
/// While open, AllowCall() rejects instantly, converting a struggling
/// endpoint's timeout storms into fast local failures. Time comes from the
/// injected Clock, so tests and benches drive the cooldown virtually.
/// Thread-compatible: callers serialize access (one query thread).
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  /// `clock` is borrowed and must outlive the breaker.
  CircuitBreaker(const CircuitBreakerConfig& config, const Clock* clock)
      : config_(config), clock_(clock) {}

  /// Admission check before each remote call. May transition open ->
  /// half-open when the cooldown has elapsed. Returns false when the call
  /// must be rejected locally.
  bool AllowCall();

  void RecordSuccess();
  void RecordFailure();

  State state() const { return state_; }

  /// Number of closed/half-open -> open transitions so far.
  size_t times_opened() const { return times_opened_; }

 private:
  void RecordOutcome(bool failure);
  void TripOpen();

  CircuitBreakerConfig config_;
  const Clock* clock_;
  State state_ = State::kClosed;
  std::deque<bool> outcomes_;  // true = failure; bounded by config_.window.
  size_t failures_in_window_ = 0;
  double opened_at_ = 0.0;
  bool half_open_probe_in_flight_ = false;
  size_t times_opened_ = 0;
};

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_CIRCUIT_BREAKER_H_
