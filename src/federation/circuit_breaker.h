#ifndef ALEX_FEDERATION_CIRCUIT_BREAKER_H_
#define ALEX_FEDERATION_CIRCUIT_BREAKER_H_

#include <cstddef>
#include <deque>
#include <mutex>

#include "common/clock.h"

namespace alex::fed {

/// Tuning of one per-endpoint circuit breaker.
struct CircuitBreakerConfig {
  /// Rolling window of recent call outcomes the failure rate is computed
  /// over (oldest outcomes fall off).
  size_t window = 16;
  /// Outcomes required in the window before the breaker may trip, so a
  /// single early failure is not a 100% failure rate.
  size_t min_calls = 4;
  /// Trip open when failures/window >= this.
  double failure_rate_threshold = 0.5;
  /// Time spent open before one half-open probe is admitted.
  double cooldown_seconds = 2.0;
};

/// Classic closed / open / half-open circuit breaker over a rolling outcome
/// window (the Nygard "Release It!" state machine):
///
///   closed ──(failure rate over window >= threshold)──> open
///   open ──(cooldown elapsed; admit ONE probe)──> half-open
///   half-open ──(probe succeeds)──> closed (window cleared)
///   half-open ──(probe fails)──> open (cooldown restarts)
///
/// While open, AllowCall() rejects instantly, converting a struggling
/// endpoint's timeout storms into fast local failures. Time comes from the
/// injected Clock, so tests and benches drive the cooldown virtually.
///
/// Thread-safe: one breaker may front an endpoint shared by concurrent
/// client threads (the link-service shared stack). Every transition runs
/// under an internal mutex, so the rolling window, the single half-open
/// probe slot, and the trip counter stay consistent under contention; the
/// lock is never held across a remote call.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  /// `clock` is borrowed and must outlive the breaker.
  CircuitBreaker(const CircuitBreakerConfig& config, const Clock* clock)
      : config_(config), clock_(clock) {}

  /// Admission check before each remote call. May transition open ->
  /// half-open when the cooldown has elapsed. Returns false when the call
  /// must be rejected locally.
  bool AllowCall();

  void RecordSuccess();

  /// Records one failed call. Returns true when THIS outcome tripped the
  /// breaker open (closed->open or half-open->open), so concurrent callers
  /// can attribute a trip exactly once instead of diffing times_opened()
  /// around the call.
  bool RecordFailure();

  State state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }

  /// Number of closed/half-open -> open transitions so far.
  size_t times_opened() const {
    std::lock_guard<std::mutex> lock(mu_);
    return times_opened_;
  }

 private:
  /// Callers hold mu_.
  void RecordOutcomeLocked(bool failure);
  void TripOpenLocked();

  CircuitBreakerConfig config_;
  const Clock* clock_;

  mutable std::mutex mu_;
  State state_ = State::kClosed;
  std::deque<bool> outcomes_;  // true = failure; bounded by config_.window.
  size_t failures_in_window_ = 0;
  double opened_at_ = 0.0;
  bool half_open_probe_in_flight_ = false;
  size_t times_opened_ = 0;
};

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_CIRCUIT_BREAKER_H_
