#include "federation/circuit_breaker.h"

#include "obs/trace.h"

namespace alex::fed {
namespace {

/// Zero-duration marker span: breaker state transitions show up as instants
/// inside whichever query tripped (or recovered) the breaker, carrying the
/// query's trace id through the ambient context. Emitted while mu_ is held
/// — safe, since the recorder only touches the calling thread's ring buffer
/// and takes no lock another breaker caller could hold.
void TraceTransition(const char* name) {
#ifdef ALEX_TRACING_ENABLED
  obs::TraceSpan span("federation", name);
  (void)span;
#else
  (void)name;
#endif
}

}  // namespace

bool CircuitBreaker::AllowCall() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (clock_->NowSeconds() - opened_at_ >= config_.cooldown_seconds) {
        state_ = State::kHalfOpen;
        half_open_probe_in_flight_ = true;
        TraceTransition("breaker_half_open");
        return true;
      }
      return false;
    case State::kHalfOpen:
      // One probe at a time; reject until its outcome is recorded.
      if (half_open_probe_in_flight_) return false;
      half_open_probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    // Recovery confirmed: forget the failure history.
    state_ = State::kClosed;
    half_open_probe_in_flight_ = false;
    outcomes_.clear();
    failures_in_window_ = 0;
    TraceTransition("breaker_close");
    return;
  }
  RecordOutcomeLocked(/*failure=*/false);
}

bool CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kHalfOpen) {
    half_open_probe_in_flight_ = false;
    TripOpenLocked();
    return true;
  }
  RecordOutcomeLocked(/*failure=*/true);
  if (state_ == State::kClosed && outcomes_.size() >= config_.min_calls) {
    const double rate = static_cast<double>(failures_in_window_) /
                        static_cast<double>(outcomes_.size());
    if (rate >= config_.failure_rate_threshold) {
      TripOpenLocked();
      return true;
    }
  }
  return false;
}

void CircuitBreaker::RecordOutcomeLocked(bool failure) {
  outcomes_.push_back(failure);
  if (failure) ++failures_in_window_;
  while (outcomes_.size() > config_.window) {
    if (outcomes_.front()) --failures_in_window_;
    outcomes_.pop_front();
  }
}

void CircuitBreaker::TripOpenLocked() {
  state_ = State::kOpen;
  opened_at_ = clock_->NowSeconds();
  ++times_opened_;
  TraceTransition("breaker_trip");
}

}  // namespace alex::fed
