#ifndef ALEX_FEDERATION_PROBE_CACHE_H_
#define ALEX_FEDERATION_PROBE_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "federation/endpoint.h"
#include "rdf/dictionary.h"

namespace alex::fed {

/// Tuning knobs for CachingEndpoint.
struct ProbeCacheConfig {
  /// LRU bound on cached probe results.
  size_t max_entries = 4096;
  /// Probes streaming more rows than this are not cached (a probe result is
  /// replayed whole, so unbounded entries would pin unbounded memory).
  size_t max_rows_per_entry = 4096;
  /// All-wildcard probes scan the entire remote store; by default they pass
  /// through uncached.
  bool cache_unbounded_probes = false;
};

/// Caching decorator over any QueryEndpoint: memoizes complete, successful
/// probe results keyed by the dictionary-encoded pattern triple, so the
/// bound joins of a federated workload stop re-asking the (simulated)
/// remote endpoint the same triple-pattern question.
///
/// Placement: outermost in the decorator stack
/// (`CachingEndpoint -> ResilientEndpoint -> FaultInjectedEndpoint ->
/// Endpoint`), so a hit skips the whole retry/latency ladder.
///
/// What is never cached — this is what preserves the fault-tolerance
/// semantics of the undecorated stack bit-for-bit:
///  - failed probes (any non-OK status, including deadline-truncated ones):
///    the next probe retries the endpoint for real;
///  - streams the caller cut short (row callback returned false): the
///    cached entry would be missing rows;
///  - results larger than `max_rows_per_entry`.
/// A cold cache therefore forwards exactly the probe sequence the inner
/// stack would have seen without it.
///
/// Invalidation is epoch-based: construct with an `EpochFn` (typically
/// `[&links] { return links.epoch(); }` over the LinkIndex ALEX mutates, or
/// a composite that also counts dataset mutations). Whenever the epoch
/// changes between probes the whole cache is dropped, so feedback applied
/// between episodes is visible to the very next query. `Flush()` is the
/// manual hook for mutations with no epoch source.
///
/// Thread-safe: lookups/inserts are mutex-guarded, and the lock is never
/// held while rows stream through callbacks (probes re-enter recursively
/// during bound joins), so parallel workload threads can share one cache.
///
/// Metrics: fed.probe_cache_hits / fed.probe_cache_misses /
/// fed.probe_cache_evictions.
class CachingEndpoint final : public QueryEndpoint {
 public:
  using EpochFn = std::function<uint64_t()>;

  /// `inner` is borrowed and must outlive the wrapper. `epoch` may be null
  /// (cache never auto-invalidates; use Flush()).
  explicit CachingEndpoint(const QueryEndpoint* inner,
                           ProbeCacheConfig config = ProbeCacheConfig(),
                           EpochFn epoch = nullptr);

  const std::string& name() const override { return inner_->name(); }

  bool CanAnswer(const sparql::TriplePatternAst& pattern) const override {
    return inner_->CanAnswer(pattern);
  }

  Status Probe(const PatternProbe& probe, const CallOptions& opts,
               const ProbeRowFn& fn) const override;

  /// Drops every cached entry.
  void Flush();

  size_t size() const;
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

 private:
  /// Dictionary-encoded probe shape: ids of the bound terms,
  /// rdf::kInvalidTermId for wildcards.
  struct Key {
    rdf::TermId s = rdf::kInvalidTermId;
    rdf::TermId p = rdf::kInvalidTermId;
    rdf::TermId o = rdf::kInvalidTermId;
    bool operator==(const Key& other) const {
      return s == other.s && p == other.p && o == other.o;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = 1469598103934665603ull;
      for (uint64_t v : {uint64_t{k.s}, uint64_t{k.p}, uint64_t{k.o}}) {
        h = (h ^ v) * 1099511628211ull;
      }
      return static_cast<size_t>(h);
    }
  };

  /// One cached row: terms for the slots that were unbound in the probe
  /// (bound slots replay as nullptr, matching the ProbeRowFn contract).
  struct CachedRow {
    std::optional<rdf::Term> terms[3];
  };
  using Rows = std::shared_ptr<const std::vector<CachedRow>>;

  struct Entry {
    Key key;
    Rows rows;
  };

  Key MakeKeyLocked(const PatternProbe& probe) const;
  void FlushLocked() const;
  void InsertLocked(const Key& key, Rows rows) const;

  const QueryEndpoint* inner_;
  ProbeCacheConfig config_;
  EpochFn epoch_fn_;

  mutable std::mutex mu_;
  mutable uint64_t last_epoch_ = 0;
  mutable std::list<Entry> lru_;  // Front = most recently used.
  mutable std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map_;
  mutable rdf::Dictionary key_dict_;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
  mutable uint64_t evictions_ = 0;
};

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_PROBE_CACHE_H_
