#ifndef ALEX_FEDERATION_COMPILED_QUERY_H_
#define ALEX_FEDERATION_COMPILED_QUERY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "rdf/term.h"
#include "sparql/ast.h"

namespace alex::fed {

/// A federated SELECT query compiled once and executable many times.
///
/// Compilation does everything that depends only on the query text, so the
/// per-execution hot path never touches strings:
///  - validation (no OPTIONAL/UNION; projected variables mentioned),
///  - greedy boundness ordering of the triple patterns (identical to the
///    order the legacy string path computes per execution),
///  - variable -> dense slot resolution: every variable becomes an index
///    into a flat slot array, so execution frames are `const Term*[slots]`
///    instead of string-keyed maps,
///  - per-slot filter lists, so checking the filters of a just-bound
///    variable no longer scans every FILTER of the query,
///  - projection slots and the ORDER BY column.
///
/// A CompiledQuery is immutable after Compile and holds no endpoint state,
/// so one plan is reusable across runs, engines, and endpoint stacks
/// (including concurrently: execution keeps all mutable state per call).
class CompiledQuery {
 public:
  /// One triple-pattern component: exactly one of `slot` (variable) or
  /// `constant` (index into constants()) is >= 0.
  struct Component {
    int32_t slot = -1;
    int32_t constant = -1;

    bool is_variable() const { return slot >= 0; }
  };

  /// One pattern in execution (greedy boundness) order. `where_index`
  /// points back at the source AST pattern, which source selection
  /// (QueryEndpoint::CanAnswer) still consumes.
  struct Pattern {
    Component comp[3];  // subject, predicate, object
    size_t where_index = 0;
  };

  /// Compiles a parsed query. Returns the same InvalidArgument statuses the
  /// legacy execution path produces for unsupported/ill-formed queries
  /// (OPTIONAL/UNION, unknown projected variable). An ORDER BY variable
  /// missing from the result is *not* a compile error — the legacy path
  /// reports it only after enumeration, and execution mirrors that.
  static Result<CompiledQuery> Compile(const sparql::SelectQuery& query);

  /// Parses and compiles.
  static Result<CompiledQuery> CompileText(std::string_view query_text);

  /// The source query (owned copy; `Pattern::where_index` indexes into
  /// query().where).
  const sparql::SelectQuery& query() const { return query_; }

  /// Result column names (projection, or all mentioned variables).
  const std::vector<std::string>& variables() const { return variables_; }

  /// Number of variable slots (== MentionedVariables().size()).
  size_t num_slots() const { return slot_names_.size(); }
  const std::vector<std::string>& slot_names() const { return slot_names_; }

  /// Patterns in execution order.
  const std::vector<Pattern>& patterns() const { return patterns_; }

  /// Constant pool referenced by Component::constant.
  const rdf::Term& constant(int32_t index) const {
    return constants_[static_cast<size_t>(index)];
  }

  /// Filters guarding one slot (possibly empty). Checked when the slot
  /// binds, in query order — the same order and semantics as the legacy
  /// scan over all filters.
  const std::vector<sparql::FilterAst>& filters_for_slot(size_t slot) const {
    return filters_by_slot_[slot];
  }

  /// Slot of each result column, or -1 for a column that can never bind
  /// (keeps the legacy empty-literal padding behavior).
  const std::vector<int32_t>& projection_slots() const {
    return projection_slots_;
  }

  bool distinct() const { return query_.distinct; }
  const std::optional<size_t>& limit() const { return query_.limit; }

  bool has_order_by() const { return query_.order_by.has_value(); }
  /// False when ORDER BY names a variable outside the result; execution
  /// then fails after enumeration, exactly like the legacy path.
  bool order_by_valid() const { return order_col_ >= 0; }
  size_t order_col() const { return static_cast<size_t>(order_col_); }
  bool order_descending() const {
    return query_.order_by.has_value() && query_.order_by->descending;
  }

 private:
  CompiledQuery() = default;

  sparql::SelectQuery query_;
  std::vector<std::string> slot_names_;
  std::vector<std::string> variables_;
  std::vector<Pattern> patterns_;
  std::vector<rdf::Term> constants_;
  std::vector<std::vector<sparql::FilterAst>> filters_by_slot_;
  std::vector<int32_t> projection_slots_;
  int32_t order_col_ = -1;
};

/// Thread-safe memo of query text -> compiled plan, so a workload that
/// replays the same query strings (the simulation workloads, the benches,
/// any caller routing traffic through ExecuteText) compiles each distinct
/// query exactly once.
///
/// Metrics: fed.plan_cache_hits counts memo hits; compile time lands in the
/// fed.plan_compile_seconds histogram (recorded by Compile itself).
class PlanCache {
 public:
  /// `max_entries` bounds the memo; on overflow the whole memo is dropped
  /// (workloads have a bounded set of distinct query strings, so this is a
  /// safety valve, not a tuning knob).
  explicit PlanCache(size_t max_entries = 4096) : max_entries_(max_entries) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached plan for `query_text`, compiling (and caching) on
  /// first sight. Compile errors are returned and never cached.
  Result<std::shared_ptr<const CompiledQuery>> GetOrCompile(
      std::string_view query_text);

  size_t size() const;

 private:
  mutable std::mutex mu_;
  size_t max_entries_;
  std::unordered_map<std::string, std::shared_ptr<const CompiledQuery>>
      plans_;
};

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_COMPILED_QUERY_H_
