#ifndef ALEX_FEDERATION_FAULT_INJECTION_H_
#define ALEX_FEDERATION_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/rng.h"
#include "federation/endpoint.h"

namespace alex::fed {

/// "Never" / "forever" sentinel for call-count windows.
inline constexpr size_t kNoOutage = SIZE_MAX;

/// How one simulated remote endpoint misbehaves. Live LOD endpoints time
/// out, throttle, and disappear mid-query (Umbrich et al., PAPERS.md); this
/// profile reproduces those modes deterministically: every draw comes from
/// a seeded Rng and all "time" flows through the injected virtual Clock, so
/// a scenario is bit-for-bit reproducible and sleeps nothing in tests.
struct FaultProfile {
  std::string name = "healthy";

  /// Latency added to every call: base plus a uniform draw in [0, jitter).
  double base_latency_seconds = 0.0;
  double latency_jitter_seconds = 0.0;

  /// Probability a call fails transiently (kUnavailable) after its latency
  /// has elapsed — a 5xx/throttle-style error worth retrying.
  double error_rate = 0.0;

  /// Probability a call stalls: it hangs for `stall_seconds` (or until the
  /// caller's per-attempt timeout fires, whichever is sooner) and fails
  /// with kDeadlineExceeded.
  double stall_rate = 0.0;
  double stall_seconds = 30.0;

  /// Hard outage window, in call ordinals (0-based): calls in
  /// [down_after_calls, down_after_calls + down_for_calls) fail fast with
  /// kUnavailable. down_for_calls = kNoOutage means never recovers.
  size_t down_after_calls = kNoOutage;
  size_t down_for_calls = kNoOutage;
  /// Latency of a refused connection during an outage.
  double down_latency_seconds = 0.001;

  /// A perfect endpoint (the default profile).
  static FaultProfile Healthy();
  /// High, jittery latency; no errors. Exercises timeouts and deadlines.
  static FaultProfile Slow();
  /// Moderate latency plus transient errors and occasional stalls.
  /// Exercises retries and, under sustained pressure, the breaker.
  static FaultProfile Flaky();
  /// Hard outage from the first call, never recovers.
  static FaultProfile Down();
  /// Hard outage for the first `calls` calls, healthy afterwards.
  /// Exercises breaker re-close after recovery.
  static FaultProfile DownFor(size_t calls);
};

/// Deterministic fault-injection wrapper over any QueryEndpoint. Latency
/// advances the virtual clock; failures are drawn from the seeded Rng
/// before any inner data flows, so a failed probe never leaks rows and a
/// retried attempt starts clean.
///
/// Thread-safe draws: the call ordinal and every Rng draw for one probe are
/// taken atomically under an internal mutex (in the exact order and under
/// the exact conditions of the single-threaded path, so seeded sequences
/// are unchanged), then the lock is released before any sleeping or inner
/// probing. Concurrent probes interleave their draws in a nondeterministic
/// order — fault scheduling under real concurrency is inherently racy — but
/// each draw is data-race-free, which is what the shared-stack TSan tests
/// need. Single-threaded use stays bit-for-bit deterministic.
class FaultInjectedEndpoint final : public QueryEndpoint {
 public:
  /// `inner` and `clock` are borrowed and must outlive the wrapper.
  FaultInjectedEndpoint(const QueryEndpoint* inner, FaultProfile profile,
                        uint64_t seed, Clock* clock);

  const std::string& name() const override { return inner_->name(); }

  /// Source selection is catalog metadata, not a remote call: unaffected.
  bool CanAnswer(const sparql::TriplePatternAst& pattern) const override {
    return inner_->CanAnswer(pattern);
  }

  Status Probe(const PatternProbe& probe, const CallOptions& opts,
               const ProbeRowFn& fn) const override;

  /// Calls attempted so far (including failed ones).
  size_t calls() const {
    std::lock_guard<std::mutex> lock(mu_);
    return calls_;
  }

 private:
  const QueryEndpoint* inner_;
  FaultProfile profile_;
  Clock* clock_;
  /// Guards rng_ and calls_; never held across sleeps or the inner probe.
  mutable std::mutex mu_;
  mutable Rng rng_;
  mutable size_t calls_ = 0;
};

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_FAULT_INJECTION_H_
