#ifndef ALEX_FEDERATION_ENDPOINT_H_
#define ALEX_FEDERATION_ENDPOINT_H_

#include <string>
#include <unordered_set>

#include "common/result.h"
#include "rdf/dataset.h"
#include "sparql/ast.h"
#include "sparql/evaluator.h"

namespace alex::fed {

/// Wraps one Dataset as a queryable federation member (the role a remote
/// SPARQL endpoint plays for FedX in the paper).
///
/// Source selection uses predicate membership, the same signal FedX obtains
/// with SPARQL ASK probes: a triple pattern is routed to an endpoint only if
/// the endpoint can possibly answer it.
class Endpoint {
 public:
  /// Does not take ownership; `dataset` must outlive the endpoint.
  explicit Endpoint(const rdf::Dataset* dataset);

  const std::string& name() const { return dataset_->name(); }
  const rdf::Dataset& dataset() const { return *dataset_; }

  /// True if any triple uses this predicate IRI (ASK-style probe).
  bool HasPredicate(const std::string& predicate_iri) const;

  /// True if the pattern could match here (constant predicate present, or
  /// variable predicate).
  bool CanAnswer(const sparql::TriplePatternAst& pattern) const;

  /// Runs a full SELECT query against this endpoint alone.
  Result<sparql::QueryResult> Select(const sparql::SelectQuery& query) const;

  /// SPARQL ASK against this endpoint alone: true if any solution exists.
  Result<bool> Ask(const sparql::SelectQuery& query) const;

 private:
  const rdf::Dataset* dataset_;
  std::unordered_set<std::string> predicates_;
};

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_ENDPOINT_H_
