#ifndef ALEX_FEDERATION_ENDPOINT_H_
#define ALEX_FEDERATION_ENDPOINT_H_

#include <functional>
#include <string>
#include <unordered_set>

#include "common/result.h"
#include "common/retry.h"
#include "rdf/dataset.h"
#include "sparql/ast.h"
#include "sparql/evaluator.h"

namespace alex::fed {

/// One concrete triple-pattern probe — the remote-call unit of federated
/// execution (one bound-join step at one endpoint). Bound components point
/// at terms owned by the caller (valid for the duration of the call);
/// nullptr marks a wildcard.
struct PatternProbe {
  const rdf::Term* subject = nullptr;
  const rdf::Term* predicate = nullptr;
  const rdf::Term* object = nullptr;
};

/// Per-call budgets, in (virtual) seconds. `timeout_seconds` is the
/// relative budget of a single attempt; `deadline_seconds` is an absolute
/// clock reading bounding the whole query (see Clock). Both default to
/// unbounded, which every layer treats as "no limit".
struct CallOptions {
  double timeout_seconds = kNoTimeout;
  double deadline_seconds = kNoTimeout;
};

/// Receives one match of a probe. Slots that were bound in the probe are
/// null (the caller already holds those terms); unbound slots point at the
/// endpoint's term for that component, valid only during the call. Return
/// false to stop enumeration early.
using ProbeRowFn = std::function<bool(
    const rdf::Term* s, const rdf::Term* p, const rdf::Term* o)>;

/// A federation member as the engine sees it: source-selection metadata
/// plus a fallible, budgeted triple-pattern probe. The in-process Endpoint
/// below never fails; FaultInjectedEndpoint simulates unreliable remote
/// endpoints and ResilientEndpoint adds retry/backoff and circuit breaking
/// — all behind this interface, so the engine is oblivious to the stack.
class QueryEndpoint {
 public:
  virtual ~QueryEndpoint() = default;

  virtual const std::string& name() const = 0;

  /// True if the pattern could match here (constant predicate present, or
  /// variable predicate). Catalog metadata, not a remote call: source
  /// selection stays infallible even when probing is faulty.
  virtual bool CanAnswer(const sparql::TriplePatternAst& pattern) const = 0;

  /// Streams every match of `probe` through `fn`. Returns non-OK when the
  /// endpoint (or its simulated transport) fails; a probe mentioning terms
  /// unknown to this endpoint is OK with zero matches.
  virtual Status Probe(const PatternProbe& probe, const CallOptions& opts,
                       const ProbeRowFn& fn) const = 0;
};

/// Wraps one Dataset as a queryable federation member (the role a remote
/// SPARQL endpoint plays for FedX in the paper).
///
/// Source selection uses predicate membership, the same signal FedX obtains
/// with SPARQL ASK probes: a triple pattern is routed to an endpoint only if
/// the endpoint can possibly answer it.
class Endpoint final : public QueryEndpoint {
 public:
  /// Does not take ownership; `dataset` must outlive the endpoint.
  explicit Endpoint(const rdf::Dataset* dataset);

  const std::string& name() const override { return dataset_->name(); }
  const rdf::Dataset& dataset() const { return *dataset_; }

  /// True if any triple uses this predicate IRI (ASK-style probe).
  bool HasPredicate(const std::string& predicate_iri) const;

  bool CanAnswer(const sparql::TriplePatternAst& pattern) const override;

  /// In-process probe: dictionary lookups plus an index scan. Always OK;
  /// `opts` budgets are irrelevant at in-process speeds.
  Status Probe(const PatternProbe& probe, const CallOptions& opts,
               const ProbeRowFn& fn) const override;

  /// Runs a full SELECT query against this endpoint alone.
  Result<sparql::QueryResult> Select(const sparql::SelectQuery& query) const;

  /// SPARQL ASK against this endpoint alone: true if any solution exists.
  Result<bool> Ask(const sparql::SelectQuery& query) const;

 private:
  const rdf::Dataset* dataset_;
  std::unordered_set<std::string> predicates_;
};

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_ENDPOINT_H_
