#include "federation/probe_cache.h"

#include <string_view>
#include <utility>

#include "obs/metrics.h"
#include "obs/query_stats.h"
#include "obs/trace.h"

namespace alex::fed {
namespace {

obs::Counter& HitsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("fed.probe_cache_hits");
  return c;
}
obs::Counter& MissesCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("fed.probe_cache_misses");
  return c;
}
obs::Counter& EvictionsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Global().counter("fed.probe_cache_evictions");
  return c;
}

}  // namespace

CachingEndpoint::CachingEndpoint(const QueryEndpoint* inner,
                                 ProbeCacheConfig config, EpochFn epoch)
    : inner_(inner), config_(config), epoch_fn_(std::move(epoch)) {
  if (epoch_fn_) last_epoch_ = epoch_fn_();
}

CachingEndpoint::Key CachingEndpoint::MakeKeyLocked(
    const PatternProbe& probe) const {
  Key key;
  if (probe.subject != nullptr) key.s = key_dict_.Intern(*probe.subject);
  if (probe.predicate != nullptr) key.p = key_dict_.Intern(*probe.predicate);
  if (probe.object != nullptr) key.o = key_dict_.Intern(*probe.object);
  return key;
}

void CachingEndpoint::FlushLocked() const {
  lru_.clear();
  map_.clear();
}

void CachingEndpoint::InsertLocked(const Key& key, Rows rows) const {
  auto it = map_.find(key);
  if (it != map_.end()) {
    // A racing thread cached this key first; refresh the value.
    it->second->rows = std::move(rows);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(rows)});
  map_.emplace(key, lru_.begin());
  while (map_.size() > config_.max_entries) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
    EvictionsCounter().Add(1);
  }
}

Status CachingEndpoint::Probe(const PatternProbe& probe,
                              const CallOptions& opts,
                              const ProbeRowFn& fn) const {
  const bool cacheable = config_.cache_unbounded_probes ||
                         probe.subject != nullptr ||
                         probe.predicate != nullptr || probe.object != nullptr;
  if (!cacheable) return inner_->Probe(probe, opts, fn);

  // Child span of the enclosing pattern_probe; `hit` tells Perfetto (and
  // the linkage test) whether the rows below came from the cache or the
  // decorated endpoint.
  ALEX_TRACE_SPAN_VAR(cache_span, "federation", "CachingEndpoint::Probe");
  cache_span.AddArg("endpoint", std::string_view(name()));

  Key key;
  Rows cached;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (epoch_fn_) {
      const uint64_t epoch = epoch_fn_();
      if (epoch != last_epoch_) {
        FlushLocked();
        last_epoch_ = epoch;
      }
    }
    key = MakeKeyLocked(probe);
    auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      cached = it->second->rows;
      ++hits_;
    } else {
      ++misses_;
    }
  }

  cache_span.AddArg("hit", static_cast<bool>(cached));
  if (obs::ActiveQueryStats* stats = obs::CurrentQueryStats()) {
    if (cached) {
      ++stats->probe_cache_hits;
    } else {
      ++stats->probe_cache_misses;
    }
  }
  if (cached) {
    HitsCounter().Add(1);
    // Replay outside the lock: the callback may recursively probe this same
    // endpoint (bound joins), and the caller may stop early.
    for (const CachedRow& row : *cached) {
      if (!fn(row.terms[0] ? &*row.terms[0] : nullptr,
              row.terms[1] ? &*row.terms[1] : nullptr,
              row.terms[2] ? &*row.terms[2] : nullptr)) {
        return Status::OK();
      }
    }
    return Status::OK();
  }
  MissesCounter().Add(1);

  auto rows = std::make_shared<std::vector<CachedRow>>();
  bool truncated = false;
  bool oversize = false;
  const Status st = inner_->Probe(
      probe, opts,
      [&](const rdf::Term* s, const rdf::Term* p, const rdf::Term* o) {
        if (!oversize) {
          if (rows->size() >= config_.max_rows_per_entry) {
            oversize = true;
            rows->clear();
          } else {
            CachedRow row;
            if (s != nullptr) row.terms[0] = *s;
            if (p != nullptr) row.terms[1] = *p;
            if (o != nullptr) row.terms[2] = *o;
            rows->push_back(std::move(row));
          }
        }
        const bool keep = fn(s, p, o);
        if (!keep) truncated = true;
        return keep;
      });

  // Only complete, successful streams are cached — a failed or truncated
  // probe must hit the real endpoint again next time.
  if (st.ok() && !truncated && !oversize) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!epoch_fn_ || epoch_fn_() == last_epoch_) {
      InsertLocked(key, Rows(std::move(rows)));
    }
  }
  return st;
}

void CachingEndpoint::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  FlushLocked();
}

size_t CachingEndpoint::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

uint64_t CachingEndpoint::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t CachingEndpoint::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t CachingEndpoint::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace alex::fed
