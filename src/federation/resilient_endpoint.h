#ifndef ALEX_FEDERATION_RESILIENT_ENDPOINT_H_
#define ALEX_FEDERATION_RESILIENT_ENDPOINT_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/retry.h"
#include "common/rng.h"
#include "federation/circuit_breaker.h"
#include "federation/endpoint.h"

namespace alex::fed {

/// Fault-tolerant decorator over any QueryEndpoint: retries transient
/// failures with capped exponential backoff + jitter, enforces a
/// per-attempt timeout and the caller's per-query deadline, and fronts the
/// endpoint with a circuit breaker so a dead endpoint costs one fast local
/// rejection instead of a full retry ladder per probe.
///
/// Ordering of concerns per attempt:
///   deadline check -> breaker admission -> attempt (budgeted) ->
///   record outcome -> backoff (clock-driven) -> retry.
///
/// A failure that arrives after rows were already streamed to the caller is
/// returned as-is, never retried: replaying the probe would duplicate rows
/// in the caller's join. (The fault injector fails before delegating, so
/// with it this path cannot trigger; it guards real transports.)
///
/// Metrics: fed.retries, fed.timeouts, fed.breaker_open (fast-fails while
/// open), fed.breaker_trips, and the fed.attempt_seconds histogram of
/// per-attempt virtual latency.
///
/// Thread-safe: one instance may sit in an endpoint stack shared by
/// concurrent client threads (the link-service deployment). The breaker
/// serializes its own transitions; the jitter Rng draws under a private
/// mutex. Neither lock is ever held while the inner endpoint streams rows
/// or while backing off, so concurrent probes only contend for nanoseconds.
/// Note the clock must then be thread-safe too (SteadyClock is; SimClock is
/// single-thread by contract, which is fine for the deterministic paths
/// that use it).
class ResilientEndpoint final : public QueryEndpoint {
 public:
  /// `inner` and `clock` are borrowed and must outlive the wrapper. `seed`
  /// feeds the backoff jitter stream.
  ResilientEndpoint(const QueryEndpoint* inner, RetryPolicy retry,
                    CircuitBreakerConfig breaker, uint64_t seed, Clock* clock);

  const std::string& name() const override { return inner_->name(); }

  bool CanAnswer(const sparql::TriplePatternAst& pattern) const override {
    return inner_->CanAnswer(pattern);
  }

  Status Probe(const PatternProbe& probe, const CallOptions& opts,
               const ProbeRowFn& fn) const override;

  const CircuitBreaker& breaker() const { return breaker_; }

 private:
  const QueryEndpoint* inner_;
  RetryPolicy retry_;
  mutable CircuitBreaker breaker_;
  /// Guards rng_ (backoff jitter draws) against concurrent probes.
  mutable std::mutex rng_mu_;
  mutable Rng rng_;
  Clock* clock_;
};

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_RESILIENT_ENDPOINT_H_
