#include "federation/fault_injection.h"

#include <algorithm>

namespace alex::fed {

FaultProfile FaultProfile::Healthy() { return FaultProfile{}; }

FaultProfile FaultProfile::Slow() {
  FaultProfile p;
  p.name = "slow";
  p.base_latency_seconds = 0.2;
  p.latency_jitter_seconds = 0.3;
  return p;
}

FaultProfile FaultProfile::Flaky() {
  FaultProfile p;
  p.name = "flaky";
  p.base_latency_seconds = 0.02;
  p.latency_jitter_seconds = 0.05;
  p.error_rate = 0.35;
  p.stall_rate = 0.10;
  return p;
}

FaultProfile FaultProfile::Down() {
  FaultProfile p;
  p.name = "down";
  p.down_after_calls = 0;
  p.down_for_calls = kNoOutage;
  return p;
}

FaultProfile FaultProfile::DownFor(size_t calls) {
  FaultProfile p;
  p.name = "down_for_" + std::to_string(calls);
  p.down_after_calls = 0;
  p.down_for_calls = calls;
  return p;
}

FaultInjectedEndpoint::FaultInjectedEndpoint(const QueryEndpoint* inner,
                                             FaultProfile profile,
                                             uint64_t seed, Clock* clock)
    : inner_(inner), profile_(std::move(profile)), clock_(clock), rng_(seed) {}

Status FaultInjectedEndpoint::Probe(const PatternProbe& probe,
                                    const CallOptions& opts,
                                    const ProbeRowFn& fn) const {
  // Every decision for this probe — call ordinal, latency jitter, stall and
  // error draws — is taken atomically up front so concurrent probes on a
  // shared stack never race on rng_/calls_. The draws happen in the same
  // order and under the same conditions as they always did (none during an
  // outage-window call, and error only when the attempt does NOT time out),
  // so seeded single-threaded runs reproduce bit-for-bit.
  bool in_outage = false;
  double latency = profile_.base_latency_seconds;
  bool timed_out = false;
  bool inject_error = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t call = calls_++;
    in_outage = profile_.down_after_calls != kNoOutage &&
                call >= profile_.down_after_calls &&
                (profile_.down_for_calls == kNoOutage ||
                 call < profile_.down_after_calls + profile_.down_for_calls);
    if (!in_outage) {
      if (profile_.latency_jitter_seconds > 0.0) {
        latency += rng_.UniformDouble(0.0, profile_.latency_jitter_seconds);
      }
      if (profile_.stall_rate > 0.0 && rng_.Bernoulli(profile_.stall_rate)) {
        latency = std::max(latency, profile_.stall_seconds);
      }
      timed_out = latency > opts.timeout_seconds;
      if (!timed_out && profile_.error_rate > 0.0) {
        inject_error = rng_.Bernoulli(profile_.error_rate);
      }
    }
  }

  // Hard outage: fail fast, like a refused connection.
  if (in_outage) {
    clock_->SleepSeconds(
        std::min(profile_.down_latency_seconds, opts.timeout_seconds));
    return Status::Unavailable(name() + ": endpoint down (injected)");
  }

  if (timed_out) {
    // The caller gives up at its attempt timeout; the stalled call's
    // remaining latency is not waited out.
    clock_->SleepSeconds(opts.timeout_seconds);
    return Status::DeadlineExceeded(name() + ": attempt timed out (injected)");
  }
  clock_->SleepSeconds(latency);
  if (inject_error) {
    return Status::Unavailable(name() + ": transient error (injected)");
  }
  return inner_->Probe(probe, opts, fn);
}

}  // namespace alex::fed
