#ifndef ALEX_FEDERATION_LINK_INDEX_H_
#define ALEX_FEDERATION_LINK_INDEX_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "rdf/term.h"

namespace alex::fed {

/// An owl:sameAs link between an entity of the left dataset and an entity of
/// the right dataset, identified by IRI.
struct SameAsLink {
  std::string left_iri;
  std::string right_iri;

  friend bool operator==(const SameAsLink& a, const SameAsLink& b) {
    return a.left_iri == b.left_iri && a.right_iri == b.right_iri;
  }
};

/// Bidirectional index over a set of owl:sameAs links between two datasets.
///
/// This is the artifact ALEX maintains: the federated engine reads it to
/// answer cross-dataset queries, and ALEX mutates it as feedback arrives
/// (adding explored links, removing rejected ones).
///
/// Two views coexist:
///  - the string view (`RightsFor`/`LeftsFor`), kept for the legacy
///    execution path and external callers;
///  - an interned id view: every IRI that ever appeared in a link gets a
///    dense IriId with a stable `rdf::Term` behind it, and adjacency is
///    id -> id. The compiled execution path expands sameAs co-referents
///    through this view, so the innermost join loop allocates no strings.
/// Both views are mutated together and enumerate co-referents in identical
/// (insertion) order, which keeps the two execution paths bit-identical.
///
/// `epoch()` increments on every successful Add/Remove — the invalidation
/// signal probe caches watch (see fed::CachingEndpoint) so link mutations
/// between episodes are visible to the next query immediately.
class LinkIndex {
 public:
  /// Dense id of an IRI interned by this index. Ids are never reused;
  /// TermOf()/IriOf() references stay valid across Add/Remove.
  using IriId = uint32_t;
  static constexpr IriId kInvalidIriId = UINT32_MAX;

  LinkIndex() = default;

  /// Adds a link; duplicate adds are ignored. Returns true if added.
  bool Add(const std::string& left_iri, const std::string& right_iri);

  /// Removes a link if present. Returns true if removed.
  bool Remove(const std::string& left_iri, const std::string& right_iri);

  bool Contains(const std::string& left_iri,
                const std::string& right_iri) const;

  /// Right-side co-referents of a left entity (empty vector if none).
  const std::vector<std::string>& RightsFor(const std::string& left_iri) const;

  /// Left-side co-referents of a right entity (empty vector if none).
  const std::vector<std::string>& LeftsFor(const std::string& right_iri) const;

  /// Id of an IRI seen in some link (past or present), or kInvalidIriId.
  IriId IdOf(const std::string& iri) const;

  /// The interned IRI as a stable Term (always TermKind::kIri).
  const rdf::Term& TermOf(IriId id) const { return iri_terms_[id]; }

  /// The interned IRI string.
  const std::string& IriOf(IriId id) const { return iri_terms_[id].value; }

  /// Right-side co-referent ids of a left IRI id, in the same order as
  /// RightsFor. Empty for unknown/unlinked ids.
  const std::vector<IriId>& RightIdsFor(IriId left) const;

  /// Left-side co-referent ids of a right IRI id, in the same order as
  /// LeftsFor. Empty for unknown/unlinked ids.
  const std::vector<IriId>& LeftIdsFor(IriId right) const;

  /// Mutation epoch: bumped by every successful Add/Remove. Caches keyed on
  /// query/probe results derived from this index compare epochs to decide
  /// staleness.
  uint64_t epoch() const { return epoch_; }

  /// Total number of links.
  size_t size() const { return size_; }

  /// Snapshot of all links.
  std::vector<SameAsLink> AllLinks() const;

  /// Serializes the whole index — interned IRI table (in id order), both
  /// id-adjacency views with their per-key co-referent order, and the
  /// mutation epoch — so a restored index is bit-identical: same IriIds,
  /// same co-referent enumeration order, same epoch (probe caches keyed on
  /// the epoch stay coherent across a restart).
  void SaveState(BinaryWriter* w) const;

  /// Restores a snapshot saved by SaveState() into this index, replacing
  /// its contents. All-or-nothing: on a corrupt payload the index is left
  /// untouched.
  Status LoadState(BinaryReader* r);

 private:
  IriId InternIri(const std::string& iri);

  std::unordered_map<std::string, std::vector<std::string>> left_to_right_;
  std::unordered_map<std::string, std::vector<std::string>> right_to_left_;

  // Id view. iri_terms_ is a deque so TermOf references survive interning.
  std::unordered_map<std::string, IriId> iri_ids_;
  std::deque<rdf::Term> iri_terms_;
  std::unordered_map<IriId, std::vector<IriId>> left_ids_;
  std::unordered_map<IriId, std::vector<IriId>> right_ids_;

  uint64_t epoch_ = 0;
  size_t size_ = 0;
};

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_LINK_INDEX_H_
