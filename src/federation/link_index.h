#ifndef ALEX_FEDERATION_LINK_INDEX_H_
#define ALEX_FEDERATION_LINK_INDEX_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace alex::fed {

/// An owl:sameAs link between an entity of the left dataset and an entity of
/// the right dataset, identified by IRI.
struct SameAsLink {
  std::string left_iri;
  std::string right_iri;

  friend bool operator==(const SameAsLink& a, const SameAsLink& b) {
    return a.left_iri == b.left_iri && a.right_iri == b.right_iri;
  }
};

/// Bidirectional index over a set of owl:sameAs links between two datasets.
///
/// This is the artifact ALEX maintains: the federated engine reads it to
/// answer cross-dataset queries, and ALEX mutates it as feedback arrives
/// (adding explored links, removing rejected ones).
class LinkIndex {
 public:
  LinkIndex() = default;

  /// Adds a link; duplicate adds are ignored. Returns true if added.
  bool Add(const std::string& left_iri, const std::string& right_iri);

  /// Removes a link if present. Returns true if removed.
  bool Remove(const std::string& left_iri, const std::string& right_iri);

  bool Contains(const std::string& left_iri,
                const std::string& right_iri) const;

  /// Right-side co-referents of a left entity (empty vector if none).
  const std::vector<std::string>& RightsFor(const std::string& left_iri) const;

  /// Left-side co-referents of a right entity (empty vector if none).
  const std::vector<std::string>& LeftsFor(const std::string& right_iri) const;

  /// Total number of links.
  size_t size() const { return size_; }

  /// Snapshot of all links.
  std::vector<SameAsLink> AllLinks() const;

 private:
  std::unordered_map<std::string, std::vector<std::string>> left_to_right_;
  std::unordered_map<std::string, std::vector<std::string>> right_to_left_;
  size_t size_ = 0;
};

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_LINK_INDEX_H_
