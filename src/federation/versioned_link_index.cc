#include "federation/versioned_link_index.h"

#include <utility>

#include "obs/metrics.h"

namespace alex::fed {
namespace {

struct VersionMetrics {
  obs::Counter& commits =
      obs::MetricsRegistry::Global().counter("fed.link_commits");
  obs::Counter& committed_adds =
      obs::MetricsRegistry::Global().counter("fed.link_commit_adds");
  obs::Counter& committed_removes =
      obs::MetricsRegistry::Global().counter("fed.link_commit_removes");

  static VersionMetrics& Get() {
    static VersionMetrics* metrics = new VersionMetrics();
    return *metrics;
  }
};

}  // namespace

VersionedLinkIndex::VersionedLinkIndex() : VersionedLinkIndex(LinkIndex()) {}

VersionedLinkIndex::VersionedLinkIndex(LinkIndex initial)
    : master_(std::move(initial)) {
  published_ = std::make_shared<const LinkIndex>(master_);
  published_epoch_.store(published_->epoch(), std::memory_order_release);
}

std::shared_ptr<const LinkIndex> VersionedLinkIndex::Acquire() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return published_;
}

void VersionedLinkIndex::StageAdd(std::string left_iri,
                                  std::string right_iri) {
  std::lock_guard<std::mutex> lock(write_mu_);
  staged_.push_back(
      StagedOp{/*add=*/true, std::move(left_iri), std::move(right_iri)});
}

void VersionedLinkIndex::StageRemove(std::string left_iri,
                                     std::string right_iri) {
  std::lock_guard<std::mutex> lock(write_mu_);
  staged_.push_back(
      StagedOp{/*add=*/false, std::move(left_iri), std::move(right_iri)});
}

size_t VersionedLinkIndex::staged_ops() const {
  std::lock_guard<std::mutex> lock(write_mu_);
  return staged_.size();
}

CommitResult VersionedLinkIndex::Commit() {
  std::lock_guard<std::mutex> lock(write_mu_);
  CommitResult result;
  for (const StagedOp& op : staged_) {
    if (op.add) {
      if (master_.Add(op.left_iri, op.right_iri)) ++result.added;
    } else {
      if (master_.Remove(op.left_iri, op.right_iri)) ++result.removed;
    }
  }
  staged_.clear();
  // The O(links) snapshot copy happens here, under write_mu_ only: readers
  // keep acquiring the previous snapshot until the constant-time publish.
  Publish(std::make_shared<const LinkIndex>(master_));
  result.epoch = master_.epoch();
  result.sequence =
      commit_sequence_.fetch_add(1, std::memory_order_acq_rel) + 1;

  VersionMetrics& metrics = VersionMetrics::Get();
  metrics.commits.Add(1);
  metrics.committed_adds.Add(result.added);
  metrics.committed_removes.Add(result.removed);
  return result;
}

void VersionedLinkIndex::Reset(LinkIndex state) {
  std::lock_guard<std::mutex> lock(write_mu_);
  master_ = std::move(state);
  staged_.clear();
  Publish(std::make_shared<const LinkIndex>(master_));
}

void VersionedLinkIndex::Publish(std::shared_ptr<const LinkIndex> snapshot) {
  const uint64_t epoch = snapshot->epoch();
  {
    std::lock_guard<std::mutex> lock(publish_mu_);
    published_ = std::move(snapshot);
  }
  published_epoch_.store(epoch, std::memory_order_release);
}

void VersionedLinkIndex::SaveState(BinaryWriter* w) const {
  std::lock_guard<std::mutex> lock(write_mu_);
  master_.SaveState(w);
}

Status VersionedLinkIndex::LoadState(BinaryReader* r) {
  // Parse into a scratch index first so a corrupt payload cannot leave this
  // object half-restored (LinkIndex::LoadState is itself all-or-nothing,
  // but going through Reset keeps master/published/epoch atomic too).
  LinkIndex loaded;
  ALEX_RETURN_NOT_OK(loaded.LoadState(r));
  Reset(std::move(loaded));
  return Status::OK();
}

}  // namespace alex::fed
