#ifndef ALEX_FEDERATION_FEDERATED_ENGINE_H_
#define ALEX_FEDERATION_FEDERATED_ENGINE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "federation/endpoint.h"
#include "federation/link_index.h"
#include "sparql/ast.h"

namespace alex::fed {

/// One federated answer row with link provenance: which owl:sameAs links
/// were used to produce it. Feedback on a row is feedback on those links
/// (paper Section 3.2) — this is the bridge between querying and ALEX.
struct ProvenancedRow {
  std::vector<rdf::Term> values;
  std::vector<SameAsLink> links_used;
};

/// Result of a federated query.
struct FederatedResult {
  std::vector<std::string> variables;
  std::vector<ProvenancedRow> rows;

  size_t NumRows() const { return rows.size(); }
};

/// Minimal federated query processor in the FedX mold (paper Section 3.2).
///
/// Execution: triple patterns are ordered greedily by boundness, then
/// evaluated with bound (nested) joins. Each pattern is routed to every
/// endpoint that can answer it (predicate-based source selection). When a
/// bound join variable holds an entity IRI, its owl:sameAs co-referents are
/// substituted too, so answers can span datasets; every link crossed this
/// way is recorded in the row's provenance.
class FederatedEngine {
 public:
  /// Exactly two endpoints (the paper links dataset pairs); `links` maps
  /// entities of endpoints[0] to entities of endpoints[1]. Pointers are
  /// borrowed and must outlive the engine.
  FederatedEngine(const Endpoint* left, const Endpoint* right,
                  const LinkIndex* links);

  /// Executes a parsed SELECT query across the federation.
  Result<FederatedResult> Execute(const sparql::SelectQuery& query) const;

  /// Parses and executes.
  Result<FederatedResult> ExecuteText(std::string_view query_text) const;

 private:
  const Endpoint* left_;
  const Endpoint* right_;
  const LinkIndex* links_;
};

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_FEDERATED_ENGINE_H_
