#ifndef ALEX_FEDERATION_FEDERATED_ENGINE_H_
#define ALEX_FEDERATION_FEDERATED_ENGINE_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/retry.h"
#include "federation/compiled_query.h"
#include "federation/endpoint.h"
#include "federation/link_index.h"
#include "sparql/ast.h"

namespace alex::fed {

/// One federated answer row with link provenance: which owl:sameAs links
/// were used to produce it. Feedback on a row is feedback on those links
/// (paper Section 3.2) — this is the bridge between querying and ALEX.
struct ProvenancedRow {
  std::vector<rdf::Term> values;
  std::vector<SameAsLink> links_used;
};

/// Why part of a federated answer is missing: one entry per endpoint that
/// failed at least one probe (plus a synthetic "query" entry when the
/// per-query deadline expired).
struct EndpointError {
  std::string endpoint;
  StatusCode code = StatusCode::kUnavailable;
  std::string message;        // First error message seen.
  size_t failed_probes = 0;   // Probes this endpoint failed during the query.
};

/// Result of a federated query.
struct FederatedResult {
  std::vector<std::string> variables;
  std::vector<ProvenancedRow> rows;
  /// True when any probe failed or the query deadline expired. `rows` then
  /// holds the answers obtainable from the surviving endpoints — always a
  /// subset of the fault-free result, never fabricated — so callers (and
  /// the ALEX feedback loop) can keep working with what arrived.
  bool degraded = false;
  std::vector<EndpointError> errors;

  size_t NumRows() const { return rows.size(); }
};

/// Minimal federated query processor in the FedX mold (paper Section 3.2).
///
/// Execution: triple patterns are ordered greedily by boundness, then
/// evaluated with bound (nested) joins. Each pattern is routed to every
/// endpoint that can answer it (predicate-based source selection). When a
/// bound join variable holds an entity IRI, its owl:sameAs co-referents are
/// substituted too, so answers can span datasets; every link crossed this
/// way is recorded in the row's provenance.
///
/// Fault tolerance: endpoints are reached only through QueryEndpoint::Probe,
/// so faults, retries, and circuit breaking live in the endpoint stack (see
/// FaultInjectedEndpoint / ResilientEndpoint). A failed probe degrades the
/// query — the failing endpoint's contribution is skipped, the error is
/// recorded, rows from surviving endpoints still flow — instead of failing
/// it. With plain in-process Endpoints nothing can fail and results are
/// identical to the pre-fault-tolerance engine, bit for bit.
///
/// Execution paths: the default path compiles queries into CompiledQuery
/// plans (dense variable slots, per-slot filters, id-level sameAs
/// expansion, DISTINCT keyed on id tuples) and memoizes them per query
/// text. The pre-compilation string path (unordered_map frames, N-Triples
/// DISTINCT keys, per-call re-planning) stays selectable as the equivalence
/// reference: both paths issue the identical probe sequence and produce
/// bit-identical results, which the federation test suite asserts under
/// healthy and fault-injected stacks alike.
class FederatedEngine {
 public:
  enum class ExecutionMode {
    kCompiled,       // Compile-then-execute (default).
    kLegacyStrings,  // Pre-compilation reference path.
  };

  /// Exactly two endpoints (the paper links dataset pairs); `links` maps
  /// entities of endpoints[0] to entities of endpoints[1]. Pointers are
  /// borrowed and must outlive the engine.
  FederatedEngine(const QueryEndpoint* left, const QueryEndpoint* right,
                  const LinkIndex* links);

  /// Enables a per-query deadline: Execute() stops enumerating (and marks
  /// the result degraded) once `clock` advances `deadline_seconds` past the
  /// query start. `clock` is borrowed; pass the same clock the endpoint
  /// stack uses so injected latency counts against the deadline.
  void SetQueryDeadline(const Clock* clock, double deadline_seconds);

  /// Selects the execution path for Execute/ExecuteText. The legacy path is
  /// the equivalence baseline; production traffic runs compiled.
  void set_execution_mode(ExecutionMode mode) { mode_ = mode; }
  ExecutionMode execution_mode() const { return mode_; }

  /// Executes a parsed SELECT query across the federation (compiling it
  /// first in compiled mode).
  Result<FederatedResult> Execute(const sparql::SelectQuery& query) const;

  /// Executes a pre-compiled plan (always the compiled path, regardless of
  /// mode). The plan may be shared across engines and threads.
  Result<FederatedResult> Execute(const CompiledQuery& plan) const;

  /// Parses and executes. In compiled mode the plan is memoized per query
  /// text (fed.plan_cache_hits), so repeated traffic parses and plans once.
  Result<FederatedResult> ExecuteText(std::string_view query_text) const;

 private:
  template <typename Fn>
  Result<FederatedResult> Instrumented(Fn&& run) const;

  const QueryEndpoint* left_;
  const QueryEndpoint* right_;
  const LinkIndex* links_;
  const Clock* clock_ = nullptr;
  double deadline_seconds_ = kNoTimeout;
  ExecutionMode mode_ = ExecutionMode::kCompiled;
  mutable PlanCache plan_cache_;
};

}  // namespace alex::fed

#endif  // ALEX_FEDERATION_FEDERATED_ENGINE_H_
