#include "federation/compiled_query.h"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.h"
#include "sparql/parser.h"

namespace alex::fed {

using sparql::IsVariable;
using sparql::SelectQuery;
using sparql::TermOrVar;
using sparql::TriplePatternAst;

Result<CompiledQuery> CompiledQuery::Compile(const SelectQuery& query) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Histogram& compile_seconds =
      registry.histogram("fed.plan_compile_seconds");
  obs::ScopedTimer timer(compile_seconds);

  if (!query.optionals.empty() || !query.union_branches.empty()) {
    return Status::InvalidArgument(
        "OPTIONAL/UNION are not supported in federated queries");
  }

  CompiledQuery plan;
  plan.query_ = query;

  plan.slot_names_ = plan.query_.MentionedVariables();
  std::unordered_map<std::string, int32_t> slot_of;
  for (size_t i = 0; i < plan.slot_names_.size(); ++i) {
    slot_of.emplace(plan.slot_names_[i], static_cast<int32_t>(i));
  }
  for (const std::string& v : plan.query_.projection) {
    if (!slot_of.count(v)) {
      return Status::InvalidArgument("projected variable ?" + v +
                                     " not mentioned in WHERE");
    }
  }
  plan.variables_ =
      plan.query_.projection.empty() ? plan.slot_names_ : plan.query_.projection;
  for (const std::string& v : plan.variables_) {
    auto it = slot_of.find(v);
    plan.projection_slots_.push_back(it == slot_of.end() ? -1 : it->second);
  }

  // Greedy boundness ordering — the exact algorithm the legacy string path
  // runs per execution, hoisted to compile time (it depends only on which
  // components are constants, never on runtime values).
  std::vector<size_t> remaining;
  for (size_t i = 0; i < plan.query_.where.size(); ++i) remaining.push_back(i);
  std::unordered_set<std::string> bound;
  auto score = [&bound](const TriplePatternAst& tp) {
    int s = 0;
    for (const TermOrVar* tv : {&tp.subject, &tp.predicate, &tp.object}) {
      if (!IsVariable(*tv) ||
          bound.count(std::get<sparql::Variable>(*tv).name)) {
        ++s;
      }
    }
    return s;
  };
  std::vector<size_t> ordered;
  while (!remaining.empty()) {
    size_t best = 0;
    int best_score = -1;
    for (size_t i = 0; i < remaining.size(); ++i) {
      const int s = score(plan.query_.where[remaining[i]]);
      if (s > best_score) {
        best_score = s;
        best = i;
      }
    }
    const size_t chosen = remaining[best];
    remaining.erase(remaining.begin() + best);
    ordered.push_back(chosen);
    const TriplePatternAst& tp = plan.query_.where[chosen];
    for (const TermOrVar* tv : {&tp.subject, &tp.predicate, &tp.object}) {
      if (IsVariable(*tv)) bound.insert(std::get<sparql::Variable>(*tv).name);
    }
  }

  // Resolve components to slots / constant-pool indices.
  for (size_t wi : ordered) {
    const TriplePatternAst& tp = plan.query_.where[wi];
    Pattern pattern;
    pattern.where_index = wi;
    const TermOrVar* comps[3] = {&tp.subject, &tp.predicate, &tp.object};
    for (int i = 0; i < 3; ++i) {
      if (IsVariable(*comps[i])) {
        pattern.comp[i].slot =
            slot_of.at(std::get<sparql::Variable>(*comps[i]).name);
      } else {
        pattern.comp[i].constant = static_cast<int32_t>(plan.constants_.size());
        plan.constants_.push_back(std::get<rdf::Term>(*comps[i]));
      }
    }
    plan.patterns_.push_back(pattern);
  }

  // Per-slot filter lists, preserving query order within each slot.
  // Filters on variables not mentioned anywhere are dropped — the legacy
  // scan never finds them bound, so they never fire there either.
  plan.filters_by_slot_.resize(plan.slot_names_.size());
  for (const sparql::FilterAst& f : plan.query_.filters) {
    auto it = slot_of.find(f.var.name);
    if (it == slot_of.end()) continue;
    plan.filters_by_slot_[static_cast<size_t>(it->second)].push_back(f);
  }

  if (plan.query_.order_by.has_value()) {
    const auto it = std::find(plan.variables_.begin(), plan.variables_.end(),
                              plan.query_.order_by->var.name);
    plan.order_col_ =
        it == plan.variables_.end()
            ? -1
            : static_cast<int32_t>(it - plan.variables_.begin());
  }
  return plan;
}

Result<CompiledQuery> CompiledQuery::CompileText(std::string_view query_text) {
  ALEX_ASSIGN_OR_RETURN(SelectQuery query, sparql::ParseQuery(query_text));
  return Compile(query);
}

Result<std::shared_ptr<const CompiledQuery>> PlanCache::GetOrCompile(
    std::string_view query_text) {
  static obs::Counter& hits =
      obs::MetricsRegistry::Global().counter("fed.plan_cache_hits");
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(std::string(query_text));
    if (it != plans_.end()) {
      hits.Add(1);
      return it->second;
    }
  }
  // Compile outside the lock: compilation is the expensive part, and two
  // threads racing on the same new text just produce identical plans (the
  // second insert is a no-op).
  Result<CompiledQuery> compiled = CompiledQuery::CompileText(query_text);
  if (!compiled.ok()) return compiled.status();
  auto shared =
      std::make_shared<const CompiledQuery>(std::move(compiled).value());
  std::lock_guard<std::mutex> lock(mu_);
  if (plans_.size() >= max_entries_) plans_.clear();
  auto [it, inserted] = plans_.emplace(std::string(query_text), shared);
  return it->second;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

}  // namespace alex::fed
