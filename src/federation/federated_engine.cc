#include "federation/federated_engine.h"

#include <algorithm>
#include <array>
#include <cstring>

#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/query_stats.h"
#include "obs/trace.h"
#include "rdf/dictionary.h"
#include "sparql/parser.h"

namespace alex::fed {
namespace {

using rdf::Term;
using sparql::CompareTerms;
using sparql::IsVariable;
using sparql::SelectQuery;
using sparql::TermOrVar;
using sparql::TriplePatternAst;

/// A candidate substitution for one pattern component: the concrete term to
/// probe with, plus the sameAs link crossed to obtain it (if any).
struct Substitution {
  Term term;
  std::optional<SameAsLink> link;
};

struct Frame {
  std::unordered_map<std::string, Term> binding;
  std::vector<SameAsLink> links_used;
};

class Execution {
 public:
  Execution(const QueryEndpoint* left, const QueryEndpoint* right,
            const LinkIndex* links, const SelectQuery& query,
            const Clock* clock, double deadline_seconds)
      : left_(left), right_(right), links_(links), query_(query),
        clock_(clock) {
    if (clock_ != nullptr && deadline_seconds < kNoTimeout) {
      opts_.deadline_seconds = clock_->NowSeconds() + deadline_seconds;
    }
  }

  Result<FederatedResult> Run();

 private:
  /// sameAs-expanded substitutions for a bound term when probing `target`.
  std::vector<Substitution> ExpandForEndpoint(
      const Term& term, const QueryEndpoint* target) const;

  bool FiltersPass(const Frame& frame, const std::string& var) const;

  /// Matches patterns[pi..]; returns false to stop (LIMIT reached, or the
  /// query deadline expired).
  bool MatchFrom(size_t pi, Frame* frame);

  /// Matches one pattern against one endpoint; returns false to stop.
  bool MatchAtEndpoint(size_t pi, const QueryEndpoint* target, Frame* frame);

  bool EmitSolution(const Frame& frame);

  /// Degrades the query: records the probe failure against `target` and,
  /// when the query deadline is exhausted, requests a stop.
  void RecordProbeFailure(const QueryEndpoint* target, const Status& status);

  /// True once the per-query deadline has passed.
  bool DeadlineExpired() const {
    return clock_ != nullptr &&
           clock_->NowSeconds() >= opts_.deadline_seconds;
  }

  const QueryEndpoint* left_;
  const QueryEndpoint* right_;
  const LinkIndex* links_;
  const SelectQuery& query_;
  const Clock* clock_;
  CallOptions opts_;

  std::vector<const TriplePatternAst*> ordered_;
  FederatedResult result_;
  std::unordered_set<std::string> distinct_seen_;
  bool stop_ = false;  // Deadline expired; abandon enumeration.
};

std::vector<Substitution> Execution::ExpandForEndpoint(
    const Term& term, const QueryEndpoint* target) const {
  std::vector<Substitution> subs;
  subs.push_back(Substitution{term, std::nullopt});
  if (!term.is_iri()) return subs;
  if (target == right_) {
    for (const std::string& rhs : links_->RightsFor(term.value)) {
      subs.push_back(
          Substitution{Term::Iri(rhs), SameAsLink{term.value, rhs}});
    }
  } else {
    for (const std::string& lhs : links_->LeftsFor(term.value)) {
      subs.push_back(
          Substitution{Term::Iri(lhs), SameAsLink{lhs, term.value}});
    }
  }
  return subs;
}

bool Execution::FiltersPass(const Frame& frame, const std::string& var) const {
  for (const auto& f : query_.filters) {
    if (f.var.name != var) continue;
    auto it = frame.binding.find(var);
    if (it == frame.binding.end()) continue;
    if (!CompareTerms(it->second, f.op, f.value)) return false;
  }
  return true;
}

bool Execution::EmitSolution(const Frame& frame) {
  ProvenancedRow row;
  row.links_used = frame.links_used;
  for (const std::string& v : result_.variables) {
    auto it = frame.binding.find(v);
    row.values.push_back(it == frame.binding.end() ? Term::Literal("")
                                                   : it->second);
  }
  if (query_.distinct) {
    std::string key;
    for (const Term& t : row.values) {
      key += t.ToNTriples();
      key += '\x1e';
    }
    if (!distinct_seen_.insert(key).second) return true;
  }
  result_.rows.push_back(std::move(row));
  // With ORDER BY the limit applies after sorting; keep enumerating.
  return !(query_.limit.has_value() && !query_.order_by &&
           result_.rows.size() >= *query_.limit);
}

void Execution::RecordProbeFailure(const QueryEndpoint* target,
                                   const Status& status) {
  result_.degraded = true;
  const std::string& name = target->name();
  for (EndpointError& err : result_.errors) {
    if (err.endpoint == name) {
      ++err.failed_probes;
      if (DeadlineExpired()) stop_ = true;
      return;
    }
  }
  EndpointError err;
  err.endpoint = name;
  err.code = status.code();
  err.message = status.message();
  err.failed_probes = 1;
  result_.errors.push_back(std::move(err));
  if (DeadlineExpired()) stop_ = true;
}

bool Execution::MatchAtEndpoint(size_t pi, const QueryEndpoint* target,
                                Frame* frame) {
  const TriplePatternAst& tp = *ordered_[pi];

  const TermOrVar* comps[3] = {&tp.subject, &tp.predicate, &tp.object};

  // Per component: either a list of substitutions (constant/bound var) or
  // the variable name to bind.
  std::vector<Substitution> subs[3];
  std::optional<std::string> to_bind[3];
  for (int i = 0; i < 3; ++i) {
    if (IsVariable(*comps[i])) {
      const std::string& name = std::get<sparql::Variable>(*comps[i]).name;
      auto it = frame->binding.find(name);
      if (it == frame->binding.end()) {
        to_bind[i] = name;
        continue;
      }
      // Predicates are never sameAs-expanded.
      subs[i] = (i == 1) ? std::vector<Substitution>{{it->second, {}}}
                         : ExpandForEndpoint(it->second, target);
    } else {
      const Term& constant = std::get<Term>(*comps[i]);
      subs[i] = (i == 1) ? std::vector<Substitution>{{constant, {}}}
                         : ExpandForEndpoint(constant, target);
    }
  }

  // Iterate the cartesian product of substitutions (singletons when no
  // expansion applies).
  const size_t ns = to_bind[0] ? 1 : subs[0].size();
  const size_t np = to_bind[1] ? 1 : subs[1].size();
  const size_t no = to_bind[2] ? 1 : subs[2].size();
  for (size_t a = 0; a < ns; ++a) {
    for (size_t b = 0; b < np; ++b) {
      for (size_t c = 0; c < no; ++c) {
        PatternProbe probe;
        const Term** slots[3] = {&probe.subject, &probe.predicate,
                                 &probe.object};
        const size_t idx[3] = {a, b, c};
        size_t links_added = 0;
        for (int i = 0; i < 3; ++i) {
          if (to_bind[i]) continue;
          const Substitution& sub = subs[i][idx[i]];
          *slots[i] = &sub.term;
          if (sub.link.has_value()) {
            frame->links_used.push_back(*sub.link);
            ++links_added;
          }
        }
        bool keep_going = true;
        // The probe span covers the whole decorator stack (cache -> retry
        // -> breaker -> endpoint) *and* the recursive join continuation
        // that runs inside the row callback; deeper pattern_probe spans
        // nest under it in the trace, mirroring the enumeration tree.
        ALEX_TRACE_SPAN_VAR(probe_span, "federation", "pattern_probe");
        probe_span.AddArg("pattern", pi);
        probe_span.AddArg("endpoint", std::string_view(target->name()));
        if (obs::ActiveQueryStats* stats = obs::CurrentQueryStats()) {
          ++stats->probes;
        }
        const Status st = target->Probe(
            probe, opts_,
            [&](const Term* s, const Term* p, const Term* o) {
              const Term* values[3] = {s, p, o};
              std::vector<std::string> bound_here;
              bool consistent = true;
              for (int i = 0; i < 3 && consistent; ++i) {
                if (!to_bind[i]) continue;
                const Term& value = *values[i];
                auto it = frame->binding.find(*to_bind[i]);
                if (it != frame->binding.end()) {
                  // Repeated variable bound earlier in this same pattern.
                  consistent = (it->second == value);
                } else {
                  frame->binding.emplace(*to_bind[i], value);
                  bound_here.push_back(*to_bind[i]);
                  consistent = FiltersPass(*frame, *to_bind[i]);
                }
              }
              if (consistent) keep_going = MatchFrom(pi + 1, frame);
              for (const std::string& v : bound_here) frame->binding.erase(v);
              return keep_going;
            });
        probe_span.AddArg("ok", st.ok());
        if (!st.ok()) {
          // Degrade: this endpoint's contribution to the pattern is lost,
          // but the enumeration (and the other endpoint) continues.
          RecordProbeFailure(target, st);
        }
        for (size_t k = 0; k < links_added; ++k) frame->links_used.pop_back();
        if (!keep_going || stop_) return false;
      }
    }
  }
  return true;
}

bool Execution::MatchFrom(size_t pi, Frame* frame) {
  if (pi == ordered_.size()) return EmitSolution(*frame);
  if (stop_) return false;
  for (const QueryEndpoint* target : {left_, right_}) {
    if (!target->CanAnswer(*ordered_[pi])) continue;
    if (!MatchAtEndpoint(pi, target, frame)) return false;
  }
  return true;
}

Result<FederatedResult> Execution::Run() {
  if (!query_.optionals.empty() || !query_.union_branches.empty()) {
    return Status::InvalidArgument(
        "OPTIONAL/UNION are not supported in federated queries");
  }
  const std::vector<std::string> mentioned = query_.MentionedVariables();
  std::unordered_set<std::string> known(mentioned.begin(), mentioned.end());
  for (const std::string& v : query_.projection) {
    if (!known.count(v)) {
      return Status::InvalidArgument("projected variable ?" + v +
                                     " not mentioned in WHERE");
    }
  }
  result_.variables = query_.projection.empty() ? mentioned : query_.projection;

  // Greedy boundness ordering, as in the single-store evaluator.
  std::vector<const TriplePatternAst*> remaining;
  for (const auto& tp : query_.where) remaining.push_back(&tp);
  std::unordered_set<std::string> bound;
  auto score = [&bound](const TriplePatternAst& tp) {
    int s = 0;
    for (const TermOrVar* tv : {&tp.subject, &tp.predicate, &tp.object}) {
      if (!IsVariable(*tv) ||
          bound.count(std::get<sparql::Variable>(*tv).name)) {
        ++s;
      }
    }
    return s;
  };
  while (!remaining.empty()) {
    size_t best = 0;
    int best_score = -1;
    for (size_t i = 0; i < remaining.size(); ++i) {
      int s = score(*remaining[i]);
      if (s > best_score) {
        best_score = s;
        best = i;
      }
    }
    const TriplePatternAst* chosen = remaining[best];
    remaining.erase(remaining.begin() + best);
    ordered_.push_back(chosen);
    for (const TermOrVar* tv :
         {&chosen->subject, &chosen->predicate, &chosen->object}) {
      if (IsVariable(*tv)) bound.insert(std::get<sparql::Variable>(*tv).name);
    }
  }

  Frame frame;
  MatchFrom(0, &frame);
  if (stop_) {
    // The deadline expired mid-enumeration; surface it as a query-level
    // error entry (the rows gathered so far are still returned).
    result_.degraded = true;
    EndpointError err;
    err.endpoint = "query";
    err.code = StatusCode::kDeadlineExceeded;
    err.message = "query deadline expired during enumeration";
    result_.errors.push_back(std::move(err));
  }

  if (query_.order_by.has_value()) {
    const auto& vars = result_.variables;
    const auto it =
        std::find(vars.begin(), vars.end(), query_.order_by->var.name);
    if (it == vars.end()) {
      return Status::InvalidArgument("ORDER BY variable ?" +
                                     query_.order_by->var.name +
                                     " not in the result");
    }
    const size_t col = static_cast<size_t>(it - vars.begin());
    const bool desc = query_.order_by->descending;
    std::stable_sort(
        result_.rows.begin(), result_.rows.end(),
        [col, desc](const ProvenancedRow& a, const ProvenancedRow& b) {
          return desc ? CompareTerms(a.values[col], sparql::CompareOp::kGt,
                                     b.values[col])
                      : CompareTerms(a.values[col], sparql::CompareOp::kLt,
                                     b.values[col]);
        });
    if (query_.limit.has_value() && result_.rows.size() > *query_.limit) {
      result_.rows.resize(*query_.limit);
    }
  }
  return std::move(result_);
}

/// Compiled execution: the same enumeration as Execution, but over a
/// CompiledQuery — dense `const Term*` slot frames instead of string-keyed
/// maps, sameAs expansion through the LinkIndex id view, per-slot filter
/// lists, link provenance as id pairs (materialized to strings only at
/// emit), and DISTINCT keyed on interned id tuples instead of N-Triples
/// strings. Probe order, substitution order, and degradation semantics are
/// deliberately identical to Execution, so both paths produce bit-identical
/// results and issue the identical probe sequence (which also keeps
/// fault-injection RNG draws aligned between paths).
class CompiledExecution {
 public:
  CompiledExecution(const QueryEndpoint* left, const QueryEndpoint* right,
                    const LinkIndex* links, const CompiledQuery& plan,
                    const Clock* clock, double deadline_seconds)
      : left_(left), right_(right), links_(links), plan_(plan),
        clock_(clock) {
    if (clock_ != nullptr && deadline_seconds < kNoTimeout) {
      opts_.deadline_seconds = clock_->NowSeconds() + deadline_seconds;
    }
  }

  Result<FederatedResult> Run();

 private:
  /// A candidate substitution for one pattern component. `link_left` is
  /// kInvalidIriId when no sameAs link was crossed.
  struct Subst {
    const Term* term = nullptr;
    LinkIndex::IriId link_left = LinkIndex::kInvalidIriId;
    LinkIndex::IriId link_right = LinkIndex::kInvalidIriId;
  };

  void ExpandForEndpoint(const Term& term, const QueryEndpoint* target,
                         std::vector<Subst>* out) const;

  bool SlotFiltersPass(int32_t slot) const;

  bool MatchFrom(size_t pi);

  bool MatchAtEndpoint(size_t pi, const QueryEndpoint* target);

  bool EmitSolution();

  void RecordProbeFailure(const QueryEndpoint* target, const Status& status);

  bool DeadlineExpired() const {
    return clock_ != nullptr &&
           clock_->NowSeconds() >= opts_.deadline_seconds;
  }

  const QueryEndpoint* left_;
  const QueryEndpoint* right_;
  const LinkIndex* links_;
  const CompiledQuery& plan_;
  const Clock* clock_;
  CallOptions opts_;

  /// Current binding of each variable slot (nullptr = unbound). Pointees
  /// are owned by the plan's constant pool, the LinkIndex term arena, or
  /// the probe callback (valid for the duration of the recursive call).
  std::vector<const Term*> slots_;
  /// sameAs links crossed on the current enumeration path, as id pairs.
  std::vector<std::pair<LinkIndex::IriId, LinkIndex::IriId>> links_stack_;
  /// Per-pattern substitution scratch, reused across the enumeration so the
  /// inner loops do not allocate.
  std::vector<std::array<std::vector<Subst>, 3>> scratch_;
  FederatedResult result_;
  rdf::Dictionary row_dict_;  // Interns emitted terms for DISTINCT keys.
  std::unordered_set<std::string> distinct_seen_;
  bool stop_ = false;
};

void CompiledExecution::ExpandForEndpoint(const Term& term,
                                          const QueryEndpoint* target,
                                          std::vector<Subst>* out) const {
  out->clear();
  out->push_back(Subst{&term});
  if (!term.is_iri()) return;
  const LinkIndex::IriId id = links_->IdOf(term.value);
  if (id == LinkIndex::kInvalidIriId) return;
  if (target == right_) {
    for (LinkIndex::IriId rid : links_->RightIdsFor(id)) {
      out->push_back(Subst{&links_->TermOf(rid), id, rid});
    }
  } else {
    for (LinkIndex::IriId lid : links_->LeftIdsFor(id)) {
      out->push_back(Subst{&links_->TermOf(lid), lid, id});
    }
  }
}

bool CompiledExecution::SlotFiltersPass(int32_t slot) const {
  const Term& value = *slots_[slot];
  for (const sparql::FilterAst& f :
       plan_.filters_for_slot(static_cast<size_t>(slot))) {
    if (!CompareTerms(value, f.op, f.value)) return false;
  }
  return true;
}

bool CompiledExecution::EmitSolution() {
  const std::vector<int32_t>& proj = plan_.projection_slots();
  if (plan_.distinct()) {
    std::string key;
    key.reserve(proj.size() * sizeof(rdf::TermId));
    for (int32_t slot : proj) {
      const Term* t = slot >= 0 ? slots_[slot] : nullptr;
      const rdf::TermId id =
          t != nullptr ? row_dict_.Intern(*t) : row_dict_.InternLiteral("");
      char bytes[sizeof(rdf::TermId)];
      std::memcpy(bytes, &id, sizeof(bytes));
      key.append(bytes, sizeof(bytes));
    }
    if (!distinct_seen_.insert(std::move(key)).second) return true;
  }
  ProvenancedRow row;
  row.links_used.reserve(links_stack_.size());
  for (const auto& [lid, rid] : links_stack_) {
    row.links_used.push_back(SameAsLink{links_->IriOf(lid), links_->IriOf(rid)});
  }
  row.values.reserve(proj.size());
  for (int32_t slot : proj) {
    const Term* t = slot >= 0 ? slots_[slot] : nullptr;
    row.values.push_back(t != nullptr ? *t : Term::Literal(""));
  }
  result_.rows.push_back(std::move(row));
  return !(plan_.limit().has_value() && !plan_.has_order_by() &&
           result_.rows.size() >= *plan_.limit());
}

void CompiledExecution::RecordProbeFailure(const QueryEndpoint* target,
                                           const Status& status) {
  result_.degraded = true;
  const std::string& name = target->name();
  for (EndpointError& err : result_.errors) {
    if (err.endpoint == name) {
      ++err.failed_probes;
      if (DeadlineExpired()) stop_ = true;
      return;
    }
  }
  EndpointError err;
  err.endpoint = name;
  err.code = status.code();
  err.message = status.message();
  err.failed_probes = 1;
  result_.errors.push_back(std::move(err));
  if (DeadlineExpired()) stop_ = true;
}

bool CompiledExecution::MatchAtEndpoint(size_t pi,
                                        const QueryEndpoint* target) {
  const CompiledQuery::Pattern& cp = plan_.patterns()[pi];
  std::array<std::vector<Subst>, 3>& subs = scratch_[pi];

  // Per component: either a substitution list (constant / bound slot) or
  // the slot to bind.
  int32_t to_bind[3] = {-1, -1, -1};
  for (int i = 0; i < 3; ++i) {
    const CompiledQuery::Component& comp = cp.comp[i];
    const Term* bound;
    if (comp.is_variable()) {
      bound = slots_[comp.slot];
      if (bound == nullptr) {
        to_bind[i] = comp.slot;
        continue;
      }
    } else {
      bound = &plan_.constant(comp.constant);
    }
    if (i == 1) {
      // Predicates are never sameAs-expanded.
      subs[i].clear();
      subs[i].push_back(Subst{bound});
    } else {
      ExpandForEndpoint(*bound, target, &subs[i]);
    }
  }

  const size_t ns = to_bind[0] >= 0 ? 1 : subs[0].size();
  const size_t np = to_bind[1] >= 0 ? 1 : subs[1].size();
  const size_t no = to_bind[2] >= 0 ? 1 : subs[2].size();
  for (size_t a = 0; a < ns; ++a) {
    for (size_t b = 0; b < np; ++b) {
      for (size_t c = 0; c < no; ++c) {
        PatternProbe probe;
        const Term** probe_slots[3] = {&probe.subject, &probe.predicate,
                                       &probe.object};
        const size_t idx[3] = {a, b, c};
        size_t links_added = 0;
        for (int i = 0; i < 3; ++i) {
          if (to_bind[i] >= 0) continue;
          const Subst& sub = subs[i][idx[i]];
          *probe_slots[i] = sub.term;
          if (sub.link_left != LinkIndex::kInvalidIriId) {
            links_stack_.emplace_back(sub.link_left, sub.link_right);
            ++links_added;
          }
        }
        bool keep_going = true;
        // Mirrors the legacy path: one span per issued probe, nesting with
        // the recursive enumeration (see Execution::MatchAtEndpoint).
        ALEX_TRACE_SPAN_VAR(probe_span, "federation", "pattern_probe");
        probe_span.AddArg("pattern", pi);
        probe_span.AddArg("endpoint", std::string_view(target->name()));
        if (obs::ActiveQueryStats* stats = obs::CurrentQueryStats()) {
          ++stats->probes;
        }
        const Status st = target->Probe(
            probe, opts_,
            [&](const Term* s, const Term* p, const Term* o) {
              const Term* values[3] = {s, p, o};
              int32_t bound_here[3];
              int num_bound = 0;
              bool consistent = true;
              for (int i = 0; i < 3 && consistent; ++i) {
                if (to_bind[i] < 0) continue;
                const int32_t slot = to_bind[i];
                if (slots_[slot] != nullptr) {
                  // Repeated variable bound earlier in this same pattern.
                  consistent = (*slots_[slot] == *values[i]);
                } else {
                  slots_[slot] = values[i];
                  bound_here[num_bound++] = slot;
                  consistent = SlotFiltersPass(slot);
                }
              }
              if (consistent) keep_going = MatchFrom(pi + 1);
              for (int k = 0; k < num_bound; ++k) slots_[bound_here[k]] = nullptr;
              return keep_going;
            });
        probe_span.AddArg("ok", st.ok());
        if (!st.ok()) RecordProbeFailure(target, st);
        for (size_t k = 0; k < links_added; ++k) links_stack_.pop_back();
        if (!keep_going || stop_) return false;
      }
    }
  }
  return true;
}

bool CompiledExecution::MatchFrom(size_t pi) {
  if (pi == plan_.patterns().size()) return EmitSolution();
  if (stop_) return false;
  const TriplePatternAst& tp =
      plan_.query().where[plan_.patterns()[pi].where_index];
  for (const QueryEndpoint* target : {left_, right_}) {
    if (!target->CanAnswer(tp)) continue;
    if (!MatchAtEndpoint(pi, target)) return false;
  }
  return true;
}

Result<FederatedResult> CompiledExecution::Run() {
  result_.variables = plan_.variables();
  slots_.assign(plan_.num_slots(), nullptr);
  scratch_.resize(plan_.patterns().size());

  MatchFrom(0);
  if (stop_) {
    result_.degraded = true;
    EndpointError err;
    err.endpoint = "query";
    err.code = StatusCode::kDeadlineExceeded;
    err.message = "query deadline expired during enumeration";
    result_.errors.push_back(std::move(err));
  }

  if (plan_.has_order_by()) {
    if (!plan_.order_by_valid()) {
      return Status::InvalidArgument("ORDER BY variable ?" +
                                     plan_.query().order_by->var.name +
                                     " not in the result");
    }
    const size_t col = plan_.order_col();
    const bool desc = plan_.order_descending();
    std::stable_sort(
        result_.rows.begin(), result_.rows.end(),
        [col, desc](const ProvenancedRow& a, const ProvenancedRow& b) {
          return desc ? CompareTerms(a.values[col], sparql::CompareOp::kGt,
                                     b.values[col])
                      : CompareTerms(a.values[col], sparql::CompareOp::kLt,
                                     b.values[col]);
        });
    if (plan_.limit().has_value() && result_.rows.size() > *plan_.limit()) {
      result_.rows.resize(*plan_.limit());
    }
  }
  return std::move(result_);
}

}  // namespace

FederatedEngine::FederatedEngine(const QueryEndpoint* left,
                                 const QueryEndpoint* right,
                                 const LinkIndex* links)
    : left_(left), right_(right), links_(links) {}

void FederatedEngine::SetQueryDeadline(const Clock* clock,
                                       double deadline_seconds) {
  clock_ = clock;
  deadline_seconds_ = deadline_seconds;
}

template <typename Fn>
Result<FederatedResult> FederatedEngine::Instrumented(Fn&& run) const {
  // Declared FIRST so it destructs LAST: whatever the spans and stats scope
  // below leave behind, the worker thread's ambient observability state is
  // restored before it returns to a pool — queries reusing the thread start
  // from a clean context instead of inheriting this query's trace id or a
  // dangling tally pointer.
  obs::ThreadStateGuard thread_state_guard;
  // Root of the query's causal tree: every probe, cache lookup, retry
  // attempt, and breaker decision below inherits this span's trace id
  // through the thread-local context.
  ALEX_TRACE_ROOT_SPAN_VAR(query_span, "federation",
                           "FederatedEngine::Execute");
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter& queries = registry.counter("fed.queries");
  static obs::Counter& rows = registry.counter("fed.rows");
  static obs::Counter& links_crossed = registry.counter("fed.links_crossed");
  static obs::Counter& degraded_queries =
      registry.counter("fed.degraded_queries");
  static obs::Counter& endpoint_errors =
      registry.counter("fed.endpoint_errors");
  static obs::Histogram& query_seconds =
      registry.histogram("fed.query_seconds");

  queries.Add(1);
  obs::ActiveQueryStats active;
  obs::QueryStatsScope stats_scope(&active);
  // Latency follows the engine's injected clock when present (SimClock
  // scenarios then report virtual latency — backoff and injected delays —
  // deterministically); wall time otherwise.
  const double start_seconds = clock_ != nullptr
                                   ? clock_->NowSeconds()
                                   : std::chrono::duration<double>(
                                         std::chrono::steady_clock::now()
                                             .time_since_epoch())
                                         .count();
  Result<FederatedResult> result = run();
  const double end_seconds = clock_ != nullptr
                                 ? clock_->NowSeconds()
                                 : std::chrono::duration<double>(
                                       std::chrono::steady_clock::now()
                                           .time_since_epoch())
                                       .count();
  const double latency_seconds = std::max(0.0, end_seconds - start_seconds);
  query_seconds.Observe(latency_seconds);

  obs::QueryStats record;
  record.trace_id = query_span.trace_id();
  record.latency_seconds = latency_seconds;
  record.probes = active.probes;
  record.probe_cache_hits = active.probe_cache_hits;
  record.probe_cache_misses = active.probe_cache_misses;
  record.retries = active.retries;
  record.breaker_rejections = active.breaker_rejections;
  record.block_cache_hits = active.block_cache_hits;
  record.block_cache_misses = active.block_cache_misses;
  record.failed = !result.ok();

  if (result.ok()) {
    rows.Add(result->rows.size());
    size_t crossed = 0;
    for (const ProvenancedRow& row : result->rows) {
      crossed += row.links_used.size();
    }
    links_crossed.Add(crossed);
    if (result->degraded) degraded_queries.Add(1);
    size_t failed = 0;
    for (const EndpointError& err : result->errors) {
      failed += err.failed_probes;
    }
    endpoint_errors.Add(failed);
    record.rows = result->rows.size();
    record.degraded = result->degraded;
  }
  obs::QueryLog::Global().Record(record);

  query_span.AddArg("probes", active.probes);
  query_span.AddArg("rows", record.rows);
  query_span.AddArg("retries", active.retries);
  query_span.AddArg("cache_hits", active.probe_cache_hits);
  query_span.AddArg("degraded", record.degraded);
  query_span.AddArg("ok", result.ok());
  return result;
}

Result<FederatedResult> FederatedEngine::Execute(
    const SelectQuery& query) const {
  if (mode_ == ExecutionMode::kLegacyStrings) {
    return Instrumented([&] {
      return Execution(left_, right_, links_, query, clock_,
                       deadline_seconds_)
          .Run();
    });
  }
  // Compile inside the instrumented scope so invalid queries count against
  // fed.queries on both paths.
  return Instrumented([&]() -> Result<FederatedResult> {
    ALEX_ASSIGN_OR_RETURN(CompiledQuery plan, CompiledQuery::Compile(query));
    return CompiledExecution(left_, right_, links_, plan, clock_,
                             deadline_seconds_)
        .Run();
  });
}

Result<FederatedResult> FederatedEngine::Execute(
    const CompiledQuery& plan) const {
  return Instrumented([&] {
    return CompiledExecution(left_, right_, links_, plan, clock_,
                             deadline_seconds_)
        .Run();
  });
}

Result<FederatedResult> FederatedEngine::ExecuteText(
    std::string_view query_text) const {
  if (mode_ == ExecutionMode::kLegacyStrings) {
    ALEX_ASSIGN_OR_RETURN(SelectQuery query, sparql::ParseQuery(query_text));
    return Execute(query);
  }
  Result<std::shared_ptr<const CompiledQuery>> plan =
      plan_cache_.GetOrCompile(query_text);
  if (!plan.ok()) return plan.status();
  return Execute(**plan);
}

}  // namespace alex::fed
