#include "obs/trace.h"

#include <algorithm>

#include "common/string_util.h"

namespace alex::obs {

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceContext& TraceRecorder::CurrentContext() {
  thread_local TraceContext context;
  return context;
}

TraceRecorder::ThreadBuffer& TraceRecorder::LocalBuffer() {
  thread_local std::shared_ptr<ThreadBuffer> local = [this] {
    auto buffer = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffer->tid = next_tid_++;
    buffers_.push_back(buffer);
    return buffer;
  }();
  return *local;
}

void TraceRecorder::Record(const char* category, const char* name,
                           uint64_t ts_micros, uint64_t dur_micros) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.ts_micros = ts_micros;
  event.dur_micros = dur_micros;
  Record(event);
}

void TraceRecorder::Record(TraceEvent event) {
  ThreadBuffer& buffer = LocalBuffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  event.tid = buffer.tid;
  if (buffer.ring.size() < kRingCapacity) {
    buffer.ring.push_back(event);
  } else {
    buffer.ring[buffer.next] = event;
  }
  buffer.next = (buffer.next + 1) % kRingCapacity;
  ++buffer.count;
}

uint32_t TraceRecorder::InternArgString(std::string_view value) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  // Linear scan over a small table: distinct string args are endpoint names
  // and status labels, a handful per process, so interning stays cheap.
  for (size_t i = 0; i < arg_strings_.size(); ++i) {
    if (arg_strings_[i] == value) return static_cast<uint32_t>(i);
  }
  arg_strings_.emplace_back(value);
  return static_cast<uint32_t>(arg_strings_.size() - 1);
}

std::string TraceRecorder::ArgString(size_t index) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  if (index >= arg_strings_.size()) return "<bad-arg-index>";
  return arg_strings_[index];
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> events;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    events.insert(events.end(), buffer->ring.begin(), buffer->ring.end());
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_micros != b.ts_micros) {
                       return a.ts_micros < b.ts_micros;
                     }
                     // Equal begins: the longer span is the ancestor.
                     if (a.dur_micros != b.dur_micros) {
                       return a.dur_micros > b.dur_micros;
                     }
                     return a.tid < b.tid;
                   });
  return events;
}

void TraceRecorder::Clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mu);
    buffer->ring.clear();
    buffer->next = 0;
    buffer->count = 0;
  }
}

void TraceRecorder::WriteChromeTrace(std::ostream& os) const {
  const std::vector<TraceEvent> events = Events();
  os << "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    // Names/categories are identifier-style string literals from our own
    // instrumentation; no JSON escaping is needed beyond trusting that.
    os << "\n  {\"name\": \"" << e.name << "\", \"cat\": \"" << e.category
       << "\", \"ph\": \"X\", \"ts\": " << e.ts_micros
       << ", \"dur\": " << e.dur_micros << ", \"pid\": 1, \"tid\": " << e.tid;
    if (e.trace_id != 0 || e.num_args != 0) {
      os << ", \"args\": {";
      bool first_arg = true;
      if (e.trace_id != 0) {
        os << "\"trace_id\": " << e.trace_id << ", \"span_id\": " << e.span_id
           << ", \"parent_span_id\": " << e.parent_span_id;
        first_arg = false;
      }
      for (uint32_t i = 0; i < e.num_args && i < kMaxTraceArgs; ++i) {
        const TraceArg& arg = e.args[i];
        if (arg.key == nullptr) continue;
        if (!first_arg) os << ", ";
        first_arg = false;
        os << "\"" << EscapeJson(arg.key) << "\": ";
        if (arg.is_string) {
          os << "\""
             << EscapeJson(ArgString(static_cast<size_t>(arg.value)))
             << "\"";
        } else {
          os << arg.value;
        }
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

}  // namespace alex::obs
