#include "obs/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace alex::obs {
namespace {

/// max(a - b, 0) for counters: a metric reset between two snapshots makes
/// `before` exceed `after`, and 2's-complement wraparound would report a
/// near-2^64 "delta". Saturating keeps resets visible as zero activity.
uint64_t SaturatingSub(uint64_t after, uint64_t before) {
  return after >= before ? after - before : 0;
}

}  // namespace
namespace internal {

size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local const size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

}  // namespace internal

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  shards_.reserve(kMetricShards);
  for (size_t i = 0; i < kMetricShards; ++i) {
    shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
  }
}

std::vector<double> Histogram::DefaultLatencyBounds() {
  // 1µs .. 64s in ~4x steps: coarse enough to stay cheap, fine enough to
  // separate "microseconds" (band query) from "seconds" (space build).
  return {1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3,
          16e-3, 64e-3, 256e-3, 1.0,   4.0,   16.0, 64.0};
}

void Histogram::Observe(double seconds) {
  if (seconds < 0.0) seconds = 0.0;
  // Buckets have inclusive upper bounds (Prometheus-style "le"): a value
  // equal to bounds[i] lands in bucket i, hence lower_bound.
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), seconds) -
      bounds_.begin();
  Shard& shard = *shards_[internal::ThreadShard()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum_nanos.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                            std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  uint64_t sum_nanos = 0;
  for (const auto& shard : shards_) {
    for (size_t i = 0; i < shard->counts.size(); ++i) {
      snap.counts[i] += shard->counts[i].load(std::memory_order_relaxed);
    }
    sum_nanos += shard->sum_nanos.load(std::memory_order_relaxed);
  }
  for (uint64_t c : snap.counts) snap.count += c;
  snap.sum = static_cast<double>(sum_nanos) * 1e-9;
  return snap;
}

void Histogram::Reset() {
  for (auto& shard : shards_) {
    for (auto& c : shard->counts) c.store(0, std::memory_order_relaxed);
    shard->sum_nanos.store(0, std::memory_order_relaxed);
  }
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based); q = 0 maps to the first.
  const double rank = std::max(1.0, q * static_cast<double>(count));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    const double upto = static_cast<double>(cumulative + in_bucket);
    if (rank <= upto) {
      if (i >= bounds.size()) {
        // +inf bucket: the estimate is capped at the largest finite bound
        // (Prometheus histogram_quantile semantics). With no finite
        // buckets at all, fall back to the mean.
        return bounds.empty() ? Mean() : bounds.back();
      }
      const double lower = (i == 0) ? 0.0 : bounds[i - 1];
      const double upper = bounds[i];
      const double position =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * position;
    }
    cumulative += in_bucket;
  }
  return bounds.empty() ? Mean() : bounds.back();
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& before) const {
  MetricsSnapshot delta = *this;
  for (auto& [name, value] : delta.counters) {
    auto it = before.counters.find(name);
    if (it != before.counters.end()) value = SaturatingSub(value, it->second);
  }
  // Gauges are point-in-time: the "delta" keeps the current reading.
  for (auto& [name, hist] : delta.histograms) {
    auto it = before.histograms.find(name);
    if (it == before.histograms.end()) continue;
    const HistogramSnapshot& old = it->second;
    if (old.bounds != hist.bounds) continue;
    for (size_t i = 0; i < hist.counts.size(); ++i) {
      hist.counts[i] = SaturatingSub(hist.counts[i], old.counts[i]);
    }
    hist.count = SaturatingSub(hist.count, old.count);
    hist.sum = std::max(0.0, hist.sum - old.sum);
  }
  return delta;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  // Bounds-agnostic lookup: whatever ladder the histogram already has (or
  // the default for a fresh one) satisfies the caller, so no conflict is
  // possible.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(
                                             Histogram::DefaultLatencyBounds()))
             .first;
  }
  return *it->second;
}

Result<Histogram*> MetricsRegistry::TryHistogram(std::string_view name,
                                                 std::vector<double> bounds) {
  // Normalize the way the Histogram constructor does, so e.g. duplicate or
  // unsorted bounds compare equal to their canonical form.
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
    return it->second.get();
  }
  if (it->second->bucket_bounds() != bounds) {
    return Status::InvalidArgument(
        "histogram '" + std::string(name) +
        "' re-registered with conflicting bucket bounds; the ladder is "
        "fixed by the first registration");
  }
  return it->second.get();
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  Result<Histogram*> result = TryHistogram(name, std::move(bounds));
  if (!result.ok()) {
    // Fail loudly but keep the process running: the first-registered ladder
    // wins, and the conflicting call site is named in the log.
    ALEX_LOG(kError) << result.status().message();
    std::lock_guard<std::mutex> lock(mu_);
    return *histograms_.find(name)->second;
  }
  return **result;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->Value());
    snap.gauge_maxes.emplace(name, gauge->MaxValue());
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace(name, histogram->Snapshot());
  }
  return snap;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace alex::obs
