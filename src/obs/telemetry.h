#ifndef ALEX_OBS_TELEMETRY_H_
#define ALEX_OBS_TELEMETRY_H_

#include <chrono>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace alex::obs {

/// Run-level telemetry: named, non-overlapping phase timings plus the
/// registry activity observed during the run. Threaded through
/// simulation::RunResult so every run carries where its time went; benches
/// serialize it as a `*.telemetry.json` sidecar next to their figures.
struct RunTelemetry {
  /// Top-level phases in execution order. Phases are disjoint wall-time
  /// sections of the run, so their sum approximates wall_seconds (nested
  /// detail lives in `metrics` histograms instead). Repeated AddPhase calls
  /// with one name accumulate (e.g. one "explore" slice per episode).
  std::vector<std::pair<std::string, double>> phases;
  double wall_seconds = 0.0;
  /// Registry delta over the run (counters, gauges, histograms).
  MetricsSnapshot metrics;

  void AddPhase(const std::string& name, double seconds);
  double PhaseSecondsTotal() const;

  /// {"wall_seconds": ..., "phases": {...}, "counters": {...},
  ///  "gauges": {...}, "histograms": {...}} — one self-contained object,
  ///  embeddable in a larger document (no trailing newline).
  void WriteJson(std::ostream& os, int indent = 0) const;

  /// Flat rows: kind,name,value[,extra] — one line per metric.
  void WriteCsv(std::ostream& os) const;
};

/// Serializes one merged registry snapshot as the JSON fields
/// `"counters": {...}, "gauges": {...}, "histograms": {...}` (no enclosing
/// braces), at the given indent depth. Deterministic: map ordering.
void WriteMetricsJsonFields(const MetricsSnapshot& snapshot, std::ostream& os,
                            int indent);

/// CSV rows for one snapshot: kind,name,value[,sum_seconds].
void WriteMetricsCsv(const MetricsSnapshot& snapshot, std::ostream& os);

/// Maps a registry metric name onto the Prometheus charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: dots (our namespace separator) and every
/// other invalid byte become '_', and a leading digit gets a '_' prefix.
/// `fed.probe_cache_hits` -> `fed_probe_cache_hits`.
std::string SanitizeMetricName(std::string_view name);

/// Serializes one merged snapshot in Prometheus text exposition format
/// (version 0.0.4): counters as `<name>_total`, gauges as `<name>` plus
/// `<name>_max`, histograms as cumulative-`le` `_bucket` series with `_sum`
/// and `_count`, each preceded by `# TYPE`. Names pass through
/// SanitizeMetricName; ordering is deterministic (snapshot map order).
void WritePrometheusText(const MetricsSnapshot& snapshot, std::ostream& os);

/// RAII phase section: on destruction adds the elapsed wall time to
/// `telemetry->phases[name]` and to the registry histogram
/// `phase.<name>`. The replacement for raw Stopwatch phase timing.
class PhaseTimer {
 public:
  PhaseTimer(RunTelemetry* telemetry, std::string name);
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  ~PhaseTimer();

  /// Ends the phase early (idempotent).
  void Stop();

 private:
  RunTelemetry* telemetry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

}  // namespace alex::obs

#endif  // ALEX_OBS_TELEMETRY_H_
