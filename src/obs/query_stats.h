#ifndef ALEX_OBS_QUERY_STATS_H_
#define ALEX_OBS_QUERY_STATS_H_

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace alex::obs {

/// Per-query cost accounting for the federated stack.
///
/// FederatedEngine opens a QueryStatsScope around each query; the endpoint
/// decorators (probe cache, retry layer, circuit breaker) and the rdf block
/// cache bump the thread's ActiveQueryStats as the query flows through
/// them. On completion the engine folds the tallies into a QueryStats
/// record and hands it to the global QueryLog, which keeps workload-level
/// aggregates plus a bounded ring of the slowest queries — each carrying
/// its trace id as an exemplar, so a slow entry in a telemetry sidecar
/// links straight to its span tree in the Chrome trace.
///
/// Like the trace context, propagation is thread-local: one federated query
/// executes entirely on one thread (the parallel workload path runs whole
/// queries per worker), so no cross-thread handoff is needed.

/// Mutable tally for the query currently executing on this thread. Plain
/// integers — only the owning thread touches it.
struct ActiveQueryStats {
  uint64_t probes = 0;
  uint64_t probe_cache_hits = 0;
  uint64_t probe_cache_misses = 0;
  uint64_t retries = 0;
  uint64_t breaker_rejections = 0;
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;
};

/// The tally of the innermost open QueryStatsScope on this thread, or
/// nullptr outside any federated query. Instrumentation sites null-check
/// and bump; the cost when no query is active is one thread-local load.
ActiveQueryStats* CurrentQueryStats();

/// RAII: installs `stats` as the thread's active tally, restoring the
/// previous one (normally nullptr) on destruction.
class QueryStatsScope {
 public:
  explicit QueryStatsScope(ActiveQueryStats* stats);
  QueryStatsScope(const QueryStatsScope&) = delete;
  QueryStatsScope& operator=(const QueryStatsScope&) = delete;
  ~QueryStatsScope();

 private:
  ActiveQueryStats* previous_;
};

/// RAII backstop for pooled worker threads: captures this thread's ambient
/// observability state — the active query tally AND the trace context — on
/// construction, and restores BOTH unconditionally on destruction.
///
/// QueryStatsScope and TraceSpan already restore their saved parents, but
/// each guards only its own slot, and only along the paths that open one
/// (spans compile to no-ops when tracing is off). A pooled thread that runs
/// one query and is then reused for the next would bleed whatever stale
/// pointer or context the first query left behind — phantom tallies on a
/// dead stack frame, or a second query's spans threaded into the first
/// query's trace id. Declare a ThreadStateGuard FIRST in the query's root
/// scope so it destructs LAST, after every span and stats scope, leaving
/// the worker thread exactly as it was found.
class ThreadStateGuard {
 public:
  ThreadStateGuard();
  ThreadStateGuard(const ThreadStateGuard&) = delete;
  ThreadStateGuard& operator=(const ThreadStateGuard&) = delete;
  ~ThreadStateGuard();

 private:
  ActiveQueryStats* saved_stats_;
  uint64_t saved_trace_id_;
  uint64_t saved_span_id_;
};

/// Immutable record of one completed federated query.
struct QueryStats {
  /// Trace id of the query's root span (0 when tracing was off): the
  /// exemplar linking this record to its tree in the Chrome trace.
  uint64_t trace_id = 0;
  double latency_seconds = 0.0;
  uint64_t probes = 0;
  uint64_t probe_cache_hits = 0;
  uint64_t probe_cache_misses = 0;
  uint64_t retries = 0;
  uint64_t breaker_rejections = 0;
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;
  uint64_t rows = 0;
  bool degraded = false;
  bool failed = false;
};

/// Workload-level aggregation plus a bounded log of the slowest queries.
/// Thread-safe; Record() takes one short critical section per query (a
/// query is orders of magnitude more work than the lock).
class QueryLog {
 public:
  /// Slowest-query entries retained (top-K by latency).
  static constexpr size_t kSlowCapacity = 32;

  static QueryLog& Global();

  void Record(const QueryStats& stats);

  struct Aggregate {
    uint64_t queries = 0;
    uint64_t degraded = 0;
    uint64_t failed = 0;
    uint64_t probes = 0;
    uint64_t retries = 0;
    uint64_t rows = 0;
    double total_latency_seconds = 0.0;
  };
  Aggregate Totals() const;

  /// The up-to-kSlowCapacity slowest queries, sorted slowest first.
  std::vector<QueryStats> Slowest() const;

  /// JSON array of the slowest queries (one object per query, stable field
  /// order) for telemetry sidecars. `indent` prefixes each line.
  void WriteSlowestJson(std::ostream& os, const std::string& indent) const;

  /// Drops all records and aggregates (tests and per-run sidecars).
  void Clear();

 private:
  QueryLog() = default;

  mutable std::mutex mu_;
  Aggregate totals_;
  /// Min-heap by latency would be overkill at K=32: a sorted insert into a
  /// small vector is cache-friendly and trivially correct.
  std::vector<QueryStats> slowest_;
};

}  // namespace alex::obs

#endif  // ALEX_OBS_QUERY_STATS_H_
