#ifndef ALEX_OBS_TELEMETRY_HUB_H_
#define ALEX_OBS_TELEMETRY_HUB_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "common/clock.h"
#include "obs/metrics.h"

namespace alex::obs {

/// Continuous telemetry: turns the end-of-run MetricsSnapshot into a live,
/// timestamped time series with SLO evaluation.
///
/// The hub is a passive sampler — no thread of its own, no wall sleeps.
/// Long-running call sites (ExecuteFederatedWorkload between queries, the
/// simulation episode loop, run_scenario) call MaybeSample(); when at least
/// `interval_seconds` of injected-clock time has passed since the last
/// sample, the hub snapshots the registry, stores the delta since the
/// previous sample, and evaluates every configured SLO against that
/// interval's activity. Driving it through alex::Clock means a SimClock
/// test can produce an arbitrarily long "timeline" deterministically in
/// microseconds.

/// One latency objective: "the q-quantile of <histogram> stays at or below
/// target_seconds". Evaluated per sampling interval from the delta
/// histogram via HistogramSnapshot::Quantile. Breaches burn error budget:
/// over any rolling `burn_window_seconds`, more than `budget_fraction` of
/// intervals in breach marks the budget exhausted.
struct SloConfig {
  std::string name;            // e.g. "fed_query_p99"
  std::string histogram;       // registry metric, e.g. "fed.query_seconds"
  double quantile = 0.99;      // in [0, 1]
  double target_seconds = 0.0;
  double burn_window_seconds = 60.0;
  double budget_fraction = 0.1;
};

/// The evaluation of one SLO at one sample point.
struct SloSample {
  bool evaluated = false;   // False when the interval had no observations.
  bool breached = false;
  double observed_seconds = 0.0;  // The interval's quantile estimate.
  double burn_rate = 0.0;   // Breached fraction of the rolling window.
  bool budget_exhausted = false;
};

/// One point of the time series.
struct TelemetrySample {
  double t_seconds = 0.0;          // Injected-clock timestamp.
  MetricsSnapshot delta;           // Activity since the previous sample.
  std::vector<SloSample> slos;     // Parallel to the hub's SLO configs.
};

class TelemetryHub {
 public:
  /// `clock` must outlive the hub. `max_samples` bounds memory: the series
  /// is a ring, oldest samples dropped first.
  TelemetryHub(const Clock* clock, double interval_seconds,
               size_t max_samples = 4096);

  /// Registers an SLO (before sampling starts; not thread-safe against
  /// concurrent MaybeSample).
  void AddSlo(SloConfig config);

  /// Samples if at least interval_seconds have elapsed since the previous
  /// sample (the first call always samples). Returns true when a sample was
  /// taken. Thread-safe; concurrent callers race benignly for the slot.
  bool MaybeSample();

  /// Samples unconditionally (end-of-run flush).
  void ForceSample();

  size_t sample_count() const;
  std::vector<TelemetrySample> Samples() const;
  const std::vector<SloConfig>& slos() const { return slos_; }

  /// Total SLO breaches across all samples and configs (also mirrored into
  /// the registry counter `obs.slo_breaches` as they happen).
  uint64_t breach_count() const;

  /// {"interval_seconds": ..., "slos": [...], "samples": [...]} — each
  /// sample with its timestamp, per-SLO evaluation, and the interval's
  /// counter deltas (histograms summarized as count/sum/p50/p99).
  void WriteJsonTimeline(std::ostream& os) const;

  /// Prometheus text exposition of the cumulative registry state at the
  /// last sample, plus per-SLO gauges (alex_slo_breached{slo="..."},
  /// alex_slo_burn_rate, alex_slo_observed_seconds).
  void WritePrometheus(std::ostream& os) const;

 private:
  void SampleLocked();

  const Clock* clock_;
  const double interval_seconds_;
  const size_t max_samples_;
  std::vector<SloConfig> slos_;

  mutable std::mutex mu_;
  bool has_sampled_ = false;
  double last_sample_t_ = 0.0;
  MetricsSnapshot last_snapshot_;
  std::deque<TelemetrySample> samples_;
  /// Per-SLO rolling breach history: (timestamp, breached) pairs within the
  /// burn window.
  std::vector<std::deque<std::pair<double, bool>>> breach_history_;
  uint64_t breaches_ = 0;
};

}  // namespace alex::obs

#endif  // ALEX_OBS_TELEMETRY_HUB_H_
