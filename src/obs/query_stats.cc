#include "obs/query_stats.h"

#include <algorithm>

#include "obs/trace.h"

namespace alex::obs {

namespace {
thread_local ActiveQueryStats* g_active_query_stats = nullptr;
}  // namespace

ActiveQueryStats* CurrentQueryStats() { return g_active_query_stats; }

QueryStatsScope::QueryStatsScope(ActiveQueryStats* stats)
    : previous_(g_active_query_stats) {
  g_active_query_stats = stats;
}

QueryStatsScope::~QueryStatsScope() { g_active_query_stats = previous_; }

ThreadStateGuard::ThreadStateGuard()
    : saved_stats_(g_active_query_stats),
      saved_trace_id_(TraceRecorder::CurrentContext().trace_id),
      saved_span_id_(TraceRecorder::CurrentContext().span_id) {}

ThreadStateGuard::~ThreadStateGuard() {
  g_active_query_stats = saved_stats_;
  TraceContext& ctx = TraceRecorder::CurrentContext();
  ctx.trace_id = saved_trace_id_;
  ctx.span_id = saved_span_id_;
}

QueryLog& QueryLog::Global() {
  static QueryLog* log = new QueryLog();
  return *log;
}

void QueryLog::Record(const QueryStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  ++totals_.queries;
  if (stats.degraded) ++totals_.degraded;
  if (stats.failed) ++totals_.failed;
  totals_.probes += stats.probes;
  totals_.retries += stats.retries;
  totals_.rows += stats.rows;
  totals_.total_latency_seconds += stats.latency_seconds;

  // Keep `slowest_` sorted descending by latency; insert only if the query
  // beats the current K-th entry.
  if (slowest_.size() >= kSlowCapacity &&
      stats.latency_seconds <= slowest_.back().latency_seconds) {
    return;
  }
  auto pos = std::upper_bound(
      slowest_.begin(), slowest_.end(), stats,
      [](const QueryStats& a, const QueryStats& b) {
        return a.latency_seconds > b.latency_seconds;
      });
  slowest_.insert(pos, stats);
  if (slowest_.size() > kSlowCapacity) slowest_.resize(kSlowCapacity);
}

QueryLog::Aggregate QueryLog::Totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_;
}

std::vector<QueryStats> QueryLog::Slowest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slowest_;
}

void QueryLog::WriteSlowestJson(std::ostream& os,
                                const std::string& indent) const {
  const std::vector<QueryStats> slowest = Slowest();
  os << "[";
  bool first = true;
  for (const QueryStats& q : slowest) {
    os << (first ? "\n" : ",\n") << indent << "  {"
       << "\"latency_seconds\": " << q.latency_seconds
       << ", \"trace_id\": " << q.trace_id << ", \"probes\": " << q.probes
       << ", \"probe_cache_hits\": " << q.probe_cache_hits
       << ", \"probe_cache_misses\": " << q.probe_cache_misses
       << ", \"retries\": " << q.retries
       << ", \"breaker_rejections\": " << q.breaker_rejections
       << ", \"block_cache_hits\": " << q.block_cache_hits
       << ", \"block_cache_misses\": " << q.block_cache_misses
       << ", \"rows\": " << q.rows
       << ", \"degraded\": " << (q.degraded ? "true" : "false")
       << ", \"failed\": " << (q.failed ? "true" : "false") << "}";
    first = false;
  }
  if (!first) os << "\n" << indent;
  os << "]";
}

void QueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  totals_ = Aggregate{};
  slowest_.clear();
}

}  // namespace alex::obs
