#include "obs/telemetry_hub.h"

#include <algorithm>
#include <cmath>
#include <iomanip>

#include "common/string_util.h"
#include "obs/telemetry.h"

namespace alex::obs {
namespace {

void WriteDouble(std::ostream& os, double v) {
  if (!std::isfinite(v)) v = 0.0;
  const auto flags = os.flags();
  const auto precision = os.precision();
  os << std::setprecision(9) << v;
  os.flags(flags);
  os.precision(precision);
}

}  // namespace

TelemetryHub::TelemetryHub(const Clock* clock, double interval_seconds,
                           size_t max_samples)
    : clock_(clock),
      interval_seconds_(interval_seconds),
      max_samples_(std::max<size_t>(1, max_samples)) {}

void TelemetryHub::AddSlo(SloConfig config) {
  slos_.push_back(std::move(config));
  breach_history_.emplace_back();
}

bool TelemetryHub::MaybeSample() {
  std::lock_guard<std::mutex> lock(mu_);
  const double now = clock_->NowSeconds();
  if (has_sampled_ && now - last_sample_t_ < interval_seconds_) return false;
  SampleLocked();
  return true;
}

void TelemetryHub::ForceSample() {
  std::lock_guard<std::mutex> lock(mu_);
  SampleLocked();
}

void TelemetryHub::SampleLocked() {
  const double now = clock_->NowSeconds();
  const MetricsSnapshot current = MetricsRegistry::Global().Snapshot();

  TelemetrySample sample;
  sample.t_seconds = now;
  sample.delta =
      has_sampled_ ? current.DeltaSince(last_snapshot_) : current;
  sample.slos.reserve(slos_.size());

  static Counter& breach_counter =
      MetricsRegistry::Global().counter("obs.slo_breaches");
  for (size_t i = 0; i < slos_.size(); ++i) {
    const SloConfig& slo = slos_[i];
    SloSample eval;
    auto it = sample.delta.histograms.find(slo.histogram);
    if (it != sample.delta.histograms.end() && it->second.count > 0) {
      eval.evaluated = true;
      eval.observed_seconds = it->second.Quantile(slo.quantile);
      eval.breached = eval.observed_seconds > slo.target_seconds;
      if (eval.breached) {
        ++breaches_;
        breach_counter.Add();
      }
    }
    // Roll the burn window forward; intervals with no traffic don't count
    // toward (or against) the budget.
    auto& history = breach_history_[i];
    if (eval.evaluated) history.emplace_back(now, eval.breached);
    while (!history.empty() &&
           now - history.front().first > slo.burn_window_seconds) {
      history.pop_front();
    }
    if (!history.empty()) {
      size_t breached = 0;
      for (const auto& [t, b] : history) breached += b ? 1 : 0;
      eval.burn_rate =
          static_cast<double>(breached) / static_cast<double>(history.size());
      eval.budget_exhausted = eval.burn_rate > slo.budget_fraction;
    }
    sample.slos.push_back(eval);
  }

  samples_.push_back(std::move(sample));
  while (samples_.size() > max_samples_) samples_.pop_front();
  has_sampled_ = true;
  last_sample_t_ = now;
  last_snapshot_ = current;
}

size_t TelemetryHub::sample_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_.size();
}

std::vector<TelemetrySample> TelemetryHub::Samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {samples_.begin(), samples_.end()};
}

uint64_t TelemetryHub::breach_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return breaches_;
}

void TelemetryHub::WriteJsonTimeline(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\n  \"interval_seconds\": ";
  WriteDouble(os, interval_seconds_);
  os << ",\n  \"slos\": [";
  for (size_t i = 0; i < slos_.size(); ++i) {
    const SloConfig& slo = slos_[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": \""
       << EscapeJson(slo.name) << "\", \"histogram\": \""
       << EscapeJson(slo.histogram) << "\", \"quantile\": ";
    WriteDouble(os, slo.quantile);
    os << ", \"target_seconds\": ";
    WriteDouble(os, slo.target_seconds);
    os << ", \"burn_window_seconds\": ";
    WriteDouble(os, slo.burn_window_seconds);
    os << ", \"budget_fraction\": ";
    WriteDouble(os, slo.budget_fraction);
    os << "}";
  }
  os << (slos_.empty() ? "" : "\n  ") << "],\n  \"samples\": [";
  bool first_sample = true;
  for (const TelemetrySample& sample : samples_) {
    os << (first_sample ? "\n" : ",\n") << "    {\"t_seconds\": ";
    WriteDouble(os, sample.t_seconds);
    first_sample = false;
    os << ", \"slos\": [";
    for (size_t i = 0; i < sample.slos.size(); ++i) {
      const SloSample& eval = sample.slos[i];
      if (i > 0) os << ", ";
      os << "{\"evaluated\": " << (eval.evaluated ? "true" : "false")
         << ", \"breached\": " << (eval.breached ? "true" : "false")
         << ", \"observed_seconds\": ";
      WriteDouble(os, eval.observed_seconds);
      os << ", \"burn_rate\": ";
      WriteDouble(os, eval.burn_rate);
      os << ", \"budget_exhausted\": "
         << (eval.budget_exhausted ? "true" : "false") << "}";
    }
    os << "], \"counters\": {";
    bool first_counter = true;
    for (const auto& [name, value] : sample.delta.counters) {
      if (value == 0) continue;  // Keep the timeline readable: activity only.
      if (!first_counter) os << ", ";
      first_counter = false;
      os << "\"" << EscapeJson(name) << "\": " << value;
    }
    os << "}, \"histograms\": {";
    bool first_hist = true;
    for (const auto& [name, hist] : sample.delta.histograms) {
      if (hist.count == 0) continue;
      if (!first_hist) os << ", ";
      first_hist = false;
      os << "\"" << EscapeJson(name) << "\": {\"count\": " << hist.count
         << ", \"sum_seconds\": ";
      WriteDouble(os, hist.sum);
      os << ", \"p50_seconds\": ";
      WriteDouble(os, hist.Quantile(0.5));
      os << ", \"p99_seconds\": ";
      WriteDouble(os, hist.Quantile(0.99));
      os << "}";
    }
    os << "}}";
  }
  os << (samples_.empty() ? "" : "\n  ") << "]\n}\n";
}

void TelemetryHub::WritePrometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  WritePrometheusText(last_snapshot_, os);
  if (slos_.empty() || samples_.empty()) return;
  const TelemetrySample& last = samples_.back();
  os << "# TYPE alex_slo_breached gauge\n";
  for (size_t i = 0; i < slos_.size() && i < last.slos.size(); ++i) {
    os << "alex_slo_breached{slo=\"" << SanitizeMetricName(slos_[i].name)
       << "\"} " << (last.slos[i].breached ? 1 : 0) << "\n";
  }
  os << "# TYPE alex_slo_burn_rate gauge\n";
  for (size_t i = 0; i < slos_.size() && i < last.slos.size(); ++i) {
    os << "alex_slo_burn_rate{slo=\"" << SanitizeMetricName(slos_[i].name)
       << "\"} ";
    WriteDouble(os, last.slos[i].burn_rate);
    os << "\n";
  }
  os << "# TYPE alex_slo_observed_seconds gauge\n";
  for (size_t i = 0; i < slos_.size() && i < last.slos.size(); ++i) {
    os << "alex_slo_observed_seconds{slo=\""
       << SanitizeMetricName(slos_[i].name) << "\"} ";
    WriteDouble(os, last.slos[i].observed_seconds);
    os << "\n";
  }
}

}  // namespace alex::obs
