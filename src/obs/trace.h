#ifndef ALEX_OBS_TRACE_H_
#define ALEX_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

namespace alex::obs {

/// Scoped tracing: RAII spans record begin/end into a lock-cheap per-thread
/// ring buffer, exportable as Chrome `trace_event` JSON loadable in
/// chrome://tracing and Perfetto.
///
/// Two gates keep the cost off hot paths:
///  - Compile time: the ALEX_TRACE_SPAN macro compiles to nothing when the
///    build sets ALEX_ENABLE_TRACING=OFF (no ALEX_TRACING_ENABLED define).
///  - Run time: even when compiled in, spans are inert (one relaxed atomic
///    load) until TraceRecorder::Global().SetEnabled(true).
///
/// Span names and categories must be string literals (or otherwise outlive
/// the recorder): only the pointers are stored.

/// One completed span. Timestamps are microseconds since the recorder's
/// epoch (its construction).
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  uint64_t ts_micros = 0;   // Span begin.
  uint64_t dur_micros = 0;  // Span duration.
  uint32_t tid = 0;         // Sequential per-thread id.
};

class TraceRecorder {
 public:
  /// Events each thread's ring buffer retains; older events are overwritten.
  static constexpr size_t kRingCapacity = 1 << 16;

  static TraceRecorder& Global();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one completed span on the calling thread's ring buffer.
  void Record(const char* category, const char* name, uint64_t ts_micros,
              uint64_t dur_micros);

  /// Microseconds since the recorder epoch.
  uint64_t NowMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// All retained events, merged across threads and sorted by (ts, tid).
  /// Within one thread, a span's children precede it (they end first).
  std::vector<TraceEvent> Events() const;

  /// Drops all retained events (buffers stay registered).
  void Clear();

  /// Writes all retained events as Chrome trace_event JSON (a complete
  /// "X"-phase event per span): {"traceEvents": [...]}.
  void WriteChromeTrace(std::ostream& os) const;

 private:
  /// Fixed-capacity overwrite-oldest ring. The owning thread appends;
  /// export/clear lock the same mutex, so concurrent export is safe. The
  /// mutex is thread-private in steady state — uncontended acquire.
  struct ThreadBuffer {
    std::mutex mu;
    std::vector<TraceEvent> ring;
    size_t next = 0;    // Ring slot the next event lands in.
    size_t count = 0;   // Total events ever recorded.
    uint32_t tid = 0;
  };

  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}
  ThreadBuffer& LocalBuffer();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex registry_mu_;
  /// shared_ptr keeps buffers of exited threads alive for export.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  uint32_t next_tid_ = 0;
};

/// RAII span: captures the start time on construction (when the recorder is
/// enabled) and records a TraceEvent on destruction. Use via the
/// ALEX_TRACE_SPAN macro so disabled builds drop the object entirely.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name)
      : active_(TraceRecorder::Global().enabled()) {
    if (active_) {
      category_ = category;
      name_ = name;
      start_micros_ = TraceRecorder::Global().NowMicros();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (active_) {
      TraceRecorder& recorder = TraceRecorder::Global();
      recorder.Record(category_, name_, start_micros_,
                      recorder.NowMicros() - start_micros_);
    }
  }

 private:
  bool active_;
  const char* category_ = nullptr;
  const char* name_ = nullptr;
  uint64_t start_micros_ = 0;
};

}  // namespace alex::obs

#define ALEX_OBS_CONCAT_INNER(a, b) a##b
#define ALEX_OBS_CONCAT(a, b) ALEX_OBS_CONCAT_INNER(a, b)

/// Opens a span covering the rest of the enclosing scope. Category and name
/// must be string literals. Compiles to nothing when the build disables
/// tracing (-DALEX_ENABLE_TRACING=OFF).
#ifdef ALEX_TRACING_ENABLED
#define ALEX_TRACE_SPAN(category, name)          \
  ::alex::obs::TraceSpan ALEX_OBS_CONCAT(        \
      alex_trace_span_, __LINE__)(category, name)
#else
#define ALEX_TRACE_SPAN(category, name) \
  do {                                  \
  } while (false)
#endif

#endif  // ALEX_OBS_TRACE_H_
