#ifndef ALEX_OBS_TRACE_H_
#define ALEX_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace alex::obs {

/// Scoped tracing: RAII spans record begin/end into a lock-cheap per-thread
/// ring buffer, exportable as Chrome `trace_event` JSON loadable in
/// chrome://tracing and Perfetto.
///
/// Two gates keep the cost off hot paths:
///  - Compile time: the ALEX_TRACE_SPAN macro compiles to nothing when the
///    build sets ALEX_ENABLE_TRACING=OFF (no ALEX_TRACING_ENABLED define).
///  - Run time: even when compiled in, spans are inert (one relaxed atomic
///    load) until TraceRecorder::Global().SetEnabled(true).
///
/// Span names and categories must be string literals (or otherwise outlive
/// the recorder): only the pointers are stored.
///
/// Causal context: every span carries a 64-bit trace id and span id, plus
/// the span id of its parent. A root span (TraceSpan::Root::kNewTrace, used
/// by FederatedEngine per query) mints a fresh trace id; child spans on the
/// same thread inherit it through a thread-local TraceContext, so one
/// federated query — plan execution, probe-cache lookups, retry attempts,
/// breaker decisions, block-cache reads — exports as one connected tree.

/// The ambient causal identity of the calling thread: which trace it is
/// inside and which span is the innermost open one. {0, 0} means "no open
/// trace". Saved/restored by TraceSpan, so it always mirrors the live span
/// stack of the thread.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

/// One key/value annotation on a span (pattern index, endpoint id, cache
/// hit/miss, attempt number, ...). Keys are string literals. Values are
/// either integers or strings interned into the recorder's table
/// (`string_index` indexes TraceRecorder arg strings when `is_string`).
struct TraceArg {
  const char* key = nullptr;
  int64_t value = 0;
  bool is_string = false;
};

/// Maximum annotations one span retains; extra AddArg calls are dropped.
inline constexpr size_t kMaxTraceArgs = 6;

/// One completed span. Timestamps are microseconds since the recorder's
/// epoch (its construction).
struct TraceEvent {
  const char* name = nullptr;
  const char* category = nullptr;
  uint64_t ts_micros = 0;   // Span begin.
  uint64_t dur_micros = 0;  // Span duration.
  uint32_t tid = 0;         // Sequential per-thread id.
  /// Causal identity: which query tree this span belongs to and where.
  /// 0 = untraced (an event recorded outside any TraceSpan, e.g. via the
  /// raw Record(category, name, ts, dur) overload).
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0 = root of its trace.
  TraceArg args[kMaxTraceArgs];
  uint32_t num_args = 0;
};

class TraceRecorder {
 public:
  /// Events each thread's ring buffer retains; older events are overwritten.
  static constexpr size_t kRingCapacity = 1 << 16;

  static TraceRecorder& Global();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one completed span on the calling thread's ring buffer
  /// (no causal ids, no args — kept for plain begin/end instrumentation
  /// and for tests that drive the ring directly).
  void Record(const char* category, const char* name, uint64_t ts_micros,
              uint64_t dur_micros);

  /// Records a fully populated event; `event.tid` is overwritten with the
  /// calling thread's id.
  void Record(TraceEvent event);

  /// Fresh process-unique ids (sequential, never 0).
  uint64_t NextTraceId() {
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// The calling thread's ambient trace context (mutable; TraceSpan
  /// saves/restores it around each scope).
  static TraceContext& CurrentContext();

  /// Interns a string argument value, returning its table index. The table
  /// only grows; Clear() does not drop it (events may still reference it).
  uint32_t InternArgString(std::string_view value);

  /// The interned string for a TraceArg with is_string set.
  std::string ArgString(size_t index) const;

  /// Microseconds since the recorder epoch.
  uint64_t NowMicros() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// All retained events, merged across threads and sorted by (ts, tid).
  /// Within one thread, a span's children precede it (they end first).
  std::vector<TraceEvent> Events() const;

  /// Drops all retained events (buffers stay registered).
  void Clear();

  /// Writes all retained events as Chrome trace_event JSON (a complete
  /// "X"-phase event per span): {"traceEvents": [...]}. Causal ids and
  /// AddArg annotations are emitted under each event's "args" object
  /// (trace_id / span_id / parent_span_id plus the span's own keys), which
  /// is where Perfetto surfaces them.
  void WriteChromeTrace(std::ostream& os) const;

 private:
  /// Fixed-capacity overwrite-oldest ring. The owning thread appends;
  /// export/clear lock the same mutex, so concurrent export is safe. The
  /// mutex is thread-private in steady state — uncontended acquire.
  struct ThreadBuffer {
    std::mutex mu;
    std::vector<TraceEvent> ring;
    size_t next = 0;    // Ring slot the next event lands in.
    size_t count = 0;   // Total events ever recorded.
    uint32_t tid = 0;
  };

  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}
  ThreadBuffer& LocalBuffer();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> next_trace_id_{0};
  std::atomic<uint64_t> next_span_id_{0};
  mutable std::mutex registry_mu_;
  /// shared_ptr keeps buffers of exited threads alive for export.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  uint32_t next_tid_ = 0;
  /// Interned string argument values (append-only).
  std::vector<std::string> arg_strings_;
};

/// RAII span: captures the start time on construction (when the recorder is
/// enabled) and records a TraceEvent on destruction. Use via the
/// ALEX_TRACE_SPAN / ALEX_TRACE_SPAN_VAR macros so disabled builds drop the
/// object entirely.
class TraceSpan {
 public:
  enum class Root {
    kInherit,   // Join the thread's current trace (fresh trace if none).
    kNewTrace,  // Mint a fresh trace id: this span is a query root.
  };

  TraceSpan(const char* category, const char* name,
            Root root = Root::kInherit)
      : active_(TraceRecorder::Global().enabled()) {
    if (active_) {
      TraceRecorder& recorder = TraceRecorder::Global();
      category_ = category;
      name_ = name;
      TraceContext& context = TraceRecorder::CurrentContext();
      parent_ = context;
      trace_id_ = (root == Root::kNewTrace || parent_.trace_id == 0)
                      ? recorder.NextTraceId()
                      : parent_.trace_id;
      span_id_ = recorder.NextSpanId();
      context.trace_id = trace_id_;
      context.span_id = span_id_;
      start_micros_ = recorder.NowMicros();
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (active_) {
      TraceRecorder& recorder = TraceRecorder::Global();
      TraceRecorder::CurrentContext() = parent_;
      TraceEvent event;
      event.name = name_;
      event.category = category_;
      event.ts_micros = start_micros_;
      event.dur_micros = recorder.NowMicros() - start_micros_;
      event.trace_id = trace_id_;
      event.span_id = span_id_;
      // A root span reports no parent even if an outer span was open (the
      // query tree starts here).
      event.parent_span_id = (trace_id_ == parent_.trace_id)
                                 ? parent_.span_id
                                 : 0;
      event.num_args = num_args_;
      for (uint32_t i = 0; i < num_args_; ++i) event.args[i] = args_[i];
      recorder.Record(event);
    }
  }

  /// Annotates the span (no-op when inactive; extra args beyond
  /// kMaxTraceArgs are dropped). Keys must be string literals. One template
  /// covers every integral type (including bool → 0/1) so call sites avoid
  /// overload ambiguity between signed and unsigned conversions.
  template <typename T>
    requires std::is_integral_v<T>
  void AddArg(const char* key, T value) {
    if (!active_ || num_args_ >= kMaxTraceArgs) return;
    args_[num_args_++] =
        TraceArg{key, static_cast<int64_t>(value), /*is_string=*/false};
  }
  /// String values are interned in the recorder (copied; the argument need
  /// not outlive the call).
  void AddArg(const char* key, std::string_view value) {
    if (!active_ || num_args_ >= kMaxTraceArgs) return;
    const uint32_t index = TraceRecorder::Global().InternArgString(value);
    args_[num_args_++] =
        TraceArg{key, static_cast<int64_t>(index), /*is_string=*/true};
  }

  /// Causal ids of this span; 0 when the recorder was disabled at
  /// construction (callers use 0 as "untraced" in exemplars).
  uint64_t trace_id() const { return trace_id_; }
  uint64_t span_id() const { return span_id_; }
  bool active() const { return active_; }

 private:
  bool active_;
  const char* category_ = nullptr;
  const char* name_ = nullptr;
  uint64_t start_micros_ = 0;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  TraceContext parent_;
  TraceArg args_[kMaxTraceArgs];
  uint32_t num_args_ = 0;
};

/// Compiled-out stand-in for TraceSpan: every member is an inline no-op, so
/// ALEX_TRACE_SPAN_VAR call sites (including their AddArg calls) vanish
/// entirely under -DALEX_ENABLE_TRACING=OFF.
class NullTraceSpan {
 public:
  NullTraceSpan() = default;
  template <typename... Args>
  void AddArg(const char*, Args&&...) {}
  uint64_t trace_id() const { return 0; }
  uint64_t span_id() const { return 0; }
  bool active() const { return false; }
};

}  // namespace alex::obs

#define ALEX_OBS_CONCAT_INNER(a, b) a##b
#define ALEX_OBS_CONCAT(a, b) ALEX_OBS_CONCAT_INNER(a, b)

/// ALEX_TRACE_SPAN(category, name): opens an anonymous span covering the
/// rest of the enclosing scope.
/// ALEX_TRACE_SPAN_VAR(var, category, name): same, but named, so the call
/// site can AddArg / read trace_id().
/// ALEX_TRACE_ROOT_SPAN_VAR(var, category, name): named span that starts a
/// fresh trace (one per federated query).
/// Category and name must be string literals. All three compile to nothing
/// (NullTraceSpan for the named forms) when the build disables tracing
/// (-DALEX_ENABLE_TRACING=OFF).
#ifdef ALEX_TRACING_ENABLED
#define ALEX_TRACE_SPAN(category, name)          \
  ::alex::obs::TraceSpan ALEX_OBS_CONCAT(        \
      alex_trace_span_, __LINE__)(category, name)
#define ALEX_TRACE_SPAN_VAR(var, category, name) \
  ::alex::obs::TraceSpan var(category, name)
#define ALEX_TRACE_ROOT_SPAN_VAR(var, category, name)  \
  ::alex::obs::TraceSpan var(category, name,           \
                             ::alex::obs::TraceSpan::Root::kNewTrace)
#else
#define ALEX_TRACE_SPAN(category, name) \
  do {                                  \
  } while (false)
#define ALEX_TRACE_SPAN_VAR(var, category, name) \
  ::alex::obs::NullTraceSpan var
#define ALEX_TRACE_ROOT_SPAN_VAR(var, category, name) \
  ::alex::obs::NullTraceSpan var
#endif

#endif  // ALEX_OBS_TRACE_H_
