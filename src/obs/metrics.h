#ifndef ALEX_OBS_METRICS_H_
#define ALEX_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace alex::obs {

using ::alex::Result;

/// Process-wide observability primitives (the paper's evaluation is all
/// about *where time goes* — Sections 6.3 and 7.3 — so every scaling PR
/// needs first-class counters instead of ad-hoc stopwatches).
///
/// Design constraints, in order:
///  1. Instrumented hot paths must stay contention-free under the partition
///     thread pool: counters and histograms are sharded into cache-line
///     padded atomic cells indexed by a per-thread shard id, written with
///     relaxed fetch_add and merged only on snapshot.
///  2. Metric handles are stable for the process lifetime. `ResetForTest()`
///     zeroes values but never invalidates pointers, so call sites may cache
///     `static Counter& c = MetricsRegistry::Global().counter("x");`.
///  3. Snapshots are deterministic: merged values are keyed by name in a
///     sorted map, so two snapshots of identical activity compare equal and
///     serialize identically.

/// Number of independent per-thread cells each sharded metric carries.
/// Power of two; threads hash onto cells by a sequentially assigned id, so
/// up to kMetricShards threads never share a cache line.
inline constexpr size_t kMetricShards = 16;

namespace internal {

/// Shard index of the calling thread (stable per thread, assigned on first
/// use from a global sequence, wrapped into [0, kMetricShards)).
size_t ThreadShard();

struct alignas(64) PaddedCell {
  std::atomic<uint64_t> value{0};
};

}  // namespace internal

/// Monotonic event counter. Add() is wait-free and contention-free across
/// the thread pool; Value() merges the shards.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    cells_[internal::ThreadShard()].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  internal::PaddedCell cells_[kMetricShards];
};

/// Point-in-time signed value (queue depths, live object counts). Updated
/// rarely relative to counters, so a single atomic cell suffices.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  /// Tracks the largest value ever Set/Add-ed through UpdateMax.
  void UpdateMax(int64_t v) {
    int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t MaxValue() const { return max_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0); max_.store(0); }

 private:
  std::atomic<int64_t> value_{0};
  std::atomic<int64_t> max_{0};
};

/// Merged, immutable view of one histogram.
struct HistogramSnapshot {
  /// Upper bounds (seconds) of the finite buckets; an implicit +inf bucket
  /// follows. counts.size() == bounds.size() + 1.
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;   // Total observations.
  double sum = 0.0;     // Sum of observed values, in seconds.

  double Mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  /// Estimated q-quantile (q in [0, 1], clamped) with linear interpolation
  /// inside the containing bucket — Prometheus `histogram_quantile`
  /// semantics: the first bucket interpolates from 0, and a rank landing in
  /// the +inf bucket returns the highest finite bound (the estimate cannot
  /// exceed what the ladder can resolve). Returns 0 when empty.
  double Quantile(double q) const;

  bool operator==(const HistogramSnapshot&) const = default;
};

/// Fixed-bucket latency histogram, sharded like Counter. Values are in
/// seconds; the default bucket ladder spans 1µs .. ~60s exponentially.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  /// Records one observation (seconds). Wait-free, contention-free.
  void Observe(double seconds);

  HistogramSnapshot Snapshot() const;
  void Reset();

  /// The normalized (sorted, deduplicated) finite bucket bounds.
  const std::vector<double>& bucket_bounds() const { return bounds_; }

  static std::vector<double> DefaultLatencyBounds();

 private:
  struct alignas(64) Shard {
    /// counts[i] covers (bounds[i-1], bounds[i]]; last slot is +inf.
    std::vector<std::atomic<uint64_t>> counts;
    std::atomic<uint64_t> sum_nanos{0};
    explicit Shard(size_t n) : counts(n) {}
  };

  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Deterministic merged view of the whole registry; keyed by metric name.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, int64_t> gauge_maxes;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Activity since `before`: counters and histogram counts/sums subtract;
  /// gauges keep their current (point-in-time) value. Subtraction saturates
  /// at zero, so a metric reset between the two snapshots (e.g.
  /// ResetForTest between workload phases) yields a zero delta instead of
  /// wrapping to a near-2^64 value. `before` should come from the same
  /// registry, earlier in time.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& before) const;

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Process-wide named-metric registry. Creation is mutex-guarded and
/// idempotent; returned references stay valid for the process lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Default latency bucket ladder; never conflicts with an existing
  /// registration (any bounds satisfy a bounds-agnostic lookup).
  Histogram& histogram(std::string_view name);
  /// A histogram's bounds are fixed by its first explicit registration.
  /// Re-registering with different bounds (after sort/dedup normalization)
  /// is a programming error: it fails loudly — an error log naming the
  /// metric — and returns the existing histogram, so counts never land in
  /// surprise buckets silently. Use TryHistogram to handle the conflict
  /// programmatically.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);
  /// Like histogram(name, bounds) but reports a bounds conflict as
  /// InvalidArgument instead of logging.
  Result<Histogram*> TryHistogram(std::string_view name,
                                  std::vector<double> bounds);

  /// Merges every metric into a deterministic snapshot.
  MetricsSnapshot Snapshot() const;

  /// Zeroes all values. Handles remain valid (tests only; not for use
  /// while instrumented code runs concurrently).
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// RAII timer: on destruction records the elapsed wall time into a
/// histogram and, optionally, accumulates it into `*sink_seconds`. The
/// registry-backed replacement for the raw Stopwatch timing scattered
/// through the engine and benches.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram, double* sink_seconds = nullptr)
      : histogram_(&histogram),
        sink_seconds_(sink_seconds),
        start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    histogram_->Observe(seconds);
    if (sink_seconds_ != nullptr) *sink_seconds_ += seconds;
  }

 private:
  Histogram* histogram_;
  double* sink_seconds_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace alex::obs

#endif  // ALEX_OBS_METRICS_H_
