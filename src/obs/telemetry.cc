#include "obs/telemetry.h"

#include <cmath>
#include <iomanip>

#include "common/string_util.h"

namespace alex::obs {
namespace {

/// Two-space indentation prefix.
std::string Pad(int indent) { return std::string(2 * indent, ' '); }

/// Doubles are serialized with enough digits to round-trip; NaN/inf (never
/// produced by timers, but defensively) become 0.
void WriteDouble(std::ostream& os, double v) {
  if (!std::isfinite(v)) v = 0.0;
  const auto flags = os.flags();
  const auto precision = os.precision();
  os << std::setprecision(9) << v;
  os.flags(flags);
  os.precision(precision);
}

}  // namespace

void RunTelemetry::AddPhase(const std::string& name, double seconds) {
  for (auto& [existing, total] : phases) {
    if (existing == name) {
      total += seconds;
      return;
    }
  }
  phases.emplace_back(name, seconds);
}

double RunTelemetry::PhaseSecondsTotal() const {
  double total = 0.0;
  for (const auto& [name, seconds] : phases) total += seconds;
  return total;
}

void WriteMetricsJsonFields(const MetricsSnapshot& snapshot, std::ostream& os,
                            int indent) {
  const std::string pad = Pad(indent);
  const std::string pad1 = Pad(indent + 1);
  os << pad << "\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    os << (first ? "\n" : ",\n") << pad1 << "\"" << EscapeJson(name)
       << "\": " << value;
    first = false;
  }
  os << (first ? "" : "\n" + pad) << "},\n";

  os << pad << "\"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    os << (first ? "\n" : ",\n") << pad1 << "\"" << EscapeJson(name)
       << "\": " << value;
    auto max_it = snapshot.gauge_maxes.find(name);
    if (max_it != snapshot.gauge_maxes.end()) {
      os << ",\n" << pad1 << "\"" << EscapeJson(name)
         << ".max\": " << max_it->second;
    }
    first = false;
  }
  os << (first ? "" : "\n" + pad) << "},\n";

  os << pad << "\"histograms\": {";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    os << (first ? "\n" : ",\n") << pad1 << "\"" << EscapeJson(name)
       << "\": {\"count\": " << hist.count << ", \"sum_seconds\": ";
    WriteDouble(os, hist.sum);
    os << ", \"mean_seconds\": ";
    WriteDouble(os, hist.Mean());
    os << ", \"buckets\": [";
    for (size_t i = 0; i < hist.counts.size(); ++i) {
      if (i > 0) os << ", ";
      os << "{\"le\": ";
      if (i < hist.bounds.size()) {
        WriteDouble(os, hist.bounds[i]);
      } else {
        os << "\"inf\"";
      }
      os << ", \"count\": " << hist.counts[i] << "}";
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n" + pad) << "}";
}

void RunTelemetry::WriteJson(std::ostream& os, int indent) const {
  const std::string pad = Pad(indent);
  const std::string pad1 = Pad(indent + 1);
  const std::string pad2 = Pad(indent + 2);
  os << pad << "{\n";
  os << pad1 << "\"wall_seconds\": ";
  WriteDouble(os, wall_seconds);
  os << ",\n";
  os << pad1 << "\"phase_seconds_total\": ";
  WriteDouble(os, PhaseSecondsTotal());
  os << ",\n";
  os << pad1 << "\"phases\": {";
  bool first = true;
  for (const auto& [name, seconds] : phases) {
    os << (first ? "\n" : ",\n") << pad2 << "\"" << EscapeJson(name)
       << "\": ";
    WriteDouble(os, seconds);
    first = false;
  }
  os << (first ? "" : "\n" + pad1) << "},\n";
  WriteMetricsJsonFields(metrics, os, indent + 1);
  os << "\n" << pad << "}";
}

void WriteMetricsCsv(const MetricsSnapshot& snapshot, std::ostream& os) {
  for (const auto& [name, value] : snapshot.counters) {
    os << "counter," << name << "," << value << ",\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    os << "gauge," << name << "," << value << ",\n";
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    os << "histogram," << name << "," << hist.count << ",";
    WriteDouble(os, hist.sum);
    os << "\n";
  }
}

std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    const bool digit = (c >= '0' && c <= '9');
    if (alpha || (digit && i > 0)) {
      out.push_back(c);
    } else if (digit) {
      // Leading digit: prefix rather than drop, so "2xx" -> "_2xx".
      out.push_back('_');
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty()) return "_";
  return out;
}

void WritePrometheusText(const MetricsSnapshot& snapshot, std::ostream& os) {
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = SanitizeMetricName(name) + "_total";
    os << "# TYPE " << prom << " counter\n" << prom << " " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = SanitizeMetricName(name);
    os << "# TYPE " << prom << " gauge\n" << prom << " " << value << "\n";
    auto max_it = snapshot.gauge_maxes.find(name);
    if (max_it != snapshot.gauge_maxes.end()) {
      os << "# TYPE " << prom << "_max gauge\n"
         << prom << "_max " << max_it->second << "\n";
    }
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string prom = SanitizeMetricName(name);
    os << "# TYPE " << prom << " histogram\n";
    // Prometheus buckets are cumulative: each `le` series counts every
    // observation at or below the bound, ending with le="+Inf" == _count.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < hist.counts.size(); ++i) {
      cumulative += hist.counts[i];
      os << prom << "_bucket{le=\"";
      if (i < hist.bounds.size()) {
        WriteDouble(os, hist.bounds[i]);
      } else {
        os << "+Inf";
      }
      os << "\"} " << cumulative << "\n";
    }
    os << prom << "_sum ";
    WriteDouble(os, hist.sum);
    os << "\n" << prom << "_count " << hist.count << "\n";
  }
}

void RunTelemetry::WriteCsv(std::ostream& os) const {
  os << "kind,name,value,sum_seconds\n";
  os << "run,wall_seconds,,";
  WriteDouble(os, wall_seconds);
  os << "\n";
  for (const auto& [name, seconds] : phases) {
    os << "phase," << name << ",,";
    WriteDouble(os, seconds);
    os << "\n";
  }
  WriteMetricsCsv(metrics, os);
}

PhaseTimer::PhaseTimer(RunTelemetry* telemetry, std::string name)
    : telemetry_(telemetry),
      name_(std::move(name)),
      start_(std::chrono::steady_clock::now()) {}

void PhaseTimer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  if (telemetry_ != nullptr) telemetry_->AddPhase(name_, seconds);
  MetricsRegistry::Global().histogram("phase." + name_).Observe(seconds);
}

PhaseTimer::~PhaseTimer() { Stop(); }

}  // namespace alex::obs
