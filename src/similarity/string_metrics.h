#ifndef ALEX_SIMILARITY_STRING_METRICS_H_
#define ALEX_SIMILARITY_STRING_METRICS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace alex::sim {

/// Edit distance (insert/delete/substitute, unit costs).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// 1 - distance / max(len); 1.0 for two empty strings.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler with standard prefix scale 0.1 and max prefix 4.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Jaccard overlap of lowercase word-token sets.
double TokenJaccardSimilarity(std::string_view a, std::string_view b);

/// Dice coefficient over character trigram multisets (strings are padded
/// conceptually by using all contiguous 3-grams; shorter strings fall back
/// to whole-string equality).
double TrigramDiceSimilarity(std::string_view a, std::string_view b);

/// Precomputed derived forms of one string, so repeated comparisons stop
/// re-lowercasing, re-tokenizing, and re-extracting trigrams per call —
/// those allocations dominate the cost of TokenJaccardSimilarity /
/// TrigramDiceSimilarity when the same value is compared many times (as in
/// link-space construction, where each attribute value meets every blocked
/// counterpart).
struct StringProfile {
  std::string lower;                // ToLowerAscii of the original string.
  std::vector<std::string> tokens;  // Sorted, deduplicated WordTokens(lower).
  std::vector<uint32_t> trigrams;   // Sorted trigram multiset of `lower`.
};

/// Builds the profile of `s` (lowercasing it first, matching the
/// StringSimilarity(string_view, string_view) pipeline).
StringProfile MakeStringProfile(std::string_view s);

/// Profile-based variants. Each returns bit-identical doubles to its
/// string_view counterpart applied to the profiles' `lower` strings: the
/// set/multiset intersection sizes are computed by two-pointer merges over
/// the sorted profile arrays, which yield the same integer counts as the
/// hash-based originals, and the final arithmetic is unchanged.
double TokenJaccardSimilarity(const StringProfile& a, const StringProfile& b);
double TrigramDiceSimilarity(const StringProfile& a, const StringProfile& b);

}  // namespace alex::sim

#endif  // ALEX_SIMILARITY_STRING_METRICS_H_
