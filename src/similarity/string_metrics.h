#ifndef ALEX_SIMILARITY_STRING_METRICS_H_
#define ALEX_SIMILARITY_STRING_METRICS_H_

#include <string_view>

namespace alex::sim {

/// Edit distance (insert/delete/substitute, unit costs).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// 1 - distance / max(len); 1.0 for two empty strings.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler with standard prefix scale 0.1 and max prefix 4.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Jaccard overlap of lowercase word-token sets.
double TokenJaccardSimilarity(std::string_view a, std::string_view b);

/// Dice coefficient over character trigram multisets (strings are padded
/// conceptually by using all contiguous 3-grams; shorter strings fall back
/// to whole-string equality).
double TrigramDiceSimilarity(std::string_view a, std::string_view b);

}  // namespace alex::sim

#endif  // ALEX_SIMILARITY_STRING_METRICS_H_
