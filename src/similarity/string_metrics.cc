#include "similarity/string_metrics.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/string_util.h"

namespace alex::sim {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  std::vector<size_t> prev(n + 1);
  std::vector<size_t> cur(n + 1);
  for (size_t i = 0; i <= n; ++i) prev[i] = i;
  for (size_t j = 1; j <= m; ++j) {
    cur[0] = j;
    for (size_t i = 1; i <= n; ++i) {
      size_t sub = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min({prev[i] + 1, cur[i - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[n];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t n = a.size();
  const size_t m = b.size();
  const size_t window =
      std::max<size_t>(1, std::max(n, m) / 2) - (std::max(n, m) >= 2 ? 1 : 0);
  std::vector<bool> a_matched(n, false);
  std::vector<bool> b_matched(m, false);
  size_t matches = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(m, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  size_t transpositions = 0;
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[k]) ++k;
    if (a[i] != b[k]) ++transpositions;
    ++k;
  }
  const double mf = static_cast<double>(matches);
  return (mf / n + mf / m + (mf - transpositions / 2.0) / mf) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  const size_t max_prefix = std::min<size_t>({4, a.size(), b.size()});
  while (prefix < max_prefix && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * 0.1 * (1.0 - jaro);
}

double TokenJaccardSimilarity(std::string_view a, std::string_view b) {
  std::vector<std::string> ta = WordTokens(a);
  std::vector<std::string> tb = WordTokens(b);
  if (ta.empty() && tb.empty()) return 1.0;
  if (ta.empty() || tb.empty()) return 0.0;
  std::unordered_set<std::string> sa(ta.begin(), ta.end());
  std::unordered_set<std::string> sb(tb.begin(), tb.end());
  size_t inter = 0;
  for (const auto& t : sa) {
    if (sb.count(t)) ++inter;
  }
  const size_t uni = sa.size() + sb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

namespace {

// Packs a character trigram into a 32-bit key.
std::vector<uint32_t> Trigrams(std::string_view s) {
  std::vector<uint32_t> grams;
  if (s.size() < 3) return grams;
  grams.reserve(s.size() - 2);
  for (size_t i = 0; i + 3 <= s.size(); ++i) {
    grams.push_back(static_cast<uint32_t>(static_cast<unsigned char>(s[i]))
                        << 16 |
                    static_cast<uint32_t>(static_cast<unsigned char>(s[i + 1]))
                        << 8 |
                    static_cast<uint32_t>(static_cast<unsigned char>(s[i + 2])));
  }
  return grams;
}

}  // namespace

double TrigramDiceSimilarity(std::string_view a, std::string_view b) {
  if (a.size() < 3 || b.size() < 3) return a == b ? 1.0 : 0.0;
  std::vector<uint32_t> ga = Trigrams(a);
  std::vector<uint32_t> gb = Trigrams(b);
  std::unordered_map<uint32_t, size_t> counts;
  for (uint32_t g : ga) ++counts[g];
  size_t inter = 0;
  for (uint32_t g : gb) {
    auto it = counts.find(g);
    if (it != counts.end() && it->second > 0) {
      --it->second;
      ++inter;
    }
  }
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(ga.size() + gb.size());
}

StringProfile MakeStringProfile(std::string_view s) {
  StringProfile p;
  p.lower = ToLowerAscii(s);
  p.tokens = WordTokens(p.lower);
  std::sort(p.tokens.begin(), p.tokens.end());
  p.tokens.erase(std::unique(p.tokens.begin(), p.tokens.end()),
                 p.tokens.end());
  p.trigrams = Trigrams(p.lower);
  std::sort(p.trigrams.begin(), p.trigrams.end());
  return p;
}

double TokenJaccardSimilarity(const StringProfile& a, const StringProfile& b) {
  // Mirrors the hash-set original: empty token lists short-circuit, then
  // Jaccard over the distinct-token sets. Two-pointer intersection over the
  // sorted unique arrays counts exactly |sa ∩ sb|.
  if (a.tokens.empty() && b.tokens.empty()) return 1.0;
  if (a.tokens.empty() || b.tokens.empty()) return 0.0;
  size_t inter = 0;
  auto ia = a.tokens.begin();
  auto ib = b.tokens.begin();
  while (ia != a.tokens.end() && ib != b.tokens.end()) {
    const int cmp = ia->compare(*ib);
    if (cmp < 0) {
      ++ia;
    } else if (cmp > 0) {
      ++ib;
    } else {
      ++inter;
      ++ia;
      ++ib;
    }
  }
  const size_t uni = a.tokens.size() + b.tokens.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double TrigramDiceSimilarity(const StringProfile& a, const StringProfile& b) {
  // Mirrors the counting-map original: multiset intersection size is
  // sum over gram values of min(count_a, count_b), which the two-pointer
  // merge over the sorted multisets computes directly.
  if (a.lower.size() < 3 || b.lower.size() < 3) {
    return a.lower == b.lower ? 1.0 : 0.0;
  }
  size_t inter = 0;
  auto ia = a.trigrams.begin();
  auto ib = b.trigrams.begin();
  while (ia != a.trigrams.end() && ib != b.trigrams.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++inter;
      ++ia;
      ++ib;
    }
  }
  return 2.0 * static_cast<double>(inter) /
         static_cast<double>(a.trigrams.size() + b.trigrams.size());
}

}  // namespace alex::sim
