#ifndef ALEX_SIMILARITY_SIMILARITY_H_
#define ALEX_SIMILARITY_SIMILARITY_H_

#include "rdf/term.h"
#include "similarity/string_metrics.h"
#include "similarity/value.h"

namespace alex::sim {

/// The generic similarity function of paper Section 4.1: returns a score in
/// [0, 1] between two attribute values, dispatching on their detected types.
///
/// - numeric vs numeric: relative-difference proximity;
/// - date vs date: day-distance proximity with a ten-year horizon;
/// - anything else (or mixed types): string similarity over the lowercase
///   lexical forms, taking the max of Jaro-Winkler and token-Jaccard so both
///   typo-level noise ("Jon" / "John") and token reordering
///   ("LeBron James" / "James, LeBron") score high.
///
/// Symmetric and deterministic.
double ValueSimilarity(const TypedValue& a, const TypedValue& b);

/// Profile-accelerated variant: `pa`/`pb` must be the StringProfiles of
/// `a.text`/`b.text`. When both are non-null the string branch runs on the
/// precomputed profiles (no lowercasing/tokenization/trigram extraction per
/// call); either may be nullptr to fall back to the direct path for that
/// comparison. Returns bit-identical doubles to the two-argument overload.
double ValueSimilarity(const TypedValue& a, const TypedValue& b,
                       const StringProfile* pa, const StringProfile* pb);

/// Parses both terms and delegates to ValueSimilarity.
double TermSimilarity(const rdf::Term& a, const rdf::Term& b);

/// String-only similarity used for value comparison and by the PARIS
/// substrate: max(token Jaccard, trigram Dice) over lowercased inputs.
///
/// Deliberately *sharp*: unrelated strings score near 0 (unlike
/// Jaro-Winkler, which floors around 0.4-0.5 for random strings), so the
/// paper's θ = 0.3 search-space filter (Section 6.1) removes ~95% of random
/// pairs as reported in Figure 5, while typo-level noise (high trigram
/// overlap) and token reordering (full Jaccard) still score high.
double StringSimilarity(std::string_view a, std::string_view b);

/// Numeric proximity: 1 when equal, decaying steeply (slope 20 on relative
/// difference) so only near-equal numbers pass the θ filter.
double NumericSimilarity(double a, double b);

/// Date proximity: 1 when equal, linearly decaying to 0 at eighteen months apart.
double DateSimilarity(int32_t days_a, int32_t days_b);

}  // namespace alex::sim

#endif  // ALEX_SIMILARITY_SIMILARITY_H_
