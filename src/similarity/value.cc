#include "similarity/value.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace alex::sim {
namespace {

bool AllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool LooksLikeInteger(std::string_view s) {
  if (!s.empty() && (s[0] == '-' || s[0] == '+')) s.remove_prefix(1);
  return AllDigits(s) && s.size() <= 18;
}

bool LooksLikeDouble(std::string_view s) {
  if (s.empty()) return false;
  size_t i = 0;
  if (s[i] == '-' || s[i] == '+') ++i;
  bool digits = false;
  bool dot = false;
  for (; i < s.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      digits = true;
    } else if (s[i] == '.' && !dot) {
      dot = true;
    } else {
      return false;
    }
  }
  return digits && dot;
}

bool ParseInt(std::string_view s, int64_t* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  // std::from_chars for double is not universally available; use strtod.
  std::string buf(s);
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size() && !buf.empty();
}

}  // namespace

std::string_view IriLocalName(std::string_view iri) {
  size_t hash = iri.rfind('#');
  if (hash != std::string_view::npos && hash + 1 < iri.size()) {
    return iri.substr(hash + 1);
  }
  size_t slash = iri.rfind('/');
  if (slash != std::string_view::npos && slash + 1 < iri.size()) {
    return iri.substr(slash + 1);
  }
  return iri;
}

int32_t DaysFromCivil(int year, int month, int day) {
  // Howard Hinnant's civil-days algorithm.
  year -= month <= 2;
  const int era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(month + (month > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(day) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int32_t>(doe) - 719468;
}

bool ParseIsoDate(std::string_view s, int32_t* days_out) {
  // Strict YYYY-MM-DD.
  if (s.size() != 10 || s[4] != '-' || s[7] != '-') return false;
  int64_t y = 0, m = 0, d = 0;
  if (!ParseInt(s.substr(0, 4), &y) || !ParseInt(s.substr(5, 2), &m) ||
      !ParseInt(s.substr(8, 2), &d)) {
    return false;
  }
  if (m < 1 || m > 12 || d < 1 || d > 31) return false;
  *days_out = DaysFromCivil(static_cast<int>(y), static_cast<int>(m),
                            static_cast<int>(d));
  return true;
}

TypedValue ParseValue(const rdf::Term& term) {
  TypedValue v;
  if (term.is_iri()) {
    v.kind = ValueKind::kString;
    v.text = std::string(IriLocalName(term.value));
    return v;
  }
  if (term.is_blank()) {
    v.kind = ValueKind::kString;
    v.text = term.value;
    return v;
  }
  v.text = term.value;
  const std::string& dt = term.datatype;
  if (dt == rdf::kXsdInteger || (dt.empty() && LooksLikeInteger(v.text))) {
    if (ParseInt(v.text, &v.integer)) {
      v.kind = ValueKind::kInteger;
      v.real = static_cast<double>(v.integer);
      return v;
    }
  }
  if (dt == rdf::kXsdDouble || (dt.empty() && LooksLikeDouble(v.text))) {
    if (ParseDouble(v.text, &v.real)) {
      v.kind = ValueKind::kDouble;
      return v;
    }
  }
  if (dt == rdf::kXsdDate || dt.empty()) {
    int32_t days = 0;
    if (ParseIsoDate(v.text, &days)) {
      v.kind = ValueKind::kDate;
      v.date_days = days;
      return v;
    }
  }
  v.kind = ValueKind::kString;
  return v;
}

}  // namespace alex::sim
