#include "similarity/similarity.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/string_util.h"
#include "similarity/string_metrics.h"

namespace alex::sim {

double NumericSimilarity(double a, double b) {
  if (a == b) return 1.0;
  const double denom = std::max({std::fabs(a), std::fabs(b), 1.0});
  const double rel = std::fabs(a - b) / denom;
  return std::max(0.0, 1.0 - 20.0 * rel);
}

double DateSimilarity(int32_t days_a, int32_t days_b) {
  constexpr double kHorizonDays = 547.0;  // Eighteen months.
  const double diff = std::fabs(static_cast<double>(days_a) -
                                static_cast<double>(days_b));
  return std::max(0.0, 1.0 - diff / kHorizonDays);
}

double StringSimilarity(std::string_view a, std::string_view b) {
  const std::string la = ToLowerAscii(a);
  const std::string lb = ToLowerAscii(b);
  if (la == lb) return 1.0;
  return std::max(TrigramDiceSimilarity(la, lb),
                  TokenJaccardSimilarity(la, lb));
}

double ValueSimilarity(const TypedValue& a, const TypedValue& b) {
  if (a.is_numeric() && b.is_numeric()) {
    return NumericSimilarity(a.real, b.real);
  }
  if (a.kind == ValueKind::kDate && b.kind == ValueKind::kDate) {
    return DateSimilarity(a.date_days, b.date_days);
  }
  return StringSimilarity(a.text, b.text);
}

double ValueSimilarity(const TypedValue& a, const TypedValue& b,
                       const StringProfile* pa, const StringProfile* pb) {
  if (a.is_numeric() && b.is_numeric()) {
    return NumericSimilarity(a.real, b.real);
  }
  if (a.kind == ValueKind::kDate && b.kind == ValueKind::kDate) {
    return DateSimilarity(a.date_days, b.date_days);
  }
  if (pa == nullptr || pb == nullptr) return StringSimilarity(a.text, b.text);
  // StringSimilarity on the precomputed lowercase forms.
  if (pa->lower == pb->lower) return 1.0;
  return std::max(TrigramDiceSimilarity(*pa, *pb),
                  TokenJaccardSimilarity(*pa, *pb));
}

double TermSimilarity(const rdf::Term& a, const rdf::Term& b) {
  return ValueSimilarity(ParseValue(a), ParseValue(b));
}

}  // namespace alex::sim
