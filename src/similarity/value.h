#ifndef ALEX_SIMILARITY_VALUE_H_
#define ALEX_SIMILARITY_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "rdf/term.h"

namespace alex::sim {

/// Value categories recognized by the generic similarity function
/// (paper Section 4.1: "string, integer, float, date, etc.").
enum class ValueKind : uint8_t { kString = 0, kInteger, kDouble, kDate };

/// A parsed, typed attribute value.
///
/// Parsing prefers the literal's XSD datatype when present and falls back to
/// sniffing the lexical form (all-digits -> integer, decimal -> double,
/// YYYY-MM-DD -> date). IRI objects are valued by their local name so that
/// resource-valued attributes still contribute string evidence.
struct TypedValue {
  ValueKind kind = ValueKind::kString;
  std::string text;      // Original (or derived) lexical form.
  int64_t integer = 0;   // Valid when kind == kInteger.
  double real = 0.0;     // Valid when kind == kDouble or kInteger.
  int32_t date_days = 0; // Days since 1970-01-01 when kind == kDate.

  bool is_numeric() const {
    return kind == ValueKind::kInteger || kind == ValueKind::kDouble;
  }
};

/// Parses an RDF term into a typed value (never fails; worst case kString).
TypedValue ParseValue(const rdf::Term& term);

/// Returns the fragment / last path segment of an IRI
/// ("http://x/Lebron_James" -> "Lebron_James").
std::string_view IriLocalName(std::string_view iri);

/// Days since 1970-01-01 for a proleptic Gregorian date (civil calendar).
int32_t DaysFromCivil(int year, int month, int day);

/// Attempts to parse "YYYY-MM-DD"; returns false if malformed.
bool ParseIsoDate(std::string_view s, int32_t* days_out);

}  // namespace alex::sim

#endif  // ALEX_SIMILARITY_VALUE_H_
