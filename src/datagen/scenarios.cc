#include "datagen/scenarios.h"

namespace alex::datagen {

ScenarioConfig DbpediaNytimes() {
  ScenarioConfig c;
  c.name = "dbpedia_nytimes";
  c.left_name = "dbpedia";
  c.right_name = "nytimes";
  c.seed = 1101;
  // Paper: 10968 ground-truth links; PARIS starts near P=0.9, R=0.2.
  // Heavy value noise breaks exact-value blocking for most pairs (low
  // recall) while decoys are absent (high precision).
  c.num_shared = 1100;
  c.num_left_only = 2400;
  c.num_right_only = 500;
  c.domains = {"person", "organization", "place"};
  c.predicate_rename_prob = 0.4;
  c.value_noise = 0.68;
  c.drop_attr_prob = 0.10;
  c.ambiguity = 0.0;
  return c;
}

ScenarioConfig DbpediaDrugbank() {
  ScenarioConfig c;
  c.name = "dbpedia_drugbank";
  c.left_name = "dbpedia";
  c.right_name = "drugbank";
  c.seed = 1102;
  // Paper: 1514 links; PARIS starts near P<0.3, R>0.95. Clean values keep
  // recall high; heavy decoying collapses precision.
  c.num_shared = 300;
  c.num_left_only = 500;
  c.num_right_only = 120;
  c.domains = {"drug"};
  c.predicate_rename_prob = 0.25;
  c.value_noise = 0.05;
  c.drop_attr_prob = 0.05;
  c.ambiguity = 2.5;
  c.decoy_shared_attrs = 2;
  return c;
}

ScenarioConfig DbpediaLexvo() {
  ScenarioConfig c;
  c.name = "dbpedia_lexvo";
  c.left_name = "dbpedia";
  c.right_name = "lexvo";
  c.seed = 1103;
  // Paper: 4364 links; both precision and recall start low.
  c.num_shared = 450;
  c.num_left_only = 900;
  c.num_right_only = 250;
  c.domains = {"language"};
  c.predicate_rename_prob = 0.35;
  c.value_noise = 0.6;
  c.drop_attr_prob = 0.10;
  c.ambiguity = 1.0;
  return c;
}

ScenarioConfig OpencycNytimes() {
  ScenarioConfig c = DbpediaNytimes();
  c.name = "opencyc_nytimes";
  c.left_name = "opencyc";
  c.seed = 1104;
  // Paper: 2965 links; OpenCyc is much smaller than DBpedia.
  c.num_shared = 300;
  c.num_left_only = 600;
  c.num_right_only = 250;
  return c;
}

ScenarioConfig OpencycDrugbank() {
  ScenarioConfig c = DbpediaDrugbank();
  c.name = "opencyc_drugbank";
  c.left_name = "opencyc";
  c.seed = 1105;
  // Paper: 204 links.
  c.num_shared = 60;
  c.num_left_only = 150;
  c.num_right_only = 60;
  return c;
}

ScenarioConfig OpencycLexvo() {
  ScenarioConfig c = DbpediaLexvo();
  c.name = "opencyc_lexvo";
  c.left_name = "opencyc";
  c.seed = 1106;
  // Paper: 383 links.
  c.num_shared = 80;
  c.num_left_only = 200;
  c.num_right_only = 60;
  return c;
}

ScenarioConfig DbpediaSwdf() {
  ScenarioConfig c;
  c.name = "dbpedia_swdf";
  c.left_name = "dbpedia";
  c.right_name = "swdf";
  c.seed = 1107;
  // Paper: 461 links, mostly universities and companies; interactive
  // setting with episode size 10.
  c.num_shared = 120;
  c.num_left_only = 250;
  c.num_right_only = 100;
  c.domains = {"organization", "publication"};
  c.predicate_rename_prob = 0.3;
  c.value_noise = 0.3;
  c.drop_attr_prob = 0.08;
  c.ambiguity = 0.1;
  return c;
}

ScenarioConfig OpencycSwdf() {
  ScenarioConfig c = DbpediaSwdf();
  c.name = "opencyc_swdf";
  c.left_name = "opencyc";
  c.seed = 1108;
  // Paper: 110 links.
  c.num_shared = 40;
  c.num_left_only = 100;
  c.num_right_only = 50;
  return c;
}

ScenarioConfig DbpediaNbaNytimes() {
  ScenarioConfig c;
  c.name = "dbpedia_nba_nytimes";
  c.left_name = "dbpedia_nba";
  c.right_name = "nytimes";
  c.seed = 1109;
  // Paper: 93 links over NBA basketball players; run at full paper size.
  c.num_shared = 93;
  c.num_left_only = 180;
  c.num_right_only = 60;
  c.domains = {"person"};
  c.predicate_rename_prob = 0.3;
  c.value_noise = 0.4;
  c.drop_attr_prob = 0.08;
  c.ambiguity = 0.1;
  return c;
}

ScenarioConfig OpencycNbaNytimes() {
  ScenarioConfig c = DbpediaNbaNytimes();
  c.name = "opencyc_nba_nytimes";
  c.left_name = "opencyc_nba";
  c.seed = 1110;
  // Paper: 35 links.
  c.num_shared = 35;
  c.num_left_only = 60;
  c.num_right_only = 40;
  return c;
}

ScenarioConfig DbpediaOpencyc() {
  ScenarioConfig c;
  c.name = "dbpedia_opencyc";
  c.left_name = "dbpedia";
  c.right_name = "opencyc";
  c.seed = 1111;
  // Paper (Appendix B): 41039 links, the largest and most heterogeneous
  // pair; PARIS found 12227 correct initial links (R ~ 0.3).
  c.num_shared = 2000;
  c.num_left_only = 3000;
  c.num_right_only = 1500;
  c.domains = {"person", "organization", "place",
               "drug",   "language",     "publication"};
  c.predicate_rename_prob = 0.5;
  c.value_noise = 0.65;
  c.drop_attr_prob = 0.12;
  c.ambiguity = 0.3;
  return c;
}

std::vector<ScenarioConfig> AllScenarios() {
  return {DbpediaNytimes(),    DbpediaDrugbank(),  DbpediaLexvo(),
          OpencycNytimes(),    OpencycDrugbank(),  OpencycLexvo(),
          DbpediaSwdf(),       OpencycSwdf(),      DbpediaNbaNytimes(),
          OpencycNbaNytimes(), DbpediaOpencyc()};
}

ScenarioConfig ScenarioByName(const std::string& name) {
  for (ScenarioConfig& c : AllScenarios()) {
    if (c.name == name) return c;
  }
  ScenarioConfig unknown;
  unknown.name = "";
  return unknown;
}

}  // namespace alex::datagen
