#ifndef ALEX_DATAGEN_SCENARIOS_H_
#define ALEX_DATAGEN_SCENARIOS_H_

#include <string>
#include <vector>

#include "datagen/generator.h"

namespace alex::datagen {

/// Preset scenario configurations reproducing each dataset pair of the
/// paper's evaluation (Table 1 and Sections 7.2, Appendix B), scaled down
/// roughly 10x so every experiment runs on one machine in minutes.
///
/// Each preset is tuned so that a PARIS run over the generated pair starts
/// from the same qualitative precision/recall profile the paper reports:
///
///   - DBpedia-NYTimes   : good precision, bad recall   (Fig 2a)
///   - DBpedia-Drugbank  : bad precision, good recall   (Fig 2b)
///   - DBpedia-Lexvo     : both bad                     (Fig 2c)
///   - OpenCyc-*         : the same three profiles at smaller scale (Fig 3)
///   - *-SWDF, NBA-*     : small specific domains        (Fig 4)
///   - DBpedia-OpenCyc   : largest, most heterogeneous  (Fig 8)
ScenarioConfig DbpediaNytimes();
ScenarioConfig DbpediaDrugbank();
ScenarioConfig DbpediaLexvo();
ScenarioConfig OpencycNytimes();
ScenarioConfig OpencycDrugbank();
ScenarioConfig OpencycLexvo();
ScenarioConfig DbpediaSwdf();
ScenarioConfig OpencycSwdf();
ScenarioConfig DbpediaNbaNytimes();
ScenarioConfig OpencycNbaNytimes();
ScenarioConfig DbpediaOpencyc();

/// All presets in paper order, for Table 1 style inventories.
std::vector<ScenarioConfig> AllScenarios();

/// Looks up a preset by its `name` field; returns a default-constructed
/// config with an empty name when unknown.
ScenarioConfig ScenarioByName(const std::string& name);

}  // namespace alex::datagen

#endif  // ALEX_DATAGEN_SCENARIOS_H_
