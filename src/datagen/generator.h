#ifndef ALEX_DATAGEN_GENERATOR_H_
#define ALEX_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "feedback/ground_truth.h"
#include "rdf/dataset.h"

namespace alex::datagen {

/// Tunable profile of one synthetic knowledge-base pair. Each paper dataset
/// pair (Table 1) is reproduced by a preset of these knobs — see
/// scenarios.h. The knobs steer the *initial candidate-link quality* that a
/// PARIS run over the pair produces, which is what the paper's episode
/// curves start from.
struct ScenarioConfig {
  std::string name = "scenario";
  std::string left_name = "left";
  std::string right_name = "right";
  uint64_t seed = 42;

  /// Entities present in both KBs (the ground-truth link count).
  size_t num_shared = 500;
  /// Unlinked filler entities per side.
  size_t num_left_only = 500;
  size_t num_right_only = 200;

  /// Domain templates to draw entities from (see DomainNames()); entities
  /// round-robin across them. More domains = more predicate heterogeneity
  /// (the DBpedia-OpenCyc stress case).
  std::vector<std::string> domains = {"person"};

  /// Probability that the right KB renames a predicate to a synonym
  /// (schema heterogeneity; lowers PARIS's relation alignment).
  double predicate_rename_prob = 0.3;

  /// Per-attribute probability that the right copy's value is perturbed
  /// (typos, token reorder, numeric jitter, date skew). High values break
  /// PARIS's exact-value blocking -> low initial recall, while similarity
  /// stays high enough for ALEX's band exploration to rediscover the pair.
  double value_noise = 0.3;

  /// Per-attribute probability that the right copy omits the attribute.
  double drop_attr_prob = 0.1;

  /// Expected number of *decoys* per shared entity on the right side: each
  /// decoy is an unrelated entity with the identical name. Values above 1
  /// create several decoys per entity (the integer part always, the
  /// fractional part with that probability). Decoys make PARIS emit wrong
  /// links -> low initial precision.
  double ambiguity = 0.0;

  /// Number of secondary attribute values each decoy copies exactly from
  /// the entity it impersonates (in addition to the name), giving PARIS
  /// enough (false) evidence to cross its 0.95 threshold.
  size_t decoy_shared_attrs = 2;

  /// Expected "relatedTo" entity-entity edges per shared entity (0 = none,
  /// the historical default). The edge layer connects shared entities on
  /// both sides (the right KB keeps ~90% of it), giving graph-propagating
  /// linkers (SiGMa) a neighborhood signal. Drawn from an RNG stream
  /// separate from the attribute draws and referencing only entities that
  /// already exist, so scenarios with the knob at 0 are bit-identical to
  /// pre-knob output and enabling it shifts no EntityIds.
  double relation_density = 0.0;
};

/// A generated KB pair plus its exact ground truth.
struct GeneratedPair {
  rdf::Dataset left{"left"};
  rdf::Dataset right{"right"};
  feedback::GroundTruth truth;
};

/// Names of the built-in domain templates: "person", "organization",
/// "place", "drug", "language", "publication".
std::vector<std::string> DomainNames();

/// Generates a KB pair deterministically from the config (same seed, same
/// bytes). Entity indexes of both datasets are built before returning, and
/// the ground truth refers to their EntityIds.
GeneratedPair GenerateScenario(const ScenarioConfig& config);

/// Profile of a synthetic dictionary-encoded triple workload for the
/// storage layer (bench_storage and the storage tests). Ids are laid out
/// the way a real loader's interning order produces them: predicates first
/// (small, dense — one varint byte in the compressed blocks), then
/// subjects, then objects.
struct TripleWorkloadConfig {
  uint64_t seed = 42;
  size_t num_triples = 1000000;
  /// 0 = num_triples / 10.
  size_t num_subjects = 0;
  size_t num_predicates = 64;
  /// 0 = num_triples / 5. Object ids start after subjects.
  size_t num_objects = 0;
};

/// Generates a deduplicated, skewed triple workload (Zipf-ish: popular
/// subjects/objects appear far more often). Deterministic per seed. The
/// result is unsorted; stores sort internally.
std::vector<rdf::Triple> GenerateTripleWorkload(
    const TripleWorkloadConfig& config);

/// Generates `count` lookup patterns over `triples` with a fixed shape mix
/// ((s,?,?), (?,p,?), (s,p,?), bound-object shapes, full triples, plus a
/// slice of guaranteed misses). Deterministic per seed.
std::vector<rdf::TriplePattern> GeneratePatternWorkload(
    const std::vector<rdf::Triple>& triples, size_t count, uint64_t seed);

}  // namespace alex::datagen

#endif  // ALEX_DATAGEN_GENERATOR_H_
