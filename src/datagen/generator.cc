#include "datagen/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "common/rng.h"
#include "common/string_util.h"
#include "similarity/value.h"

namespace alex::datagen {
namespace {

using rdf::Dataset;
using rdf::Term;

// ---------------------------------------------------------------------------
// Domain templates.
// ---------------------------------------------------------------------------

enum class ValueKind { kPersonName, kProperName, kCity, kInt, kDouble, kDate };

struct PredicateSpec {
  const char* name;     // Canonical local name (left KB).
  const char* synonym;  // Divergent local name the right KB may use.
  ValueKind kind;
  double lo = 0;  // Numeric range / date year range.
  double hi = 0;
};

struct DomainSpec {
  const char* type_name;
  /// Divergent class name the right KB uses (real KB pairs rarely share a
  /// type vocabulary; DBpedia says Person where OpenCyc says Human). With
  /// identical class names the (type, type) feature would score 1.0 for
  /// every entity pair and defeat the θ filter entirely.
  const char* type_synonym;
  std::vector<PredicateSpec> preds;
};

const std::vector<DomainSpec>& Domains() {
  static const auto* kDomains = new std::vector<DomainSpec>{
      {"Person", "Human",
       {{"name", "label", ValueKind::kPersonName},
        {"birthDate", "dateOfBirth", ValueKind::kDate, 1940, 2000},
        {"height", "heightCm", ValueKind::kDouble, 150.0, 220.0},
        {"birthPlace", "placeOfBirth", ValueKind::kCity},
        {"weight", "weightGrams", ValueKind::kInt, 50000, 120000}}},
      {"Organization", "Institution",
       {{"name", "label", ValueKind::kProperName},
        {"founded", "foundingDate", ValueKind::kDate, 1850, 2010},
        {"city", "headquarters", ValueKind::kCity},
        {"employees", "staffCount", ValueKind::kInt, 100, 2000000}}},
      {"Place", "GeoLocation",
       {{"name", "label", ValueKind::kProperName},
        {"population", "populationTotal", ValueKind::kInt, 10000, 10000000},
        {"elevation", "altitude", ValueKind::kDouble, 1.0, 4000.0},
        {"country", "locatedIn", ValueKind::kCity}}},
      {"Drug", "ChemCompound",
       {{"name", "label", ValueKind::kProperName},
        {"molecularWeight", "molWeight", ValueKind::kDouble, 50.0, 1500.0},
        {"approved", "approvalDate", ValueKind::kDate, 1950, 2014},
        {"casNumber", "casRegistry", ValueKind::kInt, 100000, 99999999}}},
      {"Language", "HumanTongue",
       {{"name", "label", ValueKind::kProperName},
        {"speakers", "numSpeakers", ValueKind::kInt, 10000, 1000000000},
        {"region", "spokenIn", ValueKind::kCity},
        {"established", "attestedFrom", ValueKind::kDate, 1500, 1995}}},
      {"Publication", "WrittenWork",
       {{"name", "title", ValueKind::kProperName},
        // A narrow all-integer "year" range would make every year pair
        // similar under relative numeric proximity; a full date is both
        // more realistic and properly discriminative.
        {"published", "publicationDate", ValueKind::kDate, 1990, 2014},
        {"venue", "publishedAt", ValueKind::kCity},
        {"pages", "pageCount", ValueKind::kInt, 4, 4000}}},
  };
  return *kDomains;
}

const DomainSpec* FindDomain(const std::string& lower_name) {
  for (const DomainSpec& d : Domains()) {
    if (ToLowerAscii(d.type_name) == lower_name) return &d;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Value synthesis.
// ---------------------------------------------------------------------------

const char* const kSyllables[] = {"ba", "ren", "ko", "mi", "ta",  "vel",
                                  "so", "dur", "an", "le", "pra", "chi",
                                  "no", "gar", "su", "el", "mon", "ri",
                                  "fa", "zen", "qu", "or", "lis", "ham"};
constexpr size_t kNumSyllables = sizeof(kSyllables) / sizeof(kSyllables[0]);

std::string RandomWord(Rng* rng, int min_syll, int max_syll) {
  const int n =
      min_syll + static_cast<int>(rng->UniformInt(
                     static_cast<uint64_t>(max_syll - min_syll + 1)));
  std::string w;
  for (int i = 0; i < n; ++i) {
    w += kSyllables[rng->UniformInt(kNumSyllables)];
  }
  w[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(w[0])));
  return w;
}

std::string RandomPersonName(Rng* rng) {
  return RandomWord(rng, 2, 3) + " " + RandomWord(rng, 2, 4);
}

std::string RandomProperName(Rng* rng) {
  std::string name = RandomWord(rng, 2, 4);
  if (rng->Bernoulli(0.6)) name += " " + RandomWord(rng, 2, 3);
  return name;
}

const char* const kCities[] = {
    "Arvenholm",  "Belcaster", "Corvania", "Drestin",  "Elmora",
    "Fontaine",   "Gildern",   "Harvick",  "Istelle",  "Joremont",
    "Kalvista",   "Lorwick",   "Mardale",  "Norvek",   "Ostermoor",
    "Pelagos",    "Quillian",  "Rostova",  "Selmore",  "Tervane",
};
constexpr size_t kNumCities = sizeof(kCities) / sizeof(kCities[0]);

std::string IsoDate(int32_t days_since_epoch) {
  // Inverse of sim::DaysFromCivil (Howard Hinnant's civil_from_days).
  int32_t z = days_since_epoch + 719468;
  const int32_t era = (z >= 0 ? z : z - 146096) / 146097;
  const uint32_t doe = static_cast<uint32_t>(z - era * 146097);
  const uint32_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int32_t y = static_cast<int32_t>(yoe) + era * 400;
  const uint32_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const uint32_t mp = (5 * doy + 2) / 153;
  const uint32_t d = doy - (153 * mp + 2) / 5 + 1;
  const uint32_t m = mp < 10 ? mp + 3 : mp - 9;
  const int32_t year = y + (m <= 2);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, m, d);
  return buf;
}

Term MakeValue(const PredicateSpec& spec, Rng* rng) {
  switch (spec.kind) {
    case ValueKind::kPersonName:
      return Term::Literal(RandomPersonName(rng));
    case ValueKind::kProperName:
      return Term::Literal(RandomProperName(rng));
    case ValueKind::kCity:
      return Term::Literal(kCities[rng->UniformInt(kNumCities)]);
    case ValueKind::kInt: {
      const int64_t v = static_cast<int64_t>(
          rng->UniformDouble(spec.lo, spec.hi + 1));
      return Term::TypedLiteral(std::to_string(v),
                                std::string(rdf::kXsdInteger));
    }
    case ValueKind::kDouble: {
      const double v = rng->UniformDouble(spec.lo, spec.hi);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", v);
      return Term::TypedLiteral(buf, std::string(rdf::kXsdDouble));
    }
    case ValueKind::kDate: {
      const int year = static_cast<int>(rng->UniformDouble(spec.lo, spec.hi));
      const int32_t base = sim::DaysFromCivil(year, 1, 1);
      const int32_t days = base + static_cast<int32_t>(rng->UniformInt(365));
      return Term::TypedLiteral(IsoDate(days), std::string(rdf::kXsdDate));
    }
  }
  return Term::Literal("");
}

// ---------------------------------------------------------------------------
// Perturbations applied to the right-hand copy of a shared value.
// ---------------------------------------------------------------------------

std::string TypoString(const std::string& s, Rng* rng) {
  if (s.size() < 4) return s + "x";
  std::string out = s;
  const size_t i = 1 + rng->UniformInt(out.size() - 2);
  if (rng->Bernoulli(0.5)) {
    std::swap(out[i], out[i - 1]);  // Transpose.
  } else {
    out.erase(i, 1);  // Deletion.
  }
  return out;
}

std::string ReorderTokens(const std::string& s) {
  const std::vector<std::string> tokens = SplitWhitespace(s);
  if (tokens.size() < 2) return s;
  std::string out = tokens.back() + ",";
  for (size_t i = 0; i + 1 < tokens.size(); ++i) out += " " + tokens[i];
  return out;
}

Term PerturbValue(const PredicateSpec& spec, const Term& value, Rng* rng) {
  switch (spec.kind) {
    case ValueKind::kPersonName:
    case ValueKind::kProperName:
    case ValueKind::kCity: {
      // Token reorder keeps similarity at 1.0 (same tokens) while breaking
      // exact-value blocking; typos land around 0.8-0.95 trigram overlap.
      if (rng->Bernoulli(0.5) && value.value.find(' ') != std::string::npos) {
        return Term::Literal(ReorderTokens(value.value));
      }
      return Term::Literal(TypoString(value.value, rng));
    }
    case ValueKind::kInt: {
      const sim::TypedValue tv = sim::ParseValue(value);
      const double jitter = 1.0 + rng->UniformDouble(-0.02, 0.02);
      const int64_t v = std::max<int64_t>(
          1, static_cast<int64_t>(std::llround(tv.real * jitter)));
      return Term::TypedLiteral(std::to_string(v),
                                std::string(rdf::kXsdInteger));
    }
    case ValueKind::kDouble: {
      const sim::TypedValue tv = sim::ParseValue(value);
      const double v = tv.real * (1.0 + rng->UniformDouble(-0.02, 0.02));
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", v);
      return Term::TypedLiteral(buf, std::string(rdf::kXsdDouble));
    }
    case ValueKind::kDate: {
      // Skew of 1-8 months: similarity stays above θ (explorable by ALEX's
      // band queries) but below PARIS's 0.9 evidence threshold, so a skewed
      // date no longer anchors an automatic link.
      const sim::TypedValue tv = sim::ParseValue(value);
      int32_t skew = 30 + static_cast<int32_t>(rng->UniformInt(220));
      if (rng->Bernoulli(0.5)) skew = -skew;
      return Term::TypedLiteral(IsoDate(tv.date_days + skew),
                                std::string(rdf::kXsdDate));
    }
  }
  return value;
}

// ---------------------------------------------------------------------------
// Entity emission.
// ---------------------------------------------------------------------------

struct CanonicalEntity {
  const DomainSpec* domain = nullptr;
  std::vector<Term> values;  // Parallel to domain->preds.
};

std::string OntIri(const std::string& kb, const std::string& local) {
  return "http://" + kb + ".example.org/ontology/" + local;
}

std::string ResourceIri(const std::string& kb, const std::string& type,
                        size_t index) {
  return "http://" + kb + ".example.org/resource/" + type + "_" +
         std::to_string(index);
}

std::string ClassIri(const std::string& kb, const std::string& type) {
  return "http://" + kb + ".example.org/class/" + type;
}

/// Emits one entity into `ds`. `rename` maps predicate index -> use synonym.
/// `drop[i]` omits attribute i; `perturb[i]` rewrites its value.
void EmitEntity(Dataset* ds, const std::string& kb, const std::string& iri,
                const CanonicalEntity& ent, const std::string& class_name,
                const std::vector<bool>& rename, const std::vector<bool>& drop,
                const std::vector<bool>& perturb, Rng* rng) {
  const auto& preds = ent.domain->preds;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (drop[i]) continue;
    const std::string local = rename[i] ? preds[i].synonym : preds[i].name;
    const Term value =
        perturb[i] ? PerturbValue(preds[i], ent.values[i], rng) : ent.values[i];
    ds->AddLiteralTriple(iri, OntIri(kb, local), value);
  }
  ds->AddIriTriple(iri, std::string(rdf::kRdfType), ClassIri(kb, class_name));
}

}  // namespace

std::vector<std::string> DomainNames() {
  std::vector<std::string> out;
  for (const DomainSpec& d : Domains()) out.push_back(ToLowerAscii(d.type_name));
  return out;
}

GeneratedPair GenerateScenario(const ScenarioConfig& config) {
  GeneratedPair pair;
  pair.left = Dataset(config.left_name);
  pair.right = Dataset(config.right_name);
  Rng rng(config.seed);

  std::vector<const DomainSpec*> domains;
  for (const std::string& name : config.domains) {
    const DomainSpec* d = FindDomain(ToLowerAscii(name));
    assert(d != nullptr && "unknown domain name");
    if (d != nullptr) domains.push_back(d);
  }
  if (domains.empty()) domains.push_back(&Domains()[0]);

  // Per-scenario predicate renaming decision: one draw per (domain, pred),
  // fixed for the whole right KB (schemas diverge consistently).
  std::unordered_map<const DomainSpec*, std::vector<bool>> renames;
  for (const DomainSpec* d : domains) {
    std::vector<bool> r(d->preds.size());
    for (size_t i = 0; i < r.size(); ++i) {
      r[i] = rng.Bernoulli(config.predicate_rename_prob);
    }
    renames[d] = r;
  }

  std::vector<std::pair<std::string, std::string>> truth_iris;

  // --- Shared entities (the ground truth). ---
  for (size_t i = 0; i < config.num_shared; ++i) {
    const DomainSpec* domain = domains[i % domains.size()];
    CanonicalEntity ent;
    ent.domain = domain;
    for (const PredicateSpec& spec : domain->preds) {
      ent.values.push_back(MakeValue(spec, &rng));
    }
    const size_t np = domain->preds.size();
    const std::vector<bool> no_change(np, false);

    const std::string left_iri =
        ResourceIri(config.left_name, domain->type_name, i);
    EmitEntity(&pair.left, config.left_name, left_iri, ent,
               domain->type_name, no_change, no_change, no_change, &rng);

    std::vector<bool> drop(np), perturb(np);
    for (size_t k = 0; k < np; ++k) {
      drop[k] = rng.Bernoulli(config.drop_attr_prob);
      perturb[k] = !drop[k] && rng.Bernoulli(config.value_noise);
    }
    const std::string right_iri =
        ResourceIri(config.right_name, domain->type_name, i);
    EmitEntity(&pair.right, config.right_name, right_iri, ent,
               domain->type_synonym, renames.at(domain), drop, perturb, &rng);
    truth_iris.emplace_back(left_iri, right_iri);

    // --- Decoys: unrelated right-side entities wearing the same name. ---
    size_t num_decoys = static_cast<size_t>(config.ambiguity);
    const double frac = config.ambiguity - static_cast<double>(num_decoys);
    if (frac > 0.0 && rng.Bernoulli(frac)) ++num_decoys;
    for (size_t d = 0; d < num_decoys; ++d) {
      CanonicalEntity decoy;
      decoy.domain = domain;
      for (size_t k = 0; k < np; ++k) {
        decoy.values.push_back(MakeValue(domain->preds[k], &rng));
      }
      decoy.values[0] = ent.values[0];  // Identical name.
      if (np > 1) {
        // Copy `decoy_shared_attrs` distinct secondary values exactly.
        std::vector<size_t> idx;
        for (size_t k = 1; k < np; ++k) idx.push_back(k);
        rng.Shuffle(&idx);
        const size_t n_copy = std::min(config.decoy_shared_attrs, idx.size());
        for (size_t k = 0; k < n_copy; ++k) {
          decoy.values[idx[k]] = ent.values[idx[k]];
        }
      }
      const std::string decoy_iri =
          ResourceIri(config.right_name, domain->type_name,
                      config.num_shared + config.num_right_only +
                          i * 8 + d);
      EmitEntity(&pair.right, config.right_name, decoy_iri, decoy,
                 domain->type_synonym, renames.at(domain),
                 std::vector<bool>(np, false), std::vector<bool>(np, false),
                 &rng);
    }
  }

  // --- Unlinked filler entities. ---
  for (size_t i = 0; i < config.num_left_only; ++i) {
    const DomainSpec* domain = domains[i % domains.size()];
    CanonicalEntity ent;
    ent.domain = domain;
    for (const PredicateSpec& spec : domain->preds) {
      ent.values.push_back(MakeValue(spec, &rng));
    }
    const std::vector<bool> no_change(domain->preds.size(), false);
    EmitEntity(&pair.left, config.left_name,
               ResourceIri(config.left_name, domain->type_name,
                           config.num_shared + i),
               ent, domain->type_name, no_change, no_change, no_change, &rng);
  }
  for (size_t i = 0; i < config.num_right_only; ++i) {
    const DomainSpec* domain = domains[i % domains.size()];
    CanonicalEntity ent;
    ent.domain = domain;
    for (const PredicateSpec& spec : domain->preds) {
      ent.values.push_back(MakeValue(spec, &rng));
    }
    const size_t np = domain->preds.size();
    const std::vector<bool> no_change(np, false);
    EmitEntity(&pair.right, config.right_name,
               ResourceIri(config.right_name, domain->type_name,
                           config.num_shared + i),
               ent, domain->type_synonym, renames.at(domain), no_change,
               no_change, &rng);
  }

  // --- Optional entity-entity relation layer (see ScenarioConfig). ---
  // Emitted last, from its own RNG stream, touching only existing subjects:
  // all attribute/filler draws above are byte-identical whether or not the
  // knob is set, and no new entities are introduced.
  if (config.relation_density > 0.0 && config.num_shared > 1) {
    Rng rel_rng(config.seed ^ 0xa5e1c3d9b7f08642ULL);
    const size_t num_edges = static_cast<size_t>(
        config.relation_density * static_cast<double>(config.num_shared));
    for (size_t e = 0; e < num_edges; ++e) {
      const size_t a = rel_rng.UniformInt(config.num_shared);
      size_t b = rel_rng.UniformInt(config.num_shared - 1);
      if (b >= a) ++b;  // Distinct endpoints, uniform over the off-diagonal.
      const DomainSpec* da = domains[a % domains.size()];
      const DomainSpec* db = domains[b % domains.size()];
      pair.left.AddIriTriple(
          ResourceIri(config.left_name, da->type_name, a),
          OntIri(config.left_name, "relatedTo"),
          ResourceIri(config.left_name, db->type_name, b));
      // The right KB keeps most of the edge layer, so matched
      // neighborhoods overlap strongly without being identical.
      if (rel_rng.Bernoulli(0.9)) {
        pair.right.AddIriTriple(
            ResourceIri(config.right_name, da->type_name, a),
            OntIri(config.right_name, "relatedTo"),
            ResourceIri(config.right_name, db->type_name, b));
      }
    }
  }

  pair.left.BuildEntityIndex();
  pair.right.BuildEntityIndex();
  for (const auto& [left_iri, right_iri] : truth_iris) {
    auto l = pair.left.FindEntityByIri(left_iri);
    auto r = pair.right.FindEntityByIri(right_iri);
    assert(l.has_value() && r.has_value());
    if (l.has_value() && r.has_value()) pair.truth.Add(*l, *r);
  }
  return pair;
}

std::vector<rdf::Triple> GenerateTripleWorkload(
    const TripleWorkloadConfig& config) {
  const size_t n = config.num_triples;
  const size_t num_subjects =
      config.num_subjects != 0 ? config.num_subjects : std::max<size_t>(1, n / 10);
  const size_t num_predicates = std::max<size_t>(1, config.num_predicates);
  const size_t num_objects =
      config.num_objects != 0 ? config.num_objects : std::max<size_t>(1, n / 5);

  // Id layout mirrors a loader interning schema terms first: predicates get
  // the smallest ids (1-byte varints in compressed blocks), then subjects,
  // then objects.
  const rdf::TermId subject_base = static_cast<rdf::TermId>(num_predicates);
  const rdf::TermId object_base =
      static_cast<rdf::TermId>(num_predicates + num_subjects);

  Rng rng(config.seed);
  std::vector<rdf::Triple> triples;
  triples.reserve(n + n / 8);
  // Squaring a uniform draw skews toward low indexes (popular entities)
  // without a per-draw Zipf table.
  auto skewed = [&rng](size_t limit) {
    const double u = rng.UniformDouble();
    return static_cast<size_t>(u * u * static_cast<double>(limit));
  };
  // Oversample, then dedup down: duplicates are rare enough (skew aside)
  // that this lands close to the requested count.
  const size_t target = n + n / 8;
  for (size_t i = 0; i < target; ++i) {
    triples.push_back(rdf::Triple{
        static_cast<rdf::TermId>(subject_base + skewed(num_subjects)),
        static_cast<rdf::TermId>(rng.UniformInt(num_predicates)),
        static_cast<rdf::TermId>(object_base + skewed(num_objects))});
  }
  std::sort(triples.begin(), triples.end());
  triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
  if (triples.size() > n) triples.resize(n);
  // Shuffle back so the consumer sees insertion order, not sorted order.
  rng.Shuffle(&triples);
  return triples;
}

std::vector<rdf::TriplePattern> GeneratePatternWorkload(
    const std::vector<rdf::Triple>& triples, size_t count, uint64_t seed) {
  std::vector<rdf::TriplePattern> patterns;
  patterns.reserve(count);
  if (triples.empty()) return patterns;
  Rng rng(seed);
  const rdf::TermId kAny = rdf::kInvalidTermId;
  for (size_t i = 0; i < count; ++i) {
    const rdf::Triple& t = triples[rng.UniformInt(triples.size())];
    // Shape mix (cumulative %): s?? 20, ?p? 10, ??o 15, sp? 20, ?po 15,
    // s?o 10, spo 5, guaranteed miss 5.
    const uint64_t roll = rng.UniformInt(100);
    if (roll < 20) {
      patterns.push_back({t.subject, kAny, kAny});
    } else if (roll < 30) {
      patterns.push_back({kAny, t.predicate, kAny});
    } else if (roll < 45) {
      patterns.push_back({kAny, kAny, t.object});
    } else if (roll < 65) {
      patterns.push_back({t.subject, t.predicate, kAny});
    } else if (roll < 80) {
      patterns.push_back({kAny, t.predicate, t.object});
    } else if (roll < 90) {
      patterns.push_back({t.subject, kAny, t.object});
    } else if (roll < 95) {
      patterns.push_back({t.subject, t.predicate, t.object});
    } else {
      // kInvalidTermId - 1 is never assigned by GenerateTripleWorkload's id
      // layout, so this subject cannot match.
      patterns.push_back({rdf::kInvalidTermId - 1, t.predicate, kAny});
    }
  }
  return patterns;
}

}  // namespace alex::datagen
