#ifndef ALEX_CORE_POLICY_H_
#define ALEX_CORE_POLICY_H_

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/binary_io.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/feature.h"
#include "feedback/ground_truth.h"

namespace alex::core {

using feedback::PairKey;

/// A state-action pair: the link (state) and the feature explored around
/// (action). See paper Sections 4.1-4.2.
struct StateAction {
  PairKey state = 0;
  FeatureKey action = 0;

  friend bool operator==(const StateAction& a, const StateAction& b) {
    return a.state == b.state && a.action == b.action;
  }
};

struct StateActionHash {
  size_t operator()(const StateAction& sa) const {
    // 64-bit mix of the two keys, finalized splitmix64-style before the
    // narrowing cast: on a 32-bit size_t the cast keeps only the low word,
    // and without finalization those bits carry almost none of the
    // high-half entropy of `state` (PairKey packs the left entity in the
    // high 32 bits), collapsing whole entity ranges onto shared buckets.
    uint64_t h = sa.state * 0x9e3779b97f4a7c15ULL;
    h ^= sa.action + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return static_cast<size_t>(h);
  }
};

/// ε-greedy stochastic policy with first-visit Monte Carlo action-value
/// estimation (Algorithm 1).
///
/// Per-state Q tables are kept exactly as the paper specifies; in addition
/// a global per-feature average return acts as a prior for states that have
/// never been visited (this is how ALEX "learns that a feature is not
/// distinctive and avoids exploring around it in the future" — Section 4.2 —
/// before a particular state is ever revisited).
class EpsilonGreedyPolicy {
 public:
  EpsilonGreedyPolicy(double epsilon, uint64_t seed)
      : epsilon_(epsilon), rng_(seed) {}

  /// Scores an untried action in the absence of any recorded return; used
  /// to order cold-start exploration. Must return values in [0, 0.5] so a
  /// learned positive Q (+1 scale) always dominates and a learned negative
  /// Q always loses. The default prior is the constant 0.
  using ActionPrior = std::function<double(FeatureKey)>;

  /// Chooses the action (feature) to explore around at `state`, given the
  /// state's available actions (its feature set). Returns nullopt when
  /// `actions` is empty.
  ///
  /// With probability 1−ε the greedy action is taken: the action with the
  /// best estimated Q at this state, falling back to the global per-feature
  /// average return, and finally to `prior` for actions never tried
  /// anywhere. Ties break uniformly at random. With probability ε a
  /// uniformly random action is taken, so every action has
  /// π(s,a) ≥ ε/|A(s)| > 0 (continuous exploration, Section 4.4.1).
  std::optional<FeatureKey> ChooseAction(PairKey state,
                                         const FeatureSet& actions,
                                         const ActionPrior& prior = {});

  /// Appends a Monte Carlo return to Returns(s,a) and refreshes
  /// Q(s,a) = avg(Returns(s,a)) (Algorithm 1 lines 14-16).
  void RecordReturn(const StateAction& sa, double reward);

  /// Policy improvement (Algorithm 1 lines 24-33): makes the policy greedy
  /// w.r.t. the current Q at every state visited in the episode.
  void Improve(const std::vector<PairKey>& episode_states);

  /// Sets the exploration rate (used by GLIE ε decay across episodes).
  void set_epsilon(double epsilon) { epsilon_ = epsilon; }
  double epsilon() const { return epsilon_; }

  /// Estimated Q(s,a); nullopt if the pair was never returned to.
  std::optional<double> Q(const StateAction& sa) const;

  /// Global prior Q̄(a) for a feature; nullopt if never returned to.
  std::optional<double> GlobalQ(FeatureKey action) const;

  /// Greedy action recorded for a state at the last Improve(), if any.
  std::optional<FeatureKey> GreedyAction(PairKey state) const;

  /// The global per-feature average returns, sorted descending — the
  /// learned ranking of features from most to least rewarding to explore
  /// around (how ALEX "learns that a feature is not distinctive").
  std::vector<std::pair<FeatureKey, double>> GlobalActionValues() const;

  size_t num_states() const { return greedy_.size(); }

  /// Serializes the full policy state — ε, the RNG stream, the per-state
  /// and global return tables, and the greedy map — in a canonical (sorted)
  /// order, so identical policies produce identical bytes.
  void SaveState(BinaryWriter* w) const;

  /// Restores a policy saved with SaveState(). All-or-nothing: on any
  /// parse error the policy is left untouched.
  Status LoadState(BinaryReader* r);

 private:
  struct Stats {
    double sum = 0.0;
    size_t count = 0;
    double q() const { return count == 0 ? 0.0 : sum / count; }
  };

  double epsilon_;
  Rng rng_;
  std::vector<FeatureKey> ties_;  // Scratch for greedy tie-breaking.
  std::unordered_map<StateAction, Stats, StateActionHash> returns_;
  std::unordered_map<FeatureKey, Stats> global_returns_;
  std::unordered_map<PairKey, FeatureKey> greedy_;
};

}  // namespace alex::core

#endif  // ALEX_CORE_POLICY_H_
