#ifndef ALEX_CORE_POLICY_H_
#define ALEX_CORE_POLICY_H_

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/config.h"
#include "core/feature.h"
#include "feedback/ground_truth.h"

namespace alex::core {

using feedback::PairKey;

/// A state-action pair: the link (state) and the feature explored around
/// (action). See paper Sections 4.1-4.2.
struct StateAction {
  PairKey state = 0;
  FeatureKey action = 0;

  friend bool operator==(const StateAction& a, const StateAction& b) {
    return a.state == b.state && a.action == b.action;
  }
};

struct StateActionHash {
  size_t operator()(const StateAction& sa) const {
    // 64-bit mix of the two keys, finalized splitmix64-style before the
    // narrowing cast: on a 32-bit size_t the cast keeps only the low word,
    // and without finalization those bits carry almost none of the
    // high-half entropy of `state` (PairKey packs the left entity in the
    // high 32 bits), collapsing whole entity ranges onto shared buckets.
    uint64_t h = sa.state * 0x9e3779b97f4a7c15ULL;
    h ^= sa.action + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
    h ^= h >> 31;
    return static_cast<size_t>(h);
  }
};

/// Scores an untried action in the absence of any recorded return; used
/// to order cold-start exploration. Must return values in [0, 0.5] so a
/// learned positive Q (+1 scale) always dominates and a learned negative
/// Q always loses. The default prior is the constant 0.
using ActionPrior = std::function<double(FeatureKey)>;

/// Abstract action-selection policy of the ALEX control loop.
///
/// The engine drives any implementation through this interface: choose an
/// action at a state (ChooseAction), credit Monte Carlo returns
/// (RecordReturn), improve at episode boundaries (Improve), and decay ε on
/// the GLIE schedule (set_epsilon). Implementations must be deterministic
/// given their construction seed and the call sequence, and must serialize
/// canonically (equal states produce equal bytes) so checkpoints stay
/// bit-identical.
///
/// `type_tag()` names the concrete type inside checkpoint payloads; a
/// policy's LoadState only ever reads bytes its own SaveState wrote — the
/// tag routing happens in AlexEngine (see engine.cc and DESIGN.md
/// "Linkers and policies").
class Policy {
 public:
  virtual ~Policy() = default;

  /// Stable type tag recorded in checkpoints ("epsilon-greedy", ...).
  virtual std::string_view type_tag() const = 0;

  /// Chooses the action (feature) to explore around at `state`, given the
  /// state's available actions (its feature set). Returns nullopt when
  /// `actions` is empty. Every action must keep π(s,a) > 0 (continuous
  /// exploration, Section 4.4.1).
  virtual std::optional<FeatureKey> ChooseAction(
      PairKey state, const FeatureSet& actions,
      const ActionPrior& prior = {}) = 0;

  /// Appends a Monte Carlo return to Returns(s,a) and refreshes Q(s,a)
  /// (Algorithm 1 lines 14-16).
  virtual void RecordReturn(const StateAction& sa, double reward) = 0;

  /// Policy improvement (Algorithm 1 lines 24-33) over the states visited
  /// in the episode just ended.
  virtual void Improve(const std::vector<PairKey>& episode_states) = 0;

  /// Sets the exploration rate (used by GLIE ε decay across episodes).
  virtual void set_epsilon(double epsilon) = 0;
  virtual double epsilon() const = 0;

  /// Estimated Q(s,a); nullopt if the pair was never returned to.
  virtual std::optional<double> Q(const StateAction& sa) const = 0;

  /// Global prior Q̄(a) for a feature; nullopt if never returned to.
  virtual std::optional<double> GlobalQ(FeatureKey action) const = 0;

  /// Greedy action recorded for a state at the last Improve(), if any.
  virtual std::optional<FeatureKey> GreedyAction(PairKey state) const = 0;

  /// The global per-feature average returns, sorted by value descending
  /// (ties by ascending key — the order must not depend on hash-table
  /// iteration history).
  virtual std::vector<std::pair<FeatureKey, double>> GlobalActionValues()
      const = 0;

  virtual size_t num_states() const = 0;

  /// Serializes the full policy state in a canonical (sorted) order, so
  /// identical policies produce identical bytes. The bytes do NOT include
  /// the type tag — the engine frames them with it.
  virtual void SaveState(BinaryWriter* w) const = 0;

  /// Restores a policy saved with SaveState() by the same concrete type.
  /// All-or-nothing: on any parse error the policy is left untouched.
  virtual Status LoadState(BinaryReader* r) = 0;
};

/// ε-greedy stochastic policy with first-visit Monte Carlo action-value
/// estimation (Algorithm 1) — the paper's policy, and the default.
///
/// Per-state Q tables are kept exactly as the paper specifies; in addition
/// a global per-feature average return acts as a prior for states that have
/// never been visited (this is how ALEX "learns that a feature is not
/// distinctive and avoids exploring around it in the future" — Section 4.2 —
/// before a particular state is ever revisited).
class EpsilonGreedyPolicy final : public Policy {
 public:
  EpsilonGreedyPolicy(double epsilon, uint64_t seed)
      : epsilon_(epsilon), rng_(seed) {}

  /// Kept as a member alias for pre-interface call sites.
  using ActionPrior = core::ActionPrior;

  std::string_view type_tag() const override { return "epsilon-greedy"; }

  /// With probability 1−ε the greedy action is taken: the action with the
  /// best estimated Q at this state, falling back to the global per-feature
  /// average return, and finally to `prior` for actions never tried
  /// anywhere. Exact-score ties break uniformly at random (the draw is
  /// seeded, so runs are reproducible). With probability ε a uniformly
  /// random action is taken, so every action has π(s,a) ≥ ε/|A(s)| > 0.
  std::optional<FeatureKey> ChooseAction(PairKey state,
                                         const FeatureSet& actions,
                                         const ActionPrior& prior = {}) override;

  void RecordReturn(const StateAction& sa, double reward) override;

  void Improve(const std::vector<PairKey>& episode_states) override;

  void set_epsilon(double epsilon) override { epsilon_ = epsilon; }
  double epsilon() const override { return epsilon_; }

  std::optional<double> Q(const StateAction& sa) const override;

  std::optional<double> GlobalQ(FeatureKey action) const override;

  std::optional<FeatureKey> GreedyAction(PairKey state) const override;

  std::vector<std::pair<FeatureKey, double>> GlobalActionValues()
      const override;

  size_t num_states() const override { return greedy_.size(); }

  /// Serializes ε, the RNG stream, the per-state and global return tables,
  /// and the greedy map — in a canonical (sorted) order.
  void SaveState(BinaryWriter* w) const override;

  Status LoadState(BinaryReader* r) override;

 private:
  struct Stats {
    double sum = 0.0;
    size_t count = 0;
    double q() const { return count == 0 ? 0.0 : sum / count; }
  };

  double epsilon_;
  Rng rng_;
  std::vector<FeatureKey> ties_;  // Scratch for greedy tie-breaking.
  std::unordered_map<StateAction, Stats, StateActionHash> returns_;
  std::unordered_map<FeatureKey, Stats> global_returns_;
  std::unordered_map<PairKey, FeatureKey> greedy_;
};

/// Process-wide registry mapping policy type tags to factories, so drivers
/// (engine construction, checkpoint restore, benches, the CLI) can
/// instantiate policies by name. The built-in "epsilon-greedy" policy is
/// registered by the registry itself; libraries adding policies expose an
/// explicit registration call (static-library registrar objects get
/// dead-stripped) — e.g. rl::RegisterAdaptiveFeaturePolicy().
class PolicyRegistry {
 public:
  /// Builds a policy for one engine. `seed` is the engine's seed — the
  /// factory owns any stream-splitting it needs.
  using Factory =
      std::function<std::unique_ptr<Policy>(const AlexConfig&, uint64_t seed)>;

  static PolicyRegistry& Global();

  /// Registers (or replaces) the factory for `tag`. Registration is
  /// idempotent so explicit registration calls may run more than once.
  void Register(std::string tag, Factory factory);

  bool Contains(std::string_view tag) const;

  /// All registered tags, sorted.
  std::vector<std::string> KnownTags() const;

  /// Instantiates the policy registered under `tag`; NotFound (naming the
  /// tag and the known tags) when nothing is registered under it.
  Result<std::unique_ptr<Policy>> Create(std::string_view tag,
                                         const AlexConfig& config,
                                         uint64_t seed) const;

 private:
  PolicyRegistry();

  mutable std::mutex mu_;
  std::unordered_map<std::string, Factory> factories_;
};

}  // namespace alex::core

#endif  // ALEX_CORE_POLICY_H_
