#ifndef ALEX_CORE_FEATURE_H_
#define ALEX_CORE_FEATURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/blocking.h"
#include "rdf/dataset.h"

namespace alex::core {

/// Identifies one feature: a (left predicate, right predicate) pair, packed
/// as left TermId in the high 32 bits and right TermId in the low 32 bits.
/// In the paper (Section 4.1) a feature is an attribute pair whose value is
/// the similarity score of the two attributes' objects.
using FeatureKey = uint64_t;

inline FeatureKey MakeFeatureKey(rdf::TermId left_pred, rdf::TermId right_pred) {
  return (static_cast<uint64_t>(left_pred) << 32) |
         static_cast<uint64_t>(right_pred);
}
inline rdf::TermId FeatureLeftPred(FeatureKey key) {
  return static_cast<rdf::TermId>(key >> 32);
}
inline rdf::TermId FeatureRightPred(FeatureKey key) {
  return static_cast<rdf::TermId>(key & 0xffffffffULL);
}

/// One feature of a state feature set: the attribute pair and its score.
struct FeatureValue {
  FeatureKey key = 0;
  double score = 0.0;
};

/// The state feature set `sf` of a link (Section 4.1): the θ-filtered
/// similarity matrix between the two entities' attributes, reduced to the
/// per-row maxima if the left entity has more attributes (or per-column
/// maxima otherwise). Sorted by key; one entry per distinct attribute pair.
using FeatureSet = std::vector<FeatureValue>;

/// Reusable buffers for ComputeFeatureSet. A link-space build scores
/// hundreds of thousands of candidate pairs; without a scratch every call
/// allocates its value/profile pointer arrays and raw-feature vector anew,
/// and those allocations are a measurable share of build time. One scratch
/// per (single-threaded) build loop; contents are overwritten per call.
struct FeatureScratch {
  std::vector<const sim::TypedValue*> lv, rv;
  std::vector<const sim::StringProfile*> lp, rp;
  FeatureSet raw;
};

/// Computes the state feature set for the entity pair (left_e, right_e).
///
/// Scores below `theta` are discarded (Section 6.1). An empty result means
/// the pair does not belong to the search space.
FeatureSet ComputeFeatureSet(const rdf::Dataset& left, rdf::EntityId left_e,
                             const rdf::Dataset& right, rdf::EntityId right_e,
                             double theta);

/// Cache-aware variant: attribute values are taken from the per-dataset
/// ValueCaches instead of being re-parsed per candidate pair, and — when
/// `sim_memo` is non-null — similarity scores are memoized per (left term,
/// right term) pair across calls, which is where the bulk of build time
/// goes (the same value pair recurs across many candidate entity pairs).
/// Either cache may be nullptr to fall back to direct parsing for that
/// side. The cached and uncached paths produce identical feature sets.
FeatureSet ComputeFeatureSet(const rdf::Dataset& left, rdf::EntityId left_e,
                             const rdf::Dataset& right, rdf::EntityId right_e,
                             double theta, const ValueCache* left_values,
                             const ValueCache* right_values,
                             SimilarityMemo* sim_memo = nullptr,
                             FeatureScratch* scratch = nullptr);

/// Human-readable feature name, e.g. "(name, label)".
std::string FeatureName(const rdf::Dataset& left, const rdf::Dataset& right,
                        FeatureKey key);

}  // namespace alex::core

#endif  // ALEX_CORE_FEATURE_H_
