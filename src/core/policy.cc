#include "core/policy.h"

#include <algorithm>
#include <unordered_set>

namespace alex::core {

std::optional<FeatureKey> EpsilonGreedyPolicy::ChooseAction(
    PairKey state, const FeatureSet& actions, const ActionPrior& prior) {
  if (actions.empty()) return std::nullopt;

  // ε branch: uniform random exploration.
  if (rng_.Bernoulli(epsilon_)) {
    return actions[static_cast<size_t>(rng_.UniformInt(actions.size()))].key;
  }

  // Greedy branch. The state's recorded greedy action (from the last
  // policy improvement) wins if still available.
  auto git = greedy_.find(state);
  if (git != greedy_.end()) {
    for (const FeatureValue& f : actions) {
      if (f.key == git->second) return f.key;
    }
  }

  // Otherwise score every action: the state's own Q when known, else the
  // global per-feature average return, else the cold-start prior — an
  // untried feature beats one known to be bad, and loses to one known to
  // be good.
  std::optional<FeatureKey> best;
  double best_q = 0.0;
  ties_.clear();
  for (const FeatureValue& f : actions) {
    double q;
    auto it = returns_.find(StateAction{state, f.key});
    if (it != returns_.end()) {
      q = it->second.q();
    } else {
      auto global = global_returns_.find(f.key);
      if (global != global_returns_.end()) {
        q = global->second.q();
      } else {
        q = prior ? prior(f.key) : 0.0;
      }
    }
    if (!best.has_value() || q > best_q) {
      best = f.key;
      best_q = q;
      ties_.clear();
      ties_.push_back(f.key);
    } else if (q == best_q) {
      ties_.push_back(f.key);
    }
  }
  // Break exact ties randomly so equally scored actions all get explored.
  if (ties_.size() > 1) {
    return ties_[static_cast<size_t>(rng_.UniformInt(ties_.size()))];
  }
  return best;
}

void EpsilonGreedyPolicy::RecordReturn(const StateAction& sa, double reward) {
  Stats& s = returns_[sa];
  s.sum += reward;
  ++s.count;
  Stats& g = global_returns_[sa.action];
  g.sum += reward;
  ++g.count;
}

void EpsilonGreedyPolicy::Improve(const std::vector<PairKey>& episode_states) {
  // argmax_a Q(s, a) for every episode state, in one pass over the returns.
  const std::unordered_set<PairKey> in_episode(episode_states.begin(),
                                               episode_states.end());
  std::unordered_map<PairKey, std::pair<FeatureKey, double>> best;
  for (const auto& [sa, stats] : returns_) {
    if (!in_episode.count(sa.state)) continue;
    const double q = stats.q();
    auto it = best.find(sa.state);
    if (it == best.end() || q > it->second.second) {
      best[sa.state] = {sa.action, q};
    }
  }
  for (const auto& [state, action_q] : best) {
    greedy_[state] = action_q.first;
  }
}

std::optional<double> EpsilonGreedyPolicy::Q(const StateAction& sa) const {
  auto it = returns_.find(sa);
  if (it == returns_.end()) return std::nullopt;
  return it->second.q();
}

std::optional<double> EpsilonGreedyPolicy::GlobalQ(FeatureKey action) const {
  auto it = global_returns_.find(action);
  if (it == global_returns_.end()) return std::nullopt;
  return it->second.q();
}

std::vector<std::pair<FeatureKey, double>>
EpsilonGreedyPolicy::GlobalActionValues() const {
  std::vector<std::pair<FeatureKey, double>> out;
  out.reserve(global_returns_.size());
  for (const auto& [action, stats] : global_returns_) {
    out.emplace_back(action, stats.q());
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

std::optional<FeatureKey> EpsilonGreedyPolicy::GreedyAction(
    PairKey state) const {
  auto it = greedy_.find(state);
  if (it == greedy_.end()) return std::nullopt;
  return it->second;
}

}  // namespace alex::core
