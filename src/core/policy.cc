#include "core/policy.h"

#include <algorithm>
#include <tuple>
#include <unordered_set>

namespace alex::core {

std::optional<FeatureKey> EpsilonGreedyPolicy::ChooseAction(
    PairKey state, const FeatureSet& actions, const ActionPrior& prior) {
  if (actions.empty()) return std::nullopt;

  // ε branch: uniform random exploration.
  if (rng_.Bernoulli(epsilon_)) {
    return actions[static_cast<size_t>(rng_.UniformInt(actions.size()))].key;
  }

  // Greedy branch. The state's recorded greedy action (from the last
  // policy improvement) wins if still available.
  auto git = greedy_.find(state);
  if (git != greedy_.end()) {
    for (const FeatureValue& f : actions) {
      if (f.key == git->second) return f.key;
    }
  }

  // Otherwise score every action: the state's own Q when known, else the
  // global per-feature average return, else the cold-start prior — an
  // untried feature beats one known to be bad, and loses to one known to
  // be good.
  std::optional<FeatureKey> best;
  double best_q = 0.0;
  ties_.clear();
  for (const FeatureValue& f : actions) {
    double q;
    auto it = returns_.find(StateAction{state, f.key});
    if (it != returns_.end()) {
      q = it->second.q();
    } else {
      auto global = global_returns_.find(f.key);
      if (global != global_returns_.end()) {
        q = global->second.q();
      } else {
        q = prior ? prior(f.key) : 0.0;
      }
    }
    if (!best.has_value() || q > best_q) {
      best = f.key;
      best_q = q;
      ties_.clear();
      ties_.push_back(f.key);
    } else if (q == best_q) {
      ties_.push_back(f.key);
    }
  }
  // Break exact ties randomly so equally scored actions all get explored.
  if (ties_.size() > 1) {
    return ties_[static_cast<size_t>(rng_.UniformInt(ties_.size()))];
  }
  return best;
}

void EpsilonGreedyPolicy::RecordReturn(const StateAction& sa, double reward) {
  Stats& s = returns_[sa];
  s.sum += reward;
  ++s.count;
  Stats& g = global_returns_[sa.action];
  g.sum += reward;
  ++g.count;
}

void EpsilonGreedyPolicy::Improve(const std::vector<PairKey>& episode_states) {
  // argmax_a Q(s, a) for every episode state, in one pass over the returns.
  // Exact-Q ties break towards the smallest action key: the winner must not
  // depend on the hash table's iteration order, or a checkpoint-restored
  // policy (same contents, different insertion history) could improve to a
  // different greedy map than the uninterrupted run.
  const std::unordered_set<PairKey> in_episode(episode_states.begin(),
                                               episode_states.end());
  std::unordered_map<PairKey, std::pair<FeatureKey, double>> best;
  for (const auto& [sa, stats] : returns_) {
    if (!in_episode.count(sa.state)) continue;
    const double q = stats.q();
    auto it = best.find(sa.state);
    if (it == best.end() || q > it->second.second ||
        (q == it->second.second && sa.action < it->second.first)) {
      best[sa.state] = {sa.action, q};
    }
  }
  for (const auto& [state, action_q] : best) {
    greedy_[state] = action_q.first;
  }
}

std::optional<double> EpsilonGreedyPolicy::Q(const StateAction& sa) const {
  auto it = returns_.find(sa);
  if (it == returns_.end()) return std::nullopt;
  return it->second.q();
}

std::optional<double> EpsilonGreedyPolicy::GlobalQ(FeatureKey action) const {
  auto it = global_returns_.find(action);
  if (it == global_returns_.end()) return std::nullopt;
  return it->second.q();
}

std::vector<std::pair<FeatureKey, double>>
EpsilonGreedyPolicy::GlobalActionValues() const {
  std::vector<std::pair<FeatureKey, double>> out;
  out.reserve(global_returns_.size());
  for (const auto& [action, stats] : global_returns_) {
    out.emplace_back(action, stats.q());
  }
  // Equal values tie-break by ascending action key. The previous
  // value-only std::sort (unstable) left equal-valued features in
  // unspecified relative order — which, fed from an unordered_map, meant
  // the ranking two runs reported for the same learned state could differ
  // across platforms or standard libraries.
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

std::optional<FeatureKey> EpsilonGreedyPolicy::GreedyAction(
    PairKey state) const {
  auto it = greedy_.find(state);
  if (it == greedy_.end()) return std::nullopt;
  return it->second;
}

void EpsilonGreedyPolicy::SaveState(BinaryWriter* w) const {
  w->WriteDouble(epsilon_);
  for (uint64_t word : rng_.SaveState()) w->WriteU64(word);

  // Tables go out sorted by key so equal policies serialize to equal bytes
  // regardless of their hash tables' insertion histories.
  std::vector<std::pair<StateAction, Stats>> returns(returns_.begin(),
                                                     returns_.end());
  std::sort(returns.begin(), returns.end(), [](const auto& a, const auto& b) {
    return std::tie(a.first.state, a.first.action) <
           std::tie(b.first.state, b.first.action);
  });
  w->WriteU64(returns.size());
  for (const auto& [sa, stats] : returns) {
    w->WriteU64(sa.state);
    w->WriteU64(sa.action);
    w->WriteDouble(stats.sum);
    w->WriteU64(stats.count);
  }

  std::vector<std::pair<FeatureKey, Stats>> global(global_returns_.begin(),
                                                   global_returns_.end());
  std::sort(global.begin(), global.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w->WriteU64(global.size());
  for (const auto& [action, stats] : global) {
    w->WriteU64(action);
    w->WriteDouble(stats.sum);
    w->WriteU64(stats.count);
  }

  std::vector<std::pair<PairKey, FeatureKey>> greedy(greedy_.begin(),
                                                     greedy_.end());
  std::sort(greedy.begin(), greedy.end());
  w->WriteU64(greedy.size());
  for (const auto& [state, action] : greedy) {
    w->WriteU64(state);
    w->WriteU64(action);
  }
}

Status EpsilonGreedyPolicy::LoadState(BinaryReader* r) {
  // Parse everything into locals first; commit only on full success so a
  // corrupt snapshot cannot leave the policy half-restored.
  double epsilon = 0.0;
  ALEX_RETURN_NOT_OK(r->ReadDouble(&epsilon));
  Rng::State rng_state;
  for (uint64_t& word : rng_state) ALEX_RETURN_NOT_OK(r->ReadU64(&word));

  uint64_t n = 0;
  ALEX_RETURN_NOT_OK(r->ReadU64(&n));
  std::unordered_map<StateAction, Stats, StateActionHash> returns;
  returns.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    StateAction sa;
    Stats stats;
    ALEX_RETURN_NOT_OK(r->ReadU64(&sa.state));
    ALEX_RETURN_NOT_OK(r->ReadU64(&sa.action));
    ALEX_RETURN_NOT_OK(r->ReadDouble(&stats.sum));
    uint64_t count = 0;
    ALEX_RETURN_NOT_OK(r->ReadU64(&count));
    stats.count = static_cast<size_t>(count);
    returns.emplace(sa, stats);
  }

  ALEX_RETURN_NOT_OK(r->ReadU64(&n));
  std::unordered_map<FeatureKey, Stats> global;
  global.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    FeatureKey action = 0;
    Stats stats;
    ALEX_RETURN_NOT_OK(r->ReadU64(&action));
    ALEX_RETURN_NOT_OK(r->ReadDouble(&stats.sum));
    uint64_t count = 0;
    ALEX_RETURN_NOT_OK(r->ReadU64(&count));
    stats.count = static_cast<size_t>(count);
    global.emplace(action, stats);
  }

  ALEX_RETURN_NOT_OK(r->ReadU64(&n));
  std::unordered_map<PairKey, FeatureKey> greedy;
  greedy.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PairKey state = 0;
    FeatureKey action = 0;
    ALEX_RETURN_NOT_OK(r->ReadU64(&state));
    ALEX_RETURN_NOT_OK(r->ReadU64(&action));
    greedy.emplace(state, action);
  }

  epsilon_ = epsilon;
  rng_.RestoreState(rng_state);
  returns_ = std::move(returns);
  global_returns_ = std::move(global);
  greedy_ = std::move(greedy);
  return Status::OK();
}

PolicyRegistry::PolicyRegistry() {
  // The paper's policy ships with the registry itself, so a bare core
  // library always resolves the default tag.
  factories_[std::string(kDefaultPolicyTag)] =
      [](const AlexConfig& config, uint64_t seed) -> std::unique_ptr<Policy> {
    return std::make_unique<EpsilonGreedyPolicy>(config.epsilon, seed);
  };
}

PolicyRegistry& PolicyRegistry::Global() {
  static PolicyRegistry* registry = new PolicyRegistry();
  return *registry;
}

void PolicyRegistry::Register(std::string tag, Factory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  factories_[std::move(tag)] = std::move(factory);
}

bool PolicyRegistry::Contains(std::string_view tag) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.count(std::string(tag)) > 0;
}

std::vector<std::string> PolicyRegistry::KnownTags() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> tags;
  tags.reserve(factories_.size());
  for (const auto& [tag, factory] : factories_) tags.push_back(tag);
  std::sort(tags.begin(), tags.end());
  return tags;
}

Result<std::unique_ptr<Policy>> PolicyRegistry::Create(
    std::string_view tag, const AlexConfig& config, uint64_t seed) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(std::string(tag));
    if (it != factories_.end()) factory = it->second;
  }
  if (!factory) {
    std::string known;
    for (const std::string& t : KnownTags()) {
      if (!known.empty()) known += ", ";
      known += t;
    }
    return Status::NotFound("no policy registered under tag '" +
                            std::string(tag) + "' (known: " + known + ")");
  }
  return factory(config, seed);
}

}  // namespace alex::core
