#ifndef ALEX_CORE_CONFIG_H_
#define ALEX_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace alex::core {

/// Type tag of the paper's ε-greedy policy — the default `AlexConfig::policy`
/// and the only tag the core library registers itself.
inline constexpr std::string_view kDefaultPolicyTag = "epsilon-greedy";

/// All tunables of the ALEX engine, with the paper's default settings
/// (Section 7.1 "Default Settings" and Section 6).
struct AlexConfig {
  /// Similarity threshold θ of Section 6.1: feature values below θ are
  /// zeroed, and pairs with no surviving feature are dropped from the
  /// search space.
  double theta = 0.3;

  /// Exploration band half-width (Section 4.2): an action around feature
  /// score v adds links whose score on that feature lies in [v-step, v+step].
  double step_size = 0.05;

  /// Feedback items per episode (policy improvement cadence). 1000 in batch
  /// mode, 10 in the interactive specific-domain setting (Section 7.2).
  size_t episode_size = 1000;

  /// ε of the ε-greedy policy (Section 4.4.1).
  double epsilon = 0.05;

  /// GLIE ε decay: when true, after k completed episodes the policy runs
  /// with ε/k — episode 1 explores with the full ε, episode 2 with ε/1,
  /// episode 3 with ε/2, and in general episode k+1 with ε/k. The decay is
  /// applied at the end of each episode (AlexEngine::EndEpisode), dividing
  /// by the number of episodes completed so far; an earlier off-by-one
  /// divided by `completed + 1`, so the very first decay already halved ε
  /// and every subsequent episode ran one schedule step ahead.
  /// Monte Carlo ε-greedy control converges to the greedy policy only if
  /// exploration decays (Sutton & Barto, the paper's [22]); a constant ε
  /// keeps re-adding rolled-back junk links forever and the candidate set
  /// never strictly stabilizes.
  bool epsilon_decay = true;

  /// Reward values (Section 4.3). Negative feedback may be penalized more
  /// by making `negative_reward` larger in magnitude.
  double positive_reward = 1.0;
  double negative_reward = -1.0;

  /// Upper bound on links one exploration action may add, keeping the ones
  /// whose feature score is closest to the approved link's. Unbounded
  /// actions on a non-distinctive feature (paper Section 4.2's
  /// (rdf:type, rdf:type) example) can otherwise flood the candidate set
  /// with thousands of links from a single ε-random draw — far more than an
  /// episode's worth of negative feedback can digest. 0 (the default) means
  /// adaptive: a twentieth of the episode's feedback budget (at least 10) —
  /// inflow from one bad action stays comparable to what the episode's
  /// negative feedback plus rollback can remove.
  size_t max_links_per_action = 0;

  size_t EffectiveMaxLinksPerAction() const {
    if (max_links_per_action != 0) return max_links_per_action;
    return episode_size / 20 > 10 ? episode_size / 20 : 10;
  }

  /// Optimizations of Section 6.3.
  bool use_blacklist = true;
  /// Negative feedback items on the *same link* before it is blacklisted.
  /// 1 is the paper's behaviour (a rejection immediately marks the link as
  /// known-incorrect). When user feedback can be erroneous (Appendix C),
  /// 2 lets a correct link survive one mistaken rejection: it is removed
  /// but can be re-discovered by exploration and approved later.
  size_t blacklist_threshold = 1;
  bool use_rollback = true;
  /// Negative feedback items attributed to one generating state-action pair
  /// before its exploration is rolled back. 0 (default) means adaptive:
  /// 5 in batch mode, dropping to 2 for small interactive episodes where
  /// five negatives can take several episodes to accumulate.
  size_t rollback_threshold = 0;

  size_t EffectiveRollbackThreshold() const {
    if (rollback_threshold != 0) return rollback_threshold;
    return episode_size >= 200 ? 5 : 2;
  }

  /// Convergence (Section 3.2): stop when the candidate set is unchanged
  /// after an episode, or after `max_episodes`. `relaxed_fraction` is the
  /// 5% change threshold reported as the relaxed convergence point.
  size_t max_episodes = 100;
  double relaxed_fraction = 0.05;

  /// Equal-size partitioning (Section 6.2). The paper's experiments use 27.
  size_t num_partitions = 27;
  /// Worker threads for partition-parallel work (0 = the CPUs this process
  /// is actually allowed, via exec::CpuTopology::RecommendedWorkers()).
  size_t num_threads = 0;

  /// Pin partition workers 1:1 to CPUs (exec layer). Best effort — on
  /// restricted environments the pool degrades to unpinned workers. Off by
  /// default so concurrent processes (ctest -j, shared CI) don't stack
  /// their pools onto the same low-numbered CPUs; the build bench measures
  /// both settings.
  bool pin_threads = false;

  /// Allocate link-space build temporaries (block count maps, evaluated
  /// pair sets, the similarity memo table) from a per-partition bump arena
  /// instead of the global allocator. Output is bit-identical either way;
  /// false is kept selectable as the benchmark baseline.
  bool arena_build_alloc = true;

  /// Blocking guard when constructing the link space: a blocking key whose
  /// candidate cross-product exceeds this is treated as a stop value.
  size_t max_block_pairs = 20000;

  /// When true (default), partition link spaces are built against one
  /// shared read-only BlockingIndex plus term-key/value caches constructed
  /// once per dataset pair, so blocking work does not grow with the
  /// partition count. When false, every partition re-inverts the right
  /// dataset itself (the pre-optimization behaviour) — kept selectable for
  /// the equivalence tests and the build-phase benchmark baseline.
  bool shared_blocking_index = true;

  /// Triple storage backend for the scenario's datasets.
  ///  - kUncompressed: TripleStore's three sorted Triple vectors (fastest
  ///    lookups, ~36 bytes/triple; the equivalence reference).
  ///  - kCompressed: block-compressed columnar storage held in RAM
  ///    (delta+varint blocks, typically well under half the bytes/triple).
  ///  - kCompressedDisk: same blocks serialized to one file per dataset and
  ///    read back through a bounded LRU block cache.
  enum class StorageBackend : uint8_t {
    kUncompressed = 0,
    kCompressed = 1,
    kCompressedDisk = 2,
  };
  StorageBackend storage_backend = StorageBackend::kUncompressed;

  /// Triples per compressed block (compressed backends only).
  size_t storage_block_size = 1024;

  /// Decoded-block LRU budget for the disk tier, in bytes.
  size_t storage_cache_budget_bytes = 64ull << 20;

  /// Directory for the disk tier's block files ("." components of dataset
  /// names are sanitized away by the simulation driver).
  /// Empty = current working directory.
  std::string storage_disk_dir;

  /// Action-selection policy, by registry type tag (core/policy.h).
  /// "epsilon-greedy" (built-in, the paper's policy) or any tag registered
  /// by a linked library — e.g. "adaptive-feature" after calling
  /// rl::RegisterAdaptiveFeaturePolicy(). An unknown tag falls back to the
  /// default at engine construction with an error log; drivers validate
  /// tags up front. Hashed into the checkpoint config fingerprint only when
  /// non-default, so pre-existing checkpoints keep their fingerprints.
  std::string policy = std::string(kDefaultPolicyTag);

  /// Weight of the per-feature payoff statistic in the adaptive-feature
  /// policy's action scores (rl/adaptive_policy.h); ignored by
  /// epsilon-greedy.
  double adaptive_payoff_weight = 0.25;

  /// Seed for the policy's random draws.
  uint64_t seed = 7;
};

}  // namespace alex::core

#endif  // ALEX_CORE_CONFIG_H_
