#ifndef ALEX_CORE_PARTITIONED_H_
#define ALEX_CORE_PARTITIONED_H_

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/engine.h"
#include "paris/paris.h"

namespace alex::core {

/// Equal-size partitioned ALEX (Section 6.2): the larger (left) dataset is
/// split round-robin — entity i belongs to partition i mod n — and each
/// partition owns an independent LinkSpace and AlexEngine pairing its left
/// entities with the whole right dataset. Partition link spaces are built
/// in parallel on a thread pool; feedback is routed to the partition that
/// owns the link's left entity.
class PartitionedAlex {
 public:
  /// Datasets are borrowed and must outlive this object.
  PartitionedAlex(const rdf::Dataset* left, const rdf::Dataset* right,
                  const AlexConfig& config);

  /// Builds every partition's link space (the preprocessing step).
  /// With `config.shared_blocking_index` (the default), first constructs
  /// the shared right-dataset BlockingIndex and the per-dataset term-key /
  /// value caches once, then builds all partitions against them in
  /// parallel; otherwise each partition runs the legacy self-contained
  /// build. Returns per-partition build seconds (Section 7.3 reports the
  /// slowest); the shared-resource construction time is reported
  /// separately via shared_index_seconds().
  std::vector<double> Build();

  /// Wall seconds spent building the shared blocking index and caches in
  /// the last Build() call (0 before Build or in legacy mode).
  double shared_index_seconds() const { return shared_index_seconds_; }

  /// Seeds candidates from an automatic linker's output.
  void InitializeCandidates(const std::vector<paris::ScoredLink>& links);
  void InitializeCandidates(const std::vector<PairKey>& links);

  /// Routes one feedback item to its partition's engine.
  void ProcessFeedback(const feedback::FeedbackItem& item);

  /// Routes a batch of feedback items and processes the partitions in
  /// parallel on the worker pool (Section 6.2: partitions are independent,
  /// so "feedback can be directed to all partitions"). Item order within a
  /// partition is preserved, so the result equals processing the batch
  /// sequentially.
  void ProcessFeedbackBatch(const std::vector<feedback::FeedbackItem>& items);

  /// Ends the episode on every partition in parallel on the worker pool
  /// (policy improvement is per-partition work); returns aggregated stats.
  EngineEpisodeStats EndEpisode();

  /// An episode's aggregated stats plus the exact candidate-set delta it
  /// produced: the links it added and the links it removed, each sorted
  /// ascending. The link service feeds these straight into the versioned
  /// link index's staging area, so an episode commit publishes precisely
  /// what changed — no full-set rebuild per commit.
  struct EpisodeCommit {
    EngineEpisodeStats stats;
    std::vector<PairKey> added;
    std::vector<PairKey> removed;
  };

  /// EndEpisode() with the delta of the episode-end step alone (policy
  /// improvement; feedback already routed).
  EpisodeCommit EndEpisodeWithDelta();

  /// One full service episode: routes `items` through the partitions, ends
  /// the episode, and returns the delta across BOTH steps — feedback
  /// processing mutates candidates directly (removal on rejection,
  /// exploration on approval), so a delta window opened only around
  /// EndEpisode() would miss nearly every change.
  EpisodeCommit CommitFeedbackBatch(
      const std::vector<feedback::FeedbackItem>& items);

  /// Union of all partitions' candidate sets. Per-partition snapshots are
  /// gathered in parallel on the worker pool.
  std::unordered_set<PairKey> Candidates() const;
  /// Same union as a vector in canonical order: partition-major, sorted
  /// within each partition. The order is a function of the candidate SET
  /// only — not of hash-table iteration history — so a checkpoint-restored
  /// run samples feedback from the exact sequence the uninterrupted run
  /// would have seen.
  std::vector<PairKey> CandidateVector() const;
  size_t NumCandidates() const;

  size_t num_partitions() const { return engines_.size(); }
  size_t PartitionOf(rdf::EntityId left_entity) const {
    return left_entity % engines_.size();
  }
  const AlexEngine& engine(size_t partition) const {
    return *engines_[partition];
  }
  const LinkSpace& space(size_t partition) const {
    return *spaces_[partition];
  }

  /// Total distinct links ever added by exploration, across partitions.
  size_t TotalExploredLinks() const;

  /// Aggregated link-space stats (Figure 5 reports partition 0's).
  LinkSpace::BuildStats AggregatedSpaceStats() const;

  /// Serializes every partition engine's state plus the partition layout
  /// (count and left-entity total, for restore-time validation). Spaces are
  /// rebuilt, not serialized — see AlexEngine::SaveState.
  void SaveState(BinaryWriter* w) const;

  /// Restores a snapshot saved by SaveState() into this instance, which
  /// must have been constructed over the same datasets and config (and had
  /// Build() run). `format_version` is the checkpoint container version,
  /// forwarded to every partition engine's LoadState (the per-engine policy
  /// section layout depends on it). All-or-nothing across partitions: every
  /// engine payload is staged into a fresh engine first, and the live
  /// engines are only swapped out after the entire snapshot parsed cleanly.
  Status LoadState(BinaryReader* r,
                   uint32_t format_version = ckpt::kFormatVersion);

 private:
  ThreadPool* pool() const;

  const rdf::Dataset* left_;
  const rdf::Dataset* right_;
  AlexConfig config_;
  std::vector<std::vector<rdf::EntityId>> partition_entities_;
  std::vector<std::unique_ptr<LinkSpace>> spaces_;
  std::vector<std::unique_ptr<AlexEngine>> engines_;
  /// Lazily created; mutable so const aggregation queries (Candidates and
  /// friends) can fan out over the pool too.
  mutable std::unique_ptr<ThreadPool> pool_;
  double shared_index_seconds_ = 0.0;
};

}  // namespace alex::core

#endif  // ALEX_CORE_PARTITIONED_H_
