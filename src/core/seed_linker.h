#ifndef ALEX_CORE_SEED_LINKER_H_
#define ALEX_CORE_SEED_LINKER_H_

#include <string_view>
#include <vector>

#include "paris/paris.h"

namespace alex::core {

/// Abstract automatic seed linker: produces the imperfect initial candidate
/// link set that ALEX's feedback loop repairs (paper Section 7.1 "Initial
/// Set of Links"). Implementations wrap a concrete matcher (PARIS noisy-OR,
/// SiGMa greedy propagation, ...) behind one call.
///
/// Contract:
///  - Run() returns scored links sorted by (left, right), deterministic for
///    a fixed dataset pair and configuration.
///  - `type_tag()` names the implementation; it is recorded in simulation
///    checkpoints so a resume under a different linker (and therefore a
///    different initial candidate set) fails loudly instead of diverging.
///
/// Implementations live next to their matchers (see paris/seed_linkers.h
/// for the factory); this header only pins the interface, which is why it
/// stays header-only — paris code can implement it without a library cycle.
class SeedLinker {
 public:
  virtual ~SeedLinker() = default;

  /// Stable type tag recorded in checkpoints ("paris", "sigma", ...).
  virtual std::string_view type_tag() const = 0;

  /// Runs the matcher and returns the scored candidate links, sorted by
  /// (left, right).
  virtual std::vector<paris::ScoredLink> Run() = 0;
};

}  // namespace alex::core

#endif  // ALEX_CORE_SEED_LINKER_H_
