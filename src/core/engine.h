#ifndef ALEX_CORE_ENGINE_H_
#define ALEX_CORE_ENGINE_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/checkpoint.h"
#include "core/config.h"
#include "core/link_space.h"
#include "core/policy.h"
#include "feedback/oracle.h"

namespace alex::core {

/// Counters describing one engine's activity inside the current episode.
struct EngineEpisodeStats {
  size_t feedback_items = 0;
  size_t positive_items = 0;
  size_t negative_items = 0;
  size_t links_added = 0;
  size_t links_removed = 0;
  size_t rollbacks = 0;
};

/// One ALEX learning engine over one link space (a single partition in the
/// paper's terms). Implements Algorithm 1: Monte Carlo policy evaluation
/// while feedback arrives, policy improvement at episode end, plus the
/// blacklist and rollback optimizations of Section 6.3.
///
/// Not thread-safe; partitions each own an engine and are driven
/// independently (Section 6.2).
class AlexEngine {
 public:
  /// `space` is borrowed and must outlive the engine.
  AlexEngine(const LinkSpace* space, const AlexConfig& config, uint64_t seed);

  /// Seeds the candidate set (e.g. from PARIS). Links outside the link
  /// space are accepted — they are feedback-able and removable, but
  /// actions cannot be taken from them (they have no feature set).
  void InitializeCandidates(const std::vector<PairKey>& initial_links);

  /// Algorithm 1 lines 12-21: processes one feedback item.
  ///
  /// Positive: first-visit MC credit to every generating state-action pair,
  /// then take an action from the policy and explore the band around the
  /// chosen feature, adding discovered links to the candidate set.
  /// Negative: credit the negative reward, remove the link, blacklist it,
  /// and bump the rollback counters of its generators.
  void ProcessFeedback(const feedback::FeedbackItem& item);

  /// Algorithm 1 lines 24-33 plus episode bookkeeping reset. Returns the
  /// stats of the episode just ended.
  EngineEpisodeStats EndEpisode();

  const std::unordered_set<PairKey>& candidates() const { return candidates_; }
  const LinkSpace& space() const { return *space_; }
  /// The live policy, behind the abstract interface. The concrete type is
  /// chosen by `config.policy` via the PolicyRegistry at construction.
  const Policy& policy() const { return *policy_; }

  size_t blacklist_size() const { return blacklist_.size(); }
  bool IsBlacklisted(PairKey pair) const { return blacklist_.count(pair) > 0; }

  /// Links ever added by exploration (distinct), for "new links discovered"
  /// reporting.
  size_t total_explored_links() const { return ever_explored_.size(); }

  size_t episodes_completed() const { return episodes_completed_; }

  /// Serializes the engine's full learning state: the policy (framed as
  /// its registry type tag plus a length-prefixed per-type payload),
  /// episode counters, candidate/blacklist/provenance sets, rollback
  /// accounting, and the in-episode first-visit bookkeeping. The link
  /// space is NOT serialized — it is a deterministic function of the
  /// datasets and is rebuilt on restore.
  void SaveState(BinaryWriter* w) const;

  /// Restores an engine saved with SaveState() into this engine (which must
  /// be built over an equivalent link space — enforced by the checkpoint
  /// header's config fingerprint, not here). `format_version` is the
  /// checkpoint container version the payload came from: version-1
  /// payloads carry a bare EpsilonGreedyPolicy snapshot (accepted iff this
  /// engine runs the default policy), version-2 payloads a tagged one. A
  /// policy section whose tag is unknown to this build or differs from the
  /// configured policy fails with an InvalidArgument naming the section
  /// and the tag. All-or-nothing: on any error the engine is left exactly
  /// as it was.
  Status LoadState(BinaryReader* r,
                   uint32_t format_version = ckpt::kFormatVersion);

 private:
  void Explore(PairKey state, FeatureKey action);
  void Rollback(const StateAction& generator);

  const LinkSpace* space_;
  AlexConfig config_;
  std::unique_ptr<Policy> policy_;
  ActionPrior selectivity_prior_;
  Rng rng_;

  std::unordered_set<PairKey> candidates_;
  std::unordered_set<PairKey> blacklist_;
  std::unordered_set<PairKey> ever_explored_;

  /// Provenance: which state-action pairs discovered a link (Section 6.3,
  /// "ALEX traces feedback on links to know by which state-action pair these
  /// links were generated").
  std::unordered_map<PairKey, std::vector<StateAction>> generators_;
  /// Inverse: links each state-action pair generated (for rollback).
  std::unordered_map<StateAction, std::vector<PairKey>, StateActionHash>
      generated_links_;
  /// Negative feedback attributed to each generator this run.
  std::unordered_map<StateAction, size_t, StateActionHash> negative_counts_;
  /// Negative feedback per link, for the blacklist threshold.
  std::unordered_map<PairKey, size_t> link_negative_counts_;
  /// Links that have received explicit positive feedback (never rolled back).
  std::unordered_set<PairKey> positively_marked_;

  /// Episode-scoped: first-visit marker and visited-state list.
  std::unordered_set<PairKey> visited_this_episode_;
  std::vector<PairKey> episode_states_;
  EngineEpisodeStats episode_stats_;
  size_t episodes_completed_ = 0;
};

}  // namespace alex::core

#endif  // ALEX_CORE_ENGINE_H_
