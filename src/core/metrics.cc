#include "core/metrics.h"

namespace alex::core {

LinkSetMetrics ComputeMetrics(
    const std::unordered_set<feedback::PairKey>& candidates,
    const feedback::GroundTruth& truth) {
  LinkSetMetrics m;
  m.candidates = candidates.size();
  m.ground_truth = truth.size();
  for (feedback::PairKey key : candidates) {
    if (truth.Contains(key)) ++m.correct;
  }
  if (m.candidates > 0) {
    m.precision = static_cast<double>(m.correct) /
                  static_cast<double>(m.candidates);
  }
  if (m.ground_truth > 0) {
    m.recall = static_cast<double>(m.correct) /
               static_cast<double>(m.ground_truth);
  }
  if (m.precision + m.recall > 0.0) {
    m.f_measure = 2.0 * m.precision * m.recall / (m.precision + m.recall);
  }
  return m;
}

}  // namespace alex::core
