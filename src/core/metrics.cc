#include "core/metrics.h"

#include "obs/metrics.h"

namespace alex::core {

LinkSetMetrics ComputeMetrics(
    const std::unordered_set<feedback::PairKey>& candidates,
    const feedback::GroundTruth& truth) {
  LinkSetMetrics m;
  m.candidates = candidates.size();
  m.ground_truth = truth.size();
  for (feedback::PairKey key : candidates) {
    if (truth.Contains(key)) ++m.correct;
  }
  // Zero denominators (empty candidate set, empty ground truth) leave the
  // affected metric at 0 rather than NaN — but a 0 that means "undefined"
  // is indistinguishable from a 0 that means "all wrong" in a metric
  // series, so each occurrence is counted as an explicit event.
  if (m.candidates > 0) {
    m.precision = static_cast<double>(m.correct) /
                  static_cast<double>(m.candidates);
  } else {
    obs::MetricsRegistry::Global().counter("metrics.undefined").Add(1);
  }
  if (m.ground_truth > 0) {
    m.recall = static_cast<double>(m.correct) /
               static_cast<double>(m.ground_truth);
  } else {
    obs::MetricsRegistry::Global().counter("metrics.undefined").Add(1);
  }
  if (m.precision + m.recall > 0.0) {
    m.f_measure = 2.0 * m.precision * m.recall / (m.precision + m.recall);
  }
  return m;
}

}  // namespace alex::core
