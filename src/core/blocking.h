#ifndef ALEX_CORE_BLOCKING_H_
#define ALEX_CORE_BLOCKING_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "exec/arena.h"
#include "rdf/dataset.h"
#include "similarity/string_metrics.h"
#include "similarity/value.h"

namespace alex::core {

/// 64-bit id of one blocking key (a normalized value, a word token, or a
/// token prefix). Replaces the allocating `std::string` keys ("v:...",
/// "t:...", "p:...") the link-space build used per attribute occurrence:
/// the hot loop now hashes once per *distinct term* and compares integers.
/// Keys of different kinds never collide by construction (the kind is mixed
/// into the hash seed); across kinds a 64-bit collision merges two blocks,
/// which at the dataset sizes this system targets is vanishingly unlikely
/// and at worst proposes a few extra candidate pairs.
using BlockKey = uint64_t;

/// Kind of blocking key derived from a normalized attribute value.
enum class BlockKind : uint8_t { kValue = 0, kToken = 1, kPrefix = 2 };

/// Stable 64-bit hash of (kind, text); FNV-1a with a splitmix64 finalizer.
BlockKey HashBlockKey(BlockKind kind, std::string_view text);

/// Replaces `out` with the blocking keys of one RDF term (deduplicated,
/// sorted): the full normalized value, each word token of length >= 2, and
/// a 5-character prefix per token of length >= 6 (tolerates tail typos).
/// Mirrors the legacy string-keyed normalization exactly.
void ComputeTermBlockingKeys(const rdf::Term& term, std::vector<BlockKey>* out);

/// Memoized blocking keys per dictionary TermId for one dataset.
///
/// Attribute values repeat heavily across entities (names, categories,
/// years), so the legacy build re-ran ToLowerAscii/WordTokens per attribute
/// *occurrence*; this cache runs them once per *distinct term*. Built
/// eagerly over every term that occurs as an attribute object; read-only
/// and safely shareable across threads afterwards. The dataset is borrowed
/// and must not mutate while the cache is alive.
class TermKeyCache {
 public:
  explicit TermKeyCache(const rdf::Dataset& ds);

  /// Keys of one term (empty span for terms that are not attribute objects
  /// or normalize to an empty string). Stable storage: repeated calls
  /// return the same bytes — nothing is recomputed.
  std::span<const BlockKey> keys(rdf::TermId t) const {
    if (t + 1 >= offsets_.size()) return {};
    return std::span<const BlockKey>(keys_.data() + offsets_[t],
                                     offsets_[t + 1] - offsets_[t]);
  }

  /// Replaces `out` with the deduplicated (sorted) union of the entity's
  /// attribute-value keys — the entity's blocking-key set.
  void EntityKeys(rdf::EntityId e, std::vector<BlockKey>* out) const;

  /// Number of terms whose keys were actually computed (distinct attribute
  /// objects). Constant after construction; exposed so tests can assert
  /// that lookups never trigger recomputation.
  size_t computed_terms() const { return computed_terms_; }

 private:
  const rdf::Dataset* ds_;
  /// CSR layout: keys of term t live at keys_[offsets_[t] .. offsets_[t+1]).
  std::vector<uint32_t> offsets_;
  std::vector<BlockKey> keys_;
  size_t computed_terms_ = 0;
};

/// Memoized sim::ParseValue results and string profiles per dictionary
/// TermId for one dataset, so feature computation stops re-parsing — and
/// similarity scoring stops re-lowercasing/re-tokenizing — the same term
/// for every candidate pair that touches it. Built eagerly over
/// attribute-object terms; read-only and shareable across threads
/// afterwards. `value()`/`profile()` are only meaningful for terms that
/// occur as attribute objects.
class ValueCache {
 public:
  explicit ValueCache(const rdf::Dataset& ds);

  const sim::TypedValue& value(rdf::TermId t) const { return values_[t]; }

  /// StringProfile of `value(t).text`, for the profile-accelerated
  /// sim::ValueSimilarity overload.
  const sim::StringProfile& profile(rdf::TermId t) const {
    return profiles_[t];
  }

  size_t size() const { return values_.size(); }

 private:
  std::vector<sim::TypedValue> values_;
  std::vector<sim::StringProfile> profiles_;
};

/// Memoizes sim::ValueSimilarity per (left TermId, right TermId) pair of
/// attribute objects. Blocking concentrates entities that share values, so
/// the same term pair is scored for many candidate entity pairs; the O(n²)
/// string metrics dominate build time, and this pays them once per distinct
/// term pair. ValueSimilarity is deterministic, so memoization is
/// observationally identical to direct calls. NOT thread-safe: each
/// partition build owns its own memo (term-pair reuse is overwhelmingly
/// within a partition, since a partition holds all candidate pairs of its
/// left entities).
class SimilarityMemo {
 public:
  /// With an arena, the probe table lives in it (and is simply abandoned
  /// on growth — the arena reclaims everything at once when the build
  /// ends); without one, the global allocator backs it as before.
  explicit SimilarityMemo(exec::ArenaAllocator* arena = nullptr);

  /// Returns ValueSimilarity(lv, rv), where lv/rv must be the parsed values
  /// of left/right and lp/rp their string profiles (either may be nullptr
  /// to compute without profile acceleration). Computes on first sight of
  /// the (left, right) pair and replays the stored score afterwards.
  double Score(rdf::TermId left, rdf::TermId right, const sim::TypedValue& lv,
               const sim::TypedValue& rv, const sim::StringProfile* lp,
               const sim::StringProfile* rp);

  /// Distinct term pairs scored so far.
  size_t size() const { return size_; }

  /// Replayed lookups / first-sight computations so far. Plain counters
  /// (the memo is single-threaded by contract); LinkSpace::Build flushes
  /// them into the global metrics registry once per partition build, so
  /// the per-cell hot path carries no atomic traffic.
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  /// Open-addressing table (linear probing, power-of-two capacity): the
  /// memo is probed once per similarity-matrix cell, so lookup cost is the
  /// hot path. Keys pack (left TermId << 32 | right TermId); the all-ones
  /// pattern marks empty slots (unreachable for any real dictionary, which
  /// would need 2^32 terms on both sides).
  struct Slot {
    uint64_t key;
    double score;
  };
  void Grow();

  std::vector<Slot, exec::ArenaStl<Slot>> slots_;
  size_t size_ = 0;
  size_t mask_ = 0;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

/// Inverted blocking index of one (right) dataset: BlockKey -> the entities
/// carrying that key. Constructed **once** per right dataset and shared
/// read-only across all partitions, replacing the per-partition re-inversion
/// that made the build phase do P× the blocking work at P partitions.
class BlockingIndex {
 public:
  /// Inverts `right` by blocking key. The dataset is borrowed and must
  /// outlive the index.
  explicit BlockingIndex(const rdf::Dataset& right);

  /// Entities in the block of `key`, or nullptr if the block is empty.
  /// Entity ids are ascending within a block.
  const std::vector<rdf::EntityId>* block(BlockKey key) const {
    auto it = blocks_.find(key);
    return it == blocks_.end() ? nullptr : &it->second;
  }

  size_t num_blocks() const { return blocks_.size(); }

  /// The right dataset's term-key cache (shared with feature/test code).
  const TermKeyCache& term_keys() const { return term_keys_; }

 private:
  TermKeyCache term_keys_;
  std::unordered_map<BlockKey, std::vector<rdf::EntityId>> blocks_;
};

/// Shared read-only inputs for one LinkSpace::Build wave: everything that
/// depends only on the dataset pair, not on the partition. Built once by
/// PartitionedAlex::Build (or by the single-shot LinkSpace::Build wrapper)
/// and borrowed by every partition's build.
struct BuildResources {
  const BlockingIndex* right_index = nullptr;
  const TermKeyCache* left_keys = nullptr;
  const ValueCache* left_values = nullptr;
  const ValueCache* right_values = nullptr;
};

}  // namespace alex::core

#endif  // ALEX_CORE_BLOCKING_H_
