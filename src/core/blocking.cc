#include "core/blocking.h"

#include <algorithm>
#include <string>

#include "common/string_util.h"
#include "obs/trace.h"
#include "similarity/similarity.h"

namespace alex::core {
namespace {

/// Sorts and deduplicates a key vector in place (set semantics).
void SortUnique(std::vector<BlockKey>* keys) {
  std::sort(keys->begin(), keys->end());
  keys->erase(std::unique(keys->begin(), keys->end()), keys->end());
}

}  // namespace

BlockKey HashBlockKey(BlockKind kind, std::string_view text) {
  // FNV-1a with the kind hashed as its own leading round, so "v:x" /
  // "t:x" / "p:x" style namespacing survives the move to integer keys.
  // The kind must be multiplied through before any text byte: mixing it
  // into the same round as the first character lets a kind difference
  // cancel against a first-character difference (kValue^kToken == '7'^'4',
  // so seeding alone would collide "v:79..." with "t:49...").
  uint64_t h = 0xcbf29ce484222325ULL;
  h ^= static_cast<uint64_t>(kind) + 1;
  h *= 0x100000001b3ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  // splitmix64 finalizer: FNV alone mixes low bits poorly for short keys.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

void ComputeTermBlockingKeys(const rdf::Term& term,
                             std::vector<BlockKey>* out) {
  out->clear();
  const std::string norm = ToLowerAscii(
      term.is_iri() ? std::string(sim::IriLocalName(term.value)) : term.value);
  if (norm.empty()) return;
  out->push_back(HashBlockKey(BlockKind::kValue, norm));
  for (const std::string& tok : WordTokens(norm)) {
    if (tok.size() < 2) continue;
    out->push_back(HashBlockKey(BlockKind::kToken, tok));
    if (tok.size() >= 6) {
      out->push_back(
          HashBlockKey(BlockKind::kPrefix, std::string_view(tok).substr(0, 5)));
    }
  }
  SortUnique(out);
}

TermKeyCache::TermKeyCache(const rdf::Dataset& ds) : ds_(&ds) {
  ALEX_TRACE_SPAN("build", "TermKeyCache");
  const size_t num_terms = ds.dict().size();
  // Pass 1: mark the terms that occur as attribute objects; only those need
  // keys (subject IRIs and predicates never reach the blocking loop).
  std::vector<bool> is_object(num_terms, false);
  for (rdf::EntityId e = 0; e < ds.num_entities(); ++e) {
    for (const rdf::Attribute& a : ds.attributes(e)) {
      if (a.object < num_terms) is_object[a.object] = true;
    }
  }
  // Pass 2: compute each marked term's keys once into the CSR arrays.
  offsets_.assign(num_terms + 1, 0);
  std::vector<BlockKey> scratch;
  for (rdf::TermId t = 0; t < num_terms; ++t) {
    if (is_object[t]) {
      ComputeTermBlockingKeys(ds.dict().term(t), &scratch);
      keys_.insert(keys_.end(), scratch.begin(), scratch.end());
      ++computed_terms_;
    }
    offsets_[t + 1] = static_cast<uint32_t>(keys_.size());
  }
}

void TermKeyCache::EntityKeys(rdf::EntityId e,
                              std::vector<BlockKey>* out) const {
  out->clear();
  for (const rdf::Attribute& a : ds_->attributes(e)) {
    const std::span<const BlockKey> ks = keys(a.object);
    out->insert(out->end(), ks.begin(), ks.end());
  }
  SortUnique(out);
}

ValueCache::ValueCache(const rdf::Dataset& ds) {
  ALEX_TRACE_SPAN("build", "ValueCache");
  values_.resize(ds.dict().size());
  profiles_.resize(ds.dict().size());
  std::vector<bool> parsed(values_.size(), false);
  for (rdf::EntityId e = 0; e < ds.num_entities(); ++e) {
    for (const rdf::Attribute& a : ds.attributes(e)) {
      if (a.object < values_.size() && !parsed[a.object]) {
        values_[a.object] = sim::ParseValue(ds.dict().term(a.object));
        profiles_[a.object] = sim::MakeStringProfile(values_[a.object].text);
        parsed[a.object] = true;
      }
    }
  }
}

namespace {

constexpr uint64_t kEmptySlot = ~uint64_t{0};

/// splitmix64 finalizer: packed term-id pairs are highly regular, so the
/// raw key would cluster badly under linear probing.
uint64_t MixKey(uint64_t key) {
  key ^= key >> 30;
  key *= 0xbf58476d1ce4e5b9ULL;
  key ^= key >> 27;
  key *= 0x94d049bb133111ebULL;
  key ^= key >> 31;
  return key;
}

}  // namespace

SimilarityMemo::SimilarityMemo(exec::ArenaAllocator* arena)
    : slots_(exec::ArenaStl<Slot>(arena)) {
  slots_.assign(1 << 16, Slot{kEmptySlot, 0.0});
  mask_ = slots_.size() - 1;
}

void SimilarityMemo::Grow() {
  std::vector<Slot, exec::ArenaStl<Slot>> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{kEmptySlot, 0.0});
  mask_ = slots_.size() - 1;
  for (const Slot& s : old) {
    if (s.key == kEmptySlot) continue;
    size_t i = MixKey(s.key) & mask_;
    while (slots_[i].key != kEmptySlot) i = (i + 1) & mask_;
    slots_[i] = s;
  }
}

double SimilarityMemo::Score(rdf::TermId left, rdf::TermId right,
                             const sim::TypedValue& lv,
                             const sim::TypedValue& rv,
                             const sim::StringProfile* lp,
                             const sim::StringProfile* rp) {
  const uint64_t key =
      (static_cast<uint64_t>(left) << 32) | static_cast<uint64_t>(right);
  size_t i = MixKey(key) & mask_;
  while (slots_[i].key != key) {
    if (slots_[i].key == kEmptySlot) {
      ++misses_;
      const double score = sim::ValueSimilarity(lv, rv, lp, rp);
      slots_[i] = Slot{key, score};
      if (++size_ * 2 > slots_.size()) Grow();  // Keep load factor <= 0.5.
      return score;
    }
    i = (i + 1) & mask_;
  }
  ++hits_;
  return slots_[i].score;
}

BlockingIndex::BlockingIndex(const rdf::Dataset& right) : term_keys_(right) {
  ALEX_TRACE_SPAN("build", "BlockingIndex");
  std::vector<BlockKey> scratch;
  for (rdf::EntityId r = 0; r < right.num_entities(); ++r) {
    term_keys_.EntityKeys(r, &scratch);
    for (BlockKey key : scratch) {
      blocks_[key].push_back(r);
    }
  }
}

}  // namespace alex::core
