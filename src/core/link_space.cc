#include "core/link_space.h"

#include <algorithm>
#include <string>
#include <unordered_set>

#include "common/string_util.h"
#include "similarity/value.h"

namespace alex::core {
namespace {

using rdf::Dataset;
using rdf::EntityId;

/// Blocking keys for one attribute value: the full normalized value, its
/// word tokens, and a 5-character prefix per longer token (tolerates tail typos).
void CollectBlockingKeys(const Dataset& ds, rdf::TermId object,
                         std::unordered_set<std::string>* keys) {
  const rdf::Term& t = ds.dict().term(object);
  const std::string norm = ToLowerAscii(
      t.is_iri() ? std::string(sim::IriLocalName(t.value)) : t.value);
  if (norm.empty()) return;
  keys->insert("v:" + norm);
  for (const std::string& tok : WordTokens(norm)) {
    if (tok.size() < 2) continue;
    keys->insert("t:" + tok);
    if (tok.size() >= 6) keys->insert("p:" + tok.substr(0, 5));
  }
}

std::unordered_set<std::string> EntityBlockingKeys(const Dataset& ds,
                                                   EntityId e) {
  std::unordered_set<std::string> keys;
  for (const rdf::Attribute& a : ds.attributes(e)) {
    CollectBlockingKeys(ds, a.object, &keys);
  }
  return keys;
}

}  // namespace

void LinkSpace::Build(const Dataset& left, const Dataset& right,
                      const std::vector<EntityId>& left_entities, double theta,
                      size_t max_block_pairs) {
  index_.clear();
  pairs_.clear();
  feature_sets_.clear();
  feature_index_.clear();
  stats_ = BuildStats{};
  stats_.total_possible = static_cast<uint64_t>(left_entities.size()) *
                          static_cast<uint64_t>(right.num_entities());

  // Invert the right dataset by blocking key.
  std::unordered_map<std::string, std::vector<EntityId>> right_blocks;
  for (EntityId r = 0; r < right.num_entities(); ++r) {
    for (const std::string& key : EntityBlockingKeys(right, r)) {
      right_blocks[key].push_back(r);
    }
  }
  // Count left-subset entities per key so oversized blocks can be skipped.
  std::unordered_map<std::string, size_t> left_key_counts;
  for (EntityId l : left_entities) {
    for (const std::string& key : EntityBlockingKeys(left, l)) {
      ++left_key_counts[key];
    }
  }

  // A key proposing a sizable fraction of the whole cross product is a stop
  // value regardless of the absolute cap (e.g. a shared rdf:type class at
  // small scale); such blocks carry no identifying signal.
  const uint64_t relative_cap =
      std::max<uint64_t>(100, stats_.total_possible / 20);
  const uint64_t effective_cap =
      std::min<uint64_t>(max_block_pairs, relative_cap);

  std::unordered_set<PairKey> evaluated;
  for (EntityId l : left_entities) {
    for (const std::string& key : EntityBlockingKeys(left, l)) {
      auto rit = right_blocks.find(key);
      if (rit == right_blocks.end()) continue;
      const uint64_t block_size =
          static_cast<uint64_t>(left_key_counts[key]) * rit->second.size();
      if (block_size > effective_cap) continue;  // Stop value.
      for (EntityId r : rit->second) {
        const PairKey pair = feedback::PackPair(l, r);
        if (!evaluated.insert(pair).second) continue;
        FeatureSet fs = ComputeFeatureSet(left, l, right, r, theta);
        if (fs.empty()) continue;
        const uint32_t ordinal = static_cast<uint32_t>(pairs_.size());
        index_.emplace(pair, ordinal);
        pairs_.push_back(pair);
        feature_sets_.push_back(std::move(fs));
      }
    }
  }
  stats_.candidate_pairs = evaluated.size();
  stats_.kept_pairs = pairs_.size();

  for (uint32_t ordinal = 0; ordinal < pairs_.size(); ++ordinal) {
    for (const FeatureValue& f : feature_sets_[ordinal]) {
      feature_index_[f.key].emplace_back(static_cast<float>(f.score), ordinal);
      ++stats_.features_indexed;
    }
  }
  max_feature_count_ = 0;
  for (auto& [key, entries] : feature_index_) {
    std::sort(entries.begin(), entries.end());
    max_feature_count_ = std::max(max_feature_count_, entries.size());
  }
}

const FeatureSet* LinkSpace::FeaturesOf(PairKey pair) const {
  auto it = index_.find(pair);
  if (it == index_.end()) return nullptr;
  return &feature_sets_[it->second];
}

void LinkSpace::BandQuery(FeatureKey f, double lo, double hi,
                          std::vector<PairKey>* out) const {
  auto it = feature_index_.find(f);
  if (it == feature_index_.end()) return;
  const auto& entries = it->second;
  auto begin = std::lower_bound(
      entries.begin(), entries.end(),
      std::make_pair(static_cast<float>(lo), uint32_t{0}));
  for (auto cur = begin; cur != entries.end(); ++cur) {
    if (cur->first > static_cast<float>(hi)) break;
    out->push_back(pairs_[cur->second]);
  }
}

}  // namespace alex::core
