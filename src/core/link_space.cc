#include "core/link_space.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <unordered_set>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "similarity/value.h"

namespace alex::core {
namespace {

using rdf::Dataset;
using rdf::EntityId;

/// Link-space metrics. Counters for the dominant build-phase costs are
/// accumulated in plain locals and flushed once per build, so the per-pair
/// hot loops stay free of even relaxed atomics.
struct SpaceMetrics {
  obs::Counter& band_queries =
      obs::MetricsRegistry::Global().counter("space.band_queries");
  obs::Counter& band_results =
      obs::MetricsRegistry::Global().counter("space.band_results");
  obs::Counter& pairs_evaluated =
      obs::MetricsRegistry::Global().counter("space.pairs_evaluated");
  obs::Counter& pairs_kept =
      obs::MetricsRegistry::Global().counter("space.pairs_kept");
  obs::Counter& memo_hits =
      obs::MetricsRegistry::Global().counter("space.sim_memo_hits");
  obs::Counter& memo_misses =
      obs::MetricsRegistry::Global().counter("space.sim_memo_misses");
  obs::Histogram& build_seconds =
      obs::MetricsRegistry::Global().histogram("space.build_seconds");

  static SpaceMetrics& Get() {
    static SpaceMetrics* metrics = new SpaceMetrics();
    return *metrics;
  }
};

/// Legacy string blocking keys for one attribute value: the full normalized
/// value, its word tokens, and a 5-character prefix per longer token
/// (tolerates tail typos). Kept only for BuildLegacy; the optimized path
/// uses the memoized hashed keys of core/blocking.h.
void CollectBlockingKeys(const Dataset& ds, rdf::TermId object,
                         std::unordered_set<std::string>* keys) {
  const rdf::Term& t = ds.dict().term(object);
  const std::string norm = ToLowerAscii(
      t.is_iri() ? std::string(sim::IriLocalName(t.value)) : t.value);
  if (norm.empty()) return;
  keys->insert("v:" + norm);
  for (const std::string& tok : WordTokens(norm)) {
    if (tok.size() < 2) continue;
    keys->insert("t:" + tok);
    if (tok.size() >= 6) keys->insert("p:" + tok.substr(0, 5));
  }
}

std::unordered_set<std::string> EntityBlockingKeys(const Dataset& ds,
                                                   EntityId e) {
  std::unordered_set<std::string> keys;
  for (const rdf::Attribute& a : ds.attributes(e)) {
    CollectBlockingKeys(ds, a.object, &keys);
  }
  return keys;
}

/// Stop-value cap shared by both build paths: a key proposing a sizable
/// fraction of the whole cross product is a stop value regardless of the
/// absolute cap (e.g. a shared rdf:type class at small scale); such blocks
/// carry no identifying signal.
uint64_t EffectiveBlockCap(uint64_t total_possible, size_t max_block_pairs) {
  const uint64_t relative_cap = std::max<uint64_t>(100, total_possible / 20);
  return std::min<uint64_t>(max_block_pairs, relative_cap);
}

}  // namespace

void LinkSpace::Reset(uint64_t total_possible) {
  index_.clear();
  pairs_.clear();
  feature_sets_.clear();
  feature_index_.clear();
  stats_ = BuildStats{};
  stats_.total_possible = total_possible;
}

void LinkSpace::KeepIfNonEmpty(PairKey pair, FeatureSet fs) {
  if (fs.empty()) return;
  const uint32_t ordinal = static_cast<uint32_t>(pairs_.size());
  index_.emplace(pair, ordinal);
  pairs_.push_back(pair);
  feature_sets_.push_back(std::move(fs));
}

void LinkSpace::FinalizeFeatureIndex() {
  stats_.kept_pairs = pairs_.size();
  for (uint32_t ordinal = 0; ordinal < pairs_.size(); ++ordinal) {
    for (const FeatureValue& f : feature_sets_[ordinal]) {
      feature_index_[f.key].emplace_back(static_cast<float>(f.score), ordinal);
      ++stats_.features_indexed;
    }
  }
  max_feature_count_ = 0;
  for (auto& [key, entries] : feature_index_) {
    std::sort(entries.begin(), entries.end());
    max_feature_count_ = std::max(max_feature_count_, entries.size());
  }
}

void LinkSpace::Build(const Dataset& left, const Dataset& right,
                      const std::vector<EntityId>& left_entities, double theta,
                      size_t max_block_pairs, const BuildResources& res,
                      exec::ArenaAllocator* arena) {
  ALEX_TRACE_SPAN("build", "LinkSpace::Build");
  SpaceMetrics& metrics = SpaceMetrics::Get();
  obs::ScopedTimer build_timer(metrics.build_seconds);
  Reset(static_cast<uint64_t>(left_entities.size()) *
        static_cast<uint64_t>(right.num_entities()));

  // Count left-subset entities per key so oversized blocks can be skipped.
  // The counts are per-partition by design (a block's size is |partition
  // lefts with the key| × |right block|), so this pass stays local; only
  // the right-side inversion is shared.
  //
  // The count map, evaluated-pair set, and similarity memo are the build's
  // allocation churn (millions of node/table allocations that all die when
  // this function returns); with an arena they become pointer bumps. Same
  // container types either way — a null arena in ArenaStl is the global
  // allocator — so both paths run literally the same code.
  std::unordered_map<BlockKey, size_t, std::hash<BlockKey>,
                     std::equal_to<BlockKey>,
                     exec::ArenaStl<std::pair<const BlockKey, size_t>>>
      left_key_counts(/*bucket_count=*/0, std::hash<BlockKey>(),
                      std::equal_to<BlockKey>(),
                      exec::ArenaStl<std::pair<const BlockKey, size_t>>(arena));
  std::vector<BlockKey> entity_keys;
  for (EntityId l : left_entities) {
    res.left_keys->EntityKeys(l, &entity_keys);
    for (BlockKey key : entity_keys) ++left_key_counts[key];
  }

  const uint64_t effective_cap =
      EffectiveBlockCap(stats_.total_possible, max_block_pairs);

  // Term-pair similarity memo and feature scratch, owned by this
  // (single-threaded) partition build: the same attribute-value pair recurs
  // across many candidate entity pairs, and the string metrics behind
  // ValueSimilarity are the dominant build cost.
  SimilarityMemo sim_memo(arena);
  FeatureScratch scratch;

  std::unordered_set<PairKey, std::hash<PairKey>, std::equal_to<PairKey>,
                     exec::ArenaStl<PairKey>>
      evaluated(/*bucket_count=*/0, std::hash<PairKey>(),
                std::equal_to<PairKey>(), exec::ArenaStl<PairKey>(arena));
  for (EntityId l : left_entities) {
    res.left_keys->EntityKeys(l, &entity_keys);
    for (BlockKey key : entity_keys) {
      const std::vector<EntityId>* block = res.right_index->block(key);
      if (block == nullptr) continue;
      const uint64_t block_size =
          static_cast<uint64_t>(left_key_counts[key]) * block->size();
      if (block_size > effective_cap) continue;  // Stop value.
      for (EntityId r : *block) {
        const PairKey pair = feedback::PackPair(l, r);
        if (!evaluated.insert(pair).second) continue;
        KeepIfNonEmpty(pair,
                       ComputeFeatureSet(left, l, right, r, theta,
                                         res.left_values, res.right_values,
                                         &sim_memo, &scratch));
      }
    }
  }
  stats_.candidate_pairs = evaluated.size();
  FinalizeFeatureIndex();
  metrics.pairs_evaluated.Add(stats_.candidate_pairs);
  metrics.pairs_kept.Add(stats_.kept_pairs);
  metrics.memo_hits.Add(sim_memo.hits());
  metrics.memo_misses.Add(sim_memo.misses());
}

void LinkSpace::Build(const Dataset& left, const Dataset& right,
                      const std::vector<EntityId>& left_entities, double theta,
                      size_t max_block_pairs) {
  const BlockingIndex right_index(right);
  const TermKeyCache left_keys(left);
  const ValueCache left_values(left);
  const ValueCache right_values(right);
  Build(left, right, left_entities, theta, max_block_pairs,
        BuildResources{&right_index, &left_keys, &left_values, &right_values});
}

void LinkSpace::BuildLegacy(const Dataset& left, const Dataset& right,
                            const std::vector<EntityId>& left_entities,
                            double theta, size_t max_block_pairs) {
  ALEX_TRACE_SPAN("build", "LinkSpace::BuildLegacy");
  SpaceMetrics& metrics = SpaceMetrics::Get();
  obs::ScopedTimer build_timer(metrics.build_seconds);
  Reset(static_cast<uint64_t>(left_entities.size()) *
        static_cast<uint64_t>(right.num_entities()));

  // Invert the right dataset by blocking key — per call, i.e. per partition.
  std::unordered_map<std::string, std::vector<EntityId>> right_blocks;
  for (EntityId r = 0; r < right.num_entities(); ++r) {
    for (const std::string& key : EntityBlockingKeys(right, r)) {
      right_blocks[key].push_back(r);
    }
  }
  std::unordered_map<std::string, size_t> left_key_counts;
  for (EntityId l : left_entities) {
    for (const std::string& key : EntityBlockingKeys(left, l)) {
      ++left_key_counts[key];
    }
  }

  const uint64_t effective_cap =
      EffectiveBlockCap(stats_.total_possible, max_block_pairs);

  std::unordered_set<PairKey> evaluated;
  for (EntityId l : left_entities) {
    for (const std::string& key : EntityBlockingKeys(left, l)) {
      auto rit = right_blocks.find(key);
      if (rit == right_blocks.end()) continue;
      const uint64_t block_size =
          static_cast<uint64_t>(left_key_counts[key]) * rit->second.size();
      if (block_size > effective_cap) continue;  // Stop value.
      for (EntityId r : rit->second) {
        const PairKey pair = feedback::PackPair(l, r);
        if (!evaluated.insert(pair).second) continue;
        KeepIfNonEmpty(pair, ComputeFeatureSet(left, l, right, r, theta));
      }
    }
  }
  stats_.candidate_pairs = evaluated.size();
  FinalizeFeatureIndex();
  metrics.pairs_evaluated.Add(stats_.candidate_pairs);
  metrics.pairs_kept.Add(stats_.kept_pairs);
}

const FeatureSet* LinkSpace::FeaturesOf(PairKey pair) const {
  auto it = index_.find(pair);
  if (it == index_.end()) return nullptr;
  return &feature_sets_[it->second];
}

void LinkSpace::BandQuery(FeatureKey f, double lo, double hi,
                          std::vector<PairKey>* out) const {
  SpaceMetrics& metrics = SpaceMetrics::Get();
  metrics.band_queries.Add(1);
  auto it = feature_index_.find(f);
  if (it == feature_index_.end()) return;
  const size_t out_before = out->size();
  const auto& entries = it->second;
  // Search from a float bound guaranteed not to exceed `lo`:
  // static_cast<float>(lo) can round *above* lo, which would skip stored
  // scores inside the band. Entries the relaxed bound over-admits are
  // filtered below by comparing in double.
  float flo = static_cast<float>(lo);
  if (static_cast<double>(flo) > lo) {
    flo = std::nextafter(flo, -std::numeric_limits<float>::infinity());
  }
  auto begin = std::lower_bound(entries.begin(), entries.end(),
                                std::make_pair(flo, uint32_t{0}));
  for (auto cur = begin; cur != entries.end(); ++cur) {
    const double score = static_cast<double>(cur->first);
    if (score > hi) break;
    if (score < lo) continue;
    out->push_back(pairs_[cur->second]);
  }
  metrics.band_results.Add(out->size() - out_before);
}

}  // namespace alex::core
