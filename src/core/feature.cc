#include "core/feature.h"

#include <algorithm>

#include "similarity/similarity.h"
#include "similarity/value.h"

namespace alex::core {

namespace {

/// Fills `out` with one TypedValue pointer per attribute — borrowed from
/// the cache when present, otherwise parsed into `owned` (whose storage
/// backs the pointers) — and `profiles` with the matching StringProfile
/// pointer (nullptr without a cache: profiles are only worth computing
/// once per term, not once per call). `out`/`profiles` are cleared first
/// so scratch buffers can be reused across calls.
void GatherValues(const rdf::Dataset& ds, const std::vector<rdf::Attribute>& as,
                  const ValueCache* cache,
                  std::vector<const sim::TypedValue*>* out,
                  std::vector<const sim::StringProfile*>* profiles,
                  std::vector<sim::TypedValue>* owned) {
  out->clear();
  profiles->clear();
  out->reserve(as.size());
  profiles->reserve(as.size());
  if (cache != nullptr) {
    for (const rdf::Attribute& a : as) {
      out->push_back(&cache->value(a.object));
      profiles->push_back(&cache->profile(a.object));
    }
    return;
  }
  owned->reserve(as.size());
  for (const rdf::Attribute& a : as) {
    owned->push_back(sim::ParseValue(ds.dict().term(a.object)));
  }
  for (const sim::TypedValue& v : *owned) {
    out->push_back(&v);
    profiles->push_back(nullptr);
  }
}

}  // namespace

FeatureSet ComputeFeatureSet(const rdf::Dataset& left, rdf::EntityId left_e,
                             const rdf::Dataset& right, rdf::EntityId right_e,
                             double theta) {
  return ComputeFeatureSet(left, left_e, right, right_e, theta, nullptr,
                           nullptr);
}

FeatureSet ComputeFeatureSet(const rdf::Dataset& left, rdf::EntityId left_e,
                             const rdf::Dataset& right, rdf::EntityId right_e,
                             double theta, const ValueCache* left_values,
                             const ValueCache* right_values,
                             SimilarityMemo* sim_memo,
                             FeatureScratch* scratch) {
  const auto& la = left.attributes(left_e);
  const auto& ra = right.attributes(right_e);
  if (la.empty() || ra.empty()) return {};

  FeatureScratch local;
  FeatureScratch& s = scratch != nullptr ? *scratch : local;

  // Cell scorer. With both caches the values are indexed directly (no
  // per-call pointer gathering), and numeric/date cells take their cheap
  // arithmetic paths before touching the memo — both produce the exact
  // doubles of sim::ValueSimilarity, whose dispatch they mirror.
  const bool direct = left_values != nullptr && right_values != nullptr;
  std::vector<sim::TypedValue> lv_owned;
  std::vector<sim::TypedValue> rv_owned;
  if (!direct) {
    GatherValues(left, la, left_values, &s.lv, &s.lp, &lv_owned);
    GatherValues(right, ra, right_values, &s.rv, &s.rp, &rv_owned);
  }
  auto score_cell = [&](size_t li, size_t rj) {
    if (direct) {
      const rdf::TermId lt = la[li].object;
      const rdf::TermId rt = ra[rj].object;
      const sim::TypedValue& a = left_values->value(lt);
      const sim::TypedValue& b = right_values->value(rt);
      if (a.is_numeric() && b.is_numeric()) {
        return sim::NumericSimilarity(a.real, b.real);
      }
      if (a.kind == sim::ValueKind::kDate && b.kind == sim::ValueKind::kDate) {
        return sim::DateSimilarity(a.date_days, b.date_days);
      }
      const sim::StringProfile* pa = &left_values->profile(lt);
      const sim::StringProfile* pb = &right_values->profile(rt);
      return sim_memo != nullptr ? sim_memo->Score(lt, rt, a, b, pa, pb)
                                 : sim::ValueSimilarity(a, b, pa, pb);
    }
    return sim_memo != nullptr
               ? sim_memo->Score(la[li].object, ra[rj].object, *s.lv[li],
                                 *s.rv[rj], s.lp[li], s.rp[rj])
               : sim::ValueSimilarity(*s.lv[li], *s.rv[rj], s.lp[li],
                                      s.rp[rj]);
  };

  // Similarity matrix, reduced along the larger dimension (Section 4.1):
  // per left attribute if the left entity has more attributes, else per
  // right attribute, keeping the best-matching opposite attribute.
  FeatureSet& raw = s.raw;
  raw.clear();
  const bool reduce_rows = la.size() >= ra.size();
  const size_t outer = reduce_rows ? la.size() : ra.size();
  const size_t inner = reduce_rows ? ra.size() : la.size();
  for (size_t i = 0; i < outer; ++i) {
    double best = 0.0;
    size_t best_j = 0;
    for (size_t j = 0; j < inner; ++j) {
      const size_t li = reduce_rows ? i : j;
      const size_t rj = reduce_rows ? j : i;
      const double cell = score_cell(li, rj);
      if (cell > best) {
        best = cell;
        best_j = j;
      }
    }
    if (best < theta) continue;
    const size_t li = reduce_rows ? i : best_j;
    const size_t rj = reduce_rows ? best_j : i;
    raw.push_back(FeatureValue{
        MakeFeatureKey(la[li].predicate, ra[rj].predicate), best});
  }

  // Deduplicate by feature key, keeping the maximum score (an entity can
  // carry several values for the same predicate).
  std::sort(raw.begin(), raw.end(), [](const FeatureValue& a,
                                       const FeatureValue& b) {
    return a.key != b.key ? a.key < b.key : a.score > b.score;
  });
  FeatureSet out;
  for (const FeatureValue& f : raw) {
    if (out.empty() || out.back().key != f.key) out.push_back(f);
  }
  return out;
}

std::string FeatureName(const rdf::Dataset& left, const rdf::Dataset& right,
                        FeatureKey key) {
  const std::string_view lp =
      sim::IriLocalName(left.dict().term(FeatureLeftPred(key)).value);
  const std::string_view rp =
      sim::IriLocalName(right.dict().term(FeatureRightPred(key)).value);
  return "(" + std::string(lp) + ", " + std::string(rp) + ")";
}

}  // namespace alex::core
