#include "core/feature.h"

#include <algorithm>

#include "similarity/similarity.h"
#include "similarity/value.h"

namespace alex::core {

FeatureSet ComputeFeatureSet(const rdf::Dataset& left, rdf::EntityId left_e,
                             const rdf::Dataset& right, rdf::EntityId right_e,
                             double theta) {
  const auto& la = left.attributes(left_e);
  const auto& ra = right.attributes(right_e);
  if (la.empty() || ra.empty()) return {};

  // Parse each attribute value once.
  std::vector<sim::TypedValue> lv;
  lv.reserve(la.size());
  for (const rdf::Attribute& a : la) {
    lv.push_back(sim::ParseValue(left.dict().term(a.object)));
  }
  std::vector<sim::TypedValue> rv;
  rv.reserve(ra.size());
  for (const rdf::Attribute& a : ra) {
    rv.push_back(sim::ParseValue(right.dict().term(a.object)));
  }

  // Similarity matrix, reduced along the larger dimension (Section 4.1):
  // per left attribute if the left entity has more attributes, else per
  // right attribute, keeping the best-matching opposite attribute.
  FeatureSet raw;
  const bool reduce_rows = la.size() >= ra.size();
  const size_t outer = reduce_rows ? la.size() : ra.size();
  const size_t inner = reduce_rows ? ra.size() : la.size();
  for (size_t i = 0; i < outer; ++i) {
    double best = 0.0;
    size_t best_j = 0;
    for (size_t j = 0; j < inner; ++j) {
      const size_t li = reduce_rows ? i : j;
      const size_t rj = reduce_rows ? j : i;
      const double s = sim::ValueSimilarity(lv[li], rv[rj]);
      if (s > best) {
        best = s;
        best_j = j;
      }
    }
    if (best < theta) continue;
    const size_t li = reduce_rows ? i : best_j;
    const size_t rj = reduce_rows ? best_j : i;
    raw.push_back(FeatureValue{
        MakeFeatureKey(la[li].predicate, ra[rj].predicate), best});
  }

  // Deduplicate by feature key, keeping the maximum score (an entity can
  // carry several values for the same predicate).
  std::sort(raw.begin(), raw.end(), [](const FeatureValue& a,
                                       const FeatureValue& b) {
    return a.key != b.key ? a.key < b.key : a.score > b.score;
  });
  FeatureSet out;
  for (const FeatureValue& f : raw) {
    if (out.empty() || out.back().key != f.key) out.push_back(f);
  }
  return out;
}

std::string FeatureName(const rdf::Dataset& left, const rdf::Dataset& right,
                        FeatureKey key) {
  const std::string_view lp =
      sim::IriLocalName(left.dict().term(FeatureLeftPred(key)).value);
  const std::string_view rp =
      sim::IriLocalName(right.dict().term(FeatureRightPred(key)).value);
  return "(" + std::string(lp) + ", " + std::string(rp) + ")";
}

}  // namespace alex::core
