#include "core/partitioned.h"

#include <thread>

#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace alex::core {

PartitionedAlex::PartitionedAlex(const rdf::Dataset* left,
                                 const rdf::Dataset* right,
                                 const AlexConfig& config)
    : left_(left), right_(right), config_(config) {
  size_t n = config_.num_partitions;
  if (n == 0) n = 1;
  partition_entities_.resize(n);
  for (rdf::EntityId e = 0; e < left_->num_entities(); ++e) {
    partition_entities_[e % n].push_back(e);
  }
  Rng seeder(config_.seed);
  for (size_t p = 0; p < n; ++p) {
    spaces_.push_back(std::make_unique<LinkSpace>());
    engines_.push_back(
        std::make_unique<AlexEngine>(spaces_[p].get(), config_, seeder.Next()));
  }
}

ThreadPool* PartitionedAlex::pool() {
  if (!pool_) {
    size_t threads = config_.num_threads;
    if (threads == 0) {
      threads = std::max<size_t>(1, std::thread::hardware_concurrency());
    }
    pool_ = std::make_unique<ThreadPool>(std::min(threads, spaces_.size()));
  }
  return pool_.get();
}

std::vector<double> PartitionedAlex::Build() {
  const size_t n = spaces_.size();
  std::vector<double> seconds(n, 0.0);
  ParallelFor(pool(), n, [this, &seconds](size_t p) {
    Stopwatch watch;
    spaces_[p]->Build(*left_, *right_, partition_entities_[p], config_.theta,
                      config_.max_block_pairs);
    seconds[p] = watch.ElapsedSeconds();
  });
  return seconds;
}

void PartitionedAlex::InitializeCandidates(
    const std::vector<paris::ScoredLink>& links) {
  std::vector<PairKey> keys;
  keys.reserve(links.size());
  for (const paris::ScoredLink& link : links) {
    keys.push_back(feedback::PackPair(link.left, link.right));
  }
  InitializeCandidates(keys);
}

void PartitionedAlex::InitializeCandidates(const std::vector<PairKey>& links) {
  std::vector<std::vector<PairKey>> routed(engines_.size());
  for (PairKey key : links) {
    routed[PartitionOf(feedback::PairLeft(key))].push_back(key);
  }
  for (size_t p = 0; p < engines_.size(); ++p) {
    engines_[p]->InitializeCandidates(routed[p]);
  }
}

void PartitionedAlex::ProcessFeedback(const feedback::FeedbackItem& item) {
  engines_[PartitionOf(item.left)]->ProcessFeedback(item);
}

void PartitionedAlex::ProcessFeedbackBatch(
    const std::vector<feedback::FeedbackItem>& items) {
  std::vector<std::vector<feedback::FeedbackItem>> routed(engines_.size());
  for (const feedback::FeedbackItem& item : items) {
    routed[PartitionOf(item.left)].push_back(item);
  }
  ParallelFor(pool(), engines_.size(), [this, &routed](size_t p) {
    for (const feedback::FeedbackItem& item : routed[p]) {
      engines_[p]->ProcessFeedback(item);
    }
  });
}

EngineEpisodeStats PartitionedAlex::EndEpisode() {
  EngineEpisodeStats total;
  for (auto& engine : engines_) {
    const EngineEpisodeStats s = engine->EndEpisode();
    total.feedback_items += s.feedback_items;
    total.positive_items += s.positive_items;
    total.negative_items += s.negative_items;
    total.links_added += s.links_added;
    total.links_removed += s.links_removed;
    total.rollbacks += s.rollbacks;
  }
  return total;
}

std::unordered_set<PairKey> PartitionedAlex::Candidates() const {
  std::unordered_set<PairKey> out;
  for (const auto& engine : engines_) {
    out.insert(engine->candidates().begin(), engine->candidates().end());
  }
  return out;
}

std::vector<PairKey> PartitionedAlex::CandidateVector() const {
  std::vector<PairKey> out;
  out.reserve(NumCandidates());
  for (const auto& engine : engines_) {
    out.insert(out.end(), engine->candidates().begin(),
               engine->candidates().end());
  }
  return out;
}

size_t PartitionedAlex::NumCandidates() const {
  size_t n = 0;
  for (const auto& engine : engines_) n += engine->candidates().size();
  return n;
}

size_t PartitionedAlex::TotalExploredLinks() const {
  size_t n = 0;
  for (const auto& engine : engines_) n += engine->total_explored_links();
  return n;
}

LinkSpace::BuildStats PartitionedAlex::AggregatedSpaceStats() const {
  LinkSpace::BuildStats total;
  for (const auto& space : spaces_) {
    const LinkSpace::BuildStats& s = space->stats();
    total.total_possible += s.total_possible;
    total.candidate_pairs += s.candidate_pairs;
    total.kept_pairs += s.kept_pairs;
    total.features_indexed += s.features_indexed;
  }
  return total;
}

}  // namespace alex::core
