#include "core/partitioned.h"

#include <algorithm>
#include <iterator>

#include "common/thread_pool.h"
#include "exec/arena.h"
#include "exec/topology.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace alex::core {
namespace {

/// Registry handles for the partition-orchestration layer: per-partition
/// build timing (each observation is one partition's wall time; the
/// histogram's max bucket tail shows the slowest-partition bound of
/// Section 7.3) and shared-resource construction.
struct PartitionMetrics {
  obs::Histogram& partition_build_seconds =
      obs::MetricsRegistry::Global().histogram(
          "partition.build_seconds");
  obs::Histogram& shared_index_seconds =
      obs::MetricsRegistry::Global().histogram(
          "partition.shared_index_seconds");
  obs::Histogram& end_episode_seconds =
      obs::MetricsRegistry::Global().histogram(
          "partition.end_episode_seconds");

  static PartitionMetrics& Get() {
    static PartitionMetrics* metrics = new PartitionMetrics();
    return *metrics;
  }
};

}  // namespace

PartitionedAlex::PartitionedAlex(const rdf::Dataset* left,
                                 const rdf::Dataset* right,
                                 const AlexConfig& config)
    : left_(left), right_(right), config_(config) {
  size_t n = config_.num_partitions;
  if (n == 0) n = 1;
  partition_entities_.resize(n);
  for (rdf::EntityId e = 0; e < left_->num_entities(); ++e) {
    partition_entities_[e % n].push_back(e);
  }
  Rng seeder(config_.seed);
  for (size_t p = 0; p < n; ++p) {
    spaces_.push_back(std::make_unique<LinkSpace>());
    engines_.push_back(
        std::make_unique<AlexEngine>(spaces_[p].get(), config_, seeder.Next()));
  }
}

ThreadPool* PartitionedAlex::pool() const {
  if (!pool_) {
    size_t threads = config_.num_threads;
    if (threads == 0) {
      threads = exec::CpuTopology::Detect().RecommendedWorkers();
    }
    ThreadPool::Options options;
    options.pin_threads = config_.pin_threads;
    options.name_prefix = "alexp";
    pool_ = std::make_unique<ThreadPool>(std::min(threads, spaces_.size()),
                                         options);
  }
  return pool_.get();
}

std::vector<double> PartitionedAlex::Build() {
  ALEX_TRACE_SPAN("build", "PartitionedAlex::Build");
  PartitionMetrics& metrics = PartitionMetrics::Get();
  const size_t n = spaces_.size();
  std::vector<double> seconds(n, 0.0);
  shared_index_seconds_ = 0.0;
  if (!config_.shared_blocking_index) {
    ParallelFor(pool(), n, [this, &metrics, &seconds](size_t p) {
      obs::ScopedTimer timer(metrics.partition_build_seconds, &seconds[p]);
      spaces_[p]->BuildLegacy(*left_, *right_, partition_entities_[p],
                              config_.theta, config_.max_block_pairs);
    });
    return seconds;
  }

  // Phase 1: shared read-only build resources, constructed once per dataset
  // pair. The four pieces are independent, so they build concurrently.
  std::unique_ptr<BlockingIndex> right_index;
  std::unique_ptr<TermKeyCache> left_keys;
  std::unique_ptr<ValueCache> left_values;
  std::unique_ptr<ValueCache> right_values;
  {
    ALEX_TRACE_SPAN("build", "SharedBuildResources");
    obs::ScopedTimer timer(metrics.shared_index_seconds,
                           &shared_index_seconds_);
    ParallelFor(pool(), 4, [&](size_t task) {
      switch (task) {
        case 0: right_index = std::make_unique<BlockingIndex>(*right_); break;
        case 1: left_keys = std::make_unique<TermKeyCache>(*left_); break;
        case 2: left_values = std::make_unique<ValueCache>(*left_); break;
        case 3: right_values = std::make_unique<ValueCache>(*right_); break;
      }
    });
  }

  // Phase 2: per-partition builds, all borrowing the shared resources.
  // ParallelFor's chunk-index affinity hint homes partition p on worker
  // p % workers, so the partition's blocking scratch, memo, and candidate
  // vectors are (stealing aside) touched by one core. Each partition gets
  // its own arena for the build temporaries — created here and dropped as
  // soon as its build finishes, since the LinkSpace keeps nothing in it.
  const BuildResources res{right_index.get(), left_keys.get(),
                           left_values.get(), right_values.get()};
  const bool use_arena = config_.arena_build_alloc;
  ParallelFor(pool(), n,
              [this, &metrics, &seconds, &res, use_arena](size_t p) {
    obs::ScopedTimer timer(metrics.partition_build_seconds, &seconds[p]);
    std::unique_ptr<exec::ArenaAllocator> arena;
    if (use_arena) arena = std::make_unique<exec::ArenaAllocator>();
    spaces_[p]->Build(*left_, *right_, partition_entities_[p], config_.theta,
                      config_.max_block_pairs, res, arena.get());
  });
  return seconds;
}

void PartitionedAlex::InitializeCandidates(
    const std::vector<paris::ScoredLink>& links) {
  std::vector<PairKey> keys;
  keys.reserve(links.size());
  for (const paris::ScoredLink& link : links) {
    keys.push_back(feedback::PackPair(link.left, link.right));
  }
  InitializeCandidates(keys);
}

void PartitionedAlex::InitializeCandidates(const std::vector<PairKey>& links) {
  std::vector<std::vector<PairKey>> routed(engines_.size());
  for (PairKey key : links) {
    routed[PartitionOf(feedback::PairLeft(key))].push_back(key);
  }
  for (size_t p = 0; p < engines_.size(); ++p) {
    engines_[p]->InitializeCandidates(routed[p]);
  }
}

void PartitionedAlex::ProcessFeedback(const feedback::FeedbackItem& item) {
  engines_[PartitionOf(item.left)]->ProcessFeedback(item);
}

void PartitionedAlex::ProcessFeedbackBatch(
    const std::vector<feedback::FeedbackItem>& items) {
  std::vector<std::vector<feedback::FeedbackItem>> routed(engines_.size());
  for (const feedback::FeedbackItem& item : items) {
    routed[PartitionOf(item.left)].push_back(item);
  }
  ParallelFor(pool(), engines_.size(), [this, &routed](size_t p) {
    for (const feedback::FeedbackItem& item : routed[p]) {
      engines_[p]->ProcessFeedback(item);
    }
  });
}

EngineEpisodeStats PartitionedAlex::EndEpisode() {
  ALEX_TRACE_SPAN("episode", "PartitionedAlex::EndEpisode");
  obs::ScopedTimer timer(PartitionMetrics::Get().end_episode_seconds);
  // Policy improvement is per-partition work over disjoint engines, so the
  // episode ends in parallel; only the trivial stat summation is serial.
  std::vector<EngineEpisodeStats> per_engine(engines_.size());
  ParallelFor(pool(), engines_.size(), [this, &per_engine](size_t p) {
    per_engine[p] = engines_[p]->EndEpisode();
  });
  EngineEpisodeStats total;
  for (const EngineEpisodeStats& s : per_engine) {
    total.feedback_items += s.feedback_items;
    total.positive_items += s.positive_items;
    total.negative_items += s.negative_items;
    total.links_added += s.links_added;
    total.links_removed += s.links_removed;
    total.rollbacks += s.rollbacks;
  }
  return total;
}

namespace {

// CandidateVector's canonical order is partition-major (sorted only within
// each partition), so both snapshots are re-sorted globally before the set
// differences.
void DiffCandidates(std::vector<PairKey> before, std::vector<PairKey> after,
                    PartitionedAlex::EpisodeCommit* commit) {
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  std::set_difference(after.begin(), after.end(), before.begin(),
                      before.end(), std::back_inserter(commit->added));
  std::set_difference(before.begin(), before.end(), after.begin(),
                      after.end(), std::back_inserter(commit->removed));
}

}  // namespace

PartitionedAlex::EpisodeCommit PartitionedAlex::EndEpisodeWithDelta() {
  std::vector<PairKey> before = CandidateVector();
  EpisodeCommit commit;
  commit.stats = EndEpisode();
  DiffCandidates(std::move(before), CandidateVector(), &commit);
  return commit;
}

PartitionedAlex::EpisodeCommit PartitionedAlex::CommitFeedbackBatch(
    const std::vector<feedback::FeedbackItem>& items) {
  // The window opens BEFORE feedback routing: ProcessFeedback mutates the
  // candidate set directly (rejected links are erased, approvals can fan
  // out into exploration adds), and EndEpisode only improves the policy.
  std::vector<PairKey> before = CandidateVector();
  ProcessFeedbackBatch(items);
  EpisodeCommit commit;
  commit.stats = EndEpisode();
  DiffCandidates(std::move(before), CandidateVector(), &commit);
  return commit;
}

std::unordered_set<PairKey> PartitionedAlex::Candidates() const {
  const std::vector<PairKey> flat = CandidateVector();
  std::unordered_set<PairKey> out;
  out.reserve(flat.size());
  out.insert(flat.begin(), flat.end());
  return out;
}

std::vector<PairKey> PartitionedAlex::CandidateVector() const {
  // Pre-size one flat vector and let every partition copy its snapshot into
  // its own disjoint slice concurrently. Left entities are partitioned, so
  // no pair appears in two slices. Each slice is sorted in the same task:
  // the result must depend only on the candidate set, not on the hash
  // sets' insertion history, or a checkpoint-resumed run would feed the
  // oracle a permuted sequence and diverge from the uninterrupted run.
  const size_t n = engines_.size();
  std::vector<size_t> offsets(n + 1, 0);
  for (size_t p = 0; p < n; ++p) {
    offsets[p + 1] = offsets[p] + engines_[p]->candidates().size();
  }
  std::vector<PairKey> out(offsets[n]);
  ParallelFor(pool(), n, [this, &offsets, &out](size_t p) {
    size_t i = offsets[p];
    for (PairKey key : engines_[p]->candidates()) out[i++] = key;
    std::sort(out.begin() + static_cast<ptrdiff_t>(offsets[p]),
              out.begin() + static_cast<ptrdiff_t>(offsets[p + 1]));
  });
  return out;
}

size_t PartitionedAlex::NumCandidates() const {
  size_t n = 0;
  for (const auto& engine : engines_) n += engine->candidates().size();
  return n;
}

size_t PartitionedAlex::TotalExploredLinks() const {
  size_t n = 0;
  for (const auto& engine : engines_) n += engine->total_explored_links();
  return n;
}

LinkSpace::BuildStats PartitionedAlex::AggregatedSpaceStats() const {
  LinkSpace::BuildStats total;
  for (const auto& space : spaces_) {
    const LinkSpace::BuildStats& s = space->stats();
    total.total_possible += s.total_possible;
    total.candidate_pairs += s.candidate_pairs;
    total.kept_pairs += s.kept_pairs;
    total.features_indexed += s.features_indexed;
  }
  return total;
}

void PartitionedAlex::SaveState(BinaryWriter* w) const {
  w->WriteU64(engines_.size());
  w->WriteU64(left_->num_entities());
  for (const auto& engine : engines_) {
    BinaryWriter ew;
    engine->SaveState(&ew);
    w->WriteBytes(ew.buffer());
  }
}

Status PartitionedAlex::LoadState(BinaryReader* r, uint32_t format_version) {
  uint64_t num_partitions = 0;
  ALEX_RETURN_NOT_OK(r->ReadU64(&num_partitions));
  if (num_partitions != engines_.size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(num_partitions) +
        " partitions, this instance has " + std::to_string(engines_.size()));
  }
  uint64_t num_left = 0;
  ALEX_RETURN_NOT_OK(r->ReadU64(&num_left));
  if (num_left != left_->num_entities()) {
    return Status::InvalidArgument(
        "checkpoint was taken over a left dataset with " +
        std::to_string(num_left) + " entities, this one has " +
        std::to_string(left_->num_entities()));
  }
  // Stage every partition into a fresh engine before swapping anything in:
  // a payload that corrupts mid-stream must not leave partition 0 restored
  // and partition 1 untouched.
  std::vector<std::unique_ptr<AlexEngine>> staged;
  staged.reserve(engines_.size());
  for (size_t p = 0; p < engines_.size(); ++p) {
    std::string_view payload;
    ALEX_RETURN_NOT_OK(r->ReadBytesView(&payload));
    BinaryReader er(payload);
    staged.push_back(
        std::make_unique<AlexEngine>(spaces_[p].get(), config_, 0));
    ALEX_RETURN_NOT_OK(staged[p]->LoadState(&er, format_version));
    if (!er.AtEnd()) {
      return Status::ParseError("partition " + std::to_string(p) +
                                " payload has trailing bytes");
    }
  }
  engines_ = std::move(staged);
  return Status::OK();
}

}  // namespace alex::core
