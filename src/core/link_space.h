#ifndef ALEX_CORE_LINK_SPACE_H_
#define ALEX_CORE_LINK_SPACE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/blocking.h"
#include "core/feature.h"
#include "feedback/ground_truth.h"
#include "rdf/dataset.h"

namespace alex::core {

using feedback::PairKey;

/// The space of feature sets ALEX explores in (Sections 4 and 6.1): one
/// feature set per entity pair that survives the θ filter, plus a per-feature
/// sorted index that answers the band queries exploration actions issue
/// ("all pairs whose score on feature f lies in [v−step, v+step]").
///
/// Construction applies two reductions:
///  1. The θ filter of Section 6.1 — pairs with no feature ≥ θ are dropped.
///  2. Value blocking — only pairs that share a normalized value, a word
///     token, or a token prefix are evaluated at all. This is an engineering
///     substitute for evaluating the full |L|×|R| cross product (which the
///     paper affords with 27 partitions on a 64-core machine); pairs outside
///     the blocks would score ≈0 on every feature and be θ-filtered anyway.
///     Oversized blocks (stop values such as rdf:type classes) are skipped
///     via `max_block_pairs`.
///
/// Blocking is served by a BlockingIndex (core/blocking.h) built once per
/// right dataset and shared read-only across partitions, so P partitions no
/// longer re-invert the right dataset P times.
///
/// Thread-compatible after Build(): all queries are const.
class LinkSpace {
 public:
  struct BuildStats {
    /// |left subset| × |right| — the unfiltered space (Figure 5a's bar).
    uint64_t total_possible = 0;
    /// Pairs proposed by blocking and evaluated.
    uint64_t candidate_pairs = 0;
    /// Pairs kept (≥1 feature above θ) — Figure 5a's "filtered" bar.
    uint64_t kept_pairs = 0;
    /// Total feature entries indexed.
    uint64_t features_indexed = 0;
  };

  LinkSpace() = default;

  /// Builds the space between `left_entities` (a partition of the left
  /// dataset) and all entities of `right`, using shared read-only build
  /// resources (right-dataset blocking index, term-key and value caches).
  /// All of `res`'s members must be non-null, built from these datasets,
  /// and outlive the call. Datasets are borrowed and must outlive the
  /// LinkSpace.
  ///
  /// With a non-null `arena`, the build-phase temporaries (per-key block
  /// count map, evaluated-pair set, similarity-memo table) bump-allocate
  /// from it instead of the global allocator; the arena is scratch only —
  /// nothing in the finished LinkSpace points into it, so the caller frees
  /// or resets it as soon as Build returns. The arena and non-arena paths
  /// produce bit-identical spaces.
  void Build(const rdf::Dataset& left, const rdf::Dataset& right,
             const std::vector<rdf::EntityId>& left_entities, double theta,
             size_t max_block_pairs, const BuildResources& res,
             exec::ArenaAllocator* arena = nullptr);

  /// Single-shot convenience wrapper: builds the blocking index and caches
  /// locally, then delegates to the shared-resource overload. Call sites
  /// that build one space (tests, examples) keep working unchanged; use
  /// the overload above to amortize the resources across partitions.
  void Build(const rdf::Dataset& left, const rdf::Dataset& right,
             const std::vector<rdf::EntityId>& left_entities, double theta,
             size_t max_block_pairs);

  /// The pre-BlockingIndex implementation (string blocking keys, right
  /// dataset re-inverted per call, values re-parsed per candidate pair).
  /// Retained as the reference for the equivalence tests and as the
  /// baseline the build-phase benchmarks measure speedups against.
  void BuildLegacy(const rdf::Dataset& left, const rdf::Dataset& right,
                   const std::vector<rdf::EntityId>& left_entities,
                   double theta, size_t max_block_pairs);

  bool Contains(PairKey pair) const { return index_.count(pair) > 0; }

  /// Feature set of a pair, or nullptr if the pair is not in the space.
  const FeatureSet* FeaturesOf(PairKey pair) const;

  /// Appends to `out` every pair whose score on feature `f` lies in
  /// [lo, hi] (inclusive). Bounds are compared in double precision against
  /// the stored float scores, so a pair just outside [lo, hi] is never
  /// admitted by float rounding.
  void BandQuery(FeatureKey f, double lo, double hi,
                 std::vector<PairKey>* out) const;

  /// Number of pairs in the space.
  size_t size() const { return pairs_.size(); }

  const std::vector<PairKey>& pairs() const { return pairs_; }
  const BuildStats& stats() const { return stats_; }

  /// Distinct features indexed (for introspection and tests).
  size_t num_features() const { return feature_index_.size(); }

  /// Number of pairs in the space carrying feature `f` (0 if unknown).
  /// Low counts mean the feature is selective/identifying; high counts mean
  /// it barely distinguishes entities (rdf:type, small categorical pools).
  size_t FeatureCount(FeatureKey f) const {
    auto it = feature_index_.find(f);
    return it == feature_index_.end() ? 0 : it->second.size();
  }

  /// Largest FeatureCount over all features (0 for an empty space).
  size_t MaxFeatureCount() const { return max_feature_count_; }

 private:
  /// Clears all state and seeds stats with the unfiltered space size.
  void Reset(uint64_t total_possible);
  /// Admits one evaluated pair: θ-filters and stores its feature set.
  void KeepIfNonEmpty(PairKey pair, FeatureSet fs);
  /// Builds the per-feature sorted score index over the kept pairs.
  void FinalizeFeatureIndex();

  std::unordered_map<PairKey, uint32_t> index_;
  std::vector<PairKey> pairs_;
  std::vector<FeatureSet> feature_sets_;
  /// Per feature: (score, pair ordinal), sorted by score.
  std::unordered_map<FeatureKey, std::vector<std::pair<float, uint32_t>>>
      feature_index_;
  size_t max_feature_count_ = 0;
  BuildStats stats_;
};

}  // namespace alex::core

#endif  // ALEX_CORE_LINK_SPACE_H_
