#ifndef ALEX_CORE_CHECKPOINT_H_
#define ALEX_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"
#include "common/status.h"
#include "core/config.h"

namespace alex::core::ckpt {

/// Durable checkpoint container format.
///
/// Layout (all integers little-endian, see common/binary_io.h):
///   magic            "ALEXCKP1" (8 bytes)
///   u32  format_version        (kMinFormatVersion..kFormatVersion)
///   u64  config_fingerprint    (ConfigFingerprint of the producing run)
///   u8   payload_kind          (PayloadKind)
///   u64  payload_size
///   u64  payload_checksum      (FNV-1a 64 over the payload bytes)
///   payload bytes
///
/// Version history:
///   1  original layout: engine payloads embed a bare EpsilonGreedyPolicy
///      snapshot; kSimulation payloads record no linker.
///   2  polymorphic policy/linker state: engine payloads frame the policy
///      snapshot with its registry type tag (length-prefixed tag string +
///      length-prefixed per-type payload), and kSimulation payloads open
///      with the seed linker's type tag. Readers accept both versions —
///      version-1 blobs parse on the legacy layout and load iff the
///      resuming run uses the default policy/linker.
///
/// Readers reject, with a Status and without touching any live state:
///   - a wrong magic or a blob shorter than the header (ParseError)
///   - an unsupported format version (InvalidArgument)
///   - a fingerprint mismatch against the resuming run's config
///     (InvalidArgument) — resuming under different engine tunables would
///     silently diverge from the uninterrupted run
///   - a payload whose size or checksum does not match (ParseError)
///   - a policy/linker section whose type tag is unknown to this build or
///     differs from the resuming run's configuration (InvalidArgument,
///     naming the section and the tag — see AlexEngine::LoadState).

inline constexpr std::string_view kMagic = "ALEXCKP1";
inline constexpr uint32_t kFormatVersion = 2;
/// Oldest format version this build still reads.
inline constexpr uint32_t kMinFormatVersion = 1;

/// What a checkpoint blob contains.
enum class PayloadKind : uint8_t {
  kEngine = 1,       // One AlexEngine's state.
  kPartitioned = 2,  // PartitionedAlex: every partition engine.
  kSimulation = 3,   // Full simulation run state (engines + oracle + series).
  kLinkIndex = 4,    // A federation LinkIndex snapshot.
  kService = 5,      // LinkService: committed episodes + engines + links.
};

/// 64-bit FNV-1a over a byte string; the payload integrity check.
uint64_t Checksum(std::string_view bytes);

/// Fingerprint of every AlexConfig field that influences engine behaviour.
/// A checkpoint taken under one config must not be restored under another:
/// the restored Q-tables and ε schedule would be mixed with different
/// thresholds/partitioning and the run would silently diverge.
uint64_t ConfigFingerprint(const AlexConfig& config);

/// Frames `payload` with the header above.
std::string WrapPayload(PayloadKind kind, uint64_t config_fingerprint,
                        std::string_view payload);

/// Validates a framed blob and returns its payload. `expected_fingerprint`
/// is the resuming run's ConfigFingerprint. When `format_version` is
/// non-null it receives the blob's container version, which payload readers
/// need to pick the right parse layout (see AlexEngine::LoadState).
Result<std::string> UnwrapPayload(std::string_view blob,
                                  PayloadKind expected_kind,
                                  uint64_t expected_fingerprint,
                                  uint32_t* format_version = nullptr);

/// Manages a directory of retained checkpoints.
///
/// Writes are crash-consistent: the blob goes to a temporary file that is
/// fsynced and atomically renamed into place, then the MANIFEST (a text
/// file listing retained checkpoint file names, newest first) is rewritten
/// the same way and the directory entry is fsynced. A crash at any point
/// leaves either the previous manifest (pointing at complete older
/// checkpoints) or the new one — never a manifest naming a torn file.
/// Checkpoints that fall off the retention window are deleted after the
/// manifest no longer references them.
///
/// Instrumented via the metrics registry: `ckpt.writes`, `ckpt.bytes`,
/// `ckpt.write_failures` counters and the `ckpt.write_seconds` histogram.
class CheckpointManager {
 public:
  /// `keep` is the retention depth (minimum 1).
  explicit CheckpointManager(std::string dir, size_t keep = 3);

  /// Atomically writes one checkpoint blob and updates the manifest.
  /// On success `*final_path` (if non-null) names the checkpoint file.
  Status Write(std::string_view blob, std::string* final_path = nullptr);

  /// Path of the newest retained checkpoint, per the manifest.
  Result<std::string> LatestPath() const;

  /// All retained checkpoint paths, newest first.
  std::vector<std::string> RetainedPaths() const;

  const std::string& dir() const { return dir_; }

  /// Reads a whole checkpoint file. ParseError/IOError on failure.
  static Result<std::string> ReadBlob(const std::string& path);

  /// Resolves a `--resume` operand: a checkpoint file path is returned
  /// as-is; a directory (or a MANIFEST path) resolves to the newest
  /// checkpoint it retains.
  static Result<std::string> ResolveLatest(const std::string& dir_or_file);

 private:
  std::string ManifestPath() const;
  Status WriteManifest(const std::vector<std::string>& names);

  std::string dir_;
  size_t keep_;
  uint64_t next_seq_ = 1;
  std::vector<std::string> retained_;  // File names, newest first.
};

}  // namespace alex::core::ckpt

#endif  // ALEX_CORE_CHECKPOINT_H_
