#ifndef ALEX_CORE_METRICS_H_
#define ALEX_CORE_METRICS_H_

#include <unordered_set>

#include "feedback/ground_truth.h"

namespace alex::core {

/// Link-set quality as reported in the paper's figures:
/// P = |C∩G| / |C|,  R = |C∩G| / |G|,  F = 2PR/(P+R)  (Section 7.1).
struct LinkSetMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f_measure = 0.0;
  size_t correct = 0;
  size_t candidates = 0;
  size_t ground_truth = 0;
};

/// Computes metrics of a candidate link set against the ground truth.
LinkSetMetrics ComputeMetrics(
    const std::unordered_set<feedback::PairKey>& candidates,
    const feedback::GroundTruth& truth);

}  // namespace alex::core

#endif  // ALEX_CORE_METRICS_H_
