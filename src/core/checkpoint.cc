#include "core/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"

namespace alex::core::ckpt {
namespace {

namespace fs = std::filesystem;

struct CkptMetrics {
  obs::Counter& writes = obs::MetricsRegistry::Global().counter("ckpt.writes");
  obs::Counter& bytes = obs::MetricsRegistry::Global().counter("ckpt.bytes");
  obs::Counter& write_failures =
      obs::MetricsRegistry::Global().counter("ckpt.write_failures");
  obs::Histogram& write_seconds =
      obs::MetricsRegistry::Global().histogram("ckpt.write_seconds");

  static CkptMetrics& Get() {
    static CkptMetrics* metrics = new CkptMetrics();
    return *metrics;
  }
};

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

/// Writes `data` to `path` via a sibling temp file: write, fsync, close,
/// rename, fsync the directory. After this returns OK the file is durable
/// under its final name; a crash mid-way leaves only a *.tmp sibling.
Status AtomicWriteFile(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("open", tmp));
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status st = Status::IOError(ErrnoMessage("write", tmp));
      ::close(fd);
      ::unlink(tmp.c_str());
      return st;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const Status st = Status::IOError(ErrnoMessage("fsync", tmp));
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError(ErrnoMessage("close", tmp));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status st = Status::IOError(ErrnoMessage("rename", tmp));
    ::unlink(tmp.c_str());
    return st;
  }
  // Make the rename itself durable.
  const std::string dir = fs::path(path).parent_path().string();
  int dfd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

constexpr std::string_view kCheckpointPrefix = "ckpt-";
constexpr std::string_view kCheckpointSuffix = ".alexckpt";
constexpr std::string_view kManifestName = "MANIFEST";

std::string CheckpointFileName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08llu%s", "ckpt-",
                static_cast<unsigned long long>(seq), ".alexckpt");
  return buf;
}

/// Parses the sequence number out of "ckpt-NNNNNNNN.alexckpt"; 0 if the
/// name does not match the pattern.
uint64_t SequenceOf(const std::string& name) {
  if (name.size() <= kCheckpointPrefix.size() + kCheckpointSuffix.size() ||
      name.compare(0, kCheckpointPrefix.size(), kCheckpointPrefix) != 0 ||
      name.compare(name.size() - kCheckpointSuffix.size(),
                   kCheckpointSuffix.size(), kCheckpointSuffix) != 0) {
    return 0;
  }
  const std::string digits = name.substr(
      kCheckpointPrefix.size(),
      name.size() - kCheckpointPrefix.size() - kCheckpointSuffix.size());
  uint64_t seq = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

std::vector<std::string> ReadManifestNames(const std::string& manifest_path) {
  std::vector<std::string> names;
  std::ifstream in(manifest_path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) names.push_back(line);
  }
  return names;
}

void HashU64(uint64_t v, uint64_t* h) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xff;
    *h *= 0x100000001b3ULL;
  }
}

void HashDouble(double v, uint64_t* h) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  HashU64(bits, h);
}

}  // namespace

uint64_t Checksum(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t ConfigFingerprint(const AlexConfig& config) {
  uint64_t h = 0xcbf29ce484222325ULL;
  HashDouble(config.theta, &h);
  HashDouble(config.step_size, &h);
  HashU64(config.episode_size, &h);
  HashDouble(config.epsilon, &h);
  HashU64(config.epsilon_decay ? 1 : 0, &h);
  HashDouble(config.positive_reward, &h);
  HashDouble(config.negative_reward, &h);
  HashU64(config.max_links_per_action, &h);
  HashU64(config.use_blacklist ? 1 : 0, &h);
  HashU64(config.blacklist_threshold, &h);
  HashU64(config.use_rollback ? 1 : 0, &h);
  HashU64(config.rollback_threshold, &h);
  HashU64(config.num_partitions, &h);
  HashU64(config.max_block_pairs, &h);
  HashU64(config.seed, &h);
  // num_threads, max_episodes, relaxed_fraction and shared_blocking_index
  // are deliberately excluded: thread count and the build strategy do not
  // change engine behaviour (the shared and legacy builds are equivalence-
  // tested), and resuming with a larger episode budget is the whole point
  // of --resume.
  //
  // The policy tag (and its tunables) is hashed only when non-default:
  // every checkpoint written before policies became pluggable implicitly
  // ran "epsilon-greedy", and folding the default in unconditionally would
  // orphan all of them.
  if (config.policy != kDefaultPolicyTag) {
    for (char c : config.policy) HashU64(static_cast<uint8_t>(c), &h);
    HashDouble(config.adaptive_payoff_weight, &h);
  }
  return h;
}

std::string WrapPayload(PayloadKind kind, uint64_t config_fingerprint,
                        std::string_view payload) {
  BinaryWriter w;
  w.WriteRaw(kMagic);
  w.WriteU32(kFormatVersion);
  w.WriteU64(config_fingerprint);
  w.WriteU8(static_cast<uint8_t>(kind));
  w.WriteU64(payload.size());
  w.WriteU64(Checksum(payload));
  w.WriteRaw(payload);
  return w.Release();
}

Result<std::string> UnwrapPayload(std::string_view blob,
                                  PayloadKind expected_kind,
                                  uint64_t expected_fingerprint,
                                  uint32_t* format_version) {
  BinaryReader r(blob);
  std::string_view magic;
  ALEX_RETURN_NOT_OK(r.ReadRaw(kMagic.size(), &magic));
  if (magic != kMagic) {
    return Status::ParseError("checkpoint: bad magic (not an ALEX checkpoint)");
  }
  uint32_t version = 0;
  ALEX_RETURN_NOT_OK(r.ReadU32(&version));
  if (version < kMinFormatVersion || version > kFormatVersion) {
    return Status::InvalidArgument(
        "checkpoint: unsupported format version " + std::to_string(version) +
        " (this build reads versions " + std::to_string(kMinFormatVersion) +
        ".." + std::to_string(kFormatVersion) + ")");
  }
  if (format_version != nullptr) *format_version = version;
  uint64_t fingerprint = 0;
  ALEX_RETURN_NOT_OK(r.ReadU64(&fingerprint));
  if (fingerprint != expected_fingerprint) {
    return Status::InvalidArgument(
        "checkpoint: config fingerprint mismatch — the checkpoint was taken "
        "under different engine settings than the resuming run");
  }
  uint8_t kind = 0;
  ALEX_RETURN_NOT_OK(r.ReadU8(&kind));
  if (kind != static_cast<uint8_t>(expected_kind)) {
    return Status::InvalidArgument("checkpoint: payload kind " +
                                   std::to_string(kind) + ", expected " +
                                   std::to_string(static_cast<uint8_t>(
                                       expected_kind)));
  }
  uint64_t size = 0;
  uint64_t checksum = 0;
  ALEX_RETURN_NOT_OK(r.ReadU64(&size));
  ALEX_RETURN_NOT_OK(r.ReadU64(&checksum));
  if (size != r.remaining()) {
    return Status::ParseError(
        "checkpoint: truncated or oversized payload (header says " +
        std::to_string(size) + " bytes, " + std::to_string(r.remaining()) +
        " present)");
  }
  std::string_view payload;
  ALEX_RETURN_NOT_OK(r.ReadRaw(size, &payload));
  if (Checksum(payload) != checksum) {
    return Status::ParseError("checkpoint: payload checksum mismatch");
  }
  return std::string(payload);
}

CheckpointManager::CheckpointManager(std::string dir, size_t keep)
    : dir_(std::move(dir)), keep_(keep == 0 ? 1 : keep) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  retained_ = ReadManifestNames(ManifestPath());
  for (const std::string& name : retained_) {
    next_seq_ = std::max(next_seq_, SequenceOf(name) + 1);
  }
  // Sequence numbers must also clear any stray checkpoint files not in the
  // manifest (e.g. from a run with a larger retention depth), so a new
  // write never overwrites an existing file.
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    next_seq_ =
        std::max(next_seq_, SequenceOf(entry.path().filename().string()) + 1);
  }
}

std::string CheckpointManager::ManifestPath() const {
  return (fs::path(dir_) / std::string(kManifestName)).string();
}

Status CheckpointManager::WriteManifest(const std::vector<std::string>& names) {
  std::ostringstream os;
  for (const std::string& name : names) os << name << "\n";
  return AtomicWriteFile(ManifestPath(), os.str());
}

Status CheckpointManager::Write(std::string_view blob,
                                std::string* final_path) {
  CkptMetrics& metrics = CkptMetrics::Get();
  obs::ScopedTimer timer(metrics.write_seconds);
  const std::string name = CheckpointFileName(next_seq_);
  const std::string path = (fs::path(dir_) / name).string();
  Status st = AtomicWriteFile(path, blob);
  if (!st.ok()) {
    metrics.write_failures.Add(1);
    return st;
  }
  ++next_seq_;

  // New checkpoint first, then the survivors of the retention window; only
  // after the manifest durably stops referencing a file is it deleted.
  std::vector<std::string> names;
  names.push_back(name);
  for (const std::string& old : retained_) {
    if (names.size() < keep_) names.push_back(old);
  }
  st = WriteManifest(names);
  if (!st.ok()) {
    metrics.write_failures.Add(1);
    return st;
  }
  for (const std::string& old : retained_) {
    if (std::find(names.begin(), names.end(), old) == names.end()) {
      std::error_code ec;
      fs::remove(fs::path(dir_) / old, ec);
    }
  }
  retained_ = std::move(names);
  metrics.writes.Add(1);
  metrics.bytes.Add(blob.size());
  if (final_path != nullptr) *final_path = path;
  return Status::OK();
}

Result<std::string> CheckpointManager::LatestPath() const {
  if (retained_.empty()) {
    return Status::NotFound("no checkpoints retained in '" + dir_ + "'");
  }
  return (fs::path(dir_) / retained_.front()).string();
}

std::vector<std::string> CheckpointManager::RetainedPaths() const {
  std::vector<std::string> out;
  out.reserve(retained_.size());
  for (const std::string& name : retained_) {
    out.push_back((fs::path(dir_) / name).string());
  }
  return out;
}

Result<std::string> CheckpointManager::ReadBlob(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open checkpoint '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::IOError("error reading checkpoint '" + path + "'");
  }
  return os.str();
}

Result<std::string> CheckpointManager::ResolveLatest(
    const std::string& dir_or_file) {
  std::error_code ec;
  std::string manifest;
  fs::path base;
  if (fs::is_directory(dir_or_file, ec)) {
    base = dir_or_file;
    manifest = (base / std::string(kManifestName)).string();
  } else if (fs::path(dir_or_file).filename() == std::string(kManifestName)) {
    base = fs::path(dir_or_file).parent_path();
    manifest = dir_or_file;
  } else {
    return dir_or_file;  // A concrete checkpoint file.
  }
  const std::vector<std::string> names = ReadManifestNames(manifest);
  if (names.empty()) {
    return Status::NotFound("no checkpoint manifest entries under '" +
                            dir_or_file + "'");
  }
  return (base / names.front()).string();
}

}  // namespace alex::core::ckpt
