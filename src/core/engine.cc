#include "core/engine.h"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace alex::core {
namespace {

/// Engine metrics. Feedback items arrive at human/oracle rate (thousands
/// per episode at most), so per-item counter updates are negligible; only
/// per-explored-link work batches its adds.
struct EngineMetrics {
  obs::Counter& feedback_items =
      obs::MetricsRegistry::Global().counter("engine.feedback_items");
  obs::Counter& explore_actions =
      obs::MetricsRegistry::Global().counter("engine.explore_actions");
  obs::Counter& links_added =
      obs::MetricsRegistry::Global().counter("engine.links_added");
  obs::Counter& links_removed =
      obs::MetricsRegistry::Global().counter("engine.links_removed");
  obs::Counter& blacklist_hits =
      obs::MetricsRegistry::Global().counter("engine.blacklist_hits");
  obs::Counter& rollbacks =
      obs::MetricsRegistry::Global().counter("engine.rollbacks");
  obs::Histogram& end_episode_seconds =
      obs::MetricsRegistry::Global().histogram("engine.end_episode_seconds");

  static EngineMetrics& Get() {
    static EngineMetrics* metrics = new EngineMetrics();
    return *metrics;
  }
};

/// Resolves `config.policy` through the registry; an unknown tag degrades
/// to the default ε-greedy policy with an error log rather than aborting —
/// drivers (CLI, benches) validate tags up front, so this path only fires
/// for programmatic misconfiguration.
std::unique_ptr<Policy> MakePolicy(const AlexConfig& config, uint64_t seed) {
  auto policy = PolicyRegistry::Global().Create(config.policy, config, seed);
  if (policy.ok()) return std::move(*policy);
  ALEX_LOG(kError) << "policy '" << config.policy
                   << "' unavailable, falling back to '" << kDefaultPolicyTag
                   << "': " << policy.status();
  return std::make_unique<EpsilonGreedyPolicy>(config.epsilon, seed);
}

}  // namespace

AlexEngine::AlexEngine(const LinkSpace* space, const AlexConfig& config,
                       uint64_t seed)
    : space_(space),
      config_(config),
      policy_(MakePolicy(config, seed)),
      rng_(seed ^ 0x5deece66dULL) {
  // Cold-start ordering: before any return is recorded anywhere for a
  // feature, prefer selective features (few pairs carry them) over
  // non-distinctive ones (rdf:type, small categorical pools). Scaled to
  // [0, 0.5] so learned evidence always dominates.
  selectivity_prior_ = [this](FeatureKey f) {
    const size_t count = space_->FeatureCount(f);
    const size_t max_count = space_->MaxFeatureCount();
    if (count == 0 || max_count <= 1) return 0.25;
    const double rel =
        std::log(1.0 + static_cast<double>(count)) /
        std::log(1.0 + static_cast<double>(max_count));
    return 0.5 * (1.0 - rel);
  };
}

void AlexEngine::InitializeCandidates(
    const std::vector<PairKey>& initial_links) {
  candidates_.insert(initial_links.begin(), initial_links.end());
}

void AlexEngine::ProcessFeedback(const feedback::FeedbackItem& item) {
  ALEX_TRACE_SPAN("engine", "ProcessFeedback");
  const PairKey state = item.key();
  ++episode_stats_.feedback_items;
  EngineMetrics::Get().feedback_items.Add(1);

  const double reward =
      item.positive ? config_.positive_reward : config_.negative_reward;

  // First-visit Monte Carlo (Section 4.4.1): on the first visit of this
  // state within the episode, append the feedback value to the returns of
  // every state-action pair that led to it.
  const bool first_visit = visited_this_episode_.insert(state).second;
  if (first_visit) {
    auto git = generators_.find(state);
    if (git != generators_.end()) {
      for (const StateAction& generator : git->second) {
        policy_->RecordReturn(generator, reward);
      }
    }
  }

  if (item.positive) {
    ++episode_stats_.positive_items;
    positively_marked_.insert(state);
    link_negative_counts_.erase(state);  // Fresh evidence of correctness.
    // An approval is direct evidence the link is correct: (re-)admit it
    // even if an earlier (possibly erroneous) rejection removed or
    // blacklisted it.
    candidates_.insert(state);
    blacklist_.erase(state);
    episode_states_.push_back(state);
    const FeatureSet* actions = space_->FeaturesOf(state);
    if (actions != nullptr) {
      std::optional<FeatureKey> action =
          policy_->ChooseAction(state, *actions, selectivity_prior_);
      if (action.has_value()) Explore(state, *action);
    }
    return;
  }

  // Negative feedback: remove the wrong link (Algorithm 1 line 20) and
  // blacklist it so no future exploration re-proposes it (Section 6.3).
  ++episode_stats_.negative_items;
  if (candidates_.erase(state) > 0) {
    ++episode_stats_.links_removed;
    EngineMetrics::Get().links_removed.Add(1);
  }
  if (config_.use_blacklist &&
      ++link_negative_counts_[state] >= config_.blacklist_threshold) {
    blacklist_.insert(state);
  }
  positively_marked_.erase(state);

  // Rollback accounting: enough negative feedback on links generated by one
  // state-action pair triggers removal of everything it generated.
  auto git = generators_.find(state);
  if (git != generators_.end() && config_.use_rollback) {
    // Copy: Rollback mutates generators_.
    const std::vector<StateAction> gens = git->second;
    for (const StateAction& generator : gens) {
      if (++negative_counts_[generator] >=
          config_.EffectiveRollbackThreshold()) {
        Rollback(generator);
        negative_counts_[generator] = 0;
      }
    }
  }
}

void AlexEngine::Explore(PairKey state, FeatureKey action) {
  ALEX_TRACE_SPAN("engine", "Explore");
  EngineMetrics& metrics = EngineMetrics::Get();
  metrics.explore_actions.Add(1);
  const FeatureSet* features = space_->FeaturesOf(state);
  if (features == nullptr) return;
  double score = -1.0;
  for (const FeatureValue& f : *features) {
    if (f.key == action) {
      score = f.score;
      break;
    }
  }
  if (score < 0.0) return;

  std::vector<PairKey> found;
  space_->BandQuery(action, score - config_.step_size,
                    score + config_.step_size, &found);

  // Keep only genuinely new links: not the approved link itself, not
  // blacklisted (Section 6.3), not already candidates. A blacklist hit —
  // the blacklist suppressing a re-proposal — is the optimization's win,
  // so it is counted.
  size_t blacklist_hits = 0;
  std::erase_if(found, [&](PairKey link) {
    if (link == state) return true;
    if (blacklist_.count(link) > 0) {
      ++blacklist_hits;
      return true;
    }
    return candidates_.count(link) > 0;
  });
  if (blacklist_hits > 0) metrics.blacklist_hits.Add(blacklist_hits);

  // Bound the action's yield, preferring scores nearest the approved
  // link's: a non-distinctive feature can match thousands of pairs.
  const size_t action_cap = config_.EffectiveMaxLinksPerAction();
  if (found.size() > action_cap) {
    std::vector<std::pair<double, PairKey>> ranked;
    ranked.reserve(found.size());
    for (PairKey link : found) {
      const FeatureSet* fs = space_->FeaturesOf(link);
      double link_score = 0.0;
      if (fs != nullptr) {
        for (const FeatureValue& f : *fs) {
          if (f.key == action) {
            link_score = f.score;
            break;
          }
        }
      }
      ranked.emplace_back(std::abs(link_score - score), link);
    }
    std::nth_element(ranked.begin(), ranked.begin() + action_cap,
                     ranked.end());
    ranked.resize(action_cap);
    found.clear();
    for (const auto& [dist, link] : ranked) found.push_back(link);
  }

  const StateAction generator{state, action};
  size_t added = 0;
  for (PairKey link : found) {
    if (!candidates_.insert(link).second) continue;
    ++episode_stats_.links_added;
    ++added;
    ever_explored_.insert(link);
    generators_[link].push_back(generator);
    generated_links_[generator].push_back(link);
  }
  if (added > 0) metrics.links_added.Add(added);
}

void AlexEngine::Rollback(const StateAction& generator) {
  auto it = generated_links_.find(generator);
  if (it == generated_links_.end()) return;
  ++episode_stats_.rollbacks;
  EngineMetrics::Get().rollbacks.Add(1);
  for (PairKey link : it->second) {
    // Links that received positive feedback stay; links already removed by
    // explicit negative feedback are gone anyway. Rolled-back links are NOT
    // blacklisted — another state-action pair with a better average return
    // may legitimately rediscover them (Section 6.3).
    if (positively_marked_.count(link) > 0) continue;
    if (candidates_.erase(link) > 0) {
      ++episode_stats_.links_removed;
      EngineMetrics::Get().links_removed.Add(1);
    }
    auto git = generators_.find(link);
    if (git != generators_.end()) {
      auto& gens = git->second;
      gens.erase(std::remove(gens.begin(), gens.end(), generator),
                 gens.end());
      if (gens.empty()) generators_.erase(git);
    }
  }
  generated_links_.erase(generator);
}

EngineEpisodeStats AlexEngine::EndEpisode() {
  ALEX_TRACE_SPAN("engine", "EndEpisode");
  obs::ScopedTimer timer(EngineMetrics::Get().end_episode_seconds);
  policy_->Improve(episode_states_);
  ++episodes_completed_;
  if (config_.epsilon_decay) {
    // GLIE schedule (config.h): after k completed episodes the policy runs
    // with ε/k. The previous divisor `episodes_completed_ + 1` shifted the
    // whole schedule by one — the very first decay already halved ε.
    policy_->set_epsilon(config_.epsilon /
                        static_cast<double>(episodes_completed_));
  }
  EngineEpisodeStats stats = episode_stats_;
  episode_stats_ = EngineEpisodeStats{};
  visited_this_episode_.clear();
  episode_states_.clear();
  return stats;
}

namespace {

/// Canonical (sorted) serialization of a PairKey set: equal sets produce
/// equal bytes whatever their hash tables' insertion histories were.
void WriteKeySet(BinaryWriter* w, const std::unordered_set<PairKey>& set) {
  std::vector<PairKey> keys(set.begin(), set.end());
  std::sort(keys.begin(), keys.end());
  w->WriteU64(keys.size());
  for (PairKey key : keys) w->WriteU64(key);
}

Status ReadKeySet(BinaryReader* r, std::unordered_set<PairKey>* out) {
  uint64_t n = 0;
  ALEX_RETURN_NOT_OK(r->ReadU64(&n));
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PairKey key = 0;
    ALEX_RETURN_NOT_OK(r->ReadU64(&key));
    out->insert(key);
  }
  return Status::OK();
}

void WriteStateAction(BinaryWriter* w, const StateAction& sa) {
  w->WriteU64(sa.state);
  w->WriteU64(sa.action);
}

Status ReadStateAction(BinaryReader* r, StateAction* sa) {
  ALEX_RETURN_NOT_OK(r->ReadU64(&sa->state));
  ALEX_RETURN_NOT_OK(r->ReadU64(&sa->action));
  return Status::OK();
}

bool StateActionLess(const StateAction& a, const StateAction& b) {
  return std::tie(a.state, a.action) < std::tie(b.state, b.action);
}

}  // namespace

void AlexEngine::SaveState(BinaryWriter* w) const {
  // Policy section, format v2: the registry type tag, then the policy's
  // own snapshot, both length-prefixed — a reader can route the payload to
  // the right concrete type (or reject it by name) without understanding
  // its internals.
  w->WriteBytes(policy_->type_tag());
  BinaryWriter pw;
  policy_->SaveState(&pw);
  w->WriteBytes(pw.buffer());
  for (uint64_t word : rng_.SaveState()) w->WriteU64(word);
  w->WriteU64(episodes_completed_);

  WriteKeySet(w, candidates_);
  WriteKeySet(w, blacklist_);
  WriteKeySet(w, ever_explored_);
  WriteKeySet(w, positively_marked_);
  WriteKeySet(w, visited_this_episode_);

  // Provenance maps: outer keys sorted; the inner vectors' element order is
  // semantic (rollback walks generated links in discovery order) and is
  // preserved verbatim.
  std::vector<PairKey> link_keys;
  link_keys.reserve(generators_.size());
  for (const auto& [key, gens] : generators_) link_keys.push_back(key);
  std::sort(link_keys.begin(), link_keys.end());
  w->WriteU64(link_keys.size());
  for (PairKey key : link_keys) {
    const std::vector<StateAction>& gens = generators_.at(key);
    w->WriteU64(key);
    w->WriteU64(gens.size());
    for (const StateAction& sa : gens) WriteStateAction(w, sa);
  }

  std::vector<StateAction> gen_keys;
  gen_keys.reserve(generated_links_.size());
  for (const auto& [sa, links] : generated_links_) gen_keys.push_back(sa);
  std::sort(gen_keys.begin(), gen_keys.end(), StateActionLess);
  w->WriteU64(gen_keys.size());
  for (const StateAction& sa : gen_keys) {
    const std::vector<PairKey>& links = generated_links_.at(sa);
    WriteStateAction(w, sa);
    w->WriteU64(links.size());
    for (PairKey link : links) w->WriteU64(link);
  }

  std::vector<std::pair<StateAction, size_t>> negatives(negative_counts_.begin(),
                                                        negative_counts_.end());
  std::sort(negatives.begin(), negatives.end(),
            [](const auto& a, const auto& b) {
              return StateActionLess(a.first, b.first);
            });
  w->WriteU64(negatives.size());
  for (const auto& [sa, count] : negatives) {
    WriteStateAction(w, sa);
    w->WriteU64(count);
  }

  std::vector<std::pair<PairKey, size_t>> link_negatives(
      link_negative_counts_.begin(), link_negative_counts_.end());
  std::sort(link_negatives.begin(), link_negatives.end());
  w->WriteU64(link_negatives.size());
  for (const auto& [key, count] : link_negatives) {
    w->WriteU64(key);
    w->WriteU64(count);
  }

  w->WriteU64(episode_states_.size());
  for (PairKey key : episode_states_) w->WriteU64(key);

  w->WriteU64(episode_stats_.feedback_items);
  w->WriteU64(episode_stats_.positive_items);
  w->WriteU64(episode_stats_.negative_items);
  w->WriteU64(episode_stats_.links_added);
  w->WriteU64(episode_stats_.links_removed);
  w->WriteU64(episode_stats_.rollbacks);
}

Status AlexEngine::LoadState(BinaryReader* r, uint32_t format_version) {
  // Parse the complete snapshot into locals before touching any member, so
  // a corrupt or truncated payload leaves the live engine unmodified. The
  // policy restores itself under the same contract, so it is staged into a
  // scratch instance and moved in only after everything else parsed.
  std::unique_ptr<Policy> policy;
  if (format_version >= 2) {
    // Tagged policy section. The tag must match the configured policy —
    // restoring, say, an adaptive-feature Q-state into an ε-greedy engine
    // would silently continue a different learning process.
    std::string_view tag;
    ALEX_RETURN_NOT_OK(r->ReadBytesView(&tag));
    if (tag != config_.policy) {
      if (!PolicyRegistry::Global().Contains(tag)) {
        return Status::InvalidArgument(
            "checkpoint: policy section has unknown type tag '" +
            std::string(tag) + "' (not registered in this build)");
      }
      return Status::InvalidArgument(
          "checkpoint: policy section has type tag '" + std::string(tag) +
          "', but this engine is configured with policy '" + config_.policy +
          "'");
    }
    std::string_view payload;
    ALEX_RETURN_NOT_OK(r->ReadBytesView(&payload));
    auto staged = PolicyRegistry::Global().Create(tag, config_, 0);
    if (!staged.ok()) {
      return Status::InvalidArgument(
          "checkpoint: policy section has unknown type tag '" +
          std::string(tag) + "' (not registered in this build)");
    }
    policy = std::move(*staged);
    BinaryReader pr(payload);
    ALEX_RETURN_NOT_OK(policy->LoadState(&pr));
    if (!pr.AtEnd()) {
      return Status::ParseError("checkpoint: policy section of type '" +
                                std::string(tag) + "' has trailing bytes");
    }
  } else {
    // Version-1 payloads carry a bare EpsilonGreedyPolicy snapshot (no tag,
    // no length prefix) — every pre-versioning run was ε-greedy. They only
    // load into an engine still configured that way.
    if (config_.policy != kDefaultPolicyTag) {
      return Status::InvalidArgument(
          "checkpoint: version-1 policy section is implicitly '" +
          std::string(kDefaultPolicyTag) +
          "', but this engine is configured with policy '" + config_.policy +
          "'");
    }
    policy = std::make_unique<EpsilonGreedyPolicy>(config_.epsilon, 0);
    ALEX_RETURN_NOT_OK(policy->LoadState(r));
  }
  Rng::State rng_state;
  for (uint64_t& word : rng_state) ALEX_RETURN_NOT_OK(r->ReadU64(&word));
  uint64_t episodes_completed = 0;
  ALEX_RETURN_NOT_OK(r->ReadU64(&episodes_completed));

  std::unordered_set<PairKey> candidates, blacklist, ever_explored,
      positively_marked, visited;
  ALEX_RETURN_NOT_OK(ReadKeySet(r, &candidates));
  ALEX_RETURN_NOT_OK(ReadKeySet(r, &blacklist));
  ALEX_RETURN_NOT_OK(ReadKeySet(r, &ever_explored));
  ALEX_RETURN_NOT_OK(ReadKeySet(r, &positively_marked));
  ALEX_RETURN_NOT_OK(ReadKeySet(r, &visited));

  uint64_t n = 0;
  ALEX_RETURN_NOT_OK(r->ReadU64(&n));
  std::unordered_map<PairKey, std::vector<StateAction>> generators;
  generators.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PairKey key = 0;
    ALEX_RETURN_NOT_OK(r->ReadU64(&key));
    uint64_t len = 0;
    ALEX_RETURN_NOT_OK(r->ReadU64(&len));
    std::vector<StateAction>& gens = generators[key];
    gens.resize(len);
    for (uint64_t j = 0; j < len; ++j) {
      ALEX_RETURN_NOT_OK(ReadStateAction(r, &gens[j]));
    }
  }

  ALEX_RETURN_NOT_OK(r->ReadU64(&n));
  std::unordered_map<StateAction, std::vector<PairKey>, StateActionHash>
      generated_links;
  generated_links.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    StateAction sa;
    ALEX_RETURN_NOT_OK(ReadStateAction(r, &sa));
    uint64_t len = 0;
    ALEX_RETURN_NOT_OK(r->ReadU64(&len));
    std::vector<PairKey>& links = generated_links[sa];
    links.resize(len);
    for (uint64_t j = 0; j < len; ++j) {
      ALEX_RETURN_NOT_OK(r->ReadU64(&links[j]));
    }
  }

  ALEX_RETURN_NOT_OK(r->ReadU64(&n));
  std::unordered_map<StateAction, size_t, StateActionHash> negative_counts;
  negative_counts.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    StateAction sa;
    ALEX_RETURN_NOT_OK(ReadStateAction(r, &sa));
    uint64_t count = 0;
    ALEX_RETURN_NOT_OK(r->ReadU64(&count));
    negative_counts.emplace(sa, static_cast<size_t>(count));
  }

  ALEX_RETURN_NOT_OK(r->ReadU64(&n));
  std::unordered_map<PairKey, size_t> link_negative_counts;
  link_negative_counts.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PairKey key = 0;
    ALEX_RETURN_NOT_OK(r->ReadU64(&key));
    uint64_t count = 0;
    ALEX_RETURN_NOT_OK(r->ReadU64(&count));
    link_negative_counts.emplace(key, static_cast<size_t>(count));
  }

  ALEX_RETURN_NOT_OK(r->ReadU64(&n));
  std::vector<PairKey> episode_states(n);
  for (uint64_t i = 0; i < n; ++i) {
    ALEX_RETURN_NOT_OK(r->ReadU64(&episode_states[i]));
  }

  EngineEpisodeStats stats;
  uint64_t v = 0;
  ALEX_RETURN_NOT_OK(r->ReadU64(&v));
  stats.feedback_items = v;
  ALEX_RETURN_NOT_OK(r->ReadU64(&v));
  stats.positive_items = v;
  ALEX_RETURN_NOT_OK(r->ReadU64(&v));
  stats.negative_items = v;
  ALEX_RETURN_NOT_OK(r->ReadU64(&v));
  stats.links_added = v;
  ALEX_RETURN_NOT_OK(r->ReadU64(&v));
  stats.links_removed = v;
  ALEX_RETURN_NOT_OK(r->ReadU64(&v));
  stats.rollbacks = v;

  policy_ = std::move(policy);
  rng_.RestoreState(rng_state);
  episodes_completed_ = static_cast<size_t>(episodes_completed);
  candidates_ = std::move(candidates);
  blacklist_ = std::move(blacklist);
  ever_explored_ = std::move(ever_explored);
  positively_marked_ = std::move(positively_marked);
  visited_this_episode_ = std::move(visited);
  generators_ = std::move(generators);
  generated_links_ = std::move(generated_links);
  negative_counts_ = std::move(negative_counts);
  link_negative_counts_ = std::move(link_negative_counts);
  episode_states_ = std::move(episode_states);
  episode_stats_ = stats;
  return Status::OK();
}

}  // namespace alex::core
