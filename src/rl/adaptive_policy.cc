#include "rl/adaptive_policy.h"

#include <algorithm>

namespace alex::rl {

AdaptiveFeaturePolicy::AdaptiveFeaturePolicy(double epsilon,
                                             double payoff_weight,
                                             uint64_t seed)
    : epsilon_(epsilon),
      payoff_weight_(payoff_weight),
      rng_(seed),
      // The embedded policy's ε branch is never taken (its ChooseAction is
      // not called), so its ε is pinned to 0 and its RNG stream is split
      // off this policy's seed purely to keep the two streams distinct.
      base_(0.0, seed ^ 0x5851f42d4c957f2dULL) {}

double AdaptiveFeaturePolicy::SuccessRate(core::FeatureKey feature) const {
  auto it = payoffs_.find(feature);
  if (it == payoffs_.end()) return 0.5;
  return static_cast<double>(it->second.positive + 1) /
         static_cast<double>(it->second.trials + 2);
}

std::optional<core::FeatureKey> AdaptiveFeaturePolicy::ChooseAction(
    core::PairKey state, const core::FeatureSet& actions,
    const core::ActionPrior& prior) {
  if (actions.empty()) return std::nullopt;

  // ε branch: payoff-weighted exploration. The floor keeps π(s,a) ≥
  // ε·floor/Σw > 0 for every action, preserving the GLIE contract.
  if (rng_.Bernoulli(epsilon_)) {
    weights_.clear();
    weights_.reserve(actions.size());
    for (const core::FeatureValue& f : actions) {
      weights_.push_back(kWeightFloor + SuccessRate(f.key));
    }
    return actions[rng_.SampleWeighted(weights_)].key;
  }

  // Greedy branch. The state's recorded greedy action (from the last
  // policy improvement) wins if still available, as in the base policy.
  if (auto recorded = base_.GreedyAction(state)) {
    for (const core::FeatureValue& f : actions) {
      if (f.key == *recorded) return f.key;
    }
  }

  // Otherwise score every action. A state-local Q is trusted as-is; absent
  // one, the global average (or the cold-start prior) is shaded by the
  // payoff bonus. Exact ties break to the smallest key — canonical, so two
  // runs with equal tables always agree.
  std::optional<core::FeatureKey> best;
  double best_q = 0.0;
  for (const core::FeatureValue& f : actions) {
    double q;
    if (auto state_q = base_.Q(core::StateAction{state, f.key})) {
      q = *state_q;
    } else {
      auto global = base_.GlobalQ(f.key);
      q = global.has_value() ? *global : (prior ? prior(f.key) : 0.0);
      q += payoff_weight_ * (SuccessRate(f.key) - 0.5);
    }
    if (!best.has_value() || q > best_q ||
        (q == best_q && f.key < *best)) {
      best = f.key;
      best_q = q;
    }
  }
  return best;
}

void AdaptiveFeaturePolicy::RecordReturn(const core::StateAction& sa,
                                         double reward) {
  base_.RecordReturn(sa, reward);
  FeaturePayoff& p = payoffs_[sa.action];
  if (reward > 0.0) {
    ++p.positive;
  } else {
    ++p.negative;
  }
  ++p.trials;
}

void AdaptiveFeaturePolicy::Improve(
    const std::vector<core::PairKey>& episode_states) {
  base_.Improve(episode_states);
}

std::optional<double> AdaptiveFeaturePolicy::Q(
    const core::StateAction& sa) const {
  return base_.Q(sa);
}

std::optional<double> AdaptiveFeaturePolicy::GlobalQ(
    core::FeatureKey action) const {
  return base_.GlobalQ(action);
}

std::optional<core::FeatureKey> AdaptiveFeaturePolicy::GreedyAction(
    core::PairKey state) const {
  return base_.GreedyAction(state);
}

std::vector<std::pair<core::FeatureKey, double>>
AdaptiveFeaturePolicy::GlobalActionValues() const {
  return base_.GlobalActionValues();
}

size_t AdaptiveFeaturePolicy::num_states() const { return base_.num_states(); }

void AdaptiveFeaturePolicy::SaveState(BinaryWriter* w) const {
  base_.SaveState(w);
  w->WriteDouble(epsilon_);
  w->WriteDouble(payoff_weight_);
  for (uint64_t word : rng_.SaveState()) w->WriteU64(word);

  std::vector<std::pair<core::FeatureKey, FeaturePayoff>> payoffs(
      payoffs_.begin(), payoffs_.end());
  std::sort(payoffs.begin(), payoffs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w->WriteU64(payoffs.size());
  for (const auto& [feature, p] : payoffs) {
    w->WriteU64(feature);
    w->WriteU64(p.positive);
    w->WriteU64(p.negative);
    w->WriteU64(p.trials);
  }
}

Status AdaptiveFeaturePolicy::LoadState(BinaryReader* r) {
  // Parse everything into locals first; commit only on full success.
  core::EpsilonGreedyPolicy base(0.0, 0);
  ALEX_RETURN_NOT_OK(base.LoadState(r));

  double epsilon = 0.0;
  double payoff_weight = 0.0;
  ALEX_RETURN_NOT_OK(r->ReadDouble(&epsilon));
  ALEX_RETURN_NOT_OK(r->ReadDouble(&payoff_weight));
  Rng::State rng_state;
  for (uint64_t& word : rng_state) ALEX_RETURN_NOT_OK(r->ReadU64(&word));

  uint64_t n = 0;
  ALEX_RETURN_NOT_OK(r->ReadU64(&n));
  std::unordered_map<core::FeatureKey, FeaturePayoff> payoffs;
  payoffs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    core::FeatureKey feature = 0;
    FeaturePayoff p;
    ALEX_RETURN_NOT_OK(r->ReadU64(&feature));
    ALEX_RETURN_NOT_OK(r->ReadU64(&p.positive));
    ALEX_RETURN_NOT_OK(r->ReadU64(&p.negative));
    ALEX_RETURN_NOT_OK(r->ReadU64(&p.trials));
    payoffs.emplace(feature, p);
  }

  base_ = std::move(base);
  epsilon_ = epsilon;
  payoff_weight_ = payoff_weight;
  rng_.RestoreState(rng_state);
  payoffs_ = std::move(payoffs);
  return Status::OK();
}

void RegisterAdaptiveFeaturePolicy() {
  core::PolicyRegistry::Global().Register(
      std::string(kAdaptiveFeaturePolicyTag),
      [](const core::AlexConfig& config, uint64_t seed) {
        return std::unique_ptr<core::Policy>(
            std::make_unique<AdaptiveFeaturePolicy>(
                config.epsilon, config.adaptive_payoff_weight, seed));
      });
}

}  // namespace alex::rl
