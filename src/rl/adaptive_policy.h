#ifndef ALEX_RL_ADAPTIVE_POLICY_H_
#define ALEX_RL_ADAPTIVE_POLICY_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/policy.h"

namespace alex::rl {

/// Stable type tag of the adaptive-feature policy.
inline constexpr std::string_view kAdaptiveFeaturePolicyTag =
    "adaptive-feature";

/// ε-greedy policy that conditions both branches on per-feature payoff
/// statistics — how often exploring around each feature has historically
/// produced positive vs. negative returns, across all states.
///
/// The paper's policy treats the exploration (ε) branch as uniform over the
/// state's features. This variant keeps the paper's first-visit Monte Carlo
/// Q machinery (delegated to an embedded EpsilonGreedyPolicy) but spends
/// the exploration budget where it has paid off:
///
///  - ε branch: instead of a uniform draw, features are sampled with weight
///    `floor + success_rate(f)` where success_rate is the Laplace-smoothed
///    positive fraction (pos+1)/(trials+2) and floor > 0 keeps every
///    feature's probability strictly positive (GLIE needs π(s,a) > 0).
///  - greedy branch: the state's recorded greedy action wins as in the
///    base policy; otherwise actions are scored by state Q when known, and
///    by global Q (or the cold-start prior) *plus* a payoff bonus
///    `payoff_weight * (success_rate − ½)` when not — centering at ½ makes
///    the bonus negative for features that mostly drew negative feedback.
///    Exact ties break to the smallest feature key (canonical, not random).
///
/// ε decay (set_epsilon) follows the same GLIE schedule the engine applies
/// to every policy. Deterministic given the seed and the call sequence;
/// serialization is canonical (payoff table sorted by key).
class AdaptiveFeaturePolicy final : public core::Policy {
 public:
  /// `payoff_weight` scales the greedy-branch bonus (see class comment);
  /// AlexConfig::adaptive_payoff_weight supplies it through the registry.
  AdaptiveFeaturePolicy(double epsilon, double payoff_weight, uint64_t seed);

  std::string_view type_tag() const override {
    return kAdaptiveFeaturePolicyTag;
  }

  std::optional<core::FeatureKey> ChooseAction(
      core::PairKey state, const core::FeatureSet& actions,
      const core::ActionPrior& prior = {}) override;

  void RecordReturn(const core::StateAction& sa, double reward) override;

  void Improve(const std::vector<core::PairKey>& episode_states) override;

  void set_epsilon(double epsilon) override { epsilon_ = epsilon; }
  double epsilon() const override { return epsilon_; }

  std::optional<double> Q(const core::StateAction& sa) const override;
  std::optional<double> GlobalQ(core::FeatureKey action) const override;
  std::optional<core::FeatureKey> GreedyAction(
      core::PairKey state) const override;
  std::vector<std::pair<core::FeatureKey, double>> GlobalActionValues()
      const override;
  size_t num_states() const override;

  void SaveState(BinaryWriter* w) const override;
  Status LoadState(BinaryReader* r) override;

  /// Laplace-smoothed positive-return fraction of a feature: (pos+1) /
  /// (trials+2). ½ for never-tried features. Exposed for tests and benches.
  double SuccessRate(core::FeatureKey feature) const;

  /// Distinct features with at least one recorded return.
  size_t num_tracked_features() const { return payoffs_.size(); }

 private:
  /// Per-feature payoff tallies across all states.
  struct FeaturePayoff {
    uint64_t positive = 0;
    uint64_t negative = 0;
    uint64_t trials = 0;
  };

  /// Sampling floor of the ε branch: a feature with zero payoff history
  /// still draws with weight kWeightFloor + ½.
  static constexpr double kWeightFloor = 0.25;

  double epsilon_;
  double payoff_weight_;
  Rng rng_;
  /// Q bookkeeping and serialization are the base policy's, unchanged; its
  /// own ε and RNG are idle (this class keeps its own on top).
  core::EpsilonGreedyPolicy base_;
  std::unordered_map<core::FeatureKey, FeaturePayoff> payoffs_;
  std::vector<double> weights_;  // Scratch for the ε-branch draw.
};

/// Registers the "adaptive-feature" tag with core::PolicyRegistry::Global().
/// Idempotent; call before constructing engines that select it (the
/// Simulation constructor does).
void RegisterAdaptiveFeaturePolicy();

}  // namespace alex::rl

#endif  // ALEX_RL_ADAPTIVE_POLICY_H_
