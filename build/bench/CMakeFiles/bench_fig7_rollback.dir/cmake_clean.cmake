file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_rollback.dir/bench_fig7_rollback.cc.o"
  "CMakeFiles/bench_fig7_rollback.dir/bench_fig7_rollback.cc.o.d"
  "bench_fig7_rollback"
  "bench_fig7_rollback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_rollback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
