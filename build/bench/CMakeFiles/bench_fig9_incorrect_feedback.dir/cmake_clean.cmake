file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_incorrect_feedback.dir/bench_fig9_incorrect_feedback.cc.o"
  "CMakeFiles/bench_fig9_incorrect_feedback.dir/bench_fig9_incorrect_feedback.cc.o.d"
  "bench_fig9_incorrect_feedback"
  "bench_fig9_incorrect_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_incorrect_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
