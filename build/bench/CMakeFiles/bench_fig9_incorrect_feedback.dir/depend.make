# Empty dependencies file for bench_fig9_incorrect_feedback.
# This may be replaced when dependencies are built.
