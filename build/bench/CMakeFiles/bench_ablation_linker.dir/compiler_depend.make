# Empty compiler generated dependencies file for bench_ablation_linker.
# This may be replaced when dependencies are built.
