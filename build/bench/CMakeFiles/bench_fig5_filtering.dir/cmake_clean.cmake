file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_filtering.dir/bench_fig5_filtering.cc.o"
  "CMakeFiles/bench_fig5_filtering.dir/bench_fig5_filtering.cc.o.d"
  "bench_fig5_filtering"
  "bench_fig5_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
