file(REMOVE_RECURSE
  "CMakeFiles/bench_federated_queries.dir/bench_federated_queries.cc.o"
  "CMakeFiles/bench_federated_queries.dir/bench_federated_queries.cc.o.d"
  "bench_federated_queries"
  "bench_federated_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_federated_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
