# Empty dependencies file for bench_federated_queries.
# This may be replaced when dependencies are built.
