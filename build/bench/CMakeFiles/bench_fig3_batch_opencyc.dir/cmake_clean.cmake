file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_batch_opencyc.dir/bench_fig3_batch_opencyc.cc.o"
  "CMakeFiles/bench_fig3_batch_opencyc.dir/bench_fig3_batch_opencyc.cc.o.d"
  "bench_fig3_batch_opencyc"
  "bench_fig3_batch_opencyc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_batch_opencyc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
