# Empty compiler generated dependencies file for bench_fig2_batch_dbpedia.
# This may be replaced when dependencies are built.
