file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_batch_dbpedia.dir/bench_fig2_batch_dbpedia.cc.o"
  "CMakeFiles/bench_fig2_batch_dbpedia.dir/bench_fig2_batch_dbpedia.cc.o.d"
  "bench_fig2_batch_dbpedia"
  "bench_fig2_batch_dbpedia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_batch_dbpedia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
