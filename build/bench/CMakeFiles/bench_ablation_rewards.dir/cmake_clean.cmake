file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rewards.dir/bench_ablation_rewards.cc.o"
  "CMakeFiles/bench_ablation_rewards.dir/bench_ablation_rewards.cc.o.d"
  "bench_ablation_rewards"
  "bench_ablation_rewards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rewards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
