# Empty dependencies file for bench_fig8_multidomain.
# This may be replaced when dependencies are built.
