file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_specific_domains.dir/bench_fig4_specific_domains.cc.o"
  "CMakeFiles/bench_fig4_specific_domains.dir/bench_fig4_specific_domains.cc.o.d"
  "bench_fig4_specific_domains"
  "bench_fig4_specific_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_specific_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
