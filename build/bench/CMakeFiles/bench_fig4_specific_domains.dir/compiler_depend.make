# Empty compiler generated dependencies file for bench_fig4_specific_domains.
# This may be replaced when dependencies are built.
