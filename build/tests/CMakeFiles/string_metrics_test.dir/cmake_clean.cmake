file(REMOVE_RECURSE
  "CMakeFiles/string_metrics_test.dir/string_metrics_test.cc.o"
  "CMakeFiles/string_metrics_test.dir/string_metrics_test.cc.o.d"
  "string_metrics_test"
  "string_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
