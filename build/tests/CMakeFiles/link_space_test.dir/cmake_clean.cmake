file(REMOVE_RECURSE
  "CMakeFiles/link_space_test.dir/link_space_test.cc.o"
  "CMakeFiles/link_space_test.dir/link_space_test.cc.o.d"
  "link_space_test"
  "link_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
