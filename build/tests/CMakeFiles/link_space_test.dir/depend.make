# Empty dependencies file for link_space_test.
# This may be replaced when dependencies are built.
