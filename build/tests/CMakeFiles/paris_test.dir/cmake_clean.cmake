file(REMOVE_RECURSE
  "CMakeFiles/paris_test.dir/paris_test.cc.o"
  "CMakeFiles/paris_test.dir/paris_test.cc.o.d"
  "paris_test"
  "paris_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paris_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
