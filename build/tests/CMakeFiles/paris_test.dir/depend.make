# Empty dependencies file for paris_test.
# This may be replaced when dependencies are built.
