file(REMOVE_RECURSE
  "CMakeFiles/federation_chain_test.dir/federation_chain_test.cc.o"
  "CMakeFiles/federation_chain_test.dir/federation_chain_test.cc.o.d"
  "federation_chain_test"
  "federation_chain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federation_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
