# Empty dependencies file for federation_chain_test.
# This may be replaced when dependencies are built.
