# Empty compiler generated dependencies file for simulation_extra_test.
# This may be replaced when dependencies are built.
