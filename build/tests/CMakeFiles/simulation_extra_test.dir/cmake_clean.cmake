file(REMOVE_RECURSE
  "CMakeFiles/simulation_extra_test.dir/simulation_extra_test.cc.o"
  "CMakeFiles/simulation_extra_test.dir/simulation_extra_test.cc.o.d"
  "simulation_extra_test"
  "simulation_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulation_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
