file(REMOVE_RECURSE
  "CMakeFiles/ntriples_property_test.dir/ntriples_property_test.cc.o"
  "CMakeFiles/ntriples_property_test.dir/ntriples_property_test.cc.o.d"
  "ntriples_property_test"
  "ntriples_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ntriples_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
