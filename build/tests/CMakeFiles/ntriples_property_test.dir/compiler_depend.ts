# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ntriples_property_test.
