file(REMOVE_RECURSE
  "CMakeFiles/link_spec_test.dir/link_spec_test.cc.o"
  "CMakeFiles/link_spec_test.dir/link_spec_test.cc.o.d"
  "link_spec_test"
  "link_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
