# Empty dependencies file for link_spec_test.
# This may be replaced when dependencies are built.
