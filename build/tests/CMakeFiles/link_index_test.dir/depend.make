# Empty dependencies file for link_index_test.
# This may be replaced when dependencies are built.
