file(REMOVE_RECURSE
  "CMakeFiles/link_index_test.dir/link_index_test.cc.o"
  "CMakeFiles/link_index_test.dir/link_index_test.cc.o.d"
  "link_index_test"
  "link_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
