file(REMOVE_RECURSE
  "CMakeFiles/sparql_reference_test.dir/sparql_reference_test.cc.o"
  "CMakeFiles/sparql_reference_test.dir/sparql_reference_test.cc.o.d"
  "sparql_reference_test"
  "sparql_reference_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparql_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
