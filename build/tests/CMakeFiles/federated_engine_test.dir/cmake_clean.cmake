file(REMOVE_RECURSE
  "CMakeFiles/federated_engine_test.dir/federated_engine_test.cc.o"
  "CMakeFiles/federated_engine_test.dir/federated_engine_test.cc.o.d"
  "federated_engine_test"
  "federated_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
