# Empty compiler generated dependencies file for federated_engine_test.
# This may be replaced when dependencies are built.
