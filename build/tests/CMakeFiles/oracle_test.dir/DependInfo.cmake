
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/oracle_test.cc" "tests/CMakeFiles/oracle_test.dir/oracle_test.cc.o" "gcc" "tests/CMakeFiles/oracle_test.dir/oracle_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simulation/CMakeFiles/alex_simulation.dir/DependInfo.cmake"
  "/root/repo/build/src/federation/CMakeFiles/alex_federation.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/alex_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/alex_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/paris/CMakeFiles/alex_paris.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/alex_core.dir/DependInfo.cmake"
  "/root/repo/build/src/feedback/CMakeFiles/alex_feedback.dir/DependInfo.cmake"
  "/root/repo/build/src/similarity/CMakeFiles/alex_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/alex_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/alex_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
