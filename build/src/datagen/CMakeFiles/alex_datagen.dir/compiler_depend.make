# Empty compiler generated dependencies file for alex_datagen.
# This may be replaced when dependencies are built.
