file(REMOVE_RECURSE
  "CMakeFiles/alex_datagen.dir/generator.cc.o"
  "CMakeFiles/alex_datagen.dir/generator.cc.o.d"
  "CMakeFiles/alex_datagen.dir/scenarios.cc.o"
  "CMakeFiles/alex_datagen.dir/scenarios.cc.o.d"
  "libalex_datagen.a"
  "libalex_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alex_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
