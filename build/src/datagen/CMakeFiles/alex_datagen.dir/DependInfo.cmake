
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/generator.cc" "src/datagen/CMakeFiles/alex_datagen.dir/generator.cc.o" "gcc" "src/datagen/CMakeFiles/alex_datagen.dir/generator.cc.o.d"
  "/root/repo/src/datagen/scenarios.cc" "src/datagen/CMakeFiles/alex_datagen.dir/scenarios.cc.o" "gcc" "src/datagen/CMakeFiles/alex_datagen.dir/scenarios.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/alex_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/alex_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/similarity/CMakeFiles/alex_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/feedback/CMakeFiles/alex_feedback.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
