file(REMOVE_RECURSE
  "CMakeFiles/alex_common.dir/logging.cc.o"
  "CMakeFiles/alex_common.dir/logging.cc.o.d"
  "CMakeFiles/alex_common.dir/rng.cc.o"
  "CMakeFiles/alex_common.dir/rng.cc.o.d"
  "CMakeFiles/alex_common.dir/status.cc.o"
  "CMakeFiles/alex_common.dir/status.cc.o.d"
  "CMakeFiles/alex_common.dir/string_util.cc.o"
  "CMakeFiles/alex_common.dir/string_util.cc.o.d"
  "CMakeFiles/alex_common.dir/thread_pool.cc.o"
  "CMakeFiles/alex_common.dir/thread_pool.cc.o.d"
  "libalex_common.a"
  "libalex_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alex_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
