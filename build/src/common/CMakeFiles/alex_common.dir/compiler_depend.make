# Empty compiler generated dependencies file for alex_common.
# This may be replaced when dependencies are built.
