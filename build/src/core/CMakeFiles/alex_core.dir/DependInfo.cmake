
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/alex_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/alex_core.dir/engine.cc.o.d"
  "/root/repo/src/core/feature.cc" "src/core/CMakeFiles/alex_core.dir/feature.cc.o" "gcc" "src/core/CMakeFiles/alex_core.dir/feature.cc.o.d"
  "/root/repo/src/core/link_space.cc" "src/core/CMakeFiles/alex_core.dir/link_space.cc.o" "gcc" "src/core/CMakeFiles/alex_core.dir/link_space.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/alex_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/alex_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/partitioned.cc" "src/core/CMakeFiles/alex_core.dir/partitioned.cc.o" "gcc" "src/core/CMakeFiles/alex_core.dir/partitioned.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/core/CMakeFiles/alex_core.dir/policy.cc.o" "gcc" "src/core/CMakeFiles/alex_core.dir/policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/alex_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/alex_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/similarity/CMakeFiles/alex_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/feedback/CMakeFiles/alex_feedback.dir/DependInfo.cmake"
  "/root/repo/build/src/paris/CMakeFiles/alex_paris.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
