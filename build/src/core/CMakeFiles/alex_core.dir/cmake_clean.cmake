file(REMOVE_RECURSE
  "CMakeFiles/alex_core.dir/engine.cc.o"
  "CMakeFiles/alex_core.dir/engine.cc.o.d"
  "CMakeFiles/alex_core.dir/feature.cc.o"
  "CMakeFiles/alex_core.dir/feature.cc.o.d"
  "CMakeFiles/alex_core.dir/link_space.cc.o"
  "CMakeFiles/alex_core.dir/link_space.cc.o.d"
  "CMakeFiles/alex_core.dir/metrics.cc.o"
  "CMakeFiles/alex_core.dir/metrics.cc.o.d"
  "CMakeFiles/alex_core.dir/partitioned.cc.o"
  "CMakeFiles/alex_core.dir/partitioned.cc.o.d"
  "CMakeFiles/alex_core.dir/policy.cc.o"
  "CMakeFiles/alex_core.dir/policy.cc.o.d"
  "libalex_core.a"
  "libalex_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alex_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
