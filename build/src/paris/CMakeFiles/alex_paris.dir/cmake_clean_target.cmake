file(REMOVE_RECURSE
  "libalex_paris.a"
)
