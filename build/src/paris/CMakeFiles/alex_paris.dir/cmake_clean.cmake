file(REMOVE_RECURSE
  "CMakeFiles/alex_paris.dir/link_spec.cc.o"
  "CMakeFiles/alex_paris.dir/link_spec.cc.o.d"
  "CMakeFiles/alex_paris.dir/paris.cc.o"
  "CMakeFiles/alex_paris.dir/paris.cc.o.d"
  "libalex_paris.a"
  "libalex_paris.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alex_paris.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
