# Empty compiler generated dependencies file for alex_paris.
# This may be replaced when dependencies are built.
