
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paris/link_spec.cc" "src/paris/CMakeFiles/alex_paris.dir/link_spec.cc.o" "gcc" "src/paris/CMakeFiles/alex_paris.dir/link_spec.cc.o.d"
  "/root/repo/src/paris/paris.cc" "src/paris/CMakeFiles/alex_paris.dir/paris.cc.o" "gcc" "src/paris/CMakeFiles/alex_paris.dir/paris.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/alex_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/alex_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/similarity/CMakeFiles/alex_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/feedback/CMakeFiles/alex_feedback.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
