file(REMOVE_RECURSE
  "CMakeFiles/alex_similarity.dir/similarity.cc.o"
  "CMakeFiles/alex_similarity.dir/similarity.cc.o.d"
  "CMakeFiles/alex_similarity.dir/string_metrics.cc.o"
  "CMakeFiles/alex_similarity.dir/string_metrics.cc.o.d"
  "CMakeFiles/alex_similarity.dir/value.cc.o"
  "CMakeFiles/alex_similarity.dir/value.cc.o.d"
  "libalex_similarity.a"
  "libalex_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alex_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
