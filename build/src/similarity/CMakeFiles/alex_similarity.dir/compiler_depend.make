# Empty compiler generated dependencies file for alex_similarity.
# This may be replaced when dependencies are built.
