file(REMOVE_RECURSE
  "libalex_similarity.a"
)
