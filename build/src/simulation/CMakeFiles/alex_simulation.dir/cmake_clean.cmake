file(REMOVE_RECURSE
  "CMakeFiles/alex_simulation.dir/query_workload.cc.o"
  "CMakeFiles/alex_simulation.dir/query_workload.cc.o.d"
  "CMakeFiles/alex_simulation.dir/report.cc.o"
  "CMakeFiles/alex_simulation.dir/report.cc.o.d"
  "CMakeFiles/alex_simulation.dir/simulation.cc.o"
  "CMakeFiles/alex_simulation.dir/simulation.cc.o.d"
  "libalex_simulation.a"
  "libalex_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alex_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
