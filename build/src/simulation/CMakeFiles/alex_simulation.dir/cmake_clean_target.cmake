file(REMOVE_RECURSE
  "libalex_simulation.a"
)
