# Empty dependencies file for alex_simulation.
# This may be replaced when dependencies are built.
