# Empty compiler generated dependencies file for alex_rdf.
# This may be replaced when dependencies are built.
