file(REMOVE_RECURSE
  "CMakeFiles/alex_rdf.dir/binary_io.cc.o"
  "CMakeFiles/alex_rdf.dir/binary_io.cc.o.d"
  "CMakeFiles/alex_rdf.dir/dataset.cc.o"
  "CMakeFiles/alex_rdf.dir/dataset.cc.o.d"
  "CMakeFiles/alex_rdf.dir/dictionary.cc.o"
  "CMakeFiles/alex_rdf.dir/dictionary.cc.o.d"
  "CMakeFiles/alex_rdf.dir/ntriples.cc.o"
  "CMakeFiles/alex_rdf.dir/ntriples.cc.o.d"
  "CMakeFiles/alex_rdf.dir/term.cc.o"
  "CMakeFiles/alex_rdf.dir/term.cc.o.d"
  "CMakeFiles/alex_rdf.dir/triple_store.cc.o"
  "CMakeFiles/alex_rdf.dir/triple_store.cc.o.d"
  "CMakeFiles/alex_rdf.dir/turtle.cc.o"
  "CMakeFiles/alex_rdf.dir/turtle.cc.o.d"
  "libalex_rdf.a"
  "libalex_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alex_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
