file(REMOVE_RECURSE
  "libalex_sparql.a"
)
