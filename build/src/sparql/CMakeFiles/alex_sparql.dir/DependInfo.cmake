
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparql/ast.cc" "src/sparql/CMakeFiles/alex_sparql.dir/ast.cc.o" "gcc" "src/sparql/CMakeFiles/alex_sparql.dir/ast.cc.o.d"
  "/root/repo/src/sparql/evaluator.cc" "src/sparql/CMakeFiles/alex_sparql.dir/evaluator.cc.o" "gcc" "src/sparql/CMakeFiles/alex_sparql.dir/evaluator.cc.o.d"
  "/root/repo/src/sparql/parser.cc" "src/sparql/CMakeFiles/alex_sparql.dir/parser.cc.o" "gcc" "src/sparql/CMakeFiles/alex_sparql.dir/parser.cc.o.d"
  "/root/repo/src/sparql/results_io.cc" "src/sparql/CMakeFiles/alex_sparql.dir/results_io.cc.o" "gcc" "src/sparql/CMakeFiles/alex_sparql.dir/results_io.cc.o.d"
  "/root/repo/src/sparql/tokenizer.cc" "src/sparql/CMakeFiles/alex_sparql.dir/tokenizer.cc.o" "gcc" "src/sparql/CMakeFiles/alex_sparql.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/alex_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/alex_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/similarity/CMakeFiles/alex_similarity.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
