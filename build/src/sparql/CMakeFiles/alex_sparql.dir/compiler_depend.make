# Empty compiler generated dependencies file for alex_sparql.
# This may be replaced when dependencies are built.
