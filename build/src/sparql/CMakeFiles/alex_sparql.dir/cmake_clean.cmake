file(REMOVE_RECURSE
  "CMakeFiles/alex_sparql.dir/ast.cc.o"
  "CMakeFiles/alex_sparql.dir/ast.cc.o.d"
  "CMakeFiles/alex_sparql.dir/evaluator.cc.o"
  "CMakeFiles/alex_sparql.dir/evaluator.cc.o.d"
  "CMakeFiles/alex_sparql.dir/parser.cc.o"
  "CMakeFiles/alex_sparql.dir/parser.cc.o.d"
  "CMakeFiles/alex_sparql.dir/results_io.cc.o"
  "CMakeFiles/alex_sparql.dir/results_io.cc.o.d"
  "CMakeFiles/alex_sparql.dir/tokenizer.cc.o"
  "CMakeFiles/alex_sparql.dir/tokenizer.cc.o.d"
  "libalex_sparql.a"
  "libalex_sparql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alex_sparql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
