file(REMOVE_RECURSE
  "CMakeFiles/alex_federation.dir/endpoint.cc.o"
  "CMakeFiles/alex_federation.dir/endpoint.cc.o.d"
  "CMakeFiles/alex_federation.dir/federated_engine.cc.o"
  "CMakeFiles/alex_federation.dir/federated_engine.cc.o.d"
  "CMakeFiles/alex_federation.dir/link_index.cc.o"
  "CMakeFiles/alex_federation.dir/link_index.cc.o.d"
  "libalex_federation.a"
  "libalex_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alex_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
