
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/federation/endpoint.cc" "src/federation/CMakeFiles/alex_federation.dir/endpoint.cc.o" "gcc" "src/federation/CMakeFiles/alex_federation.dir/endpoint.cc.o.d"
  "/root/repo/src/federation/federated_engine.cc" "src/federation/CMakeFiles/alex_federation.dir/federated_engine.cc.o" "gcc" "src/federation/CMakeFiles/alex_federation.dir/federated_engine.cc.o.d"
  "/root/repo/src/federation/link_index.cc" "src/federation/CMakeFiles/alex_federation.dir/link_index.cc.o" "gcc" "src/federation/CMakeFiles/alex_federation.dir/link_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/alex_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/alex_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/alex_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/similarity/CMakeFiles/alex_similarity.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
