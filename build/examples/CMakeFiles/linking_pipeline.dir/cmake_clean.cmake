file(REMOVE_RECURSE
  "CMakeFiles/linking_pipeline.dir/linking_pipeline.cpp.o"
  "CMakeFiles/linking_pipeline.dir/linking_pipeline.cpp.o.d"
  "linking_pipeline"
  "linking_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linking_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
