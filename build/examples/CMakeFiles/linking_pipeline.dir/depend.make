# Empty dependencies file for linking_pipeline.
# This may be replaced when dependencies are built.
