// Figure 11 (Appendix D): sensitivity to the episode size on
// DBpedia-NYTimes: F-measure per episode for episode sizes 500, 1000, and
// 1500, plus the convergence-episode comparison the text reports
// (larger episodes converge in fewer episodes).

#include "bench_util.h"
#include "datagen/scenarios.h"

int main() {
  using namespace alex;
  InitLoggingFromEnv();
  bench::TelemetrySidecar telemetry("bench_fig11_episode_size");
  const size_t sizes[] = {500, 1000, 1500};
  std::vector<simulation::RunResult> results;
  std::vector<std::string> labels;
  for (size_t size : sizes) {
    simulation::SimulationConfig config =
        bench::MakeConfig(datagen::DbpediaNytimes(), size);
    config.alex.max_episodes = 60;
    results.push_back(simulation::Simulation(config).Run());
    labels.push_back("episode_" + std::to_string(size));
    telemetry.AddRun(labels.back(), results.back());
  }
  std::vector<const simulation::RunResult*> ptrs;
  for (const auto& r : results) ptrs.push_back(&r);

  bench::PrintComparisonFigure("Figure 11", "F-measure", labels, ptrs,
                               bench::ExtractF);
  std::printf("\nconvergence episodes (strict / relaxed):\n");
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("  %s: strict=%zu relaxed=%zu final_F=%.3f\n",
                labels[i].c_str(), results[i].converged_episode,
                results[i].relaxed_episode,
                results[i].final_episode().metrics.f_measure);
  }
  return 0;
}
