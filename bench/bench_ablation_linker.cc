// Ablation: "ALEX can work with any initial set of candidate links,
// regardless of how they were generated" (paper Section 2). This bench
// seeds ALEX from three different sources on DBpedia-Lexvo:
//
//   paris   - the PARIS-style probabilistic linker (paper setup)
//   naive   - the exact-label baseline linker
//   silk    - hand-written SILK-style declarative rules (name + date)
//   empty   - no initial links at all (cold start; feedback only arrives
//             once exploration has something to show, so ALEX cannot move
//             without a seed — the paper's reason to start from a linker)
//
// The claim to reproduce: the final quality converges to a similar place
// whenever the seed set is non-empty.

#include <unordered_set>

#include "bench_util.h"
#include "core/metrics.h"
#include "core/partitioned.h"
#include "datagen/scenarios.h"
#include "feedback/oracle.h"
#include "paris/link_spec.h"
#include "paris/paris.h"

namespace {

using namespace alex;

simulation::EpisodeRecord RunWithSeed(
    const datagen::GeneratedPair& pair,
    const std::vector<paris::ScoredLink>& initial, const char* label,
    std::vector<double>* f_series) {
  core::AlexConfig config;
  config.episode_size = 1000;
  config.max_episodes = 25;
  core::PartitionedAlex alex(&pair.left, &pair.right, config);
  alex.Build();
  alex.InitializeCandidates(initial);
  feedback::Oracle oracle(&pair.truth, 0.0, 99);

  f_series->push_back(
      core::ComputeMetrics(alex.Candidates(), pair.truth).f_measure);
  for (size_t episode = 1; episode <= config.max_episodes; ++episode) {
    for (size_t i = 0; i < config.episode_size; ++i) {
      auto item = oracle.SampleAndJudge(alex.CandidateVector());
      if (!item) break;
      alex.ProcessFeedback(*item);
    }
    alex.EndEpisode();
    f_series->push_back(
        core::ComputeMetrics(alex.Candidates(), pair.truth).f_measure);
  }
  const auto metrics = core::ComputeMetrics(alex.Candidates(), pair.truth);
  std::printf("%-8s seeds=%5zu final: P=%.3f R=%.3f F=%.3f candidates=%zu\n",
              label, initial.size(), metrics.precision, metrics.recall,
              metrics.f_measure, alex.NumCandidates());
  simulation::EpisodeRecord record;
  record.metrics = metrics;
  return record;
}

}  // namespace

int main() {
  alex::InitLoggingFromEnv();
  alex::bench::TelemetrySidecar telemetry("bench_ablation_linker");
  Stopwatch generate_watch;
  datagen::GeneratedPair pair =
      datagen::GenerateScenario(datagen::DbpediaLexvo());
  telemetry.AddPhase("generate", generate_watch.ElapsedSeconds());
  std::printf("Ablation: initial linker choice (DBpedia-Lexvo, GT=%zu)\n\n",
              pair.truth.size());

  paris::ParisLinker paris_linker(&pair.left, &pair.right);
  const auto paris_links = paris_linker.Run();
  const auto naive_links = paris::NaiveLabelLinker(pair.left, pair.right, 0.5);
  // SILK-style hand-written rules: a domain expert would know the two
  // vocabularies and write fuzzy comparisons over the identifying fields.
  const auto spec = paris::ParseLinkSpec(
      "compare http://dbpedia.example.org/ontology/name "
      "http://lexvo.example.org/ontology/label using jaro_winkler\n"
      "compare http://dbpedia.example.org/ontology/name "
      "http://lexvo.example.org/ontology/name using jaro_winkler\n"
      "aggregate max\nthreshold 0.92\n");
  const auto silk_links =
      spec.ok() ? paris::RunLinkSpec(pair.left, pair.right, *spec)
                : std::vector<paris::ScoredLink>{};
  const std::vector<paris::ScoredLink> empty;

  std::vector<double> f_paris, f_naive, f_silk, f_empty;
  const struct {
    const char* label;
    const std::vector<paris::ScoredLink>* links;
    std::vector<double>* series;
  } seeds[] = {{"paris", &paris_links, &f_paris},
               {"naive", &naive_links, &f_naive},
               {"silk", &silk_links, &f_silk},
               {"empty", &empty, &f_empty}};
  for (const auto& seed : seeds) {
    Stopwatch seed_watch;
    RunWithSeed(pair, *seed.links, seed.label, seed.series);
    telemetry.AddPhase(seed.label, seed_watch.ElapsedSeconds());
  }

  std::printf("\n%8s %10s %10s %10s %10s\n", "episode", "paris", "naive",
              "silk", "empty");
  const size_t longest = std::max(
      {f_paris.size(), f_naive.size(), f_silk.size(), f_empty.size()});
  auto at = [](const std::vector<double>& v, size_t i) {
    return v.empty() ? 0.0 : (i < v.size() ? v[i] : v.back());
  };
  for (size_t i = 0; i < longest; ++i) {
    std::printf("%8zu %10.3f %10.3f %10.3f %10.3f\n", i, at(f_paris, i),
                at(f_naive, i), at(f_silk, i), at(f_empty, i));
  }
  return 0;
}
