// Table 1: the data sets used in the experiments. The paper lists the real
// LOD dumps; this harness regenerates their synthetic analogs and reports
// the same inventory columns (field/domain, triples) plus the entity and
// ground-truth-link counts each scenario pair provides.

#include <cstdio>

#include "common/string_util.h"
#include "datagen/scenarios.h"

#include "bench_util.h"

int main() {
  using namespace alex;
  InitLoggingFromEnv();
  bench::TelemetrySidecar telemetry("bench_table1_datasets");
  std::printf("Table 1: data sets used in the experiments (synthetic analogs)\n\n");
  std::printf("%-22s %-14s %-40s %10s %10s %9s %10s\n", "Scenario (pair)",
              "Side", "Field (domains)", "Triples", "Entities", "GT-links",
              "PairSeed");
  for (const datagen::ScenarioConfig& config : datagen::AllScenarios()) {
    Stopwatch generate_watch;
    datagen::GeneratedPair pair = datagen::GenerateScenario(config);
    telemetry.AddPhase("generate", generate_watch.ElapsedSeconds());
    const std::string domains = Join(
        std::vector<std::string>(config.domains.begin(), config.domains.end()),
        ",");
    std::printf("%-22s %-14s %-40s %10zu %10zu %9zu %10llu\n",
                config.name.c_str(), pair.left.name().c_str(),
                domains.c_str(), pair.left.num_triples(),
                pair.left.num_entities(), pair.truth.size(),
                static_cast<unsigned long long>(config.seed));
    std::printf("%-22s %-14s %-40s %10zu %10zu %9s %10s\n", "",
                pair.right.name().c_str(), domains.c_str(),
                pair.right.num_triples(), pair.right.num_entities(), "", "");
  }
  std::printf(
      "\nPaper ground-truth sizes for reference: DBpedia-NYTimes 10968, "
      "DBpedia-Drugbank 1514, DBpedia-Lexvo 4364, OpenCyc-NYTimes 2965, "
      "OpenCyc-Drugbank 204, OpenCyc-Lexvo 383, DBpedia-SWDF 461, "
      "OpenCyc-SWDF 110, DBpedia(NBA)-NYT 93, OpenCyc(NBA)-NYT 35, "
      "DBpedia-OpenCyc 41039 (scenarios are scaled ~10x down).\n");
  return 0;
}
