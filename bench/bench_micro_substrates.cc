// Microbenchmarks (google-benchmark) for the substrate layers: similarity
// kernels, triple-store pattern matching, feature-set construction, link
// space construction and band queries, and the PARIS fixpoint. These are
// the per-operation costs behind the figure-level timings.

#include <benchmark/benchmark.h>

#include "common/logging.h"
#include "core/feature.h"
#include "core/link_space.h"
#include "datagen/generator.h"
#include "paris/paris.h"
#include "similarity/similarity.h"
#include "similarity/string_metrics.h"
#include "sparql/evaluator.h"

namespace {

using namespace alex;

void BM_JaroWinkler(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::JaroWinklerSimilarity("Tasopra Elkonomi", "Tasopra Elkonmi"));
  }
}
BENCHMARK(BM_JaroWinkler);

void BM_TrigramDice(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::TrigramDiceSimilarity("tasopra elkonomi", "tasopra elkonmi"));
  }
}
BENCHMARK(BM_TrigramDice);

void BM_TokenJaccard(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::TokenJaccardSimilarity("tasopra elkonomi", "elkonomi, tasopra"));
  }
}
BENCHMARK(BM_TokenJaccard);

void BM_TermSimilarity(benchmark::State& state) {
  const rdf::Term a = rdf::Term::Literal("1984-12-30");
  const rdf::Term b = rdf::Term::Literal("1985-01-15");
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::TermSimilarity(a, b));
  }
}
BENCHMARK(BM_TermSimilarity);

datagen::GeneratedPair* BenchPair() {
  static datagen::GeneratedPair* pair = [] {
    datagen::ScenarioConfig c;
    c.seed = 9090;
    c.num_shared = 200;
    c.num_left_only = 200;
    c.num_right_only = 100;
    c.domains = {"person", "organization"};
    c.value_noise = 0.4;
    return new datagen::GeneratedPair(datagen::GenerateScenario(c));
  }();
  return pair;
}

void BM_TripleStoreSubjectLookup(benchmark::State& state) {
  const auto& ds = BenchPair()->left;
  const rdf::TermId subject = ds.entity_term(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.store().CountMatches(
        rdf::TriplePattern{subject, rdf::kInvalidTermId, rdf::kInvalidTermId}));
  }
}
BENCHMARK(BM_TripleStoreSubjectLookup);

void BM_TripleStorePredicateScan(benchmark::State& state) {
  const auto& ds = BenchPair()->left;
  const rdf::TermId pred = ds.store().DistinctPredicates()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.store().CountMatches(
        rdf::TriplePattern{rdf::kInvalidTermId, pred, rdf::kInvalidTermId}));
  }
}
BENCHMARK(BM_TripleStorePredicateScan);

void BM_ComputeFeatureSet(benchmark::State& state) {
  const auto* pair = BenchPair();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::ComputeFeatureSet(pair->left, 0, pair->right, 0, 0.3));
  }
}
BENCHMARK(BM_ComputeFeatureSet);

void BM_LinkSpaceBuild(benchmark::State& state) {
  const auto* pair = BenchPair();
  std::vector<rdf::EntityId> lefts;
  for (rdf::EntityId e = 0; e < pair->left.num_entities(); ++e) {
    lefts.push_back(e);
  }
  for (auto _ : state) {
    core::LinkSpace space;
    space.Build(pair->left, pair->right, lefts, 0.3, 20000);
    benchmark::DoNotOptimize(space.size());
  }
}
BENCHMARK(BM_LinkSpaceBuild)->Unit(benchmark::kMillisecond);

void BM_LinkSpaceBandQuery(benchmark::State& state) {
  const auto* pair = BenchPair();
  std::vector<rdf::EntityId> lefts;
  for (rdf::EntityId e = 0; e < pair->left.num_entities(); ++e) {
    lefts.push_back(e);
  }
  static core::LinkSpace* space = [&] {
    auto* s = new core::LinkSpace();
    s->Build(pair->left, pair->right, lefts, 0.3, 20000);
    return s;
  }();
  // Feature of the first ground-truth pair in the space.
  core::FeatureKey feature = 0;
  for (feedback::PairKey key : pair->truth.pairs()) {
    const core::FeatureSet* fs = space->FeaturesOf(key);
    if (fs != nullptr && !fs->empty()) {
      feature = (*fs)[0].key;
      break;
    }
  }
  std::vector<feedback::PairKey> out;
  for (auto _ : state) {
    out.clear();
    space->BandQuery(feature, 0.95, 1.0, &out);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_LinkSpaceBandQuery);

void BM_ParisFixpoint(benchmark::State& state) {
  const auto* pair = BenchPair();
  for (auto _ : state) {
    paris::ParisLinker linker(&pair->left, &pair->right);
    benchmark::DoNotOptimize(linker.Run().size());
  }
}
BENCHMARK(BM_ParisFixpoint)->Unit(benchmark::kMillisecond);

void BM_SparqlBgpJoin(benchmark::State& state) {
  const auto& ds = BenchPair()->left;
  const std::string prefix = "http://" + ds.name() + ".example.org/ontology/";
  const std::string query = "SELECT ?s ?b WHERE { ?s <" + prefix +
                            "name> ?n . ?s <" + prefix + "birthDate> ?b . }";
  for (auto _ : state) {
    auto r = sparql::EvaluateQuery(query, ds);
    benchmark::DoNotOptimize(r.ok() ? r->NumRows() : 0);
  }
}
BENCHMARK(BM_SparqlBgpJoin)->Unit(benchmark::kMicrosecond);

}  // namespace

// Expanded BENCHMARK_MAIN() so environment-driven logging is initialized
// before the harness runs; the google-benchmark output format is unchanged.
int main(int argc, char** argv) {
  alex::InitLoggingFromEnv();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
