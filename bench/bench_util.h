#ifndef ALEX_BENCH_BENCH_UTIL_H_
#define ALEX_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "exec/topology.h"
#include "obs/metrics.h"
#include "obs/query_stats.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "simulation/simulation.h"

namespace alex::bench {

/// Checked parse of an optional positional argv uint. Returns
/// `default_value` when the argument is absent; exits with a usage message
/// when it is present but not a decimal number in [min_value, SIZE_MAX] —
/// the silent-zero behavior of `atoi` turned "bench 1O" (typo) into
/// nonsense reps/sizes.
inline size_t ParseUintArg(int argc, char** argv, int index,
                           size_t default_value, const char* what,
                           size_t min_value = 1) {
  if (argc <= index) return default_value;
  const std::optional<uint64_t> value = ParseUint64(argv[index]);
  if (!value.has_value() || *value < min_value ||
      *value > static_cast<uint64_t>(SIZE_MAX)) {
    std::fprintf(stderr, "invalid %s: '%s' (want a positive integer)\n", what,
                 argv[index]);
    std::exit(2);
  }
  return static_cast<size_t>(*value);
}

/// Builds the default simulation configuration for a named figure run.
inline simulation::SimulationConfig MakeConfig(
    const datagen::ScenarioConfig& scenario, size_t episode_size) {
  simulation::SimulationConfig config;
  config.scenario = scenario;
  config.alex.episode_size = episode_size;
  return config;
}

/// Prints one run in the layout of the paper's quality figures: one row per
/// episode with the precision / recall / F-measure series, plus the
/// convergence markers the figures annotate.
inline void PrintQualityFigure(const char* title,
                               const simulation::RunResult& result) {
  std::printf("\n=== %s ===\n", title);
  std::printf("%8s %10s %8s %10s\n", "episode", "precision", "recall",
              "f-measure");
  if (result.episodes.empty()) {
    // A zero-episode run (nothing generated / nothing linked) has no series
    // and no final metrics; say so instead of dereferencing episodes.back().
    std::printf("%8s\n", "(no episodes)");
    std::printf(
        "relaxed_convergence(<5%% change)=%zu strict_convergence=%zu "
        "ground_truth=0 initial_links=%zu new_links_discovered=%zu\n",
        result.relaxed_episode, result.converged_episode, result.initial_links,
        result.new_links_discovered);
    return;
  }
  for (const auto& r : result.episodes) {
    std::printf("%8zu %10.3f %8.3f %10.3f\n", r.episode, r.metrics.precision,
                r.metrics.recall, r.metrics.f_measure);
  }
  std::printf(
      "relaxed_convergence(<5%% change)=%zu strict_convergence=%zu "
      "ground_truth=%zu initial_links=%zu new_links_discovered=%zu\n",
      result.relaxed_episode, result.converged_episode,
      result.episodes.back().metrics.ground_truth, result.initial_links,
      result.new_links_discovered);
}

/// Prints several runs' series for one metric side by side (episode rows,
/// one column per run), as the comparison figures do.
inline void PrintComparisonFigure(
    const char* title, const char* metric,
    const std::vector<std::string>& labels,
    const std::vector<const simulation::RunResult*>& runs,
    double (*extract)(const simulation::EpisodeRecord&),
    size_t max_episodes = SIZE_MAX) {
  std::printf("\n=== %s (%s) ===\n", title, metric);
  std::printf("%8s", "episode");
  for (const std::string& label : labels) {
    std::printf(" %14s", label.c_str());
  }
  std::printf("\n");
  size_t longest = 0;
  for (const auto* run : runs) {
    longest = std::max(longest, run->episodes.size());
  }
  longest = std::min(longest, max_episodes);
  for (size_t i = 0; i < longest; ++i) {
    std::printf("%8zu", i);
    for (const auto* run : runs) {
      if (run->episodes.empty()) {
        std::printf(" %14s", "-");
      } else if (i < run->episodes.size()) {
        std::printf(" %14.3f", extract(run->episodes[i]));
      } else {
        // Converged: the series holds at its final value.
        std::printf(" %14.3f", extract(run->episodes.back()));
      }
    }
    std::printf("\n");
  }
}

inline double ExtractF(const simulation::EpisodeRecord& r) {
  return r.metrics.f_measure;
}
inline double ExtractPrecision(const simulation::EpisodeRecord& r) {
  return r.metrics.precision;
}
inline double ExtractRecall(const simulation::EpisodeRecord& r) {
  return r.metrics.recall;
}
inline double ExtractNegPercent(const simulation::EpisodeRecord& r) {
  return r.NegativeFeedbackPercent();
}

/// Run-level telemetry sidecar for bench binaries. Construct one at the top
/// of main(); on destruction it writes `<bench_name>.telemetry.json` next to
/// the figures (the working directory) containing:
///  - the bench's wall time and its top-level phases (one per AddPhase call
///    and one per AddRun label), which are disjoint and sum to ~wall,
///  - the metrics-registry delta observed over the bench lifetime,
///  - per-run RunTelemetry (phases + per-run registry delta).
/// If scoped tracing was enabled at any point and recorded events, the
/// retained trace is also written as `<bench_name>.trace.json` (Chrome
/// trace_event JSON, loadable in chrome://tracing or Perfetto).
class TelemetrySidecar {
 public:
  explicit TelemetrySidecar(std::string bench_name)
      : bench_name_(std::move(bench_name)),
        metrics_before_(obs::MetricsRegistry::Global().Snapshot()) {
    // Every sidecar records the hardware it ran on: perf numbers from a
    // 1-core CI runner and a 64-core bare-metal box are not comparable, and
    // dashboards need to partition by topology to see that.
    const exec::CpuTopology& topo = exec::CpuTopology::Detect();
    AddField("topology_cores", static_cast<uint64_t>(topo.num_cpus()));
    AddField("topology_nodes", static_cast<uint64_t>(topo.num_nodes()));
    AddField("topology_pinning",
             static_cast<uint64_t>(topo.affinity_supported() ? 1 : 0));
  }

  TelemetrySidecar(const TelemetrySidecar&) = delete;
  TelemetrySidecar& operator=(const TelemetrySidecar&) = delete;

  /// Records one simulation run: its wall time becomes a top-level phase
  /// named `label` and its RunTelemetry is embedded under "runs".
  void AddRun(const std::string& label,
              const simulation::RunResult& result) {
    telemetry_.AddPhase(label, result.total_seconds);
    runs_.emplace_back(label, result.telemetry);
  }

  /// Records one bench-level phase (for benches that time non-simulation
  /// work, e.g. raw space builds). Phases with one name accumulate.
  void AddPhase(const std::string& name, double seconds) {
    telemetry_.AddPhase(name, seconds);
  }

  /// Attaches one bench-level result field to the sidecar (emitted under
  /// "fields"): headline numbers a dashboard should track without parsing
  /// the bench's stdout — cache hit rates, speedups, compile times.
  void AddField(const std::string& name, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(name, buf);
  }
  void AddField(const std::string& name, uint64_t value) {
    fields_.emplace_back(name, std::to_string(value));
  }

  ~TelemetrySidecar() {
    telemetry_.wall_seconds = wall_.ElapsedSeconds();
    telemetry_.metrics =
        obs::MetricsRegistry::Global().Snapshot().DeltaSince(metrics_before_);

    const std::string telemetry_path = bench_name_ + ".telemetry.json";
    std::ofstream out(telemetry_path);
    if (!out) {
      ALEX_LOG(kWarning) << "cannot write telemetry sidecar "
                         << telemetry_path;
      return;
    }
    out << "{\n  \"bench\": \"" << EscapeJson(bench_name_) << "\",\n";
    if (!fields_.empty()) {
      out << "  \"fields\": {";
      for (size_t i = 0; i < fields_.size(); ++i) {
        out << (i == 0 ? "" : ", ") << "\"" << EscapeJson(fields_[i].first)
            << "\": " << fields_[i].second;
      }
      out << "},\n";
    }
    // Slow-query exemplars: the top-K slowest federated queries the global
    // QueryLog saw during the bench, each with its trace id (0 = untraced)
    // so a dashboard can jump from "this query was slow" to its span tree
    // in the .trace.json.
    if (obs::QueryLog::Global().Totals().queries > 0) {
      out << "  \"slow_queries\": ";
      obs::QueryLog::Global().WriteSlowestJson(out, "  ");
      out << ",\n";
    }
    out << "  \"telemetry\":\n";
    telemetry_.WriteJson(out, 1);
    out << ",\n  \"runs\": [";
    for (size_t i = 0; i < runs_.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n");
      out << "    {\"label\": \"" << EscapeJson(runs_[i].first) << "\",\n"
          << "     \"telemetry\":\n";
      runs_[i].second.WriteJson(out, 2);
      out << "}";
    }
    out << (runs_.empty() ? "" : "\n  ") << "]\n}\n";
    out.close();
    ALEX_LOG(kInfo) << "wrote " << telemetry_path;

    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    if (!recorder.Events().empty()) {
      const std::string trace_path = bench_name_ + ".trace.json";
      std::ofstream trace_out(trace_path);
      if (trace_out) {
        recorder.WriteChromeTrace(trace_out);
        ALEX_LOG(kInfo) << "wrote " << trace_path
                        << " (load in chrome://tracing or Perfetto)";
      }
    }
  }

 private:
  std::string bench_name_;
  Stopwatch wall_;
  obs::MetricsSnapshot metrics_before_;
  obs::RunTelemetry telemetry_;
  std::vector<std::pair<std::string, obs::RunTelemetry>> runs_;
  /// (name, pre-rendered JSON value) pairs from AddField.
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace alex::bench

#endif  // ALEX_BENCH_BENCH_UTIL_H_
