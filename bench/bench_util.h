#ifndef ALEX_BENCH_BENCH_UTIL_H_
#define ALEX_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "simulation/simulation.h"

namespace alex::bench {

/// Builds the default simulation configuration for a named figure run.
inline simulation::SimulationConfig MakeConfig(
    const datagen::ScenarioConfig& scenario, size_t episode_size) {
  simulation::SimulationConfig config;
  config.scenario = scenario;
  config.alex.episode_size = episode_size;
  return config;
}

/// Prints one run in the layout of the paper's quality figures: one row per
/// episode with the precision / recall / F-measure series, plus the
/// convergence markers the figures annotate.
inline void PrintQualityFigure(const char* title,
                               const simulation::RunResult& result) {
  std::printf("\n=== %s ===\n", title);
  std::printf("%8s %10s %8s %10s\n", "episode", "precision", "recall",
              "f-measure");
  for (const auto& r : result.episodes) {
    std::printf("%8zu %10.3f %8.3f %10.3f\n", r.episode, r.metrics.precision,
                r.metrics.recall, r.metrics.f_measure);
  }
  std::printf(
      "relaxed_convergence(<5%% change)=%zu strict_convergence=%zu "
      "ground_truth=%zu initial_links=%zu new_links_discovered=%zu\n",
      result.relaxed_episode, result.converged_episode,
      result.episodes.back().metrics.ground_truth, result.initial_links,
      result.new_links_discovered);
}

/// Prints several runs' series for one metric side by side (episode rows,
/// one column per run), as the comparison figures do.
inline void PrintComparisonFigure(
    const char* title, const char* metric,
    const std::vector<std::string>& labels,
    const std::vector<const simulation::RunResult*>& runs,
    double (*extract)(const simulation::EpisodeRecord&),
    size_t max_episodes = SIZE_MAX) {
  std::printf("\n=== %s (%s) ===\n", title, metric);
  std::printf("%8s", "episode");
  for (const std::string& label : labels) {
    std::printf(" %14s", label.c_str());
  }
  std::printf("\n");
  size_t longest = 0;
  for (const auto* run : runs) {
    longest = std::max(longest, run->episodes.size());
  }
  longest = std::min(longest, max_episodes);
  for (size_t i = 0; i < longest; ++i) {
    std::printf("%8zu", i);
    for (const auto* run : runs) {
      if (i < run->episodes.size()) {
        std::printf(" %14.3f", extract(run->episodes[i]));
      } else {
        // Converged: the series holds at its final value.
        std::printf(" %14.3f", extract(run->episodes.back()));
      }
    }
    std::printf("\n");
  }
}

inline double ExtractF(const simulation::EpisodeRecord& r) {
  return r.metrics.f_measure;
}
inline double ExtractPrecision(const simulation::EpisodeRecord& r) {
  return r.metrics.precision;
}
inline double ExtractRecall(const simulation::EpisodeRecord& r) {
  return r.metrics.recall;
}
inline double ExtractNegPercent(const simulation::EpisodeRecord& r) {
  return r.NegativeFeedbackPercent();
}

}  // namespace alex::bench

#endif  // ALEX_BENCH_BENCH_UTIL_H_
