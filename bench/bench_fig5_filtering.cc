// Figure 5: filtering to reduce the search space (Section 6.1/7.3).
// (a) total possible links between the first partition of DBpedia and the
//     whole NYTimes dataset vs. the θ-filtered search space;
// (b) the filtered space vs. the ground-truth links of that partition.

#include <cstdio>

#include "core/link_space.h"
#include "core/partitioned.h"
#include "datagen/scenarios.h"

#include "bench_util.h"

int main() {
  using namespace alex;
  InitLoggingFromEnv();
  bench::TelemetrySidecar telemetry("bench_fig5_filtering");
  Stopwatch generate_watch;
  datagen::GeneratedPair pair =
      datagen::GenerateScenario(datagen::DbpediaNytimes());
  telemetry.AddPhase("generate", generate_watch.ElapsedSeconds());

  core::AlexConfig config;  // 27 partitions, theta 0.3 — paper defaults.
  core::PartitionedAlex alex(&pair.left, &pair.right, config);
  Stopwatch build_watch;
  alex.Build();
  telemetry.AddPhase("build_space", build_watch.ElapsedSeconds());

  // Partition 0, as in the paper's figure.
  const core::LinkSpace& space = alex.space(0);
  const auto& stats = space.stats();
  size_t truth_in_partition = 0;
  size_t truth_in_space = 0;
  for (feedback::PairKey key : pair.truth.pairs()) {
    if (alex.PartitionOf(feedback::PairLeft(key)) != 0) continue;
    ++truth_in_partition;
    if (space.Contains(key)) ++truth_in_space;
  }

  std::printf("Figure 5: total links vs filtered search space vs ground truth"
              " (partition 0 of DBpedia-NYTimes, theta=%.2f)\n\n",
              config.theta);
  std::printf("(a) %-32s %12llu\n", "Total possible links",
              static_cast<unsigned long long>(stats.total_possible));
  std::printf("    %-32s %12llu  (%.1f%% of total)\n",
              "Filtered search space",
              static_cast<unsigned long long>(stats.kept_pairs),
              100.0 * stats.kept_pairs / stats.total_possible);
  std::printf("    -> filtering removes %.1f%% of the space\n\n",
              100.0 * (1.0 - static_cast<double>(stats.kept_pairs) /
                                 stats.total_possible));
  std::printf("(b) %-32s %12llu\n", "Filtered search space",
              static_cast<unsigned long long>(stats.kept_pairs));
  std::printf("    %-32s %12zu  (%.2f%% of filtered)\n",
              "Ground truth links (partition 0)", truth_in_partition,
              100.0 * truth_in_partition / stats.kept_pairs);
  std::printf("    ground truth retained in space:  %zu / %zu (%.1f%%)\n",
              truth_in_space, truth_in_partition,
              truth_in_partition == 0
                  ? 0.0
                  : 100.0 * truth_in_space / truth_in_partition);

  // Aggregate over all 27 partitions for context.
  const auto total = alex.AggregatedSpaceStats();
  std::printf("\nAll partitions: total=%llu candidates=%llu filtered=%llu "
              "features=%llu\n",
              static_cast<unsigned long long>(total.total_possible),
              static_cast<unsigned long long>(total.candidate_pairs),
              static_cast<unsigned long long>(total.kept_pairs),
              static_cast<unsigned long long>(total.features_indexed));
  return 0;
}
