// Ablation: how much does the learned policy matter? The paper argues
// (Section 1) that exploring around a *random* feature is ineffective
// because features are not equally important. This bench compares, on
// DBpedia-NYTimes batch mode:
//
//   learned      - the full ε-greedy Monte Carlo policy (paper defaults)
//   random       - every action drawn uniformly at random (ε = 1)
//   no_decay     - learned policy with a constant ε (no GLIE decay)
//   no_optims    - learned policy without blacklist and rollback
//
// The learned policy should dominate on F-measure and converge, while the
// random policy keeps flooding the candidate set with junk links.

#include "bench_util.h"
#include "datagen/scenarios.h"

int main() {
  using namespace alex;
  InitLoggingFromEnv();
  bench::TelemetrySidecar telemetry("bench_ablation_policy");
  const size_t kEpisodes = 30;

  simulation::SimulationConfig learned =
      bench::MakeConfig(datagen::DbpediaNytimes(), 1000);
  learned.alex.max_episodes = kEpisodes;

  simulation::SimulationConfig random = learned;
  random.alex.epsilon = 1.0;
  random.alex.epsilon_decay = false;

  simulation::SimulationConfig no_decay = learned;
  no_decay.alex.epsilon_decay = false;

  simulation::SimulationConfig no_optims = learned;
  no_optims.alex.use_blacklist = false;
  no_optims.alex.use_rollback = false;

  const simulation::RunResult r_learned =
      simulation::Simulation(learned).Run();
  const simulation::RunResult r_random = simulation::Simulation(random).Run();
  const simulation::RunResult r_nodecay =
      simulation::Simulation(no_decay).Run();
  const simulation::RunResult r_nooptims =
      simulation::Simulation(no_optims).Run();
  telemetry.AddRun("learned", r_learned);
  telemetry.AddRun("random_policy", r_random);
  telemetry.AddRun("no_eps_decay", r_nodecay);
  telemetry.AddRun("no_optims", r_nooptims);

  const std::vector<std::string> labels = {"learned", "random_policy",
                                           "no_eps_decay", "no_optims"};
  const std::vector<const simulation::RunResult*> runs = {
      &r_learned, &r_random, &r_nodecay, &r_nooptims};
  bench::PrintComparisonFigure("Ablation: action policy", "F-measure", labels,
                               runs, bench::ExtractF);
  bench::PrintComparisonFigure("Ablation: action policy",
                               "negative feedback %", labels, runs,
                               bench::ExtractNegPercent);
  std::printf("\nfinal F: learned=%.3f random=%.3f no_decay=%.3f "
              "no_optims=%.3f\n",
              r_learned.final_episode().metrics.f_measure,
              r_random.final_episode().metrics.f_measure,
              r_nodecay.final_episode().metrics.f_measure,
              r_nooptims.final_episode().metrics.f_measure);
  return 0;
}
