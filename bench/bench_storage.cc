// Storage-layer benchmark: uncompressed TripleStore vs block-compressed
// CompressedTripleStore (in-memory and disk-backed tiers) across synthetic
// triple workloads.
//
// Usage: bench_storage [max_triples] [patterns] [cache_mb] [block_size]
//   max_triples  largest workload size (default 10M; the 0.1M/1M/10M sweep
//                is clipped to it, so CI can run a reduced sweep)
//   patterns     lookup patterns per size (default 2000)
//   cache_mb     disk-tier decoded-block cache budget (default 64)
//   block_size   triples per compressed block (default 1024)
//
// Emits one JSON document on stdout plus the bench_storage.telemetry.json
// sidecar. Exits non-zero if any arm's match digest diverges from the
// uncompressed reference (the backends must be bit-identical), or if the
// compressed tier misses the <= 40% bytes/triple target at >= 1M triples.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "datagen/generator.h"
#include "rdf/compact_dictionary.h"
#include "rdf/compressed_store.h"
#include "rdf/dictionary.h"
#include "rdf/triple_store.h"

namespace alex {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void FnvMix(uint64_t* h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xff;
    *h *= kFnvPrime;
  }
}

struct ArmResult {
  std::string name;
  double build_seconds = 0;
  size_t memory_bytes = 0;
  double bytes_per_triple = 0;
  double match_seconds = 0;
  size_t matched = 0;
  uint64_t digest = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  bool has_cache = false;
};

/// Runs every pattern through the source, folding each matched triple into
/// an order-sensitive digest. Identical content + identical iteration order
/// (the equivalence contract) => identical digest.
ArmResult RunQueries(std::string name, const rdf::TripleSource& source,
                     const std::vector<rdf::TriplePattern>& patterns) {
  ArmResult r;
  r.name = std::move(name);
  uint64_t digest = kFnvOffset;
  size_t matched = 0;
  Stopwatch watch;
  for (const rdf::TriplePattern& p : patterns) {
    FnvMix(&digest, 0x9e3779b97f4a7c15ull);  // Pattern separator.
    source.ForEachMatch(p, [&digest, &matched](const rdf::Triple& t) {
      FnvMix(&digest, t.subject);
      FnvMix(&digest, t.predicate);
      FnvMix(&digest, t.object);
      ++matched;
      return true;
    });
  }
  r.match_seconds = watch.ElapsedSeconds();
  r.matched = matched;
  r.digest = digest;
  return r;
}

void PrintArmJson(const ArmResult& r, size_t num_patterns, bool last) {
  std::printf(
      "      {\"name\": \"%s\", \"build_seconds\": %.4f, "
      "\"memory_bytes\": %zu, \"bytes_per_triple\": %.3f, "
      "\"match_seconds\": %.4f, \"patterns_per_sec\": %.1f, "
      "\"matched\": %zu, \"digest\": \"%016llx\"",
      r.name.c_str(), r.build_seconds, r.memory_bytes, r.bytes_per_triple,
      r.match_seconds,
      r.match_seconds > 0 ? static_cast<double>(num_patterns) / r.match_seconds
                          : 0.0,
      r.matched, static_cast<unsigned long long>(r.digest));
  if (r.has_cache) {
    std::printf(
        ", \"cache_hits\": %llu, \"cache_misses\": %llu, "
        "\"cache_evictions\": %llu",
        static_cast<unsigned long long>(r.cache_hits),
        static_cast<unsigned long long>(r.cache_misses),
        static_cast<unsigned long long>(r.cache_evictions));
  }
  std::printf("}%s\n", last ? "" : ",");
}

int Run(int argc, char** argv) {
  const size_t max_triples =
      bench::ParseUintArg(argc, argv, 1, 10000000, "max_triples");
  const size_t num_patterns =
      bench::ParseUintArg(argc, argv, 2, 2000, "patterns");
  const size_t cache_mb = bench::ParseUintArg(argc, argv, 3, 64, "cache_mb");
  const size_t block_size =
      bench::ParseUintArg(argc, argv, 4, 1024, "block_size");

  bench::TelemetrySidecar sidecar("bench_storage");

  std::vector<size_t> sizes;
  for (size_t n : {size_t{100000}, size_t{1000000}, size_t{10000000}}) {
    if (n <= max_triples) sizes.push_back(n);
  }
  if (sizes.empty()) sizes.push_back(max_triples);

  rdf::CompressedStoreOptions opts;
  opts.block_size = block_size;
  opts.cache_budget_bytes = cache_mb << 20;

  bool all_equivalent = true;
  bool ratio_ok = true;

  std::printf("{\n  \"bench\": \"bench_storage\",\n");
  std::printf("  \"block_size\": %zu,\n  \"cache_budget_mb\": %zu,\n",
              block_size, cache_mb);
  std::printf("  \"sizes\": [\n");

  for (size_t si = 0; si < sizes.size(); ++si) {
    const size_t n = sizes[si];
    datagen::TripleWorkloadConfig workload;
    workload.seed = 42 + n;
    workload.num_triples = n;
    const std::vector<rdf::Triple> triples =
        datagen::GenerateTripleWorkload(workload);
    const std::vector<rdf::TriplePattern> patterns =
        datagen::GeneratePatternWorkload(triples, num_patterns, 1234 + n);

    std::vector<ArmResult> arms;

    // Arm 1: uncompressed reference.
    {
      Stopwatch watch;
      rdf::TripleStore store;
      for (const rdf::Triple& t : triples) store.Add(t);
      store.EnsureIndexes();
      const double build = watch.ElapsedSeconds();
      ArmResult r = RunQueries("uncompressed", store, patterns);
      r.build_seconds = build;
      r.memory_bytes = store.MemoryBytes();
      r.bytes_per_triple =
          static_cast<double>(r.memory_bytes) / static_cast<double>(store.size());
      sidecar.AddPhase("uncompressed_" + std::to_string(n),
                       build + r.match_seconds);
      arms.push_back(r);
    }

    // Arm 2: block-compressed, in memory.
    {
      Stopwatch watch;
      const auto store = rdf::CompressedTripleStore::FromTriples(triples, opts);
      const double build = watch.ElapsedSeconds();
      ArmResult r = RunQueries("compressed", store, patterns);
      r.build_seconds = build;
      r.memory_bytes = store.MemoryBytes();
      r.bytes_per_triple = store.BytesPerTriple();
      sidecar.AddPhase("compressed_" + std::to_string(n),
                       build + r.match_seconds);
      arms.push_back(r);
    }

    // Arm 3: disk-backed tier through the LRU block cache.
    {
      const std::string path = "bench_storage.blocks";
      auto& registry = obs::MetricsRegistry::Global();
      const uint64_t hits0 = registry.counter("rdf.block_cache_hits").Value();
      const uint64_t miss0 = registry.counter("rdf.block_cache_misses").Value();
      const uint64_t evict0 =
          registry.counter("rdf.block_cache_evictions").Value();
      Stopwatch watch;
      {
        const auto mem = rdf::CompressedTripleStore::FromTriples(triples, opts);
        const Status st = mem.WriteFile(path);
        if (!st.ok()) {
          std::fprintf(stderr, "disk arm failed: %s\n", st.ToString().c_str());
          return 1;
        }
      }
      auto opened = rdf::CompressedTripleStore::OpenFile(path, opts);
      if (!opened.ok()) {
        std::fprintf(stderr, "disk arm open failed: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      const double build = watch.ElapsedSeconds();
      ArmResult r = RunQueries("disk", *opened, patterns);
      r.build_seconds = build;
      r.memory_bytes = opened->MemoryBytes();
      r.bytes_per_triple = opened->BytesPerTriple();
      r.has_cache = true;
      r.cache_hits = registry.counter("rdf.block_cache_hits").Value() - hits0;
      r.cache_misses =
          registry.counter("rdf.block_cache_misses").Value() - miss0;
      r.cache_evictions =
          registry.counter("rdf.block_cache_evictions").Value() - evict0;
      sidecar.AddPhase("disk_" + std::to_string(n), build + r.match_seconds);
      arms.push_back(r);
      std::remove(path.c_str());
    }

    const ArmResult& reference = arms[0];
    bool equivalent = true;
    for (const ArmResult& r : arms) {
      if (r.digest != reference.digest || r.matched != reference.matched) {
        equivalent = false;
        all_equivalent = false;
        std::fprintf(stderr,
                     "EQUIVALENCE MISMATCH at %zu triples: arm %s digest "
                     "%016llx != reference %016llx\n",
                     n, r.name.c_str(),
                     static_cast<unsigned long long>(r.digest),
                     static_cast<unsigned long long>(reference.digest));
      }
    }
    const double ratio = reference.bytes_per_triple > 0
                             ? arms[1].bytes_per_triple /
                                   reference.bytes_per_triple
                             : 0.0;
    if (n >= 1000000 && ratio > 0.40) {
      ratio_ok = false;
      std::fprintf(stderr,
                   "COMPRESSION TARGET MISSED at %zu triples: ratio %.3f > "
                   "0.40\n",
                   n, ratio);
    }

    std::printf("    {\"num_triples\": %zu, \"patterns\": %zu,\n",
                triples.size(), patterns.size());
    std::printf("     \"arms\": [\n");
    for (size_t ai = 0; ai < arms.size(); ++ai) {
      PrintArmJson(arms[ai], patterns.size(), ai + 1 == arms.size());
    }
    std::printf("     ],\n");
    std::printf("     \"compressed_ratio\": %.4f, \"equivalent\": %s}%s\n",
                ratio, equivalent ? "true" : "false",
                si + 1 == sizes.size() ? "" : ",");

    sidecar.AddField("bytes_per_triple_uncompressed_" + std::to_string(n),
                     reference.bytes_per_triple);
    sidecar.AddField("bytes_per_triple_compressed_" + std::to_string(n),
                     arms[1].bytes_per_triple);
    sidecar.AddField("compressed_ratio_" + std::to_string(n), ratio);
  }
  std::printf("  ],\n");

  // Dictionary arm: hash-indexed Dictionary vs front-coded CompactDictionary
  // over a shared-prefix IRI pool (id-preserving, so both serve the same
  // encoded triples).
  {
    rdf::Dictionary dict;
    const size_t num_terms = std::min<size_t>(std::max(max_triples / 10,
                                                       size_t{1000}),
                                              size_t{1000000});
    for (size_t i = 0; i < num_terms; ++i) {
      dict.InternIri("http://example.org/resource/entity/" +
                     std::to_string(i));
    }
    Stopwatch watch;
    const auto compact = rdf::CompactDictionary::Build(dict);
    const double build = watch.ElapsedSeconds();
    const size_t dict_bytes = dict.ApproxMemoryBytes();
    const size_t compact_bytes = compact.ApproxMemoryBytes();
    const double ratio = dict_bytes > 0 ? static_cast<double>(compact_bytes) /
                                              static_cast<double>(dict_bytes)
                                        : 0.0;
    std::printf(
        "  \"dictionary\": {\"terms\": %zu, \"build_seconds\": %.4f, "
        "\"dict_bytes\": %zu, \"compact_bytes\": %zu, \"ratio\": %.4f},\n",
        num_terms, build, dict_bytes, compact_bytes, ratio);
    sidecar.AddField("dictionary_ratio", ratio);
    sidecar.AddPhase("dictionary", build);
  }

  const bool ok = all_equivalent && ratio_ok;
  std::printf("  \"equivalent\": %s,\n  \"ratio_ok\": %s,\n  \"ok\": %s\n}\n",
              all_equivalent ? "true" : "false", ratio_ok ? "true" : "false",
              ok ? "true" : "false");
  sidecar.AddField("ok", static_cast<uint64_t>(ok ? 1 : 0));
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace alex

int main(int argc, char** argv) { return alex::Run(argc, argv); }
