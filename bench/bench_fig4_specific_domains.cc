// Figure 4: quality of links for specific domains (publications and NBA
// basketball players) in the interactive single-user setting: episode size
// 10, so users see quick improvement after a handful of feedback items.

#include "bench_util.h"
#include "datagen/scenarios.h"

int main() {
  using namespace alex;
  InitLoggingFromEnv();
  bench::TelemetrySidecar telemetry("bench_fig4_specific_domains");
  const struct {
    const char* title;
    datagen::ScenarioConfig scenario;
  } figures[] = {
      {"Figure 4(a): DBpedia - Semantic Web Dogfood", datagen::DbpediaSwdf()},
      {"Figure 4(b): OpenCyc - Semantic Web Dogfood", datagen::OpencycSwdf()},
      {"Figure 4(c): DBpedia (NBA) - NYTimes", datagen::DbpediaNbaNytimes()},
      {"Figure 4(d): OpenCyc (NBA) - NYTimes", datagen::OpencycNbaNytimes()},
  };
  for (const auto& fig : figures) {
    simulation::SimulationConfig config = bench::MakeConfig(fig.scenario, 10);
    config.alex.num_partitions = 4;  // Small interactive datasets.
    simulation::Simulation sim(config);
    const simulation::RunResult result = sim.Run();
    telemetry.AddRun(fig.scenario.name, result);
    bench::PrintQualityFigure(fig.title, result);
  }
  return 0;
}
