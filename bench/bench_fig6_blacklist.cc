// Figure 6: effect of the blacklist optimization (Section 6.3) on
// DBpedia-NYTimes, batch mode: (a) F-measure with vs without the blacklist;
// (b) percent of negative feedback per episode for the first 10 episodes.

#include "bench_util.h"
#include "datagen/scenarios.h"

int main() {
  using namespace alex;
  InitLoggingFromEnv();
  bench::TelemetrySidecar telemetry("bench_fig6_blacklist");
  simulation::SimulationConfig with_config =
      bench::MakeConfig(datagen::DbpediaNytimes(), 1000);
  simulation::SimulationConfig without_config = with_config;
  without_config.alex.use_blacklist = false;

  const simulation::RunResult with_bl =
      simulation::Simulation(with_config).Run();
  const simulation::RunResult without_bl =
      simulation::Simulation(without_config).Run();
  telemetry.AddRun("with_blacklist", with_bl);
  telemetry.AddRun("without_blacklist", without_bl);

  bench::PrintComparisonFigure(
      "Figure 6(a): effect of the blacklist", "F-measure",
      {"with_blacklist", "without_blacklist"}, {&with_bl, &without_bl},
      bench::ExtractF);
  bench::PrintComparisonFigure(
      "Figure 6(b): negative feedback", "percent of feedback",
      {"with_blacklist", "without_blacklist"}, {&with_bl, &without_bl},
      bench::ExtractNegPercent, /*max_episodes=*/11);
  std::printf(
      "\nconvergence: with_blacklist strict=%zu relaxed=%zu | "
      "without_blacklist strict=%zu relaxed=%zu\n",
      with_bl.converged_episode, with_bl.relaxed_episode,
      without_bl.converged_episode, without_bl.relaxed_episode);
  return 0;
}
