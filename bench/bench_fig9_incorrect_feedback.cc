// Figure 9 (Appendix C): ALEX with correct feedback vs with 10% incorrect
// feedback on DBpedia-NYTimes (episode size 1000): precision, recall, and
// F-measure series side by side.

#include "bench_util.h"
#include "datagen/scenarios.h"

int main() {
  using namespace alex;
  InitLoggingFromEnv();
  bench::TelemetrySidecar telemetry("bench_fig9_incorrect_feedback");
  simulation::SimulationConfig clean =
      bench::MakeConfig(datagen::DbpediaNytimes(), 1000);
  clean.alex.max_episodes = 40;
  simulation::SimulationConfig noisy = clean;
  noisy.feedback_error_rate = 0.10;
  // With erroneous feedback a correct link must survive mistaken
  // rejections. With error rate e and J judgments per link over the run,
  // the expected fraction of correct links permanently lost to the
  // blacklist is about J * e^k for threshold k; at e = 0.1 and J ~ 25,
  // k = 3 keeps the loss under a few percent (the paper's Fig 9 recall
  // barely moves).
  noisy.alex.blacklist_threshold = 3;

  const simulation::RunResult a = simulation::Simulation(clean).Run();
  const simulation::RunResult b = simulation::Simulation(noisy).Run();
  telemetry.AddRun("correct_feedback", a);
  telemetry.AddRun("noisy_feedback", b);

  const std::vector<std::string> labels = {"correct", "10%_incorrect"};
  const std::vector<const simulation::RunResult*> runs = {&a, &b};
  bench::PrintComparisonFigure("Figure 9(a)", "precision", labels, runs,
                               bench::ExtractPrecision);
  bench::PrintComparisonFigure("Figure 9(b)", "recall", labels, runs,
                               bench::ExtractRecall);
  bench::PrintComparisonFigure("Figure 9(c)", "F-measure", labels, runs,
                               bench::ExtractF);
  return 0;
}
