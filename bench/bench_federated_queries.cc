// Beyond the paper's figures: the downstream payoff of better links. A
// FedBench-style workload of federated queries (right-side attributes of
// left-side entities, answerable only through owl:sameAs links) is executed
// against three link sets on DBpedia-NYTimes:
//
//   paris  - the automatic linker's initial links,
//   alex   - the links after ALEX's feedback-driven refinement,
//   truth  - the ground-truth links (upper bound).
//
// Reported: the fraction of queries answered (the link set's recall as seen
// by a user), wrong answers returned (its precision), and mean latency.

#include <cstdio>

#include "common/stopwatch.h"
#include "datagen/scenarios.h"
#include "federation/federated_engine.h"
#include "simulation/query_workload.h"
#include "simulation/simulation.h"

#include "bench_util.h"

namespace {

using namespace alex;

struct WorkloadStats {
  size_t answered = 0;
  size_t total = 0;
  size_t wrong_rows = 0;
  double seconds = 0.0;
};

WorkloadStats RunWorkload(const datagen::GeneratedPair& pair,
                          const simulation::FederatedWorkload& workload,
                          const fed::LinkIndex& links) {
  fed::Endpoint left(&pair.left);
  fed::Endpoint right(&pair.right);
  fed::FederatedEngine engine(&left, &right, &links);
  WorkloadStats stats;
  stats.total = workload.queries.size();
  Stopwatch watch;
  for (size_t i = 0; i < workload.queries.size(); ++i) {
    auto r = engine.ExecuteText(workload.queries[i]);
    if (!r.ok()) continue;
    if (r->NumRows() > 0) ++stats.answered;
    for (const fed::ProvenancedRow& row : r->rows) {
      for (const fed::SameAsLink& link : row.links_used) {
        auto l = pair.left.FindEntityByIri(link.left_iri);
        auto rr = pair.right.FindEntityByIri(link.right_iri);
        if (!l || !rr || !pair.truth.Contains(*l, *rr)) {
          ++stats.wrong_rows;
          break;
        }
      }
    }
  }
  stats.seconds = watch.ElapsedSeconds();
  return stats;
}

}  // namespace

int main() {
  alex::InitLoggingFromEnv();
  alex::bench::TelemetrySidecar telemetry("bench_federated_queries");
  simulation::SimulationConfig config;
  config.scenario = datagen::DbpediaNytimes();
  config.alex.episode_size = 1000;
  config.alex.max_episodes = 40;
  simulation::Simulation sim(config);

  // Capture ALEX's final candidate set via the run itself.
  std::vector<feedback::PairKey> alex_links;
  sim.set_observer([&](size_t, const core::PartitionedAlex& alex) {
    alex_links = alex.CandidateVector();
  });
  const simulation::RunResult run = sim.Run();
  telemetry.AddRun("alex_training_run", run);
  const datagen::GeneratedPair& pair = sim.data();

  paris::ParisLinker linker(&pair.left, &pair.right, config.paris);
  std::vector<feedback::PairKey> paris_links;
  for (const paris::ScoredLink& l : linker.Run()) {
    paris_links.push_back(feedback::PackPair(l.left, l.right));
  }

  const simulation::FederatedWorkload workload =
      simulation::MakeFederatedWorkload(pair, 300, 424242);

  const fed::LinkIndex paris_index =
      simulation::LinksFromPairs(pair, paris_links);
  const fed::LinkIndex alex_index =
      simulation::LinksFromPairs(pair, alex_links);
  const fed::LinkIndex truth_index =
      simulation::LinksFromPairs(pair, pair.truth.AsVector());

  std::printf("Federated query workload over DBpedia-NYTimes "
              "(%zu queries; each answerable only through a link)\n\n",
              workload.queries.size());
  std::printf("%-8s %10s %12s %12s %12s %14s\n", "links", "count",
              "answered", "answered%", "wrong-rows", "mean-latency");
  const struct {
    const char* name;
    const fed::LinkIndex* index;
  } arms[] = {{"paris", &paris_index},
              {"alex", &alex_index},
              {"truth", &truth_index}};
  for (const auto& arm : arms) {
    const WorkloadStats s = RunWorkload(pair, workload, *arm.index);
    std::printf("%-8s %10zu %12zu %11.1f%% %12zu %12.2fus\n", arm.name,
                arm.index->size(), s.answered,
                100.0 * s.answered / s.total, s.wrong_rows,
                1e6 * s.seconds / s.total);
  }
  std::printf(
      "\nALEX run: F %.3f -> %.3f; the answered%% column is the user-visible "
      "form of link recall, wrong-rows of link precision.\n",
      run.episodes.front().metrics.f_measure,
      run.final_episode().metrics.f_measure);
  return 0;
}
