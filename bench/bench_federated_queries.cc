// Federated query workload bench, two angles on DBpedia-NYTimes:
//
// Quality (full mode): a FedBench-style workload (right-side attributes of
// left-side entities, answerable only through owl:sameAs links) executed
// against three link sets — paris (the automatic linker's initial links),
// alex (after feedback-driven refinement), truth (upper bound). Reported:
// answered fraction (user-visible link recall), wrong answers (precision),
// mean latency.
//
// Performance (always): the same workload on the truth links under three
// execution configurations —
//   legacy        - string-path execution, re-parsed and re-planned per call;
//   fast          - compiled plans (memoized per query text) + probe-caching
//                   endpoints + dictionary-encoded enumeration;
//   fast_parallel - fast, fanned across a thread pool with deterministic
//                   merge.
// Before timing, every query is executed under both paths and the full
// results (rows, provenance, degradation detail) are digest-compared; any
// mismatch fails the bench (exit 1), as does an all-zero-rows workload, so
// CI smoke runs catch both correctness and wiring regressions.
//
// Output: one JSON object on stdout. Cache hit rates and plan-compile times
// are included both in the JSON and in the telemetry sidecar fields.
//
// Usage: bench_federated_queries [queries=300] [reps=3] [smoke=0] [trace=0]
//   smoke=1 skips the expensive quality arms (ALEX training + PARIS) and is
//   what CI runs reduced, e.g. `bench_federated_queries 30 2 1`.
//   trace=1 adds a traced arm AFTER the timed perf arms (so spans never
//   pollute the timing): one untraced + one runtime-traced pass over the
//   workload, reporting the runtime overhead of enabled tracing, writing
//   the span tree to bench_federated_queries.trace.json (via the sidecar)
//   and the registry state to bench_federated_queries.prom (Prometheus
//   text exposition). CI validates both artifacts.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "datagen/scenarios.h"
#include "exec/topology.h"
#include "federation/endpoint.h"
#include "federation/federated_engine.h"
#include "federation/probe_cache.h"
#include "obs/metrics.h"
#include "simulation/query_workload.h"
#include "simulation/simulation.h"

#include "bench_util.h"

namespace {

using namespace alex;

struct ArmStats {
  size_t answered = 0;
  size_t total = 0;
  size_t wrong_rows = 0;
  double seconds = 0.0;
};

ArmStats RunQualityArm(const datagen::GeneratedPair& pair,
                       const simulation::FederatedWorkload& workload,
                       const fed::LinkIndex& links) {
  fed::Endpoint left(&pair.left);
  fed::Endpoint right(&pair.right);
  fed::FederatedEngine engine(&left, &right, &links);
  ArmStats stats;
  stats.total = workload.queries.size();
  Stopwatch watch;
  for (size_t i = 0; i < workload.queries.size(); ++i) {
    auto r = engine.ExecuteText(workload.queries[i]);
    if (!r.ok()) continue;
    if (r->NumRows() > 0) ++stats.answered;
    for (const fed::ProvenancedRow& row : r->rows) {
      for (const fed::SameAsLink& link : row.links_used) {
        auto l = pair.left.FindEntityByIri(link.left_iri);
        auto rr = pair.right.FindEntityByIri(link.right_iri);
        if (!l || !rr || !pair.truth.Contains(*l, *rr)) {
          ++stats.wrong_rows;
          break;
        }
      }
    }
  }
  stats.seconds = watch.ElapsedSeconds();
  return stats;
}

/// Full observable result of one query, for cross-path equivalence.
std::string Digest(const Result<fed::FederatedResult>& r) {
  if (!r.ok()) {
    return "error:" + std::to_string(static_cast<int>(r.status().code()));
  }
  std::string d = r->degraded ? "degraded|" : "ok|";
  for (const fed::ProvenancedRow& row : r->rows) {
    d += "row:";
    for (const rdf::Term& t : row.values) d += t.ToNTriples() + "\x1e";
    for (const fed::SameAsLink& l : row.links_used) {
      d += l.left_iri + "->" + l.right_iri + "\x1f";
    }
  }
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  InitLoggingFromEnv();
  bench::TelemetrySidecar telemetry("bench_federated_queries");
  const size_t num_queries =
      bench::ParseUintArg(argc, argv, 1, 300, "queries");
  const size_t reps = bench::ParseUintArg(argc, argv, 2, 3, "reps");
  const bool smoke =
      bench::ParseUintArg(argc, argv, 3, 0, "smoke", /*min_value=*/0) != 0;
  const bool trace =
      bench::ParseUintArg(argc, argv, 4, 0, "trace", /*min_value=*/0) != 0;

  Stopwatch generate_watch;
  simulation::SimulationConfig config;
  config.scenario = datagen::DbpediaNytimes();
  config.alex.episode_size = 1000;
  config.alex.max_episodes = 40;
  const datagen::GeneratedPair pair =
      datagen::GenerateScenario(config.scenario);
  const simulation::FederatedWorkload workload =
      simulation::MakeFederatedWorkload(pair, num_queries, 424242);
  const fed::LinkIndex truth_index =
      simulation::LinksFromPairs(pair, pair.truth.AsVector());
  telemetry.AddPhase("generate", generate_watch.ElapsedSeconds());

  // --- Quality arms (full mode only: the training run dominates cost). ---
  struct ArmRow {
    std::string name;
    size_t links = 0;
    ArmStats stats;
  };
  std::vector<ArmRow> arms;
  if (!smoke) {
    Stopwatch arms_watch;
    simulation::Simulation sim(config);
    std::vector<feedback::PairKey> alex_links;
    sim.set_observer([&](size_t, const core::PartitionedAlex& alex) {
      alex_links = alex.CandidateVector();
    });
    const simulation::RunResult run = sim.Run();
    telemetry.AddRun("alex_training_run", run);

    paris::ParisLinker linker(&pair.left, &pair.right, config.paris);
    std::vector<feedback::PairKey> paris_links;
    for (const paris::ScoredLink& l : linker.Run()) {
      paris_links.push_back(feedback::PackPair(l.left, l.right));
    }
    const fed::LinkIndex paris_index =
        simulation::LinksFromPairs(pair, paris_links);
    const fed::LinkIndex alex_index =
        simulation::LinksFromPairs(pair, alex_links);
    const struct {
      const char* name;
      const fed::LinkIndex* index;
    } quality_arms[] = {{"paris", &paris_index},
                        {"alex", &alex_index},
                        {"truth", &truth_index}};
    for (const auto& arm : quality_arms) {
      arms.push_back(ArmRow{arm.name, arm.index->size(),
                            RunQualityArm(pair, workload, *arm.index)});
    }
    telemetry.AddPhase("quality_arms", arms_watch.ElapsedSeconds());
  }

  // --- Equivalence: legacy vs fast must be bit-identical per query. ---
  Stopwatch equivalence_watch;
  fed::Endpoint left(&pair.left);
  fed::Endpoint right(&pair.right);
  size_t mismatches = 0;
  {
    fed::FederatedEngine legacy(&left, &right, &truth_index);
    legacy.set_execution_mode(
        fed::FederatedEngine::ExecutionMode::kLegacyStrings);
    fed::CachingEndpoint cached_left(
        &left, fed::ProbeCacheConfig(),
        [&truth_index] { return truth_index.epoch(); });
    fed::CachingEndpoint cached_right(
        &right, fed::ProbeCacheConfig(),
        [&truth_index] { return truth_index.epoch(); });
    fed::FederatedEngine fast(&cached_left, &cached_right, &truth_index);
    for (const std::string& query : workload.queries) {
      if (Digest(legacy.ExecuteText(query)) !=
          Digest(fast.ExecuteText(query))) {
        ++mismatches;
      }
      // Warm pass over the now-populated caches must agree too.
      if (Digest(legacy.ExecuteText(query)) !=
          Digest(fast.ExecuteText(query))) {
        ++mismatches;
      }
    }
  }
  telemetry.AddPhase("equivalence", equivalence_watch.ElapsedSeconds());

  // --- Performance: legacy vs fast vs fast_parallel on the truth links. ---
  const obs::MetricsSnapshot perf_before =
      obs::MetricsRegistry::Global().Snapshot();
  Stopwatch perf_watch;

  double legacy_seconds = 1e300;
  size_t legacy_rows = 0;
  {
    fed::FederatedEngine engine(&left, &right, &truth_index);
    engine.set_execution_mode(
        fed::FederatedEngine::ExecutionMode::kLegacyStrings);
    for (size_t rep = 0; rep < reps; ++rep) {
      Stopwatch watch;
      const simulation::WorkloadRunStats stats =
          simulation::ExecuteFederatedWorkload(engine, workload);
      legacy_seconds = std::min(legacy_seconds, watch.ElapsedSeconds());
      legacy_rows = stats.rows;
    }
  }

  // The fast stack persists across reps: the first rep pays the cold cache,
  // later reps measure the steady state a long-lived federation sees.
  fed::CachingEndpoint cached_left(
      &left, fed::ProbeCacheConfig(),
      [&truth_index] { return truth_index.epoch(); });
  fed::CachingEndpoint cached_right(
      &right, fed::ProbeCacheConfig(),
      [&truth_index] { return truth_index.epoch(); });
  double fast_seconds = 1e300;
  size_t fast_rows = 0;
  {
    fed::FederatedEngine engine(&cached_left, &cached_right, &truth_index);
    for (size_t rep = 0; rep < reps; ++rep) {
      Stopwatch watch;
      const simulation::WorkloadRunStats stats =
          simulation::ExecuteFederatedWorkload(engine, workload);
      fast_seconds = std::min(fast_seconds, watch.ElapsedSeconds());
      fast_rows = stats.rows;
    }
  }

  double parallel_seconds = 1e300;
  size_t parallel_rows = 0;
  {
    // Pre-build the store indexes: parallel readers must not race the lazy
    // first-read build.
    pair.left.store().EnsureIndexes();
    pair.right.store().EnsureIndexes();
    const size_t threads = std::max<size_t>(
        2, std::min<size_t>(8, exec::CpuTopology::Detect().RecommendedWorkers()));
    ThreadPool pool(threads);
    fed::FederatedEngine engine(&cached_left, &cached_right, &truth_index);
    simulation::WorkloadExecOptions options;
    options.pool = &pool;
    for (size_t rep = 0; rep < reps; ++rep) {
      Stopwatch watch;
      const simulation::WorkloadRunStats stats =
          simulation::ExecuteFederatedWorkload(engine, workload, options);
      parallel_seconds = std::min(parallel_seconds, watch.ElapsedSeconds());
      parallel_rows = stats.rows;
    }
  }
  telemetry.AddPhase("perf", perf_watch.ElapsedSeconds());

  // --- Traced arm (trace=1), after the timed arms so spans never pollute
  // the perf numbers. Paired passes over one engine: runtime-disabled then
  // runtime-enabled, giving the marginal cost of live tracing on identical
  // (warm-cache) work. The recorder stays populated so the sidecar writes
  // bench_federated_queries.trace.json at exit.
  double traced_seconds = 0.0;
  double untraced_seconds = 0.0;
  uint64_t trace_events = 0;
  if (trace) {
    Stopwatch trace_watch;
    fed::FederatedEngine engine(&cached_left, &cached_right, &truth_index);
    {
      Stopwatch watch;
      simulation::ExecuteFederatedWorkload(engine, workload);
      untraced_seconds = watch.ElapsedSeconds();
    }
    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    recorder.Clear();
    recorder.SetEnabled(true);
    {
      Stopwatch watch;
      simulation::ExecuteFederatedWorkload(engine, workload);
      traced_seconds = watch.ElapsedSeconds();
    }
    recorder.SetEnabled(false);
    trace_events = recorder.Events().size();
    telemetry.AddPhase("traced", trace_watch.ElapsedSeconds());

    std::ofstream prom("bench_federated_queries.prom");
    obs::WritePrometheusText(obs::MetricsRegistry::Global().Snapshot(), prom);
  }
  const double trace_overhead_pct =
      untraced_seconds > 0.0
          ? 100.0 * (traced_seconds - untraced_seconds) / untraced_seconds
          : 0.0;
#ifdef ALEX_TRACING_ENABLED
  const bool tracing_compiled_in = true;
#else
  const bool tracing_compiled_in = false;
#endif

  const obs::MetricsSnapshot perf_delta =
      obs::MetricsRegistry::Global().Snapshot().DeltaSince(perf_before);
  auto counter = [&perf_delta](const char* name) -> uint64_t {
    auto it = perf_delta.counters.find(name);
    return it == perf_delta.counters.end() ? 0 : it->second;
  };
  const uint64_t cache_hits = counter("fed.probe_cache_hits");
  const uint64_t cache_misses = counter("fed.probe_cache_misses");
  const double hit_rate =
      cache_hits + cache_misses == 0
          ? 0.0
          : static_cast<double>(cache_hits) / (cache_hits + cache_misses);
  double compile_mean = 0.0;
  uint64_t compile_count = 0;
  auto hist = perf_delta.histograms.find("fed.plan_compile_seconds");
  if (hist != perf_delta.histograms.end() && hist->second.count > 0) {
    compile_count = hist->second.count;
    compile_mean = hist->second.Mean();
  }
  const double speedup_fast =
      fast_seconds > 0 ? legacy_seconds / fast_seconds : 0.0;
  const double speedup_parallel =
      parallel_seconds > 0 ? legacy_seconds / parallel_seconds : 0.0;
  const bool rows_agree =
      legacy_rows == fast_rows && fast_rows == parallel_rows;
  const bool equivalent = mismatches == 0 && rows_agree;
  const bool nonempty = fast_rows > 0;

  telemetry.AddField("probe_cache_hit_rate", hit_rate);
  telemetry.AddField("plan_cache_hits", counter("fed.plan_cache_hits"));
  telemetry.AddField("plan_compile_seconds_mean", compile_mean);
  telemetry.AddField("speedup_fast", speedup_fast);
  telemetry.AddField("speedup_parallel", speedup_parallel);
  if (trace) {
    telemetry.AddField("trace_events", trace_events);
    telemetry.AddField("trace_runtime_overhead_pct", trace_overhead_pct);
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"federated_queries\",\n");
  std::printf("  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::printf("  \"queries\": %zu,\n", workload.queries.size());
  std::printf("  \"reps\": %zu,\n", reps);
  std::printf("  \"arms\": [");
  for (size_t i = 0; i < arms.size(); ++i) {
    const ArmRow& arm = arms[i];
    std::printf(
        "%s\n    {\"name\": \"%s\", \"links\": %zu, \"answered\": %zu, "
        "\"answered_pct\": %.1f, \"wrong_rows\": %zu, "
        "\"mean_latency_us\": %.2f}",
        i == 0 ? "" : ",", EscapeJson(arm.name).c_str(), arm.links,
        arm.stats.answered,
        arm.stats.total == 0 ? 0.0
                             : 100.0 * arm.stats.answered / arm.stats.total,
        arm.stats.wrong_rows,
        arm.stats.total == 0 ? 0.0
                             : 1e6 * arm.stats.seconds / arm.stats.total);
  }
  std::printf("%s],\n", arms.empty() ? "" : "\n  ");
  std::printf("  \"perf\": {\n");
  std::printf("    \"legacy_seconds\": %.6f,\n", legacy_seconds);
  std::printf("    \"fast_seconds\": %.6f,\n", fast_seconds);
  std::printf("    \"fast_parallel_seconds\": %.6f,\n", parallel_seconds);
  std::printf("    \"speedup_fast\": %.2f,\n", speedup_fast);
  std::printf("    \"speedup_parallel\": %.2f,\n", speedup_parallel);
  std::printf("    \"rows\": %zu,\n", fast_rows);
  std::printf("    \"probe_cache_hit_rate\": %.4f,\n", hit_rate);
  std::printf("    \"probe_cache_hits\": %llu,\n",
              static_cast<unsigned long long>(cache_hits));
  std::printf("    \"probe_cache_misses\": %llu,\n",
              static_cast<unsigned long long>(cache_misses));
  std::printf("    \"plan_cache_hits\": %llu,\n",
              static_cast<unsigned long long>(counter("fed.plan_cache_hits")));
  std::printf("    \"plan_compile_count\": %llu,\n",
              static_cast<unsigned long long>(compile_count));
  std::printf("    \"plan_compile_seconds_mean\": %.8f,\n", compile_mean);
  std::printf("    \"parallel_queries\": %llu\n",
              static_cast<unsigned long long>(
                  counter("fed.parallel_queries")));
  std::printf("  },\n");
  std::printf("  \"tracing\": {\n");
  std::printf("    \"compiled_in\": %s,\n",
              tracing_compiled_in ? "true" : "false");
  std::printf("    \"traced\": %s,\n", trace ? "true" : "false");
  std::printf("    \"untraced_seconds\": %.6f,\n", untraced_seconds);
  std::printf("    \"traced_seconds\": %.6f,\n", traced_seconds);
  std::printf("    \"trace_runtime_overhead_pct\": %.2f,\n",
              trace_overhead_pct);
  std::printf("    \"trace_events\": %llu\n",
              static_cast<unsigned long long>(trace_events));
  std::printf("  },\n");
  std::printf("  \"mismatches\": %zu,\n", mismatches);
  std::printf("  \"equivalent\": %s\n", equivalent ? "true" : "false");
  std::printf("}\n");

  if (!equivalent || !nonempty) {
    std::fprintf(stderr,
                 "FAIL: equivalent=%d rows=%zu (mismatches=%zu, "
                 "legacy_rows=%zu, parallel_rows=%zu)\n",
                 equivalent ? 1 : 0, fast_rows, mismatches, legacy_rows,
                 parallel_rows);
    return 1;
  }
  return 0;
}
