// Ablation: equal-size partitioning (Section 6.2). The paper's claim:
// partitioning "enables parallelism that significantly reduces execution
// time without sacrificing the quality of candidate links". This bench
// sweeps the partition count on DBpedia-NYTimes and reports final quality
// and the preprocessing (space build) time profile.

#include "bench_util.h"
#include "datagen/scenarios.h"

int main() {
  using namespace alex;
  InitLoggingFromEnv();
  bench::TelemetrySidecar telemetry("bench_ablation_partitions");
  std::printf("Ablation: partition count (DBpedia-NYTimes, batch mode)\n\n");
  std::printf("%12s %10s %10s %10s %12s %14s %14s %14s\n", "partitions",
              "final_P", "final_R", "final_F", "episodes", "build_max_s",
              "build_sum_s", "shared_idx_s");
  for (size_t partitions : {1, 3, 9, 27, 54}) {
    simulation::SimulationConfig config =
        bench::MakeConfig(datagen::DbpediaNytimes(), 1000);
    config.alex.num_partitions = partitions;
    config.alex.max_episodes = 25;
    const simulation::RunResult r = simulation::Simulation(config).Run();
    telemetry.AddRun("partitions_" + std::to_string(partitions), r);
    const auto& m = r.final_episode().metrics;
    std::printf("%12zu %10.3f %10.3f %10.3f %12zu %14.2f %14.2f %14.3f\n",
                partitions, m.precision, m.recall, m.f_measure,
                r.episodes.size() - 1, r.build_seconds_max,
                r.build_seconds_avg * static_cast<double>(partitions),
                r.shared_index_seconds);
  }
  std::printf(
      "\nWith p worker cores the preprocessing wall time approaches "
      "shared_idx_s + build_sum_s / p, bounded below by build_max_s — the "
      "paper's equal-size partitioning argument, with the blocking index "
      "paid once instead of once per partition (see bench_build_space). "
      "Final quality stays in the same band across partitionings at a "
      "fixed feedback budget; the mild variation reflects that each "
      "partition learns its own policy from its share of the feedback "
      "(few partitions concentrate junk in one space, very many spread "
      "the learning signal thin).\n");
  return 0;
}
