// Ablation: reward asymmetry. Section 4.3: "The value of the reward can be
// equal in both cases, or we can severely penalize wrong links by giving
// them a negative value that is larger than the positive value of the
// approved link." This bench compares symmetric rewards (+1/-1) against
// increasingly punitive negative rewards on DBpedia-NYTimes.

#include "bench_util.h"
#include "datagen/scenarios.h"

int main() {
  using namespace alex;
  InitLoggingFromEnv();
  bench::TelemetrySidecar telemetry("bench_ablation_rewards");
  const double penalties[] = {-1.0, -2.0, -5.0};
  std::vector<simulation::RunResult> results;
  std::vector<std::string> labels;
  for (double penalty : penalties) {
    simulation::SimulationConfig config =
        bench::MakeConfig(datagen::DbpediaNytimes(), 1000);
    config.alex.negative_reward = penalty;
    config.alex.max_episodes = 30;
    results.push_back(simulation::Simulation(config).Run());
    char label[32];
    std::snprintf(label, sizeof(label), "neg_%.0f", penalty);
    labels.push_back(label);
    telemetry.AddRun(labels.back(), results.back());
  }
  std::vector<const simulation::RunResult*> ptrs;
  for (const auto& r : results) ptrs.push_back(&r);

  bench::PrintComparisonFigure("Ablation: negative-reward magnitude",
                               "F-measure", labels, ptrs, bench::ExtractF);
  bench::PrintComparisonFigure("Ablation: negative-reward magnitude",
                               "negative feedback %", labels, ptrs,
                               bench::ExtractNegPercent,
                               /*max_episodes=*/11);
  std::printf("\nfinal F / relaxed convergence:\n");
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("  %s: F=%.3f relaxed=%zu strict=%zu\n", labels[i].c_str(),
                results[i].final_episode().metrics.f_measure,
                results[i].relaxed_episode, results[i].converged_episode);
  }
  std::printf(
      "\nA larger penalty steers the policy away from junk-prone features "
      "sooner (lower negative-feedback share early), at the cost of "
      "abandoning features whose first few explorations were unlucky.\n");
  return 0;
}
