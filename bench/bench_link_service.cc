// Long-running concurrent link service bench: a client-count sweep where N
// closed-loop simulated clients share ONE PartitionedAlex + endpoint stack
// through svc::LinkService, issuing federated queries against an
// epoch-versioned link snapshot and batching feedback into episode commits
// that publish new epochs while queries keep flowing.
//
// Per arm (clients in {4, 8, 16, 32, 64} up to the requested max, each on a
// fresh engine seeded from a noisy candidate set): queries, shed rate (the
// admission bound is set BELOW the client count in concurrent arms, so
// overload sheds instead of queueing), exact p50/p99 latency, throughput,
// committed episodes, epochs published, and final F-measure.
//
// SLOs on svc.query_seconds (p50 and p99) are tracked by a TelemetryHub
// across the whole sweep; the timeline lands in bench_link_service.slo.json
// and the registry state in the usual telemetry sidecar.
//
// Output: one JSON object on stdout; exit 1 when any arm fails its sanity
// gates (zero commits, zero answered queries, or op accounting that does
// not satisfy queries == ops - shed).
//
// Usage: bench_link_service [max_clients=64] [ops_per_client=40]
//                           [deterministic=0]
//   CI runs a reduced smoke, e.g. `bench_link_service 8 12`.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "datagen/generator.h"
#include "feedback/ground_truth.h"
#include "obs/telemetry_hub.h"
#include "service/link_service.h"

#include "bench_util.h"

namespace {

using namespace alex;

/// Seed candidate set: most of the truth plus wrong pairings built from the
/// held-out remainder, so the service's feedback loop has both links to
/// confirm and links to evict.
std::vector<feedback::PairKey> NoisySeedLinks(
    const datagen::GeneratedPair& pair, uint64_t seed) {
  std::vector<feedback::PairKey> truth = pair.truth.AsVector();
  std::sort(truth.begin(), truth.end());
  Rng rng(seed);
  rng.Shuffle(&truth);
  const size_t kept = truth.size() - truth.size() / 5;
  std::vector<feedback::PairKey> links(truth.begin(), truth.begin() + kept);
  // Cross-wire the held-out pairs: left of one with right of the next.
  for (size_t i = kept; i + 1 < truth.size(); ++i) {
    links.push_back(feedback::PackPair(feedback::PairLeft(truth[i]),
                                       feedback::PairRight(truth[i + 1])));
  }
  return links;
}

struct ArmResult {
  size_t clients = 0;
  svc::ServiceReport report;
};

}  // namespace

int main(int argc, char** argv) {
  InitLoggingFromEnv();
  bench::TelemetrySidecar telemetry("bench_link_service");
  const size_t max_clients =
      bench::ParseUintArg(argc, argv, 1, 64, "max_clients");
  const size_t ops_per_client =
      bench::ParseUintArg(argc, argv, 2, 40, "ops_per_client");
  const bool deterministic =
      bench::ParseUintArg(argc, argv, 3, 0, "deterministic",
                          /*min_value=*/0) != 0;

  Stopwatch generate_watch;
  datagen::ScenarioConfig scenario;
  scenario.name = "link_service";
  scenario.num_shared = 150;
  scenario.num_left_only = 80;
  scenario.num_right_only = 60;
  scenario.ambiguity = 0.3;
  datagen::GeneratedPair pair = datagen::GenerateScenario(scenario);
  const std::vector<feedback::PairKey> seed_links =
      NoisySeedLinks(pair, 20260808);
  telemetry.AddPhase("generate", generate_watch.ElapsedSeconds());

  // One hub across the sweep: wall-clock sampling, p50/p99 latency SLOs.
  SteadyClock hub_clock;
  obs::TelemetryHub hub(&hub_clock, /*interval_seconds=*/0.05);
  hub.AddSlo({"svc_query_p50", "svc.query_seconds", 0.50, 0.050, 10.0, 0.2});
  hub.AddSlo({"svc_query_p99", "svc.query_seconds", 0.99, 0.250, 10.0, 0.2});

  std::vector<size_t> arms_clients;
  for (size_t c : {size_t{4}, size_t{8}, size_t{16}, size_t{32}, size_t{64}}) {
    if (c <= max_clients) arms_clients.push_back(c);
  }
  if (arms_clients.empty() || arms_clients.back() != max_clients) {
    arms_clients.push_back(max_clients);
  }

  core::AlexConfig alex_config;
  alex_config.episode_size = 1;  // Episodes end on service commits instead.

  std::vector<ArmResult> arms;
  bool ok = true;
  Stopwatch sweep_watch;
  for (size_t clients : arms_clients) {
    // Fresh engine per arm so every client count starts from the same
    // noisy candidate set; the service itself is the shared object.
    core::PartitionedAlex alex(&pair.left, &pair.right, alex_config);
    alex.Build();
    alex.InitializeCandidates(seed_links);

    svc::ServiceConfig config;
    config.num_clients = clients;
    config.ops_per_client = ops_per_client;
    config.deterministic = deterministic;
    config.feedback_fraction = 0.6;
    config.feedback_batch = 16;
    // Bound in-flight queries BELOW the client count (concurrent arms), so
    // the sweep exercises shedding instead of hiding it behind headroom.
    config.max_in_flight = std::max<size_t>(2, (3 * clients) / 4);
    config.workload_queries = 48;
    config.seed = 1000 + clients;
    config.hub = &hub;

    svc::LinkService service(&pair, &alex, alex_config, config);
    ArmResult arm;
    arm.clients = clients;
    arm.report = service.Run();
    const svc::ServiceReport& r = arm.report;
    if (r.committed_episodes == 0 || r.answered == 0 ||
        r.queries != r.ops - r.shed || r.epochs_published == 0) {
      ok = false;
    }
    arms.push_back(std::move(arm));
  }
  telemetry.AddPhase("sweep", sweep_watch.ElapsedSeconds());

  hub.ForceSample();
  {
    std::ofstream slo_out("bench_link_service.slo.json");
    hub.WriteJsonTimeline(slo_out);
  }

  uint64_t total_queries = 0, total_commits = 0, total_shed = 0;
  for (const ArmResult& arm : arms) {
    total_queries += arm.report.queries;
    total_commits += arm.report.committed_episodes;
    total_shed += arm.report.shed;
  }
  telemetry.AddField("total_queries", total_queries);
  telemetry.AddField("total_commits", total_commits);
  telemetry.AddField("total_shed", total_shed);
  telemetry.AddField("slo_samples", static_cast<uint64_t>(hub.sample_count()));
  telemetry.AddField("slo_breaches", hub.breach_count());

  std::printf("{\n  \"bench\": \"link_service\",\n");
  std::printf("  \"deterministic\": %s,\n", deterministic ? "true" : "false");
  std::printf("  \"ops_per_client\": %zu,\n", ops_per_client);
  std::printf("  \"arms\": [\n");
  for (size_t i = 0; i < arms.size(); ++i) {
    const svc::ServiceReport& r = arms[i].report;
    const double duration = r.duration_seconds > 0 ? r.duration_seconds : 1.0;
    std::printf(
        "    {\"clients\": %zu, \"ops\": %zu, \"queries\": %zu, "
        "\"shed\": %zu, \"shed_rate\": %.4f, \"answered\": %zu, "
        "\"degraded\": %zu, \"failed\": %zu, \"p50_ms\": %.3f, "
        "\"p99_ms\": %.3f, \"mean_ms\": %.3f, \"throughput_qps\": %.1f, "
        "\"feedback_items\": %zu, \"committed_episodes\": %zu, "
        "\"epochs_published\": %llu, \"links_added\": %zu, "
        "\"links_removed\": %zu, \"final_f\": %.4f}%s\n",
        arms[i].clients, r.ops, r.queries, r.shed,
        r.ops > 0 ? static_cast<double>(r.shed) / static_cast<double>(r.ops)
                  : 0.0,
        r.answered, r.degraded, r.failed, r.latency.p50_seconds * 1e3,
        r.latency.p99_seconds * 1e3, r.latency.mean_seconds * 1e3,
        static_cast<double>(r.queries) / duration, r.feedback_items,
        r.committed_episodes,
        static_cast<unsigned long long>(r.epochs_published), r.links_added,
        r.links_removed, r.quality.f_measure,
        i + 1 < arms.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"slo_samples\": %zu,\n", hub.sample_count());
  std::printf("  \"slo_breaches\": %llu,\n",
              static_cast<unsigned long long>(hub.breach_count()));
  std::printf("  \"ok\": %s\n}\n", ok ? "true" : "false");
  return ok ? 0 : 1;
}
