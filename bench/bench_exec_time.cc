// Section 7.3 "Execution Time": per-episode and total wall time of ALEX in
// batch mode (DBpedia-NYTimes) and in the interactive specific-domain
// setting (DBpedia NBA - NYTimes), including the per-partition search-space
// build times whose slowest member bounds the preprocessing step.

#include <algorithm>

#include "bench_util.h"
#include "datagen/scenarios.h"

int main() {
  using namespace alex;
  InitLoggingFromEnv();
  bench::TelemetrySidecar telemetry("bench_exec_time");

  // Batch mode.
  simulation::SimulationConfig batch =
      bench::MakeConfig(datagen::DbpediaNytimes(), 1000);
  batch.alex.max_episodes = 20;  // Enough episodes to average timing over.
  const simulation::RunResult b = simulation::Simulation(batch).Run();
  telemetry.AddRun("batch_dbpedia_nytimes", b);
  double batch_episode_seconds = 0.0;
  for (size_t i = 1; i < b.episodes.size(); ++i) {
    batch_episode_seconds += b.episodes[i].seconds;
  }
  batch_episode_seconds /= std::max<size_t>(1, b.episodes.size() - 1);

  // Interactive mode.
  simulation::SimulationConfig interactive =
      bench::MakeConfig(datagen::DbpediaNbaNytimes(), 10);
  interactive.alex.num_partitions = 4;
  const simulation::RunResult i = simulation::Simulation(interactive).Run();
  telemetry.AddRun("interactive_nba_nytimes", i);
  double inter_episode_seconds = 0.0;
  for (size_t k = 1; k < i.episodes.size(); ++k) {
    inter_episode_seconds += i.episodes[k].seconds;
  }
  inter_episode_seconds /= std::max<size_t>(1, i.episodes.size() - 1);

  std::printf("Section 7.3: execution time\n\n");
  std::printf("%-34s %14s %14s\n", "", "batch(NYT)", "interactive(NBA)");
  std::printf("%-34s %14zu %14zu\n", "episodes run", b.episodes.size() - 1,
              i.episodes.size() - 1);
  std::printf("%-34s %14.3f %14.4f\n", "avg seconds per episode",
              batch_episode_seconds, inter_episode_seconds);
  std::printf("%-34s %14.2f %14.3f\n", "total run seconds", b.total_seconds,
              i.total_seconds);
  std::printf("%-34s %14.2f %14.3f\n", "slowest partition build (s)",
              b.build_seconds_max, i.build_seconds_max);
  std::printf("%-34s %14.2f %14.3f\n", "average partition build (s)",
              b.build_seconds_avg, i.build_seconds_avg);
  std::printf("%-34s %14.3f %14.4f\n", "shared blocking index build (s)",
              b.shared_index_seconds, i.shared_index_seconds);
  std::printf(
      "\npaper reference: ~7 min/episode batch (97 min total, 64-core "
      "server, full-size LOD data), ~1.3 s/episode interactive. This "
      "reproduction runs scaled-down data on this machine; the *ratio* "
      "batch >> interactive is the reproduced result.\n");
  return 0;
}
