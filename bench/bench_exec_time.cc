// Section 7.3 "Execution Time": per-episode and total wall time of ALEX in
// batch mode (DBpedia-NYTimes) and in the interactive specific-domain
// setting (DBpedia NBA - NYTimes), including the per-partition search-space
// build times whose slowest member bounds the preprocessing step. A third
// section times federated query execution (legacy string path vs compiled
// plans + probe caching) on a small workload, with the cache hit rate and
// plan-compile time reported here and in the telemetry sidecar fields.

#include <algorithm>

#include "bench_util.h"
#include "datagen/scenarios.h"
#include "federation/endpoint.h"
#include "federation/federated_engine.h"
#include "federation/probe_cache.h"
#include "simulation/query_workload.h"

int main() {
  using namespace alex;
  InitLoggingFromEnv();
  bench::TelemetrySidecar telemetry("bench_exec_time");

  // Batch mode.
  simulation::SimulationConfig batch =
      bench::MakeConfig(datagen::DbpediaNytimes(), 1000);
  batch.alex.max_episodes = 20;  // Enough episodes to average timing over.
  simulation::Simulation batch_sim(batch);
  const simulation::RunResult b = batch_sim.Run();
  telemetry.AddRun("batch_dbpedia_nytimes", b);
  double batch_episode_seconds = 0.0;
  for (size_t i = 1; i < b.episodes.size(); ++i) {
    batch_episode_seconds += b.episodes[i].seconds;
  }
  batch_episode_seconds /= std::max<size_t>(1, b.episodes.size() - 1);

  // Interactive mode.
  simulation::SimulationConfig interactive =
      bench::MakeConfig(datagen::DbpediaNbaNytimes(), 10);
  interactive.alex.num_partitions = 4;
  const simulation::RunResult i = simulation::Simulation(interactive).Run();
  telemetry.AddRun("interactive_nba_nytimes", i);
  double inter_episode_seconds = 0.0;
  for (size_t k = 1; k < i.episodes.size(); ++k) {
    inter_episode_seconds += i.episodes[k].seconds;
  }
  inter_episode_seconds /= std::max<size_t>(1, i.episodes.size() - 1);

  std::printf("Section 7.3: execution time\n\n");
  std::printf("%-34s %14s %14s\n", "", "batch(NYT)", "interactive(NBA)");
  std::printf("%-34s %14zu %14zu\n", "episodes run", b.episodes.size() - 1,
              i.episodes.size() - 1);
  std::printf("%-34s %14.3f %14.4f\n", "avg seconds per episode",
              batch_episode_seconds, inter_episode_seconds);
  std::printf("%-34s %14.2f %14.3f\n", "total run seconds", b.total_seconds,
              i.total_seconds);
  std::printf("%-34s %14.2f %14.3f\n", "slowest partition build (s)",
              b.build_seconds_max, i.build_seconds_max);
  std::printf("%-34s %14.2f %14.3f\n", "average partition build (s)",
              b.build_seconds_avg, i.build_seconds_avg);
  std::printf("%-34s %14.3f %14.4f\n", "shared blocking index build (s)",
              b.shared_index_seconds, i.shared_index_seconds);
  std::printf(
      "\npaper reference: ~7 min/episode batch (97 min total, 64-core "
      "server, full-size LOD data), ~1.3 s/episode interactive. This "
      "reproduction runs scaled-down data on this machine; the *ratio* "
      "batch >> interactive is the reproduced result.\n");

  // Federated query execution: legacy string path vs compiled plans with
  // probe-caching endpoints, on a small workload over the batch-mode data.
  {
    Stopwatch fed_watch;
    const datagen::GeneratedPair& pair = batch_sim.data();
    const simulation::FederatedWorkload workload =
        simulation::MakeFederatedWorkload(pair, 100, 424242);
    const fed::LinkIndex links =
        simulation::LinksFromPairs(pair, pair.truth.AsVector());
    fed::Endpoint left(&pair.left);
    fed::Endpoint right(&pair.right);

    fed::FederatedEngine legacy(&left, &right, &links);
    legacy.set_execution_mode(
        fed::FederatedEngine::ExecutionMode::kLegacyStrings);
    Stopwatch legacy_watch;
    const simulation::WorkloadRunStats legacy_stats =
        simulation::ExecuteFederatedWorkload(legacy, workload);
    const double legacy_seconds = legacy_watch.ElapsedSeconds();

    const obs::MetricsSnapshot before =
        obs::MetricsRegistry::Global().Snapshot();
    fed::CachingEndpoint cached_left(&left, fed::ProbeCacheConfig(),
                                     [&links] { return links.epoch(); });
    fed::CachingEndpoint cached_right(&right, fed::ProbeCacheConfig(),
                                      [&links] { return links.epoch(); });
    fed::FederatedEngine fast(&cached_left, &cached_right, &links);
    double fast_seconds = 1e300;
    simulation::WorkloadRunStats fast_stats;
    for (int rep = 0; rep < 2; ++rep) {  // Rep 0 cold, rep 1 warm.
      Stopwatch watch;
      fast_stats = simulation::ExecuteFederatedWorkload(fast, workload);
      fast_seconds = std::min(fast_seconds, watch.ElapsedSeconds());
    }
    const obs::MetricsSnapshot delta =
        obs::MetricsRegistry::Global().Snapshot().DeltaSince(before);
    auto counter = [&delta](const char* name) -> uint64_t {
      auto it = delta.counters.find(name);
      return it == delta.counters.end() ? 0 : it->second;
    };
    const uint64_t hits = counter("fed.probe_cache_hits");
    const uint64_t misses = counter("fed.probe_cache_misses");
    const double hit_rate =
        hits + misses == 0 ? 0.0
                           : static_cast<double>(hits) / (hits + misses);
    double compile_mean = 0.0;
    auto hist = delta.histograms.find("fed.plan_compile_seconds");
    if (hist != delta.histograms.end() && hist->second.count > 0) {
      compile_mean = hist->second.Mean();
    }

    std::printf("\nfederated query execution (%zu queries, truth links)\n",
                workload.queries.size());
    std::printf("%-34s %14.4f\n", "legacy path seconds", legacy_seconds);
    std::printf("%-34s %14.4f\n", "compiled+cached seconds (best)",
                fast_seconds);
    std::printf("%-34s %14.2f\n", "speedup",
                fast_seconds > 0 ? legacy_seconds / fast_seconds : 0.0);
    std::printf("%-34s %14.4f\n", "probe cache hit rate", hit_rate);
    std::printf("%-34s %14.8f\n", "plan compile seconds (mean)",
                compile_mean);
    std::printf("%-34s %14zu / %zu\n", "rows (fast / legacy)",
                fast_stats.rows, legacy_stats.rows);
    telemetry.AddField("fed_probe_cache_hit_rate", hit_rate);
    telemetry.AddField("fed_plan_compile_seconds_mean", compile_mean);
    telemetry.AddField("fed_plan_cache_hits",
                       counter("fed.plan_cache_hits"));
    telemetry.AddField(
        "fed_speedup",
        fast_seconds > 0 ? legacy_seconds / fast_seconds : 0.0);
    telemetry.AddPhase("federated_queries", fed_watch.ElapsedSeconds());
  }
  return 0;
}
