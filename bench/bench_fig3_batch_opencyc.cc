// Figure 3: quality of links between OpenCyc and NYTimes, Drugbank, and
// Lexvo in batch mode (episode size 1000).

#include "bench_util.h"
#include "datagen/scenarios.h"

int main() {
  using namespace alex;
  InitLoggingFromEnv();
  bench::TelemetrySidecar telemetry("bench_fig3_batch_opencyc");
  const struct {
    const char* title;
    datagen::ScenarioConfig scenario;
  } figures[] = {
      {"Figure 3(a): OpenCyc - NYTimes", datagen::OpencycNytimes()},
      {"Figure 3(b): OpenCyc - Drugbank", datagen::OpencycDrugbank()},
      {"Figure 3(c): OpenCyc - Lexvo", datagen::OpencycLexvo()},
  };
  for (const auto& fig : figures) {
    simulation::Simulation sim(bench::MakeConfig(fig.scenario, 1000));
    const simulation::RunResult result = sim.Run();
    telemetry.AddRun(fig.scenario.name, result);
    bench::PrintQualityFigure(fig.title, result);
  }
  return 0;
}
