// Fault-tolerance sweep for the federated engine: the same FedBench-style
// workload (right-side attributes reachable only through owl:sameAs links)
// is executed against an endpoint stack whose right-hand endpoint degrades
// scenario by scenario — healthy, slow, flaky, hard-down — behind the
// retry/breaker decorator. Everything is deterministic: faults come from
// seeded Rngs and all latency/backoff/deadline time flows through a SimClock
// (virtual seconds, zero wall sleeps).
//
// Reported per scenario (JSON): workload outcomes (answered / degraded /
// failed / rows), the provenance links still observed (what ALEX's feedback
// loop would keep learning from), virtual time consumed, and the delta of
// the fed.* metrics (retries, timeouts, breaker opens/trips, attempt-latency
// histogram) over the scenario.
//
// Usage: bench_federated_faults [queries] [seed]   (defaults: 200, 7).

#include <cstdio>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/retry.h"
#include "datagen/scenarios.h"
#include "federation/circuit_breaker.h"
#include "federation/endpoint.h"
#include "federation/fault_injection.h"
#include "federation/federated_engine.h"
#include "federation/resilient_endpoint.h"
#include "obs/metrics.h"
#include "simulation/query_workload.h"

#include "bench_util.h"

namespace {

using namespace alex;

struct ScenarioResult {
  std::string name;
  simulation::WorkloadRunStats stats;
  double virtual_seconds = 0.0;
  obs::MetricsSnapshot delta;
};

ScenarioResult RunScenario(const std::string& name,
                           const fed::FaultProfile& right_profile,
                           const datagen::GeneratedPair& pair,
                           const fed::LinkIndex& links,
                           const simulation::FederatedWorkload& workload,
                           uint64_t seed) {
  SimClock clock;
  fed::Endpoint left(&pair.left);
  fed::Endpoint right(&pair.right);
  // The left endpoint stays healthy in every scenario: degradation should
  // shrink answers, never erase the queries the surviving side can answer.
  // It still has a small realistic latency — that is what moves virtual time
  // between right-side probes, letting breaker cooldowns actually elapse
  // mid-scenario instead of freezing the breaker open forever.
  fed::FaultProfile left_profile = fed::FaultProfile::Healthy();
  left_profile.base_latency_seconds = 0.002;
  fed::FaultInjectedEndpoint faulty_left(&left, left_profile, seed * 2 + 1,
                                         &clock);
  fed::FaultInjectedEndpoint faulty_right(&right, right_profile, seed * 2 + 2,
                                          &clock);

  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.initial_backoff_seconds = 0.05;
  retry.max_backoff_seconds = 1.0;
  retry.attempt_timeout_seconds = 1.0;
  fed::CircuitBreakerConfig breaker;
  fed::ResilientEndpoint resilient_left(&faulty_left, retry, breaker,
                                        seed * 2 + 3, &clock);
  fed::ResilientEndpoint resilient_right(&faulty_right, retry, breaker,
                                         seed * 2 + 4, &clock);

  fed::FederatedEngine engine(&resilient_left, &resilient_right, &links);
  engine.SetQueryDeadline(&clock, /*deadline_seconds=*/10.0);

  ScenarioResult result;
  result.name = name;
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  const double start = clock.NowSeconds();
  // 50ms of client think time between queries: enough inter-arrival gap for
  // breaker cooldowns to elapse, so flaky scenarios show trip/recover cycles
  // instead of freezing open after the first trip.
  result.stats = simulation::ExecuteFederatedWorkload(
      engine, workload, &clock, /*think_seconds=*/0.05);
  result.virtual_seconds = clock.NowSeconds() - start;
  result.delta = obs::MetricsRegistry::Global().Snapshot().DeltaSince(before);
  return result;
}

void PrintScenario(const ScenarioResult& r, bool last) {
  std::printf("    {\"scenario\": \"%s\",\n", EscapeJson(r.name).c_str());
  std::printf(
      "     \"total\": %zu, \"answered\": %zu, \"degraded\": %zu, "
      "\"failed\": %zu, \"rows\": %zu, \"links_observed\": %zu,\n",
      r.stats.total, r.stats.answered, r.stats.degraded, r.stats.failed,
      r.stats.rows, r.stats.links_observed.size());
  std::printf("     \"virtual_seconds\": %.3f,\n", r.virtual_seconds);
  std::printf("     \"metrics\": {");
  bool first = true;
  for (const auto& [name, value] : r.delta.counters) {
    if (name.rfind("fed.", 0) != 0 || value == 0) continue;
    std::printf("%s\"%s\": %llu", first ? "" : ", ",
                EscapeJson(name).c_str(),
                static_cast<unsigned long long>(value));
    first = false;
  }
  auto hist = r.delta.histograms.find("fed.attempt_seconds");
  if (hist != r.delta.histograms.end() && hist->second.count > 0) {
    std::printf("%s\"fed.attempt_seconds.count\": %llu, "
                "\"fed.attempt_seconds.mean\": %.4f",
                first ? "" : ", ",
                static_cast<unsigned long long>(hist->second.count),
                hist->second.Mean());
  }
  std::printf("}}%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  InitLoggingFromEnv();
  bench::TelemetrySidecar telemetry("bench_federated_faults");
  const size_t num_queries = bench::ParseUintArg(argc, argv, 1, 200, "queries");
  const uint64_t seed = bench::ParseUintArg(argc, argv, 2, 7, "seed");

  Stopwatch generate_watch;
  const datagen::ScenarioConfig scenario = datagen::DbpediaNytimes();
  const datagen::GeneratedPair pair = datagen::GenerateScenario(scenario);
  const fed::LinkIndex links =
      simulation::LinksFromPairs(pair, pair.truth.AsVector());
  const simulation::FederatedWorkload workload =
      simulation::MakeFederatedWorkload(pair, num_queries, 424242);
  telemetry.AddPhase("generate", generate_watch.ElapsedSeconds());

  const struct {
    const char* name;
    fed::FaultProfile profile;
  } scenarios[] = {
      {"healthy", fed::FaultProfile::Healthy()},
      {"slow", fed::FaultProfile::Slow()},
      {"flaky", fed::FaultProfile::Flaky()},
      {"one_endpoint_down", fed::FaultProfile::Down()},
  };

  std::vector<ScenarioResult> results;
  for (const auto& s : scenarios) {
    Stopwatch watch;
    results.push_back(
        RunScenario(s.name, s.profile, pair, links, workload, seed));
    telemetry.AddPhase(s.name, watch.ElapsedSeconds());
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"federated_faults\",\n");
  std::printf("  \"queries\": %zu,\n", workload.queries.size());
  std::printf("  \"seed\": %llu,\n", static_cast<unsigned long long>(seed));
  std::printf("  \"scenarios\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    PrintScenario(results[i], /*last=*/i + 1 == results.size());
  }
  std::printf("  ]\n}\n");
  return 0;
}
