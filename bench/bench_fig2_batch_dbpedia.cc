// Figure 2: quality of links between DBpedia and NYTimes, Drugbank, and
// Lexvo in batch mode (episode size 1000). Each sub-figure's P/R/F series
// is printed per episode, with the relaxed (5%) and strict convergence
// markers reported as in the paper's vertical lines.

#include "bench_util.h"
#include "datagen/scenarios.h"

int main() {
  using namespace alex;
  InitLoggingFromEnv();
  bench::TelemetrySidecar telemetry("bench_fig2_batch_dbpedia");
  const struct {
    const char* title;
    datagen::ScenarioConfig scenario;
  } figures[] = {
      {"Figure 2(a): DBpedia - NYTimes", datagen::DbpediaNytimes()},
      {"Figure 2(b): DBpedia - Drugbank", datagen::DbpediaDrugbank()},
      {"Figure 2(c): DBpedia - Lexvo", datagen::DbpediaLexvo()},
  };
  for (const auto& fig : figures) {
    simulation::Simulation sim(bench::MakeConfig(fig.scenario, 1000));
    const simulation::RunResult result = sim.Run();
    telemetry.AddRun(fig.scenario.name, result);
    bench::PrintQualityFigure(fig.title, result);
  }
  return 0;
}
