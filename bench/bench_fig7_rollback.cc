// Figure 7: effect of the rollback optimization (Section 6.3) on
// DBpedia-NYTimes: (a) overall quality without rollback; (b) a partition
// that recovers from wrong decisions; (c) a partition that does not.
// Per-partition traces are captured with the simulation observer.

#include <map>

#include "bench_util.h"
#include "core/metrics.h"
#include "datagen/scenarios.h"

int main() {
  using namespace alex;
  InitLoggingFromEnv();
  bench::TelemetrySidecar telemetry("bench_fig7_rollback");
  simulation::SimulationConfig config =
      bench::MakeConfig(datagen::DbpediaNytimes(), 1000);
  config.alex.use_rollback = false;
  config.alex.max_episodes = 60;  // Paper runs to its cap of 100.
  // The paper's exploration actions are unbounded; the engine's per-action
  // yield cap would otherwise mask most of the damage rollback exists to
  // undo, so this experiment lifts it for both arms.
  config.alex.max_links_per_action = 1000000;

  // Per-partition F-measure traces, collected per episode.
  std::map<size_t, std::vector<double>> partition_f;
  feedback::GroundTruth truth_copy;  // Filled on first observation.
  simulation::Simulation sim(config);
  std::vector<feedback::GroundTruth> partition_truth;
  sim.set_observer([&](size_t, const core::PartitionedAlex& alex) {
    if (partition_truth.empty()) {
      for (size_t p = 0; p < alex.num_partitions(); ++p) {
        partition_truth.push_back(
            simulation::Simulation::PartitionTruth(sim.data().truth, alex, p));
      }
    }
    for (size_t p = 0; p < alex.num_partitions(); ++p) {
      const auto m =
          core::ComputeMetrics(alex.engine(p).candidates(), partition_truth[p]);
      partition_f[p].push_back(m.f_measure);
    }
  });
  const simulation::RunResult without_rb = sim.Run();
  telemetry.AddRun("without_rollback", without_rb);

  bench::PrintQualityFigure("Figure 7(a): overall quality WITHOUT rollback",
                            without_rb);

  // Pick the best-recovering and the worst partition by final F.
  size_t best = 0, worst = 0;
  for (const auto& [p, series] : partition_f) {
    if (series.empty()) continue;
    if (series.back() > partition_f[best].back()) best = p;
    if (series.back() < partition_f[worst].back()) worst = p;
  }
  std::printf("\n=== Figure 7(b): a partition that recovers (partition %zu, "
              "no rollback) ===\n%8s %10s\n", best, "episode", "f-measure");
  for (size_t i = 0; i < partition_f[best].size(); ++i) {
    std::printf("%8zu %10.3f\n", i + 1, partition_f[best][i]);
  }
  std::printf("\n=== Figure 7(c): a partition that does not recover "
              "(partition %zu, no rollback) ===\n%8s %10s\n", worst,
              "episode", "f-measure");
  for (size_t i = 0; i < partition_f[worst].size(); ++i) {
    std::printf("%8zu %10.3f\n", i + 1, partition_f[worst][i]);
  }

  // Contrast: the same configuration WITH rollback (the default).
  simulation::SimulationConfig with_config =
      bench::MakeConfig(datagen::DbpediaNytimes(), 1000);
  with_config.alex.max_episodes = 60;
  with_config.alex.max_links_per_action = 1000000;
  const simulation::RunResult with_rb =
      simulation::Simulation(with_config).Run();
  telemetry.AddRun("with_rollback", with_rb);
  bench::PrintComparisonFigure("Rollback contrast", "F-measure",
                               {"with_rollback", "without_rollback"},
                               {&with_rb, &without_rb}, bench::ExtractF);
  return 0;
}
