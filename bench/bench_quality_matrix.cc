// Linker × policy quality matrix: every seed linker crossed with every
// policy on one scenario, same feedback budget, so the four quality curves
// are directly comparable. The PARIS + epsilon-greedy cell is the paper's
// setup and doubles as the regression anchor: with the default scenario its
// curve must match the pre-refactor concrete path bit for bit (the
// interface_equivalence test pins the same digests).
//
// Each cell also exercises the durable-checkpoint path end to end: the run
// is repeated with a mid-run kill and resumed from its newest snapshot, and
// the resumed series must equal the uninterrupted one episode for episode —
// per combination, since policy and linker state both live in the blob.
//
// Usage:
//   bench_quality_matrix [scenario] [episode_size] [max_episodes]
//                        [relation_density]
//
// Output: the side-by-side F/P/R figures on stdout, a machine-readable
// bench_quality_matrix.json with the full per-cell curves, and the standard
// telemetry sidecar.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "datagen/scenarios.h"
#include "paris/seed_linkers.h"
#include "rl/adaptive_policy.h"
#include "simulation/simulation.h"

namespace {

using namespace alex;

struct Cell {
  std::string linker;
  std::string policy;
  simulation::RunResult result;
  bool checkpoint_roundtrip = false;
};

/// True when the two series agree on every metric field, episode for
/// episode (wall time excluded).
bool SameSeries(const std::vector<simulation::EpisodeRecord>& a,
                const std::vector<simulation::EpisodeRecord>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].episode != b[i].episode ||
        a[i].metrics.precision != b[i].metrics.precision ||
        a[i].metrics.recall != b[i].metrics.recall ||
        a[i].metrics.f_measure != b[i].metrics.f_measure ||
        a[i].metrics.correct != b[i].metrics.correct ||
        a[i].metrics.candidates != b[i].metrics.candidates) {
      return false;
    }
  }
  return true;
}

simulation::SimulationConfig CellConfig(const datagen::ScenarioConfig& scenario,
                                        size_t episode_size,
                                        size_t max_episodes,
                                        const std::string& linker,
                                        const std::string& policy) {
  simulation::SimulationConfig config;
  config.scenario = scenario;
  config.alex.episode_size = episode_size;
  config.alex.max_episodes = max_episodes;
  config.linker = linker;
  config.alex.policy = policy;
  return config;
}

/// Kill-and-resume round trip for one cell; true iff the resumed series is
/// indistinguishable from the uninterrupted reference.
bool CheckpointRoundTrip(const simulation::SimulationConfig& base,
                         const simulation::RunResult& reference,
                         const std::string& tag) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / ("alex_quality_matrix_" + tag);
  fs::remove_all(dir);

  simulation::SimulationConfig trunc = base;
  trunc.alex.max_episodes = base.alex.max_episodes / 2;
  trunc.checkpoint_every_k_episodes = 2;
  trunc.checkpoint_keep = 1;
  trunc.checkpoint_dir = dir.string();
  const simulation::RunResult truncated = simulation::Simulation(trunc).Run();
  if (!truncated.resume_error.ok()) return false;

  simulation::SimulationConfig res = base;
  res.resume_from = dir.string();
  const simulation::RunResult resumed = simulation::Simulation(res).Run();
  fs::remove_all(dir);
  if (!resumed.resume_error.ok() || resumed.resumed_from_episode == 0) {
    std::fprintf(stderr, "[%s] resume failed: %s\n", tag.c_str(),
                 resumed.resume_error.ToString().c_str());
    return false;
  }
  return SameSeries(reference.episodes, resumed.episodes);
}

void WriteMatrixJson(const std::string& path, const std::string& scenario,
                     const std::vector<Cell>& cells) {
  std::ofstream out(path);
  out << "{\n  \"scenario\": \"" << EscapeJson(scenario) << "\",\n"
      << "  \"cells\": [";
  for (size_t c = 0; c < cells.size(); ++c) {
    const Cell& cell = cells[c];
    out << (c == 0 ? "\n" : ",\n");
    out << "    {\"linker\": \"" << EscapeJson(cell.linker) << "\", "
        << "\"policy\": \"" << EscapeJson(cell.policy) << "\",\n"
        << "     \"initial_links\": " << cell.result.initial_links << ", "
        << "\"new_links_discovered\": " << cell.result.new_links_discovered
        << ", \"converged_episode\": " << cell.result.converged_episode
        << ",\n     \"checkpoint_roundtrip\": "
        << (cell.checkpoint_roundtrip ? "true" : "false")
        << ",\n     \"episodes\": [";
    for (size_t i = 0; i < cell.result.episodes.size(); ++i) {
      const auto& r = cell.result.episodes[i];
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "{\"episode\": %zu, \"precision\": %.6f, "
                    "\"recall\": %.6f, \"f\": %.6f}",
                    r.episode, r.metrics.precision, r.metrics.recall,
                    r.metrics.f_measure);
      out << (i == 0 ? "" : ", ") << buf;
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  alex::InitLoggingFromEnv();
  alex::bench::TelemetrySidecar telemetry("bench_quality_matrix");

  const std::string scenario_name = argc > 1 ? argv[1] : "dbpedia_swdf";
  datagen::ScenarioConfig scenario = datagen::ScenarioByName(scenario_name);
  if (scenario.name.empty()) {
    std::fprintf(stderr, "unknown scenario '%s'\n", scenario_name.c_str());
    return 1;
  }
  const size_t episode_size =
      bench::ParseUintArg(argc, argv, 2, 500, "episode size");
  const size_t max_episodes =
      bench::ParseUintArg(argc, argv, 3, 20, "episode budget", 2);
  // Optional relation layer so SiGMa's neighborhood propagation has edges to
  // walk; 0 keeps the scenario byte-identical to the historical generator
  // (and the paris/epsilon-greedy cell comparable to the older figures).
  if (argc > 4) scenario.relation_density = std::strtod(argv[4], nullptr);

  std::printf("Quality matrix: linker x policy on %s (episode_size=%zu, "
              "max_episodes=%zu, relation_density=%.2f)\n\n",
              scenario.name.c_str(), episode_size, max_episodes,
              scenario.relation_density);

  std::vector<Cell> cells;
  for (const std::string& linker : paris::KnownLinkerTags()) {
    for (std::string_view policy :
         {core::kDefaultPolicyTag, rl::kAdaptiveFeaturePolicyTag}) {
      Cell cell;
      cell.linker = linker;
      cell.policy = std::string(policy);
      const std::string tag = linker + "+" + cell.policy;

      const simulation::SimulationConfig config = CellConfig(
          scenario, episode_size, max_episodes, cell.linker, cell.policy);
      cell.result = simulation::Simulation(config).Run();
      telemetry.AddRun(tag, cell.result);

      Stopwatch roundtrip_watch;
      cell.checkpoint_roundtrip =
          CheckpointRoundTrip(config, cell.result, tag);
      telemetry.AddPhase("roundtrip_" + tag, roundtrip_watch.ElapsedSeconds());

      const auto& final_metrics = cell.result.episodes.empty()
                                      ? core::LinkSetMetrics{}
                                      : cell.result.episodes.back().metrics;
      std::printf("%-24s final: P=%.3f R=%.3f F=%.3f links=%zu->%zu "
                  "ckpt_roundtrip=%s\n",
                  tag.c_str(), final_metrics.precision, final_metrics.recall,
                  final_metrics.f_measure, cell.result.initial_links,
                  final_metrics.candidates,
                  cell.checkpoint_roundtrip ? "ok" : "FAIL");
      telemetry.AddField("final_f_" + tag, final_metrics.f_measure);
      cells.push_back(std::move(cell));
    }
  }

  std::vector<std::string> labels;
  std::vector<const simulation::RunResult*> runs;
  for (const Cell& cell : cells) {
    labels.push_back(cell.linker + "+" + cell.policy);
    runs.push_back(&cell.result);
  }
  bench::PrintComparisonFigure("Quality matrix", "f-measure", labels, runs,
                               bench::ExtractF);
  bench::PrintComparisonFigure("Quality matrix", "precision", labels, runs,
                               bench::ExtractPrecision);
  bench::PrintComparisonFigure("Quality matrix", "recall", labels, runs,
                               bench::ExtractRecall);

  WriteMatrixJson("bench_quality_matrix.json", scenario.name, cells);
  std::printf("\n# per-cell curves -> bench_quality_matrix.json\n");

  // A cell whose round trip diverged is a checkpoint bug; fail the bench so
  // CI smoke catches it.
  for (const Cell& cell : cells) {
    if (!cell.checkpoint_roundtrip) return 3;
  }
  return 0;
}
