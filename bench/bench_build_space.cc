// Build-phase scalability bench: measures link-space construction wall time
// and candidate counts at 1/2/4/8 partitions, with the legacy per-partition
// blocking (each partition re-inverts the right dataset) as the baseline and
// the shared-BlockingIndex build as the optimized mode. Output is JSON so
// the speedup is measured, not asserted: legacy total time grows with the
// partition count (P× the blocking work), shared total stays flat and the
// slowest partition shrinks as partitions get smaller.
//
// A second, hardware-conscious sweep (mode=topology) measures the shared
// build under the four {pinned, unpinned} × {arena, global-allocator}
// execution configurations at each partition count. Every configuration's
// finished spaces are digested (pairs, feature keys, feature score bits,
// partition by partition) and the digests must agree exactly — pinning and
// arena allocation are performance levers, never semantic ones — or the
// bench exits 1. The detected topology (cores, NUMA nodes, whether
// affinity syscalls work) is embedded in the JSON so a 1-core CI run is
// distinguishable from a real multi-core measurement.
//
// Usage: bench_build_space [scenario_name] [reps] [mode]   (defaults:
// dbpedia_nytimes — the paper's batch-mode scenario of Figures 2a and 5 —
// 3 repetitions reporting min-of-N wall times, and mode=all; mode=classic
// runs only the legacy-vs-shared sweep, mode=topology only the
// hardware-conscious sweep. CI smoke runs `bench_build_space
// dbpedia_nytimes 1 topology` reduced.)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/partitioned.h"
#include "datagen/generator.h"
#include "datagen/scenarios.h"
#include "exec/topology.h"

#include "bench_util.h"

namespace {

struct RunRecord {
  size_t partitions = 0;
  bool shared = false;
  double total_seconds = 0.0;
  double max_partition_seconds = 0.0;
  double shared_index_seconds = 0.0;
  alex::core::LinkSpace::BuildStats stats;
};

/// FNV-1a over every observable bit of the finished spaces: pair keys in
/// canonical order and each pair's feature keys and raw score bits,
/// partition by partition. Two builds digest equal iff they produced
/// bit-identical spaces.
uint64_t DigestSpaces(const alex::core::PartitionedAlex& alex) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  for (size_t p = 0; p < alex.num_partitions(); ++p) {
    const alex::core::LinkSpace& space = alex.space(p);
    mix(space.size());
    for (alex::core::PairKey pair : space.pairs()) {
      mix(pair);
      const alex::core::FeatureSet* fs = space.FeaturesOf(pair);
      for (const alex::core::FeatureValue& f : *fs) {
        mix(f.key);
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(f.score));
        std::memcpy(&bits, &f.score, sizeof(bits));
        mix(bits);
      }
    }
  }
  return h;
}

RunRecord MeasureBuild(const alex::datagen::GeneratedPair& pair,
                       size_t partitions, bool shared, size_t reps) {
  // Builds are deterministic; wall-time noise is scheduler/load. Min-of-N
  // is the standard way to report the build's actual cost.
  RunRecord record;
  record.partitions = partitions;
  record.shared = shared;
  for (size_t rep = 0; rep < reps; ++rep) {
    alex::core::AlexConfig config;
    config.num_partitions = partitions;
    config.shared_blocking_index = shared;
    alex::core::PartitionedAlex alex(&pair.left, &pair.right, config);
    alex::Stopwatch watch;
    const std::vector<double> seconds = alex.Build();
    const double total = watch.ElapsedSeconds();
    double max_partition = 0.0;
    for (double s : seconds) max_partition = std::max(max_partition, s);
    if (rep == 0 || total < record.total_seconds) {
      record.total_seconds = total;
      record.shared_index_seconds = alex.shared_index_seconds();
    }
    if (rep == 0 || max_partition < record.max_partition_seconds) {
      record.max_partition_seconds = max_partition;
    }
    record.stats = alex.AggregatedSpaceStats();  // Identical across reps.
  }
  return record;
}

struct TopoRecord {
  size_t partitions = 0;
  bool pinned = false;
  bool arena = false;
  double total_seconds = 0.0;
  double max_partition_seconds = 0.0;
  uint64_t digest = 0;
};

TopoRecord MeasureTopoBuild(const alex::datagen::GeneratedPair& pair,
                            size_t partitions, bool pinned, bool arena,
                            size_t reps) {
  TopoRecord record;
  record.partitions = partitions;
  record.pinned = pinned;
  record.arena = arena;
  for (size_t rep = 0; rep < reps; ++rep) {
    alex::core::AlexConfig config;
    config.num_partitions = partitions;
    config.shared_blocking_index = true;
    config.pin_threads = pinned;
    config.arena_build_alloc = arena;
    alex::core::PartitionedAlex alex(&pair.left, &pair.right, config);
    alex::Stopwatch watch;
    const std::vector<double> seconds = alex.Build();
    const double total = watch.ElapsedSeconds();
    double max_partition = 0.0;
    for (double s : seconds) max_partition = std::max(max_partition, s);
    if (rep == 0 || total < record.total_seconds) {
      record.total_seconds = total;
    }
    if (rep == 0 || max_partition < record.max_partition_seconds) {
      record.max_partition_seconds = max_partition;
    }
    record.digest = DigestSpaces(alex);  // Deterministic across reps.
  }
  return record;
}

void PrintRecord(const RunRecord& r, bool last) {
  std::printf(
      "    {\"partitions\": %zu, \"mode\": \"%s\", \"total_seconds\": %.4f, "
      "\"max_partition_seconds\": %.4f, \"shared_index_seconds\": %.4f, "
      "\"candidate_pairs\": %llu, \"kept_pairs\": %llu, "
      "\"features_indexed\": %llu}%s\n",
      r.partitions, r.shared ? "shared" : "legacy", r.total_seconds,
      r.max_partition_seconds, r.shared_index_seconds,
      static_cast<unsigned long long>(r.stats.candidate_pairs),
      static_cast<unsigned long long>(r.stats.kept_pairs),
      static_cast<unsigned long long>(r.stats.features_indexed),
      last ? "" : ",");
}

void PrintTopoRecord(const TopoRecord& r, bool last) {
  std::printf(
      "    {\"partitions\": %zu, \"pinned\": %s, \"arena\": %s, "
      "\"total_seconds\": %.4f, \"max_partition_seconds\": %.4f, "
      "\"digest\": \"%016llx\"}%s\n",
      r.partitions, r.pinned ? "true" : "false", r.arena ? "true" : "false",
      r.total_seconds, r.max_partition_seconds,
      static_cast<unsigned long long>(r.digest), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alex;
  InitLoggingFromEnv();
  bench::TelemetrySidecar telemetry("bench_build_space");
  const std::string scenario_name =
      argc > 1 ? argv[1] : std::string("dbpedia_nytimes");
  const size_t reps = bench::ParseUintArg(argc, argv, 2, 3, "reps");
  const std::string mode = argc > 3 ? argv[3] : std::string("all");
  const bool run_classic = mode == "all" || mode == "classic";
  const bool run_topology = mode == "all" || mode == "topology";
  if (!run_classic && !run_topology) {
    std::fprintf(stderr, "unknown mode: %s (want all|classic|topology)\n",
                 mode.c_str());
    return 2;
  }
  datagen::ScenarioConfig scenario = datagen::ScenarioByName(scenario_name);
  if (scenario.name.empty()) {
    std::fprintf(stderr, "unknown scenario: %s\n", scenario_name.c_str());
    return 1;
  }
  Stopwatch generate_watch;
  const datagen::GeneratedPair pair = datagen::GenerateScenario(scenario);
  telemetry.AddPhase("generate", generate_watch.ElapsedSeconds());

  const std::vector<size_t> partition_counts = {1, 2, 4, 8};
  std::vector<RunRecord> legacy_runs;
  std::vector<RunRecord> shared_runs;
  if (run_classic) {
    for (size_t partitions : partition_counts) {
      // The sidecar phase records the full wall time of each measured
      // section (all reps), so the phases stay disjoint and sum to ~the
      // bench wall.
      Stopwatch legacy_watch;
      legacy_runs.push_back(
          MeasureBuild(pair, partitions, /*shared=*/false, reps));
      telemetry.AddPhase("legacy_p" + std::to_string(partitions),
                         legacy_watch.ElapsedSeconds());
      Stopwatch shared_watch;
      shared_runs.push_back(
          MeasureBuild(pair, partitions, /*shared=*/true, reps));
      telemetry.AddPhase("shared_p" + std::to_string(partitions),
                         shared_watch.ElapsedSeconds());
    }
  }

  // Hardware-conscious sweep: {unpinned, pinned} × {global, arena} per
  // partition count, baseline (unpinned+global) first so the speedup
  // denominators come from the same sweep.
  std::vector<TopoRecord> topo_runs;
  bool equivalent = true;
  if (run_topology) {
    const struct {
      bool pinned;
      bool arena;
      const char* tag;
    } combos[] = {{false, false, "base"},
                  {false, true, "arena"},
                  {true, false, "pinned"},
                  {true, true, "pinned_arena"}};
    for (size_t partitions : partition_counts) {
      Stopwatch topo_watch;
      const size_t first = topo_runs.size();
      for (const auto& combo : combos) {
        topo_runs.push_back(MeasureTopoBuild(pair, partitions, combo.pinned,
                                             combo.arena, reps));
        if (topo_runs.back().digest != topo_runs[first].digest) {
          equivalent = false;
          std::fprintf(stderr,
                       "digest mismatch at %zu partitions: %s produced "
                       "%016llx, base produced %016llx\n",
                       partitions, combo.tag,
                       static_cast<unsigned long long>(topo_runs.back().digest),
                       static_cast<unsigned long long>(topo_runs[first].digest));
        }
      }
      telemetry.AddPhase("topology_p" + std::to_string(partitions),
                         topo_watch.ElapsedSeconds());
      // Headline sidecar fields: what the hardware-conscious configuration
      // buys over the baseline at this partition count.
      const TopoRecord& base = topo_runs[first];
      const TopoRecord& best = topo_runs[first + 3];  // pinned_arena
      telemetry.AddField(
          "topology_speedup_pinned_arena_p" + std::to_string(partitions),
          base.total_seconds / std::max(best.total_seconds, 1e-12));
      telemetry.AddField(
          "topology_speedup_arena_p" + std::to_string(partitions),
          base.total_seconds /
              std::max(topo_runs[first + 1].total_seconds, 1e-12));
    }
    telemetry.AddField("topology_equivalent",
                       static_cast<uint64_t>(equivalent ? 1 : 0));
  }

  // One extra traced 4-partition shared build; the sidecar writes it out as
  // bench_build_space.trace.json (Chrome trace_event / Perfetto format).
  if (run_classic) {
    obs::TraceRecorder::Global().SetEnabled(true);
    Stopwatch traced_watch;
    MeasureBuild(pair, 4, /*shared=*/true, /*reps=*/1);
    telemetry.AddPhase("traced_shared_p4", traced_watch.ElapsedSeconds());
    obs::TraceRecorder::Global().SetEnabled(false);
  }

  const exec::CpuTopology& topo = exec::CpuTopology::Detect();
  std::printf("{\n");
  std::printf("  \"bench\": \"build_space\",\n");
  std::printf("  \"scenario\": \"%s\",\n", scenario.name.c_str());
  std::printf("  \"seed\": %llu,\n",
              static_cast<unsigned long long>(scenario.seed));
  std::printf("  \"left_entities\": %zu,\n", pair.left.num_entities());
  std::printf("  \"right_entities\": %zu,\n", pair.right.num_entities());
  std::printf(
      "  \"topology\": {\"cores\": %zu, \"nodes\": %zu, "
      "\"pinning_supported\": %s},\n",
      topo.num_cpus(), topo.num_nodes(),
      topo.affinity_supported() ? "true" : "false");
  if (run_classic) {
    std::printf("  \"runs\": [\n");
    for (size_t i = 0; i < partition_counts.size(); ++i) {
      PrintRecord(legacy_runs[i], /*last=*/false);
      PrintRecord(shared_runs[i],
                  /*last=*/i + 1 == partition_counts.size());
    }
    std::printf("  ],\n");
    std::printf("  \"speedup_shared_vs_legacy\": [\n");
    for (size_t i = 0; i < partition_counts.size(); ++i) {
      std::printf(
          "    {\"partitions\": %zu, \"speedup\": %.2f}%s\n",
          partition_counts[i],
          legacy_runs[i].total_seconds / shared_runs[i].total_seconds,
          i + 1 == partition_counts.size() ? "" : ",");
    }
    std::printf("  ]%s\n", run_topology ? "," : "");
  }
  if (run_topology) {
    std::printf("  \"topology_runs\": [\n");
    for (size_t i = 0; i < topo_runs.size(); ++i) {
      PrintTopoRecord(topo_runs[i], /*last=*/i + 1 == topo_runs.size());
    }
    std::printf("  ],\n");
    std::printf("  \"equivalent\": %s\n", equivalent ? "true" : "false");
  }
  std::printf("}\n");
  return equivalent ? 0 : 1;
}
