// Build-phase scalability bench: measures link-space construction wall time
// and candidate counts at 1/2/4/8 partitions, with the legacy per-partition
// blocking (each partition re-inverts the right dataset) as the baseline and
// the shared-BlockingIndex build as the optimized mode. Output is JSON so
// the speedup is measured, not asserted: legacy total time grows with the
// partition count (P× the blocking work), shared total stays flat and the
// slowest partition shrinks as partitions get smaller.
//
// Usage: bench_build_space [scenario_name] [reps]   (defaults:
// dbpedia_nytimes — the paper's batch-mode scenario of Figures 2a and 5 —
// and 3 repetitions, reporting min-of-N wall times).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "core/partitioned.h"
#include "datagen/generator.h"
#include "datagen/scenarios.h"

#include "bench_util.h"

namespace {

struct RunRecord {
  size_t partitions = 0;
  bool shared = false;
  double total_seconds = 0.0;
  double max_partition_seconds = 0.0;
  double shared_index_seconds = 0.0;
  alex::core::LinkSpace::BuildStats stats;
};

RunRecord MeasureBuild(const alex::datagen::GeneratedPair& pair,
                       size_t partitions, bool shared, size_t reps) {
  // Builds are deterministic; wall-time noise is scheduler/load. Min-of-N
  // is the standard way to report the build's actual cost.
  RunRecord record;
  record.partitions = partitions;
  record.shared = shared;
  for (size_t rep = 0; rep < reps; ++rep) {
    alex::core::AlexConfig config;
    config.num_partitions = partitions;
    config.shared_blocking_index = shared;
    alex::core::PartitionedAlex alex(&pair.left, &pair.right, config);
    alex::Stopwatch watch;
    const std::vector<double> seconds = alex.Build();
    const double total = watch.ElapsedSeconds();
    double max_partition = 0.0;
    for (double s : seconds) max_partition = std::max(max_partition, s);
    if (rep == 0 || total < record.total_seconds) {
      record.total_seconds = total;
      record.shared_index_seconds = alex.shared_index_seconds();
    }
    if (rep == 0 || max_partition < record.max_partition_seconds) {
      record.max_partition_seconds = max_partition;
    }
    record.stats = alex.AggregatedSpaceStats();  // Identical across reps.
  }
  return record;
}

void PrintRecord(const RunRecord& r, bool last) {
  std::printf(
      "    {\"partitions\": %zu, \"mode\": \"%s\", \"total_seconds\": %.4f, "
      "\"max_partition_seconds\": %.4f, \"shared_index_seconds\": %.4f, "
      "\"candidate_pairs\": %llu, \"kept_pairs\": %llu, "
      "\"features_indexed\": %llu}%s\n",
      r.partitions, r.shared ? "shared" : "legacy", r.total_seconds,
      r.max_partition_seconds, r.shared_index_seconds,
      static_cast<unsigned long long>(r.stats.candidate_pairs),
      static_cast<unsigned long long>(r.stats.kept_pairs),
      static_cast<unsigned long long>(r.stats.features_indexed),
      last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alex;
  InitLoggingFromEnv();
  bench::TelemetrySidecar telemetry("bench_build_space");
  const std::string scenario_name =
      argc > 1 ? argv[1] : std::string("dbpedia_nytimes");
  const size_t reps = bench::ParseUintArg(argc, argv, 2, 3, "reps");
  datagen::ScenarioConfig scenario = datagen::ScenarioByName(scenario_name);
  if (scenario.name.empty()) {
    std::fprintf(stderr, "unknown scenario: %s\n", scenario_name.c_str());
    return 1;
  }
  Stopwatch generate_watch;
  const datagen::GeneratedPair pair = datagen::GenerateScenario(scenario);
  telemetry.AddPhase("generate", generate_watch.ElapsedSeconds());

  const std::vector<size_t> partition_counts = {1, 2, 4, 8};
  std::vector<RunRecord> legacy_runs;
  std::vector<RunRecord> shared_runs;
  for (size_t partitions : partition_counts) {
    // The sidecar phase records the full wall time of each measured section
    // (all reps), so the phases stay disjoint and sum to ~the bench wall.
    Stopwatch legacy_watch;
    legacy_runs.push_back(
        MeasureBuild(pair, partitions, /*shared=*/false, reps));
    telemetry.AddPhase("legacy_p" + std::to_string(partitions),
                       legacy_watch.ElapsedSeconds());
    Stopwatch shared_watch;
    shared_runs.push_back(
        MeasureBuild(pair, partitions, /*shared=*/true, reps));
    telemetry.AddPhase("shared_p" + std::to_string(partitions),
                       shared_watch.ElapsedSeconds());
  }

  // One extra traced 4-partition shared build; the sidecar writes it out as
  // bench_build_space.trace.json (Chrome trace_event / Perfetto format).
  {
    obs::TraceRecorder::Global().SetEnabled(true);
    Stopwatch traced_watch;
    MeasureBuild(pair, 4, /*shared=*/true, /*reps=*/1);
    telemetry.AddPhase("traced_shared_p4", traced_watch.ElapsedSeconds());
    obs::TraceRecorder::Global().SetEnabled(false);
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"build_space\",\n");
  std::printf("  \"scenario\": \"%s\",\n", scenario.name.c_str());
  std::printf("  \"seed\": %llu,\n",
              static_cast<unsigned long long>(scenario.seed));
  std::printf("  \"left_entities\": %zu,\n", pair.left.num_entities());
  std::printf("  \"right_entities\": %zu,\n", pair.right.num_entities());
  std::printf("  \"runs\": [\n");
  for (size_t i = 0; i < partition_counts.size(); ++i) {
    PrintRecord(legacy_runs[i], /*last=*/false);
    PrintRecord(shared_runs[i],
                /*last=*/i + 1 == partition_counts.size());
  }
  std::printf("  ],\n");
  std::printf("  \"speedup_shared_vs_legacy\": [\n");
  for (size_t i = 0; i < partition_counts.size(); ++i) {
    std::printf(
        "    {\"partitions\": %zu, \"speedup\": %.2f}%s\n",
        partition_counts[i],
        legacy_runs[i].total_seconds / shared_runs[i].total_seconds,
        i + 1 == partition_counts.size() ? "" : ",");
  }
  std::printf("  ]\n");
  std::printf("}\n");
  return 0;
}
