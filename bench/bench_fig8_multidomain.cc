// Figure 8 (Appendix B): stress test linking the two multi-domain data sets
// (DBpedia - OpenCyc), the largest and most heterogeneous pair, batch mode.

#include "bench_util.h"
#include "datagen/scenarios.h"

int main() {
  using namespace alex;
  InitLoggingFromEnv();
  bench::TelemetrySidecar telemetry("bench_fig8_multidomain");
  simulation::Simulation sim(
      bench::MakeConfig(datagen::DbpediaOpencyc(), 1000));
  const simulation::RunResult result = sim.Run();
  telemetry.AddRun("dbpedia_opencyc", result);
  bench::PrintQualityFigure(
      "Figure 8: quality of links between DBpedia and OpenCyc", result);
  std::printf(
      "paper reference: PARIS seeds 12227 correct links, ALEX discovers "
      "23476 more, converging at episode 20 (relaxed 7) with F > 0.9\n");
  return 0;
}
