// Figure 10 (Appendix D): sensitivity to the step size (exploration band
// half-width) on DBpedia-NYTimes: (a) F-measure, (b) recall, (c) percent of
// negative feedback for the first 10 episodes, plus the execution-time
// comparison discussed in the text (larger steps explore more junk and take
// longer).

#include "bench_util.h"
#include "datagen/scenarios.h"

int main() {
  using namespace alex;
  InitLoggingFromEnv();
  bench::TelemetrySidecar telemetry("bench_fig10_step_size");
  const double steps[] = {0.01, 0.05, 0.1};
  std::vector<simulation::RunResult> results;
  std::vector<std::string> labels;
  for (double step : steps) {
    simulation::SimulationConfig config =
        bench::MakeConfig(datagen::DbpediaNytimes(), 1000);
    config.alex.step_size = step;
    config.alex.max_episodes = 40;
    results.push_back(simulation::Simulation(config).Run());
    char label[32];
    std::snprintf(label, sizeof(label), "step_%.2f", step);
    labels.push_back(label);
    telemetry.AddRun(labels.back(), results.back());
  }
  std::vector<const simulation::RunResult*> ptrs;
  for (const auto& r : results) ptrs.push_back(&r);

  bench::PrintComparisonFigure("Figure 10(a)", "F-measure", labels, ptrs,
                               bench::ExtractF);
  bench::PrintComparisonFigure("Figure 10(b)", "recall", labels, ptrs,
                               bench::ExtractRecall);
  bench::PrintComparisonFigure("Figure 10(c)", "negative feedback %", labels,
                               ptrs, bench::ExtractNegPercent,
                               /*max_episodes=*/11);

  std::printf("\nexecution time (total seconds, including space build):\n");
  for (size_t i = 0; i < results.size(); ++i) {
    std::printf("  %s: %.2fs (slowest partition build %.2fs)\n",
                labels[i].c_str(), results[i].total_seconds,
                results[i].build_seconds_max);
  }
  return 0;
}
