#include "datagen/generator.h"

#include <sstream>

#include <gtest/gtest.h>

#include "datagen/scenarios.h"
#include "rdf/ntriples.h"

namespace alex::datagen {
namespace {

ScenarioConfig SmallConfig() {
  ScenarioConfig c;
  c.name = "small";
  c.seed = 5;
  c.num_shared = 40;
  c.num_left_only = 20;
  c.num_right_only = 10;
  c.domains = {"person", "organization"};
  c.value_noise = 0.3;
  c.drop_attr_prob = 0.1;
  c.predicate_rename_prob = 0.3;
  c.ambiguity = 0.5;
  return c;
}

TEST(GeneratorTest, EntityCounts) {
  GeneratedPair pair = GenerateScenario(SmallConfig());
  EXPECT_EQ(pair.left.num_entities(), 60u);   // shared + left_only.
  // Right: shared + right_only + decoys (~0.5 per shared entity).
  EXPECT_GE(pair.right.num_entities(), 50u);
  EXPECT_LE(pair.right.num_entities(), 50u + 40u);
  EXPECT_EQ(pair.truth.size(), 40u);
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  GeneratedPair a = GenerateScenario(SmallConfig());
  GeneratedPair b = GenerateScenario(SmallConfig());
  ASSERT_EQ(a.left.num_triples(), b.left.num_triples());
  ASSERT_EQ(a.right.num_triples(), b.right.num_triples());
  // Byte-identical N-Triples serializations.
  std::ostringstream sa, sb;
  ASSERT_TRUE(rdf::WriteNTriples(a.left.store(), a.left.dict(), sa).ok());
  ASSERT_TRUE(rdf::WriteNTriples(b.left.store(), b.left.dict(), sb).ok());
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  ScenarioConfig c1 = SmallConfig();
  ScenarioConfig c2 = SmallConfig();
  c2.seed = 6;
  std::ostringstream s1, s2;
  GeneratedPair a = GenerateScenario(c1);
  GeneratedPair b = GenerateScenario(c2);
  ASSERT_TRUE(rdf::WriteNTriples(a.left.store(), a.left.dict(), s1).ok());
  ASSERT_TRUE(rdf::WriteNTriples(b.left.store(), b.left.dict(), s2).ok());
  EXPECT_NE(s1.str(), s2.str());
}

TEST(GeneratorTest, GroundTruthRefersToValidEntities) {
  GeneratedPair pair = GenerateScenario(SmallConfig());
  for (feedback::PairKey key : pair.truth.pairs()) {
    EXPECT_LT(feedback::PairLeft(key), pair.left.num_entities());
    EXPECT_LT(feedback::PairRight(key), pair.right.num_entities());
  }
}

TEST(GeneratorTest, EntitiesHaveTypeTriples) {
  GeneratedPair pair = GenerateScenario(SmallConfig());
  auto type_id = pair.left.dict().Lookup(
      rdf::Term::Iri(std::string(rdf::kRdfType)));
  ASSERT_TRUE(type_id.has_value());
  size_t typed = pair.left.store().CountMatches(
      rdf::TriplePattern{rdf::kInvalidTermId, *type_id, rdf::kInvalidTermId});
  EXPECT_EQ(typed, pair.left.num_entities());
}

TEST(GeneratorTest, ZeroNoiseMakesSharedEntitiesIdentical) {
  ScenarioConfig c = SmallConfig();
  c.value_noise = 0.0;
  c.drop_attr_prob = 0.0;
  c.predicate_rename_prob = 0.0;
  c.ambiguity = 0.0;
  GeneratedPair pair = GenerateScenario(c);
  // Every ground-truth pair must share all attribute values verbatim.
  for (feedback::PairKey key : pair.truth.pairs()) {
    const auto& la = pair.left.attributes(feedback::PairLeft(key));
    const auto& ra = pair.right.attributes(feedback::PairRight(key));
    ASSERT_EQ(la.size(), ra.size());
    size_t matched = 0;
    for (const rdf::Attribute& l : la) {
      const rdf::Term& lv = pair.left.dict().term(l.object);
      for (const rdf::Attribute& r : ra) {
        if (pair.right.dict().term(r.object).value == lv.value) {
          ++matched;
          break;
        }
      }
    }
    // rdf:type objects use per-KB class IRIs whose values differ, so allow
    // one mismatch.
    EXPECT_GE(matched + 1, la.size());
  }
}

TEST(GeneratorTest, HeavyAmbiguityCreatesDecoys) {
  ScenarioConfig c = SmallConfig();
  c.ambiguity = 2.0;
  GeneratedPair pair = GenerateScenario(c);
  // 2 decoys per shared entity.
  EXPECT_EQ(pair.right.num_entities(), 50u + 80u);
}

TEST(GeneratorTest, DomainNamesNonEmpty) {
  auto names = DomainNames();
  EXPECT_EQ(names.size(), 6u);
}

TEST(ScenariosTest, AllPresetsGenerate) {
  for (const ScenarioConfig& c : AllScenarios()) {
    EXPECT_FALSE(c.name.empty());
    // Generate a scaled-down copy so the test stays fast.
    ScenarioConfig small = c;
    small.num_shared = std::min<size_t>(small.num_shared, 30);
    small.num_left_only = std::min<size_t>(small.num_left_only, 30);
    small.num_right_only = std::min<size_t>(small.num_right_only, 20);
    GeneratedPair pair = GenerateScenario(small);
    EXPECT_EQ(pair.truth.size(), small.num_shared) << c.name;
    EXPECT_GT(pair.left.num_triples(), 0u) << c.name;
    EXPECT_GT(pair.right.num_triples(), 0u) << c.name;
  }
}

TEST(ScenariosTest, LookupByName) {
  EXPECT_EQ(ScenarioByName("dbpedia_nytimes").name, "dbpedia_nytimes");
  EXPECT_EQ(ScenarioByName("dbpedia_opencyc").name, "dbpedia_opencyc");
  EXPECT_TRUE(ScenarioByName("no_such_scenario").name.empty());
}

TEST(ScenariosTest, PresetsAreDistinctlySeeded) {
  auto all = AllScenarios();
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(all[i].seed, all[j].seed)
          << all[i].name << " vs " << all[j].name;
      EXPECT_NE(all[i].name, all[j].name);
    }
  }
}

}  // namespace
}  // namespace alex::datagen
