#include "core/checkpoint.h"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "datagen/scenarios.h"
#include "federation/link_index.h"
#include "obs/metrics.h"
#include "paris/seed_linkers.h"
#include "rl/adaptive_policy.h"
#include "simulation/simulation.h"

namespace alex::core::ckpt {
namespace {

namespace fs = std::filesystem;

using feedback::FeedbackItem;
using feedback::PackPair;
using rdf::Term;

/// Fresh, empty scratch directory under the test temp root.
std::string ScratchDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("alex_ckpt_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// ---------------------------------------------------------------------------
// Container format.

TEST(CheckpointFormatTest, WrapUnwrapRoundTrip) {
  const AlexConfig config;
  const uint64_t fp = ConfigFingerprint(config);
  const std::string payload = "engine bytes \x00\x01\xff here";
  const std::string blob = WrapPayload(PayloadKind::kEngine, fp, payload);
  auto out = UnwrapPayload(blob, PayloadKind::kEngine, fp);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(*out, payload);
}

TEST(CheckpointFormatTest, FingerprintSeparatesBehaviorRelevantConfigs) {
  AlexConfig a;
  AlexConfig b = a;
  EXPECT_EQ(ConfigFingerprint(a), ConfigFingerprint(b));
  b.epsilon = a.epsilon + 0.01;
  EXPECT_NE(ConfigFingerprint(a), ConfigFingerprint(b));
  b = a;
  b.num_partitions = a.num_partitions + 1;
  EXPECT_NE(ConfigFingerprint(a), ConfigFingerprint(b));
  // Thread count and episode budget do not change behaviour; resuming under
  // a different value of either must be allowed.
  b = a;
  b.num_threads = a.num_threads + 3;
  b.max_episodes = a.max_episodes + 100;
  EXPECT_EQ(ConfigFingerprint(a), ConfigFingerprint(b));
}

TEST(CheckpointFormatTest, RejectsCorruptAndMismatchedBlobs) {
  const AlexConfig config;
  const uint64_t fp = ConfigFingerprint(config);
  const std::string blob =
      WrapPayload(PayloadKind::kEngine, fp, "payload payload payload");

  // Wrong magic.
  std::string bad = blob;
  bad[0] ^= 0x40;
  EXPECT_EQ(UnwrapPayload(bad, PayloadKind::kEngine, fp).status().code(),
            StatusCode::kParseError);

  // Truncated inside the header and inside the payload.
  EXPECT_EQ(UnwrapPayload(std::string_view(blob).substr(0, 10),
                          PayloadKind::kEngine, fp)
                .status()
                .code(),
            StatusCode::kParseError);
  EXPECT_FALSE(UnwrapPayload(std::string_view(blob).substr(0, blob.size() - 3),
                             PayloadKind::kEngine, fp)
                   .ok());

  // Unknown format version (bump the u32 after the 8-byte magic).
  bad = blob;
  bad[8] = static_cast<char>(kFormatVersion + 1);
  EXPECT_EQ(UnwrapPayload(bad, PayloadKind::kEngine, fp).status().code(),
            StatusCode::kInvalidArgument);

  // Every version back to kMinFormatVersion still unwraps (the payload
  // checksum does not cover the header, so patching the version byte
  // yields a well-formed older-format blob), and the version is reported
  // to the caller for payload-level dispatch.
  for (uint32_t v = kMinFormatVersion; v <= kFormatVersion; ++v) {
    bad = blob;
    bad[8] = static_cast<char>(v);
    uint32_t reported = 0;
    auto out = UnwrapPayload(bad, PayloadKind::kEngine, fp, &reported);
    ASSERT_TRUE(out.ok()) << "version " << v << ": " << out.status();
    EXPECT_EQ(reported, v);
  }

  // Config fingerprint mismatch.
  EXPECT_EQ(UnwrapPayload(blob, PayloadKind::kEngine, fp + 1).status().code(),
            StatusCode::kInvalidArgument);

  // Payload kind mismatch.
  EXPECT_EQ(
      UnwrapPayload(blob, PayloadKind::kPartitioned, fp).status().code(),
      StatusCode::kInvalidArgument);

  // Flipped payload byte fails the checksum.
  bad = blob;
  bad[bad.size() - 1] ^= 0x01;
  EXPECT_EQ(UnwrapPayload(bad, PayloadKind::kEngine, fp).status().code(),
            StatusCode::kParseError);
}

// ---------------------------------------------------------------------------
// CheckpointManager: retention, manifest, crash-consistent layout.

TEST(CheckpointManagerTest, RetainsNewestAndPrunesOld) {
  const std::string dir = ScratchDir("retention");
  obs::Counter& writes = obs::MetricsRegistry::Global().counter("ckpt.writes");
  const uint64_t writes_before = writes.Value();

  CheckpointManager manager(dir, /*keep=*/3);
  std::vector<std::string> paths;
  for (int i = 0; i < 5; ++i) {
    std::string path;
    ASSERT_TRUE(manager.Write("blob " + std::to_string(i), &path).ok());
    paths.push_back(path);
  }
  EXPECT_EQ(writes.Value(), writes_before + 5);

  // Newest three retained, newest first; the first two pruned from disk.
  const std::vector<std::string> retained = manager.RetainedPaths();
  ASSERT_EQ(retained.size(), 3u);
  EXPECT_EQ(retained[0], paths[4]);
  EXPECT_EQ(retained[1], paths[3]);
  EXPECT_EQ(retained[2], paths[2]);
  EXPECT_FALSE(fs::exists(paths[0]));
  EXPECT_FALSE(fs::exists(paths[1]));

  auto latest = manager.LatestPath();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, paths[4]);

  auto blob = CheckpointManager::ReadBlob(*latest);
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(*blob, "blob 4");

  // ResolveLatest accepts a directory, the MANIFEST path, or a file.
  auto by_dir = CheckpointManager::ResolveLatest(dir);
  ASSERT_TRUE(by_dir.ok());
  EXPECT_EQ(*by_dir, paths[4]);
  auto by_manifest =
      CheckpointManager::ResolveLatest((fs::path(dir) / "MANIFEST").string());
  ASSERT_TRUE(by_manifest.ok());
  EXPECT_EQ(*by_manifest, paths[4]);
  auto by_file = CheckpointManager::ResolveLatest(paths[3]);
  ASSERT_TRUE(by_file.ok());
  EXPECT_EQ(*by_file, paths[3]);
}

TEST(CheckpointManagerTest, SequenceContinuesAcrossInstances) {
  const std::string dir = ScratchDir("sequence");
  std::string first;
  {
    CheckpointManager manager(dir, 2);
    ASSERT_TRUE(manager.Write("one", &first).ok());
  }
  // A new manager (a restarted process) must not overwrite the first file.
  CheckpointManager manager(dir, 2);
  std::string second;
  ASSERT_TRUE(manager.Write("two", &second).ok());
  EXPECT_NE(first, second);
  EXPECT_EQ(manager.RetainedPaths().size(), 2u);
  auto latest = manager.LatestPath();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, second);
}

TEST(CheckpointManagerTest, EmptyDirHasNoLatest) {
  const std::string dir = ScratchDir("empty");
  CheckpointManager manager(dir, 3);
  EXPECT_EQ(manager.LatestPath().status().code(), StatusCode::kNotFound);
  EXPECT_EQ(CheckpointManager::ResolveLatest(dir).status().code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Engine-level resume equivalence.

/// Controlled link space shared by the engine tests: 6 exact-name pairs, so
/// positive feedback on one pair explores the whole score band.
class EngineCheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* names[] = {"Alpha Arden",   "Beta Belcar", "Gamma Gild",
                           "Delta Dreston", "Epsil Elmor", "Zeta Zorva"};
    for (int i = 0; i < 6; ++i) {
      left_.AddLiteralTriple("http://l/e" + std::to_string(i), "http://l/name",
                             Term::Literal(names[i]));
      right_.AddLiteralTriple("http://r/e" + std::to_string(i),
                              "http://r/label", Term::Literal(names[i]));
    }
    left_.BuildEntityIndex();
    right_.BuildEntityIndex();
    std::vector<rdf::EntityId> lefts;
    for (rdf::EntityId e = 0; e < left_.num_entities(); ++e) lefts.push_back(e);
    space_.Build(left_, right_, lefts, 0.3, 20000);

    config_.episode_size = 10;
    config_.epsilon = 0.3;  // Exercise the policy RNG stream.
    config_.step_size = 0.05;
    config_.max_links_per_action = 100;
    config_.blacklist_threshold = 1;
    config_.rollback_threshold = 2;
  }

  rdf::EntityId L(int i) {
    return *left_.FindEntityByIri("http://l/e" + std::to_string(i));
  }
  rdf::EntityId R(int i) {
    return *right_.FindEntityByIri("http://r/e" + std::to_string(i));
  }

  static std::string Bytes(const AlexEngine& engine) {
    BinaryWriter w;
    engine.SaveState(&w);
    return w.Release();
  }

  rdf::Dataset left_{"l"};
  rdf::Dataset right_{"r"};
  LinkSpace space_;
  AlexConfig config_;
};

TEST_F(EngineCheckpointTest, ResumedEngineIsBitIdentical) {
  // Drive an engine through feedback that exercises exploration, the
  // blacklist, and a rollback, snapshotting mid-episode; then replay the
  // remainder of the script on (a) the original engine and (b) a fresh
  // engine restored from the snapshot. Both must end in byte-identical
  // states (the serialization is canonical, so equal bytes ⇔ equal state).
  AlexEngine engine(&space_, config_, /*seed=*/17);
  engine.InitializeCandidates({PackPair(L(0), R(0)), PackPair(L(1), R(1))});
  engine.ProcessFeedback(FeedbackItem{L(0), R(0), true});   // Explores band.
  engine.ProcessFeedback(FeedbackItem{L(2), R(2), false});  // Blacklists.
  engine.ProcessFeedback(FeedbackItem{L(3), R(3), true});
  EXPECT_GE(engine.blacklist_size(), 1u);

  const std::string snapshot = Bytes(engine);

  // A different seed: LoadState must overwrite the RNG stream anyway.
  AlexEngine resumed(&space_, config_, /*seed=*/99);
  BinaryReader r(snapshot);
  ASSERT_TRUE(resumed.LoadState(&r).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(Bytes(resumed), snapshot);
  EXPECT_EQ(resumed.candidates(), engine.candidates());
  EXPECT_EQ(resumed.episodes_completed(), engine.episodes_completed());

  // Continue both timelines with the same script: a second negative pushes
  // the positive generator over rollback_threshold, EndEpisode rolls back
  // and improves the policy, then another episode runs.
  const std::vector<FeedbackItem> remainder = {
      FeedbackItem{L(4), R(4), false},
      FeedbackItem{L(1), R(1), true},
  };
  for (AlexEngine* e : {&engine, &resumed}) {
    for (const FeedbackItem& item : remainder) e->ProcessFeedback(item);
    const EngineEpisodeStats stats = e->EndEpisode();
    EXPECT_GT(stats.rollbacks, 0u);
    e->ProcessFeedback(FeedbackItem{L(5), R(5), true});
    e->EndEpisode();
  }
  EXPECT_EQ(Bytes(engine), Bytes(resumed));
  EXPECT_EQ(engine.candidates(), resumed.candidates());
  EXPECT_DOUBLE_EQ(engine.policy().epsilon(), resumed.policy().epsilon());
  EXPECT_EQ(engine.episodes_completed(), 2u);
  EXPECT_EQ(resumed.episodes_completed(), 2u);
}

TEST_F(EngineCheckpointTest, CorruptPayloadLeavesEngineUntouched) {
  AlexEngine engine(&space_, config_, 17);
  engine.InitializeCandidates({PackPair(L(0), R(0))});
  engine.ProcessFeedback(FeedbackItem{L(0), R(0), true});
  engine.EndEpisode();
  const std::string snapshot = Bytes(engine);

  AlexEngine victim(&space_, config_, 5);
  victim.InitializeCandidates({PackPair(L(1), R(1))});
  victim.ProcessFeedback(FeedbackItem{L(1), R(1), true});
  const std::string before = Bytes(victim);

  // Truncations at various depths: every one must fail with a Status and
  // leave the victim's state byte-identical to before the attempt.
  for (size_t cut : {size_t{0}, size_t{3}, snapshot.size() / 2,
                     snapshot.size() - 1}) {
    BinaryReader r(std::string_view(snapshot).substr(0, cut));
    EXPECT_FALSE(victim.LoadState(&r).ok()) << "cut at " << cut;
    EXPECT_EQ(Bytes(victim), before) << "cut at " << cut;
  }
}

// ---------------------------------------------------------------------------
// Polymorphic policy sections (format v2) and their failure modes.

/// Splits a v2 engine payload into its tag, the bare policy payload, and
/// the remainder (RNG + engine tables). Layout: WriteBytes(tag) +
/// WriteBytes(policy payload) + remainder.
struct SplitEnginePayload {
  std::string tag;
  std::string policy;
  std::string remainder;
};

SplitEnginePayload SplitV2(const std::string& snapshot) {
  SplitEnginePayload out;
  BinaryReader r(snapshot);
  std::string_view view;
  EXPECT_TRUE(r.ReadBytesView(&view).ok());
  out.tag = std::string(view);
  EXPECT_TRUE(r.ReadBytesView(&view).ok());
  out.policy = std::string(view);
  EXPECT_TRUE(r.ReadRaw(r.remaining(), &view).ok());
  out.remainder = std::string(view);
  return out;
}

TEST_F(EngineCheckpointTest, SavedPolicySectionCarriesTypeTag) {
  AlexEngine engine(&space_, config_, 17);
  engine.InitializeCandidates({PackPair(L(0), R(0))});
  engine.ProcessFeedback(FeedbackItem{L(0), R(0), true});
  const SplitEnginePayload split = SplitV2(Bytes(engine));
  EXPECT_EQ(split.tag, kDefaultPolicyTag);
  EXPECT_FALSE(split.policy.empty());
}

TEST_F(EngineCheckpointTest, UnknownPolicyTagFailsWithNamedStatus) {
  AlexEngine engine(&space_, config_, 17);
  engine.InitializeCandidates({PackPair(L(0), R(0))});
  engine.ProcessFeedback(FeedbackItem{L(0), R(0), true});
  const SplitEnginePayload split = SplitV2(Bytes(engine));

  // Same payload, the tag spliced to one no build registers.
  BinaryWriter w;
  w.WriteBytes("martian-policy");
  w.WriteBytes(split.policy);
  w.WriteRaw(split.remainder);
  const std::string spliced = w.Release();

  AlexEngine victim(&space_, config_, 5);
  victim.InitializeCandidates({PackPair(L(1), R(1))});
  const std::string before = Bytes(victim);
  BinaryReader r(spliced);
  const Status st = victim.LoadState(&r);
  ASSERT_EQ(st.code(), StatusCode::kInvalidArgument);
  // The error names the section and the offending tag.
  EXPECT_NE(st.message().find("policy section"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("martian-policy"), std::string::npos)
      << st.message();
  EXPECT_EQ(Bytes(victim), before);
}

TEST_F(EngineCheckpointTest, ForeignPolicyTagFailsWithNamedStatus) {
  rl::RegisterAdaptiveFeaturePolicy();
  // Snapshot taken under the default policy, restored into an engine
  // configured for a different (registered) one: both tags must be named.
  AlexEngine engine(&space_, config_, 17);
  engine.InitializeCandidates({PackPair(L(0), R(0))});
  engine.ProcessFeedback(FeedbackItem{L(0), R(0), true});
  const std::string snapshot = Bytes(engine);

  AlexConfig other = config_;
  other.policy = "adaptive-feature";
  AlexEngine victim(&space_, other, 5);
  BinaryReader r(snapshot);
  const Status st = victim.LoadState(&r);
  ASSERT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("policy section"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("epsilon-greedy"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("adaptive-feature"), std::string::npos)
      << st.message();
}

TEST_F(EngineCheckpointTest, Version1PayloadStillLoads) {
  AlexEngine engine(&space_, config_, 17);
  engine.InitializeCandidates({PackPair(L(0), R(0)), PackPair(L(1), R(1))});
  engine.ProcessFeedback(FeedbackItem{L(0), R(0), true});
  engine.EndEpisode();
  const std::string snapshot = Bytes(engine);
  const SplitEnginePayload split = SplitV2(snapshot);

  // A version-1 payload is the same bytes with the policy inlined bare:
  // no tag, no length prefix.
  const std::string v1_bytes = split.policy + split.remainder;

  AlexEngine restored(&space_, config_, 99);
  BinaryReader r(v1_bytes);
  ASSERT_TRUE(restored.LoadState(&r, /*format_version=*/1).ok());
  EXPECT_TRUE(r.AtEnd());
  // Saving the restored engine (always v2) reproduces the original bytes.
  EXPECT_EQ(Bytes(restored), snapshot);
}

TEST_F(EngineCheckpointTest, Version1PayloadRejectedUnderNonDefaultPolicy) {
  rl::RegisterAdaptiveFeaturePolicy();
  AlexEngine engine(&space_, config_, 17);
  engine.InitializeCandidates({PackPair(L(0), R(0))});
  const SplitEnginePayload split = SplitV2(Bytes(engine));
  const std::string v1_bytes = split.policy + split.remainder;

  AlexConfig other = config_;
  other.policy = "adaptive-feature";
  AlexEngine victim(&space_, other, 5);
  BinaryReader r(v1_bytes);
  const Status st = victim.LoadState(&r, /*format_version=*/1);
  ASSERT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("version-1"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("adaptive-feature"), std::string::npos)
      << st.message();
}

TEST_F(EngineCheckpointTest, AdaptivePolicyEngineRoundTrips) {
  rl::RegisterAdaptiveFeaturePolicy();
  AlexConfig config = config_;
  config.policy = "adaptive-feature";
  AlexEngine engine(&space_, config, 17);
  engine.InitializeCandidates({PackPair(L(0), R(0)), PackPair(L(1), R(1))});
  engine.ProcessFeedback(FeedbackItem{L(0), R(0), true});
  engine.ProcessFeedback(FeedbackItem{L(2), R(2), false});
  engine.EndEpisode();
  const std::string snapshot = Bytes(engine);
  EXPECT_EQ(SplitV2(snapshot).tag, "adaptive-feature");

  AlexEngine resumed(&space_, config, 99);
  BinaryReader r(snapshot);
  ASSERT_TRUE(resumed.LoadState(&r).ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(Bytes(resumed), snapshot);
  EXPECT_EQ(resumed.candidates(), engine.candidates());

  // Both timelines continue identically after the round trip.
  for (AlexEngine* e : {&engine, &resumed}) {
    e->ProcessFeedback(FeedbackItem{L(3), R(3), true});
    e->EndEpisode();
  }
  EXPECT_EQ(Bytes(engine), Bytes(resumed));
}

// ---------------------------------------------------------------------------
// LinkIndex snapshot.

TEST(LinkIndexCheckpointTest, RoundTripPreservesIdsOrderAndEpoch) {
  fed::LinkIndex index;
  index.Add("http://l/a", "http://r/x");
  index.Add("http://l/a", "http://r/y");
  index.Add("http://l/b", "http://r/x");
  index.Add("http://l/c", "http://r/z");
  index.Remove("http://l/b", "http://r/x");  // Retired id stays interned.
  ASSERT_EQ(index.size(), 3u);

  BinaryWriter w;
  index.SaveState(&w);
  const std::string bytes = w.Release();

  fed::LinkIndex restored;
  BinaryReader r(bytes);
  ASSERT_TRUE(restored.LoadState(&r).ok());
  EXPECT_TRUE(r.AtEnd());

  EXPECT_EQ(restored.size(), index.size());
  EXPECT_EQ(restored.epoch(), index.epoch());
  EXPECT_EQ(restored.AllLinks(), index.AllLinks());
  // Interned ids and co-referent enumeration order survive.
  EXPECT_EQ(restored.IdOf("http://l/a"), index.IdOf("http://l/a"));
  EXPECT_EQ(restored.IdOf("http://l/b"), index.IdOf("http://l/b"));
  EXPECT_EQ(restored.RightsFor("http://l/a"), index.RightsFor("http://l/a"));
  EXPECT_EQ(restored.RightIdsFor(index.IdOf("http://l/a")),
            index.RightIdsFor(index.IdOf("http://l/a")));

  // A restored index serializes to the same bytes.
  BinaryWriter w2;
  restored.SaveState(&w2);
  EXPECT_EQ(w2.Release(), bytes);
}

TEST(LinkIndexCheckpointTest, CorruptSnapshotRejectedWithoutMutation) {
  fed::LinkIndex index;
  index.Add("http://l/a", "http://r/x");
  BinaryWriter w;
  index.SaveState(&w);
  const std::string bytes = w.Release();

  fed::LinkIndex victim;
  victim.Add("http://l/v", "http://r/v");
  const uint64_t epoch_before = victim.epoch();
  BinaryReader r(std::string_view(bytes).substr(0, bytes.size() / 2));
  EXPECT_FALSE(victim.LoadState(&r).ok());
  EXPECT_EQ(victim.epoch(), epoch_before);
  EXPECT_TRUE(victim.Contains("http://l/v", "http://r/v"));
  EXPECT_EQ(victim.size(), 1u);
}

// ---------------------------------------------------------------------------
// Full-run resume equivalence through the simulation driver.

simulation::SimulationConfig SmallConfig() {
  simulation::SimulationConfig config;
  config.scenario.name = "ckpt-unit";
  config.scenario.seed = 33;
  config.scenario.num_shared = 40;
  config.scenario.num_left_only = 30;
  config.scenario.num_right_only = 15;
  config.scenario.domains = {"person"};
  config.scenario.value_noise = 0.4;
  config.scenario.ambiguity = 0.2;
  config.alex.episode_size = 50;
  config.alex.num_partitions = 3;
  config.alex.num_threads = 2;
  config.alex.max_episodes = 14;
  return config;
}

/// Every field of two episode series except wall time must agree.
void ExpectSameSeries(const std::vector<simulation::EpisodeRecord>& a,
                      const std::vector<simulation::EpisodeRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("episode " + std::to_string(i));
    EXPECT_EQ(a[i].episode, b[i].episode);
    EXPECT_DOUBLE_EQ(a[i].metrics.precision, b[i].metrics.precision);
    EXPECT_DOUBLE_EQ(a[i].metrics.recall, b[i].metrics.recall);
    EXPECT_DOUBLE_EQ(a[i].metrics.f_measure, b[i].metrics.f_measure);
    EXPECT_EQ(a[i].metrics.correct, b[i].metrics.correct);
    EXPECT_EQ(a[i].metrics.candidates, b[i].metrics.candidates);
    EXPECT_EQ(a[i].links_changed, b[i].links_changed);
    EXPECT_EQ(a[i].positive_feedback, b[i].positive_feedback);
    EXPECT_EQ(a[i].negative_feedback, b[i].negative_feedback);
    EXPECT_EQ(a[i].links_added, b[i].links_added);
    EXPECT_EQ(a[i].links_removed, b[i].links_removed);
    EXPECT_EQ(a[i].rollbacks, b[i].rollbacks);
  }
}

TEST(SimulationCheckpointTest, ResumedRunMatchesUninterruptedRun) {
  const std::string dir = ScratchDir("sim_resume");

  // Reference: one uninterrupted run.
  simulation::SimulationConfig ref_config = SmallConfig();
  std::unordered_set<feedback::PairKey> ref_final;
  simulation::Simulation ref_sim(ref_config);
  ref_sim.set_observer([&](size_t, const PartitionedAlex& alex) {
    ref_final = alex.Candidates();
  });
  const simulation::RunResult reference = ref_sim.Run();
  ASSERT_GT(reference.episodes.size(), 7u)
      << "scenario too small to cover the checkpoint boundary";

  // Interrupted: same config, checkpoints every 2 episodes, killed (via the
  // episode budget) after episode 6.
  simulation::SimulationConfig trunc_config = SmallConfig();
  trunc_config.alex.max_episodes = 6;
  trunc_config.checkpoint_every_k_episodes = 2;
  trunc_config.checkpoint_dir = dir;
  const simulation::RunResult truncated =
      simulation::Simulation(trunc_config).Run();
  ASSERT_TRUE(truncated.resume_error.ok());
  ASSERT_EQ(truncated.converged_episode, 0u)
      << "scenario converged before the kill point; pick a later boundary";

  // Resumed: full episode budget, restoring from the newest checkpoint.
  simulation::SimulationConfig res_config = SmallConfig();
  res_config.resume_from = dir;
  std::unordered_set<feedback::PairKey> res_final;
  simulation::Simulation res_sim(res_config);
  res_sim.set_observer([&](size_t, const PartitionedAlex& alex) {
    res_final = alex.Candidates();
  });
  const simulation::RunResult resumed = res_sim.Run();
  ASSERT_TRUE(resumed.resume_error.ok()) << resumed.resume_error;
  EXPECT_EQ(resumed.resumed_from_episode, 6u);

  // The resumed run must be indistinguishable from the uninterrupted one:
  // identical per-episode series (including the restored prefix),
  // convergence figures, and final candidate set.
  ExpectSameSeries(reference.episodes, resumed.episodes);
  EXPECT_EQ(reference.converged_episode, resumed.converged_episode);
  EXPECT_EQ(reference.relaxed_episode, resumed.relaxed_episode);
  EXPECT_EQ(reference.new_links_discovered, resumed.new_links_discovered);
  EXPECT_EQ(ref_final, res_final);
}

TEST(SimulationCheckpointTest, CorruptCheckpointAbortsResume) {
  const std::string dir = ScratchDir("sim_corrupt");

  simulation::SimulationConfig config = SmallConfig();
  config.alex.max_episodes = 4;
  config.checkpoint_every_k_episodes = 2;
  config.checkpoint_dir = dir;
  ASSERT_TRUE(simulation::Simulation(config).Run().resume_error.ok());

  // Flip one payload byte in the newest checkpoint.
  auto latest = CheckpointManager::ResolveLatest(dir);
  ASSERT_TRUE(latest.ok());
  auto blob = CheckpointManager::ReadBlob(*latest);
  ASSERT_TRUE(blob.ok());
  std::string corrupted = *blob;
  corrupted[corrupted.size() - 1] ^= 0x01;
  std::ofstream(*latest, std::ios::binary | std::ios::trunc) << corrupted;

  simulation::SimulationConfig res_config = SmallConfig();
  res_config.resume_from = dir;
  const simulation::RunResult result =
      simulation::Simulation(res_config).Run();
  EXPECT_FALSE(result.resume_error.ok());
  EXPECT_EQ(result.resumed_from_episode, 0u);
  // The run aborts after the initial record instead of silently diverging.
  EXPECT_EQ(result.episodes.size(), 1u);
}

TEST(SimulationCheckpointTest, MismatchedConfigRejectedOnResume) {
  const std::string dir = ScratchDir("sim_mismatch");

  simulation::SimulationConfig config = SmallConfig();
  config.alex.max_episodes = 4;
  config.checkpoint_every_k_episodes = 2;
  config.checkpoint_dir = dir;
  ASSERT_TRUE(simulation::Simulation(config).Run().resume_error.ok());

  // Resuming under different engine tunables must be refused (fingerprint).
  simulation::SimulationConfig res_config = SmallConfig();
  res_config.resume_from = dir;
  res_config.alex.epsilon = config.alex.epsilon + 0.05;
  const simulation::RunResult result =
      simulation::Simulation(res_config).Run();
  EXPECT_EQ(result.resume_error.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.episodes.size(), 1u);
}

TEST(SimulationCheckpointTest, ForeignLinkerTagRejectedOnResume) {
  const std::string dir = ScratchDir("sim_foreign_linker");

  simulation::SimulationConfig config = SmallConfig();
  config.alex.max_episodes = 4;
  config.checkpoint_every_k_episodes = 2;
  config.checkpoint_dir = dir;
  ASSERT_TRUE(simulation::Simulation(config).Run().resume_error.ok());

  // The checkpoint records linker "paris"; resuming under "sigma" would
  // silently re-seed the link space from a different matcher, so it must be
  // refused by name rather than fingerprint (the engine config is equal).
  simulation::SimulationConfig res_config = SmallConfig();
  res_config.resume_from = dir;
  res_config.linker = std::string(paris::kSigmaLinkerTag);
  const simulation::RunResult result =
      simulation::Simulation(res_config).Run();
  EXPECT_EQ(result.resume_error.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.resume_error.message().find("paris"), std::string::npos)
      << result.resume_error;
  EXPECT_NE(result.resume_error.message().find("sigma"), std::string::npos)
      << result.resume_error;
  EXPECT_EQ(result.resumed_from_episode, 0u);
  EXPECT_EQ(result.episodes.size(), 1u);
}

// ---------------------------------------------------------------------------
// Backward compatibility: a committed format-v1 checkpoint (written before
// the pluggable linker/policy refactor) must still resume, and the resumed
// run must match an uninterrupted one episode for episode.

/// The exact configuration the v1 fixture was produced with. Do not change:
/// the fingerprint inside the fixture binds to these values.
simulation::SimulationConfig V1FixtureConfig() {
  simulation::SimulationConfig config;
  config.scenario = datagen::DbpediaSwdf();
  config.alex.episode_size = 120;
  config.alex.max_episodes = 4;
  config.feedback_error_rate = 0.1;
  return config;
}

TEST(SimulationCheckpointTest, FormatV1CheckpointStillResumes) {
  const std::string fixture =
      std::string(ALEX_TESTDATA_DIR) + "/sim_v1_dbpedia_swdf.alexckpt";
  ASSERT_TRUE(fs::exists(fixture)) << fixture;

  // Reference: the same run, uninterrupted, for 6 episodes.
  simulation::SimulationConfig ref_config = V1FixtureConfig();
  ref_config.alex.max_episodes = 6;
  const simulation::RunResult reference =
      simulation::Simulation(ref_config).Run();

  // Resume from the pre-refactor blob (episode boundary 4) and finish.
  simulation::SimulationConfig res_config = V1FixtureConfig();
  res_config.alex.max_episodes = 6;
  res_config.resume_from = fixture;
  const simulation::RunResult resumed =
      simulation::Simulation(res_config).Run();
  ASSERT_TRUE(resumed.resume_error.ok()) << resumed.resume_error;
  EXPECT_EQ(resumed.resumed_from_episode, 4u);

  ExpectSameSeries(reference.episodes, resumed.episodes);
  EXPECT_EQ(reference.converged_episode, resumed.converged_episode);
  EXPECT_EQ(reference.new_links_discovered, resumed.new_links_discovered);
}

TEST(SimulationCheckpointTest, FormatV1CheckpointRejectsNonParisLinker) {
  const std::string fixture =
      std::string(ALEX_TESTDATA_DIR) + "/sim_v1_dbpedia_swdf.alexckpt";
  ASSERT_TRUE(fs::exists(fixture)) << fixture;

  // Version-1 blobs have no linker section; the format implies "paris".
  simulation::SimulationConfig res_config = V1FixtureConfig();
  res_config.alex.max_episodes = 6;
  res_config.resume_from = fixture;
  res_config.linker = std::string(paris::kSigmaLinkerTag);
  const simulation::RunResult result =
      simulation::Simulation(res_config).Run();
  EXPECT_EQ(result.resume_error.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.resume_error.message().find("version-1"), std::string::npos)
      << result.resume_error;
  EXPECT_EQ(result.resumed_from_episode, 0u);
}

}  // namespace
}  // namespace alex::core::ckpt
