// Tests for the epoch-versioned snapshot view over fed::LinkIndex — the
// link service's concurrency substrate: snapshot isolation (queries keep
// their Acquire()d view across staging and commits), epoch semantics (the
// published epoch moves only at effective commits, never per staged op),
// probe-cache coherence through a CachingEndpoint EpochFn, checkpoint
// round-trips, and a reader/committer stress test that runs clean under
// ThreadSanitizer (the "sanitize" label routes it through the TSan CI job).

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/binary_io.h"
#include "federation/endpoint.h"
#include "federation/probe_cache.h"
#include "federation/versioned_link_index.h"
#include "rdf/dataset.h"

namespace alex::fed {
namespace {

std::string L(int i) { return "http://left/e" + std::to_string(i); }
std::string R(int i) { return "http://right/e" + std::to_string(i); }

TEST(VersionedLinkIndexTest, SeedsFirstSnapshotFromInitialIndex) {
  LinkIndex seed;
  seed.Add(L(1), R(1));
  seed.Add(L(2), R(2));
  VersionedLinkIndex links(std::move(seed));

  std::shared_ptr<const LinkIndex> snap = links.Acquire();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->size(), 2u);
  EXPECT_TRUE(snap->Contains(L(1), R(1)));
  EXPECT_EQ(links.published_epoch(), snap->epoch());
  EXPECT_EQ(links.commit_sequence(), 0u);
}

TEST(VersionedLinkIndexTest, StagedOpsAreInvisibleUntilCommit) {
  LinkIndex seed;
  seed.Add(L(1), R(1));
  VersionedLinkIndex links(std::move(seed));
  const uint64_t epoch_before = links.published_epoch();

  std::shared_ptr<const LinkIndex> old_snap = links.Acquire();
  links.StageAdd(L(2), R(2));
  links.StageRemove(L(1), R(1));
  EXPECT_EQ(links.staged_ops(), 2u);

  // Nothing published yet: fresh Acquire() still sees the old state and the
  // epoch has not moved, so probe caches keep their entries.
  EXPECT_EQ(links.Acquire()->size(), 1u);
  EXPECT_FALSE(links.Acquire()->Contains(L(2), R(2)));
  EXPECT_EQ(links.published_epoch(), epoch_before);

  const CommitResult result = links.Commit();
  EXPECT_EQ(result.added, 1u);
  EXPECT_EQ(result.removed, 1u);
  EXPECT_EQ(result.sequence, 1u);
  EXPECT_EQ(links.staged_ops(), 0u);
  EXPECT_NE(links.published_epoch(), epoch_before);

  // The new snapshot has the committed state; the old Acquire()d snapshot
  // is immutable and still serves the pre-commit view.
  std::shared_ptr<const LinkIndex> new_snap = links.Acquire();
  EXPECT_TRUE(new_snap->Contains(L(2), R(2)));
  EXPECT_FALSE(new_snap->Contains(L(1), R(1)));
  EXPECT_TRUE(old_snap->Contains(L(1), R(1)));
  EXPECT_FALSE(old_snap->Contains(L(2), R(2)));
}

TEST(VersionedLinkIndexTest, NoOpCommitBumpsSequenceButKeepsEpoch) {
  LinkIndex seed;
  seed.Add(L(1), R(1));
  VersionedLinkIndex links(std::move(seed));
  const uint64_t epoch_before = links.published_epoch();

  links.StageAdd(L(1), R(1));     // Duplicate: no effect on the set.
  links.StageRemove(L(9), R(9));  // Absent: no effect either.
  const CommitResult result = links.Commit();
  EXPECT_EQ(result.added, 0u);
  EXPECT_EQ(result.removed, 0u);
  EXPECT_EQ(result.sequence, 1u);
  EXPECT_EQ(links.commit_sequence(), 1u);
  // An episode that changed nothing must not flush probe caches.
  EXPECT_EQ(links.published_epoch(), epoch_before);
}

TEST(VersionedLinkIndexTest, ResetReplacesStateAndDropsStagedOps) {
  VersionedLinkIndex links;
  links.StageAdd(L(1), R(1));
  ASSERT_EQ(links.staged_ops(), 1u);

  LinkIndex replacement;
  replacement.Add(L(7), R(7));
  links.Reset(std::move(replacement));
  EXPECT_EQ(links.staged_ops(), 0u);
  EXPECT_TRUE(links.Acquire()->Contains(L(7), R(7)));

  // The dropped staged op must not resurface on the next commit.
  const CommitResult result = links.Commit();
  EXPECT_EQ(result.added, 0u);
  EXPECT_FALSE(links.Acquire()->Contains(L(1), R(1)));
}

TEST(VersionedLinkIndexTest, SaveLoadRoundTripsMasterAndEpoch) {
  LinkIndex seed;
  seed.Add(L(1), R(1));
  VersionedLinkIndex links(std::move(seed));
  links.StageAdd(L(2), R(2));
  links.Commit();

  BinaryWriter w;
  links.SaveState(&w);
  const std::string blob(w.buffer());

  VersionedLinkIndex restored;
  BinaryReader r(blob);
  ASSERT_TRUE(restored.LoadState(&r).ok());
  EXPECT_EQ(restored.Acquire()->size(), 2u);
  EXPECT_TRUE(restored.Acquire()->Contains(L(2), R(2)));
  // Epoch survives the round trip, so caches keyed on it stay coherent
  // across a restart.
  EXPECT_EQ(restored.published_epoch(), links.published_epoch());

  // Corrupt payloads are rejected without touching the index.
  VersionedLinkIndex untouched;
  std::string corrupt = blob.substr(0, blob.size() / 2);
  BinaryReader bad(corrupt);
  EXPECT_FALSE(untouched.LoadState(&bad).ok());
  EXPECT_EQ(untouched.Acquire()->size(), 0u);
}

// A CachingEndpoint whose EpochFn watches published_epoch() must keep its
// entries across staging and flush exactly once per effective commit.
TEST(VersionedLinkIndexTest, ProbeCacheFlushesOncePerEffectiveCommit) {
  rdf::Dataset data("remote");
  data.AddLiteralTriple("http://r/acme", "http://r/label",
                        rdf::Term::Literal("Acme"));
  Endpoint inner(&data);

  VersionedLinkIndex links;
  CachingEndpoint cached(&inner, ProbeCacheConfig(),
                         [&links] { return links.published_epoch(); });

  const rdf::Term subject = rdf::Term::Iri("http://r/acme");
  PatternProbe probe;
  probe.subject = &subject;
  auto run_probe = [&] {
    const Status st = cached.Probe(
        probe, CallOptions(),
        [](const rdf::Term*, const rdf::Term*, const rdf::Term*) {
          return true;
        });
    ASSERT_TRUE(st.ok()) << st;
  };

  run_probe();  // Cold: miss.
  run_probe();  // Hit.
  EXPECT_EQ(cached.misses(), 1u);
  EXPECT_EQ(cached.hits(), 1u);

  // Staging alone must not invalidate: queries between episode boundaries
  // keep their cached probes.
  links.StageAdd(L(1), R(1));
  run_probe();
  EXPECT_EQ(cached.hits(), 2u);
  EXPECT_EQ(cached.misses(), 1u);

  // The commit publishes a new epoch: exactly one more miss, then hits.
  links.Commit();
  run_probe();
  run_probe();
  EXPECT_EQ(cached.misses(), 2u);
  EXPECT_EQ(cached.hits(), 3u);

  // A no-op commit keeps the epoch: no flush.
  links.StageRemove(L(99), R(99));
  links.Commit();
  run_probe();
  EXPECT_EQ(cached.misses(), 2u);
  EXPECT_EQ(cached.hits(), 4u);
}

// Readers acquire snapshots and scan them while a committer publishes new
// epochs underneath. Links are committed in index order, so every snapshot
// must satisfy the prefix invariant: if link i is present, every link j < i
// is present too. Run under TSan via the "sanitize" label.
TEST(VersionedLinkIndexTest, ConcurrentReadersSeeConsistentSnapshots) {
  constexpr int kCommits = 40;
  constexpr int kLinksPerCommit = 5;
  constexpr int kReaders = 4;

  VersionedLinkIndex links;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> snapshots_read{0};
  std::atomic<bool> violation{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        std::shared_ptr<const LinkIndex> snap = links.Acquire();
        const size_t n = snap->size();
        if (n % kLinksPerCommit != 0) violation.store(true);
        // Snapshot = some prefix of the commit order, atomically.
        const int present = static_cast<int>(n);
        if (present > 0 && (!snap->Contains(L(0), R(0)) ||
                            !snap->Contains(L(present - 1), R(present - 1)))) {
          violation.store(true);
        }
        if (present < kCommits * kLinksPerCommit &&
            snap->Contains(L(present), R(present))) {
          violation.store(true);
        }
        snapshots_read.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int c = 0; c < kCommits; ++c) {
    for (int i = 0; i < kLinksPerCommit; ++i) {
      const int id = c * kLinksPerCommit + i;
      links.StageAdd(L(id), R(id));
    }
    links.Commit();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_FALSE(violation.load());
  EXPECT_GT(snapshots_read.load(), 0u);
  EXPECT_EQ(links.Acquire()->size(),
            static_cast<size_t>(kCommits * kLinksPerCommit));
  EXPECT_EQ(links.commit_sequence(), static_cast<uint64_t>(kCommits));
}

}  // namespace
}  // namespace alex::fed
